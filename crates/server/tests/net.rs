//! Integration tests for the TCP front-end: loopback chaos soak,
//! malformed-frame fuzzing, frame-length edge cases (shared with the
//! "DF" container's varint), connection-cap / idle / shutdown
//! behaviour, and byte-identical round-trips of block-framed payloads.
//!
//! The acceptance bar these encode: concurrent clients at 0/5/25 %
//! injected network faults plus malformed-frame fuzzing complete with
//! zero panics, zero hangs (every operation deadline-bounded), zero
//! silent corruption, and connection metrics that account for every
//! accepted connection and frame.

use dnacomp_algos::{compressor_for, CompressedBlob};
use dnacomp_cloud::FaultPlan;
use dnacomp_codec::varint::{read_uvarint, write_uvarint};
use dnacomp_core::{Context, Deadline};
use dnacomp_seq::gen::GenomeModel;
use dnacomp_seq::PackedSeq;
use dnacomp_server::{
    decode_frame, frame_bytes, read_frame, request_frame, synthetic_framework, write_frame,
    ClientError, CompressionService, ErrorCode, FaultyStream, NetClient, NetConfig, NetServer,
    Priority, ProtoError, Request, Response, ServiceConfig, IO_TICK, MAX_WIRE_PAYLOAD, WIRE_MAGIC,
    WIRE_VERSION,
};
use dnacomp_store::{SequenceStore, StoreConfig};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Start a service + front-end pair with tight, test-friendly budgets.
fn start(
    svc: ServiceConfig,
    net: NetConfig,
) -> (Arc<CompressionService>, NetServer, SocketAddr) {
    let service = Arc::new(CompressionService::start(synthetic_framework(42), svc));
    let server =
        NetServer::start(Arc::clone(&service), "127.0.0.1:0", net).expect("bind loopback");
    let addr = server.local_addr();
    (service, server, addr)
}

/// Test-grade budgets: short enough that a hang fails fast, long
/// enough that a loaded CI machine never trips them spuriously.
fn quick_net() -> NetConfig {
    NetConfig {
        idle_timeout: Duration::from_secs(2),
        frame_timeout: Duration::from_millis(400),
        write_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(20),
        ..NetConfig::default()
    }
}

fn ctx_for(seq: &PackedSeq) -> Context {
    Context {
        ram_mb: 2048,
        cpu_mhz: 2393,
        bandwidth_mbps: 2.0,
        file_bytes: seq.len() as u64,
    }
}

/// Raw TCP connection with tick timeouts, no handshake.
fn raw_connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(IO_TICK)).unwrap();
    s.set_write_timeout(Some(IO_TICK)).unwrap();
    s.set_nodelay(true).unwrap();
    s
}

/// Raw handshake over a bare stream (for tests that then misbehave).
fn raw_hello(stream: &mut TcpStream) {
    let frame = request_frame(&Request::Hello {
        version: WIRE_VERSION,
    });
    write_frame(stream, &frame, Deadline::after(Duration::from_secs(2))).unwrap();
    let (t, payload, _) = read_frame(
        stream,
        MAX_WIRE_PAYLOAD,
        Deadline::after(Duration::from_secs(5)),
        Duration::from_secs(2),
    )
    .unwrap();
    match Response::decode(t, &payload).unwrap() {
        Response::HelloOk { version } => assert_eq!(version, WIRE_VERSION),
        other => panic!("expected HelloOk, got {other:?}"),
    }
}

/// Read one response frame with generous client-side budgets.
fn read_reply(stream: &mut TcpStream) -> Result<Response, ProtoError> {
    let (t, payload, _) = read_frame(
        stream,
        MAX_WIRE_PAYLOAD,
        Deadline::after(Duration::from_secs(5)),
        Duration::from_secs(2),
    )?;
    Response::decode(t, &payload)
}

/// After a kill the peer may observe a clean FIN or an RST (the
/// kernel sends RST when the killed socket still holds unread bytes);
/// both mean "connection ended", neither means "hang".
fn assert_conn_ended(err: ProtoError) {
    match err {
        ProtoError::Closed | ProtoError::Io(_) => {}
        other => panic!("expected the connection to end, got {other:?}"),
    }
}

/// Poll until `pred` holds or the budget runs out.
fn wait_for(budget: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Deadline::after(budget);
    while !pred() {
        if deadline.expired() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}

fn temp_store(tag: &str) -> (Arc<SequenceStore>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("dnacomp-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SequenceStore::open(&dir, StoreConfig::default()).expect("open store");
    (Arc::new(store), dir)
}

// ---------------------------------------------------------------------------
// Frame-length edge cases, shared with the DF container's varint
// ---------------------------------------------------------------------------

#[test]
fn frame_length_edges_share_the_container_varint() {
    // Zero-length, the 1-/2-/3-byte varint boundaries, and the cap.
    let cases: [(usize, usize); 7] = [
        (0, 1),
        (1, 1),
        (127, 1),
        (128, 2),
        (16_383, 2),
        (16_384, 3),
        (MAX_WIRE_PAYLOAD, 4),
    ];
    for (size, expect_varint) in cases {
        let payload = vec![0xA5u8; size];
        let frame = frame_bytes(0x02, &payload);
        // Layout: magic(2) + version(1) + type(1) + varint + payload + fnv(8).
        assert_eq!(frame.len(), 4 + expect_varint + size + 8, "size {size}");
        // The wire's length varint IS the container's varint: the bytes
        // after the 4-byte header must equal `write_uvarint(size)`.
        let mut container = Vec::new();
        write_uvarint(&mut container, size as u64);
        assert_eq!(&frame[4..4 + expect_varint], &container[..], "size {size}");
        let mut pos = 0;
        assert_eq!(read_uvarint(&frame[4..], &mut pos).unwrap(), size as u64);
        assert_eq!(pos, expect_varint);
        // And the whole frame round-trips through both decoders.
        let (t, back, used) = decode_frame(&frame, MAX_WIRE_PAYLOAD).unwrap();
        assert_eq!((t, used), (0x02, frame.len()));
        assert_eq!(back, payload);
        let mut cur = std::io::Cursor::new(frame.clone());
        let (t2, back2, wire) = read_frame(
            &mut cur,
            MAX_WIRE_PAYLOAD,
            Deadline::after(Duration::from_secs(1)),
            Duration::from_secs(1),
        )
        .unwrap();
        assert_eq!((t2, wire as usize), (0x02, frame.len()));
        assert_eq!(back2, payload);
    }
}

#[test]
fn cap_plus_one_is_refused_on_the_declaration_alone() {
    let cap = 1024usize;
    // At the cap: accepted.
    let at = frame_bytes(0x02, &vec![0u8; cap]);
    assert!(decode_frame(&at, cap).is_ok());
    // One over: refused — and the refusal must come from the declared
    // length, before any payload-sized buffer exists. Feed only the
    // header bytes to prove no payload read is attempted.
    let mut header = WIRE_MAGIC.to_vec();
    header.push(WIRE_VERSION);
    header.push(0x02);
    write_uvarint(&mut header, (cap + 1) as u64);
    let mut cur = std::io::Cursor::new(header.clone());
    assert_eq!(
        read_frame(
            &mut cur,
            cap,
            Deadline::after(Duration::from_secs(1)),
            Duration::from_secs(1)
        )
        .unwrap_err(),
        ProtoError::Oversize {
            declared: (cap + 1) as u64,
            cap: cap as u64
        }
    );
    // The buffered decoder agrees (payload bytes present but unread).
    let over = frame_bytes(0x02, &vec![0u8; cap + 1]);
    assert!(matches!(
        decode_frame(&over, cap).unwrap_err(),
        ProtoError::Oversize { .. }
    ));
    // A 5-byte length varint (values ≥ 2^28) can only ever be a forged
    // declaration — it exceeds MAX_WIRE_PAYLOAD by construction — so
    // the boundary is exercised as an oversize refusal: the varint
    // decodes fully, then the declaration is rejected pre-allocation.
    let five_byte = 1u64 << 28;
    assert_eq!(varint_byte_len(five_byte), 5);
    let mut forged = WIRE_MAGIC.to_vec();
    forged.push(WIRE_VERSION);
    forged.push(0x02);
    write_uvarint(&mut forged, five_byte);
    let mut cur = std::io::Cursor::new(forged);
    assert_eq!(
        read_frame(
            &mut cur,
            MAX_WIRE_PAYLOAD,
            Deadline::after(Duration::from_secs(1)),
            Duration::from_secs(1)
        )
        .unwrap_err(),
        ProtoError::Oversize {
            declared: five_byte,
            cap: MAX_WIRE_PAYLOAD as u64
        }
    );
}

/// Bytes `write_uvarint` spends on `v` — shared with the DF container.
fn varint_byte_len(v: u64) -> usize {
    let mut buf = Vec::new();
    write_uvarint(&mut buf, v);
    buf.len()
}

mod frame_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn any_payload_size_roundtrips(size in 0usize..4096, ftype in 1u8..0x30) {
            let payload = vec![(size % 251) as u8; size];
            let frame = frame_bytes(ftype, &payload);
            let (t, back, used) = decode_frame(&frame, 4096).unwrap();
            prop_assert_eq!((t, used), (ftype, frame.len()));
            prop_assert_eq!(back, payload);
        }
    }
}

// ---------------------------------------------------------------------------
// Byte-identical block-framed round-trip over the wire
// ---------------------------------------------------------------------------

#[test]
fn block_framed_payload_roundtrips_byte_identical_at_any_thread_count() {
    let seq = GenomeModel::highly_repetitive().generate(120_000, 7);
    let mut stored: Vec<Vec<u8>> = Vec::new();
    let mut dirs = Vec::new();
    for workers in [1usize, 4] {
        let (store, dir) = temp_store(&format!("rt-{workers}"));
        dirs.push(dir);
        let (service, server, addr) = start(
            ServiceConfig {
                workers,
                // Force the block-parallel path: framed container, one
                // block task per 16 Ki bases on the shared pool.
                block_size: Some(1 << 14),
                store: Some(Arc::clone(&store)),
                ..ServiceConfig::default()
            },
            NetConfig {
                store: Some(Arc::clone(&store)),
                ..quick_net()
            },
        );
        let mut client = NetClient::connect(addr, Duration::from_secs(30)).unwrap();

        // Streamed upload (chunks map onto frame blocks) …
        let resp = client
            .compress_streamed(
                "chr_t.fa",
                &seq,
                Priority::Normal,
                ctx_for(&seq),
                1 << 16,
            )
            .unwrap();
        let key = match resp {
            Response::CompressOk { blocks, key, .. } => {
                assert!(blocks >= 2, "block-parallel path must have framed the job");
                key.expect("service has a store, so the key is set")
            }
            other => panic!("expected CompressOk, got {other:?}"),
        };

        // … and the same content one-shot must land on the same
        // content key: the stored bytes are a pure function of the
        // sequence, independent of transport framing.
        match client
            .compress("chr_t_oneshot.fa", &seq, Priority::High, ctx_for(&seq))
            .unwrap()
        {
            Response::CompressOk { key: k2, .. } => assert_eq!(k2, Some(key)),
            other => panic!("expected CompressOk, got {other:?}"),
        }

        let bytes = client.get(key).unwrap();
        let blob = CompressedBlob::from_bytes(&bytes).unwrap();
        let back = compressor_for(blob.algorithm).decompress(&blob).unwrap();
        assert_eq!(back, seq, "decompressed sequence differs from the upload");
        stored.push(bytes);
        client.bye().unwrap();

        server.shutdown();
        let service = Arc::try_unwrap(service).map_err(|_| "handler clones alive").unwrap();
        service.shutdown();
    }
    assert_eq!(
        stored[0], stored[1],
        "stored container bytes must be identical at every thread count"
    );
    for dir in dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

// ---------------------------------------------------------------------------
// Chaos soak: concurrent clients at 0/5/25 % injected faults
// ---------------------------------------------------------------------------

#[test]
fn chaos_soak_survives_fault_injected_clients() {
    const CLIENTS: usize = 6;
    const OPS: usize = 12;
    for &rate in &[0.0f64, 0.05, 0.25] {
        let (service, server, addr) = start(
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            quick_net(),
        );
        let soak_started = Instant::now();
        let threads: Vec<_> = (0..CLIENTS)
            .map(|i| {
                std::thread::spawn(move || -> u64 {
                    let tcp = raw_connect(addr);
                    let faulty = FaultyStream::new(
                        tcp,
                        FaultPlan::network(1000 + i as u64, rate),
                        format!("chaos-{i}"),
                    );
                    let mut client = NetClient::over(faulty, Duration::from_secs(5));
                    if client.handshake().is_err() {
                        return 0; // injected fault during Hello: fine
                    }
                    let seq = GenomeModel::random_only(0.5).generate(1_500 + i * 173, i as u64);
                    let mut ok = 0u64;
                    for op in 0..OPS {
                        let outcome = match op % 3 {
                            0 => client.ping(),
                            1 => client.metrics_json().map(|_| ()),
                            _ => client
                                .compress(
                                    &format!("c{i}-{op}.fa"),
                                    &seq,
                                    Priority::ALL[op % 3],
                                    ctx_for(&seq),
                                )
                                .map(|_| ()),
                        };
                        match outcome {
                            Ok(()) => ok += 1,
                            // Typed server refusal (e.g. BadFrame after a
                            // corrupt write): still frame-synced, go on.
                            Err(ClientError::Server { .. }) => {}
                            // Transport died (injected drop / torn write /
                            // server kill): the connection is gone.
                            Err(_) => break,
                        }
                    }
                    ok
                })
            })
            .collect();
        let mut total_ok = 0u64;
        for t in threads {
            total_ok += t.join().expect("no chaos client may panic");
        }
        // Zero hangs: every op was deadline-bounded, so the whole soak
        // is too (client budget 5 s; the margin below is generous).
        assert!(
            soak_started.elapsed() < Duration::from_secs(60),
            "soak at rate {rate} took {:?}",
            soak_started.elapsed()
        );

        // Graceful degradation, not collapse: the server must still
        // serve a clean client after absorbing the chaos.
        let mut probe = NetClient::connect(addr, Duration::from_secs(30)).unwrap();
        probe.ping().unwrap();
        let seq = GenomeModel::random_only(0.5).generate(2_000, 99);
        match probe
            .compress("probe.fa", &seq, Priority::High, ctx_for(&seq))
            .unwrap()
        {
            Response::CompressOk { .. } => {}
            other => panic!("post-chaos probe got {other:?}"),
        }
        probe.bye().unwrap();

        assert!(
            wait_for(Duration::from_secs(10), || {
                service.metrics().connections_open() == 0
            }),
            "connections still open after the soak at rate {rate}"
        );
        server.shutdown();
        let snap = service.metrics().snapshot();
        // Every accepted connection is accounted: opens pair with closes.
        assert_eq!(snap.connections_open, 0, "rate {rate}");
        assert_eq!(snap.connections_accepted, CLIENTS as u64 + 1, "rate {rate}");
        assert_eq!(snap.connections_refused, 0, "rate {rate}");
        if rate == 0.0 {
            // A clean soak is exact: every op succeeded, every request
            // frame got exactly one reply frame, nobody was killed.
            assert_eq!(total_ok, (CLIENTS * OPS) as u64);
            assert_eq!(snap.protocol_errors, 0);
            assert_eq!(snap.connections_killed, 0);
            assert_eq!(snap.frames_rx, snap.frames_tx);
        }
        let service = Arc::try_unwrap(service).map_err(|_| "handler clones alive").unwrap();
        service.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Malformed-frame fuzzing: typed replies, strikes, kills
// ---------------------------------------------------------------------------

#[test]
fn malformed_frames_get_typed_replies_then_the_axe() {
    let (service, server, addr) = start(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        NetConfig {
            max_strikes: 2,
            ..quick_net()
        },
    );

    // (a) Not our protocol at all: HTTP garbage desyncs on the magic.
    // Best-effort typed refusal, then the axe.
    {
        let mut s = raw_connect(addr);
        s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        match read_reply(&mut s).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
            other => panic!("expected BadFrame error, got {other:?}"),
        }
        assert_conn_ended(read_reply(&mut s).unwrap_err());
    }

    // (b) Forged length: a header declaring cap+1 is refused from the
    // declaration alone (no allocation) with a typed TooLarge.
    {
        let mut s = raw_connect(addr);
        raw_hello(&mut s);
        let mut header = WIRE_MAGIC.to_vec();
        header.push(WIRE_VERSION);
        header.push(0x10);
        write_uvarint(&mut header, (MAX_WIRE_PAYLOAD + 1) as u64);
        s.write_all(&header).unwrap();
        match read_reply(&mut s).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::TooLarge),
            other => panic!("expected TooLarge error, got {other:?}"),
        }
        assert_conn_ended(read_reply(&mut s).unwrap_err());
    }

    // (c) Bit-flipped frames are frame-synced violations: each earns a
    // typed BadFrame reply and a strike; `max_strikes` ends it.
    {
        let mut s = raw_connect(addr);
        raw_hello(&mut s);
        for strike in 0..2 {
            let mut frame = request_frame(&Request::Ping);
            let last = frame.len() - 1;
            frame[last] ^= 0x01; // corrupt the checksum tail
            s.write_all(&frame).unwrap();
            match read_reply(&mut s).unwrap() {
                Response::Error { code, .. } => {
                    assert_eq!(code, ErrorCode::BadFrame, "strike {strike}")
                }
                other => panic!("expected BadFrame error, got {other:?}"),
            }
        }
        assert_conn_ended(read_reply(&mut s).unwrap_err());
    }

    // (d) Protocol order is enforced but survivable: a pre-Hello Ping
    // is a typed Handshake error + strike, and the connection lives to
    // handshake properly afterwards.
    {
        let mut s = raw_connect(addr);
        let frame = request_frame(&Request::Ping);
        write_frame(&mut s, &frame, Deadline::after(Duration::from_secs(2))).unwrap();
        match read_reply(&mut s).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Handshake),
            other => panic!("expected Handshake error, got {other:?}"),
        }
        raw_hello(&mut s);
        let ping = request_frame(&Request::Ping);
        write_frame(&mut s, &ping, Deadline::after(Duration::from_secs(2))).unwrap();
        assert!(matches!(read_reply(&mut s).unwrap(), Response::Pong));
        let bye = request_frame(&Request::Bye);
        write_frame(&mut s, &bye, Deadline::after(Duration::from_secs(2))).unwrap();
        assert!(matches!(read_reply(&mut s).unwrap(), Response::ByeOk));
    }

    // (e) Slow loris: a frame that starts but never finishes costs one
    // frame budget (400 ms here), not a thread forever.
    {
        let mut s = raw_connect(addr);
        raw_hello(&mut s);
        let started = Instant::now();
        s.write_all(&WIRE_MAGIC[..1]).unwrap(); // frame begins …
        std::thread::sleep(Duration::from_millis(150));
        s.write_all(&WIRE_MAGIC[1..]).unwrap(); // … and trickles
        match read_reply(&mut s).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
            other => panic!("expected BadFrame error, got {other:?}"),
        }
        assert_conn_ended(read_reply(&mut s).unwrap_err());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "loris survived {:?}",
            started.elapsed()
        );
    }

    // (f) Mid-frame disconnect: half a frame then FIN is a desync kill
    // (no panic, no hang, books balanced below).
    {
        let mut s = raw_connect(addr);
        raw_hello(&mut s);
        let frame = request_frame(&Request::Metrics);
        s.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(s);
    }

    assert!(
        wait_for(Duration::from_secs(10), || {
            service.metrics().connections_open() == 0
        }),
        "a fuzzed connection never closed"
    );
    server.shutdown();
    let snap = service.metrics().snapshot();
    assert_eq!(snap.connections_open, 0);
    assert_eq!(snap.connections_accepted, 6);
    // Killed: (a) bad magic, (b) forged length, (c) strike budget,
    // (e) mid-frame timeout, (f) truncation. Survived cleanly: (d).
    assert_eq!(snap.connections_killed, 5);
    // Violations: a=1, b=1, c=2, d=1, e=1, f=1.
    assert_eq!(snap.protocol_errors, 7);
    let service = Arc::try_unwrap(service).map_err(|_| "handler clones alive").unwrap();
    service.shutdown();
}

// ---------------------------------------------------------------------------
// Connection cap, idle timeout, shutdown drain
// ---------------------------------------------------------------------------

#[test]
fn connection_cap_refuses_with_typed_server_busy() {
    let (service, server, addr) = start(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        NetConfig {
            max_connections: 1,
            ..quick_net()
        },
    );

    let mut first = NetClient::connect(addr, Duration::from_secs(10)).unwrap();
    first.ping().unwrap(); // round-trip ⇒ the slot is definitely taken

    // Second connection: accepted at the TCP level, refused at the
    // protocol level with a typed reason — never a silent close.
    let mut second = raw_connect(addr);
    match read_reply(&mut second).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::ServerBusy),
        other => panic!("expected ServerBusy, got {other:?}"),
    }
    assert_conn_ended(read_reply(&mut second).unwrap_err());
    assert_eq!(service.metrics().snapshot().connections_refused, 1);

    // Freeing the slot re-opens the door.
    first.bye().unwrap();
    assert!(wait_for(Duration::from_secs(5), || {
        service.metrics().connections_open() == 0
    }));
    let mut third = NetClient::connect(addr, Duration::from_secs(10)).unwrap();
    third.ping().unwrap();
    third.bye().unwrap();

    assert!(wait_for(Duration::from_secs(5), || {
        service.metrics().connections_open() == 0
    }));
    server.shutdown();
    let snap = service.metrics().snapshot();
    assert_eq!(snap.connections_accepted, 2);
    assert_eq!(snap.connections_refused, 1);
    assert_eq!(snap.connections_killed, 0);
    // The refusal is the one reply frame without a request frame.
    assert_eq!(snap.frames_tx, snap.frames_rx + 1);
    let service = Arc::try_unwrap(service).map_err(|_| "handler clones alive").unwrap();
    service.shutdown();
}

#[test]
fn idle_timeout_closes_cleanly_without_a_kill() {
    let (service, server, addr) = start(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        NetConfig {
            idle_timeout: Duration::from_millis(200),
            ..quick_net()
        },
    );
    let mut s = raw_connect(addr);
    raw_hello(&mut s);
    // Say nothing past the idle budget: the server hangs up …
    assert_conn_ended(read_reply(&mut s).unwrap_err());
    // … and books it as a clean close, not a kill.
    assert!(wait_for(Duration::from_secs(5), || {
        service.metrics().connections_open() == 0
    }));
    server.shutdown();
    let snap = service.metrics().snapshot();
    assert_eq!(snap.connections_accepted, 1);
    assert_eq!(snap.connections_killed, 0);
    assert_eq!(snap.protocol_errors, 0);
    let service = Arc::try_unwrap(service).map_err(|_| "handler clones alive").unwrap();
    service.shutdown();
}

#[test]
fn shutdown_drains_connections_and_stops_accepting() {
    let (service, server, addr) = start(
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        quick_net(),
    );
    let mut a = NetClient::connect(addr, Duration::from_secs(10)).unwrap();
    let mut b = NetClient::connect(addr, Duration::from_secs(10)).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();

    // Drain is bounded: handlers notice the stop flag at their next
    // frame boundary, not when the clients deign to hang up.
    let t0 = Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown took {:?}",
        t0.elapsed()
    );
    assert_eq!(service.metrics().snapshot().connections_open, 0);

    // The listener is gone: new connections fail outright.
    assert!(NetClient::connect(addr, Duration::from_secs(1)).is_err());
    // Existing clients observe a clean close, not a hang.
    assert!(a.ping().is_err());

    let service = Arc::try_unwrap(service).map_err(|_| "handler clones alive").unwrap();
    service.shutdown();
}
