//! Integration tests for the shard router: transparent forwarding
//! (byte-identical gets via the router vs direct), epoch-checked
//! handshakes, over-the-wire rebalance after membership changes
//! (cursor-resumable), read-repair, and the 3-shard chaos soaks with
//! mid-run shard kills.
//!
//! The acceptance bar: with fault-injected clients AND one shard
//! killed and restarted mid-soak, every request gets exactly one typed
//! reply (or a clean transport break — never a hang), no acknowledged
//! compress is ever lost (every acked key stays readable through the
//! router), the prober ejects and re-admits the dead shard, and at
//! fault rate zero the accounting is exact. Under replication the bar
//! rises: with one shard killed and LEFT DOWN, every quorum-acked Put
//! stays readable byte-identical, and after revival hinted handoff
//! plus anti-entropy converge the shard back to zero digest drift with
//! exact counter accounting.

use dnacomp_algos::{compressor_for, Algorithm, CompressedBlob};
use dnacomp_cloud::FaultPlan;
use dnacomp_core::{Context, Deadline};
use dnacomp_seq::gen::GenomeModel;
use dnacomp_seq::PackedSeq;
use dnacomp_server::{
    rebalance_resumable, synthetic_framework, ClientError, CompressionService, ErrorCode,
    FaultyStream, NetClient, NetConfig, NetServer, Priority, RebalanceCursor, Response, Ring,
    RouterConfig, RouterServer, ServiceConfig, ShardSpec, IO_TICK,
};
use dnacomp_store::{ContentKey, SequenceStore, StoreConfig};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One running shard: its service, front-end, store and ring spec.
struct Shard {
    service: Arc<CompressionService>,
    server: Option<NetServer>,
    store: Arc<SequenceStore>,
    spec: ShardSpec,
    dir: std::path::PathBuf,
}

impl Shard {
    /// Start shard `id` on an ephemeral loopback port with its own
    /// store, all shards sharing the deterministic framework.
    fn start(id: u32, tag: &str) -> Shard {
        let dir = std::env::temp_dir().join(format!(
            "dnacomp-route-{tag}-s{id}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(SequenceStore::open(&dir, StoreConfig::default()).expect("open"));
        let service = Arc::new(CompressionService::start(
            synthetic_framework(42),
            ServiceConfig {
                workers: 2,
                store: Some(Arc::clone(&store)),
                ..ServiceConfig::default()
            },
        ));
        let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", net_for(&store))
            .expect("bind shard");
        let spec = ShardSpec {
            id,
            addr: server.local_addr().to_string(),
        };
        Shard {
            service,
            server: Some(server),
            store,
            spec,
            dir,
        }
    }

    /// Kill the TCP front-end (the service and store survive, like a
    /// crashed-and-supervised process).
    fn kill(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }

    /// Restart the front-end on the same address.
    fn restart(&mut self) {
        assert!(self.server.is_none(), "restart of a live shard");
        let server = NetServer::start(
            Arc::clone(&self.service),
            self.spec.addr.as_str(),
            net_for(&self.store),
        )
        .expect("rebind shard on its old address");
        assert_eq!(server.local_addr().to_string(), self.spec.addr);
        self.server = Some(server);
    }

    fn teardown(mut self) {
        self.kill();
        let service = Arc::try_unwrap(self.service)
            .map_err(|_| "handler clones alive")
            .unwrap();
        service.shutdown();
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Shard-side net config: test-tight budgets, store wired in.
fn net_for(store: &Arc<SequenceStore>) -> NetConfig {
    NetConfig {
        store: Some(Arc::clone(store)),
        idle_timeout: Duration::from_secs(5),
        frame_timeout: Duration::from_millis(500),
        ..NetConfig::default()
    }
}

/// Test-grade router config: fast probes so ejection happens within a
/// soak, modest pools so the budget is exercised.
fn quick_router() -> RouterConfig {
    RouterConfig {
        pool_per_shard: 2,
        shard_timeout: Duration::from_secs(5),
        probe_interval: Duration::from_millis(50),
        probe_timeout: Duration::from_millis(500),
        probe_strikes: 2,
        ..RouterConfig::default()
    }
}

fn start_cluster(n: u32, tag: &str) -> (Vec<Shard>, RouterServer) {
    let shards: Vec<Shard> = (1..=n).map(|id| Shard::start(id, tag)).collect();
    let ring = Ring::new(shards.iter().map(|s| s.spec.clone()).collect(), 64, 7).unwrap();
    let router = RouterServer::start("127.0.0.1:0", ring, quick_router()).expect("bind router");
    (shards, router)
}

fn ctx_for(seq: &PackedSeq) -> Context {
    Context {
        ram_mb: 2048,
        cpu_mhz: 2393,
        bandwidth_mbps: 2.0,
        file_bytes: seq.len() as u64,
    }
}

/// Connected, plain-handshaken client.
fn connect(addr: SocketAddr) -> NetClient<TcpStream> {
    NetClient::connect(addr, Duration::from_secs(10)).expect("connect")
}

/// Connected client with NO handshake yet, for epoch-handshake tests.
fn raw_client(addr: SocketAddr) -> NetClient<TcpStream> {
    let tcp = TcpStream::connect(addr).expect("connect");
    tcp.set_read_timeout(Some(IO_TICK)).unwrap();
    tcp.set_write_timeout(Some(IO_TICK)).unwrap();
    tcp.set_nodelay(true).unwrap();
    NetClient::over(tcp, Duration::from_secs(5))
}

// ---------------------------------------------------------------------------
// Transparent forwarding: the router is invisible to a correct client
// ---------------------------------------------------------------------------

#[test]
fn gets_via_router_are_byte_identical_to_direct_shard_gets() {
    let (shards, router) = start_cluster(3, "ident");
    let ring = Ring::new(shards.iter().map(|s| s.spec.clone()).collect(), 64, 7).unwrap();

    let mut client = connect(router.local_addr());

    // Compress a batch through the router; remember every acked key.
    let mut acked: Vec<([u8; 16], PackedSeq)> = Vec::new();
    for i in 0..12usize {
        let seq = GenomeModel::random_only(0.5).generate(1_200 + i * 311, i as u64);
        match client
            .compress(&format!("ident-{i}.fa"), &seq, Priority::Normal, ctx_for(&seq))
            .expect("compress via router")
        {
            Response::CompressOk { key: Some(key), .. } => acked.push((key, seq)),
            other => panic!("expected stored CompressOk, got {other:?}"),
        }
    }

    // Every key: the router's get must be byte-identical to a direct
    // get from the owning shard, and must decompress to the original.
    for (key, seq) in &acked {
        let via_router = client.get(*key).expect("get via router");
        let owner = ring.shard_for(key);
        let mut direct = connect(owner.addr.parse().unwrap());
        let via_shard = direct.get(*key).expect("get direct");
        direct.bye().unwrap();
        assert_eq!(via_router, via_shard, "router altered bytes for {key:02x?}");
        let blob = CompressedBlob::from_bytes(&via_router).expect("served blob parses");
        let back = compressor_for(blob.algorithm)
            .decompress(&blob)
            .expect("decompress");
        assert_eq!(&back, seq, "round-trip mismatch for {key:02x?}");
    }

    // The keys really are spread: with 12 keys over 3 shards, at least
    // two shards hold something.
    let populated = shards.iter().filter(|s| !s.store.keys().is_empty()).count();
    assert!(populated >= 2, "all keys landed on one shard");

    // Cluster stat aggregates the shard stores field-wise.
    let stat = client.stat(None).expect("cluster stat");
    let total: u64 = shards.iter().map(|s| s.store.keys().len() as u64).sum();
    assert!(
        stat.contains(&format!("\"records\":{total}")),
        "aggregated stat {stat} does not report {total} records"
    );
    assert!(stat.contains("\"shards_reporting\":3"), "stat {stat}");

    client.bye().unwrap();
    let snap = router.shutdown();
    assert_eq!(snap.protocol_errors, 0);
    assert_eq!(snap.shard_ejections, 0);
    assert!(snap.route_forwards >= 24, "forwards {}", snap.route_forwards);
    assert_eq!(snap.frames_rx, snap.frames_tx);
    for s in shards {
        s.teardown();
    }
}

// ---------------------------------------------------------------------------
// Epoch discipline: stale ring maps are refused at handshake
// ---------------------------------------------------------------------------

#[test]
fn stale_epochs_and_wrong_shard_ids_are_refused_at_handshake() {
    let (shards, router) = start_cluster(2, "epoch");
    let epoch = router.epoch();

    // The ring's true epoch handshakes fine (shard 0 = "a router").
    let mut ok = raw_client(router.local_addr());
    ok.handshake_epoch(epoch, 0).expect("current epoch accepted");
    ok.ping().expect("epoch-handshaken connection serves");
    ok.bye().unwrap();

    // A stale epoch is refused with the typed wrong-shard code.
    let mut stale = raw_client(router.local_addr());
    match stale.handshake_epoch(epoch ^ 0xDEAD_BEEF, 0) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::WrongShard),
        other => panic!("stale epoch not refused: {other:?}"),
    }

    // Addressing the router as if it were a numbered shard is refused.
    let mut misaddressed = raw_client(router.local_addr());
    match misaddressed.handshake_epoch(epoch, 7) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::WrongShard),
        other => panic!("lying shard id not refused: {other:?}"),
    }

    // A shard pinned to an epoch refuses any other epoch the same way.
    let pinned_dir = std::env::temp_dir().join(format!(
        "dnacomp-route-pinned-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&pinned_dir);
    let pinned_store =
        Arc::new(SequenceStore::open(&pinned_dir, StoreConfig::default()).unwrap());
    let pinned_service = Arc::new(CompressionService::start(
        synthetic_framework(42),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    ));
    let pinned = NetServer::start(
        Arc::clone(&pinned_service),
        "127.0.0.1:0",
        NetConfig {
            epoch: Some(epoch),
            shard_id: 9,
            store: Some(pinned_store),
            ..NetConfig::default()
        },
    )
    .expect("bind pinned shard");
    let mut good = raw_client(pinned.local_addr());
    good.handshake_epoch(epoch, 9)
        .expect("matching epoch + id accepted");
    good.bye().unwrap();
    let mut bad = raw_client(pinned.local_addr());
    match bad.handshake_epoch(epoch + 1, 9) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::WrongShard),
        other => panic!("pinned shard accepted a stale epoch: {other:?}"),
    }
    pinned.shutdown();
    Arc::try_unwrap(pinned_service)
        .map_err(|_| "clones alive")
        .unwrap()
        .shutdown();
    let _ = std::fs::remove_dir_all(&pinned_dir);

    router.shutdown();
    for s in shards {
        s.teardown();
    }
}

// ---------------------------------------------------------------------------
// Rebalance: every key ends on its ring owner, byte-identical, none lost
// ---------------------------------------------------------------------------

#[test]
fn rebalance_moves_every_key_to_its_ring_owner_byte_identical() {
    let shards: Vec<Shard> = (1..=3).map(|id| Shard::start(id, "rebal")).collect();
    let ring = Ring::new(shards.iter().map(|s| s.spec.clone()).collect(), 64, 7).unwrap();

    // Seed records deliberately ignoring ownership: everything lands on
    // shard 0's store, as if the cluster grew from one node.
    let mut originals = Vec::new();
    for i in 0..16usize {
        let seq = GenomeModel::random_only(0.5).generate(900 + i * 211, 77 + i as u64);
        let blob = compressor_for(Algorithm::Gzip).compress(&seq).unwrap();
        let key = ContentKey::of_sequence(&seq);
        shards[0].store.put_with_key(key, &blob).unwrap();
        originals.push((key, blob.to_bytes()));
    }

    let report = dnacomp_server::rebalance(&ring, 1, Duration::from_secs(10), 5).unwrap();
    let misplaced = originals
        .iter()
        .filter(|(k, _)| ring.slot_for(&k.0) != 0)
        .count() as u64;
    assert!(misplaced > 0, "degenerate ring: nothing to move");
    assert_eq!(report.moved + report.deduped, misplaced);
    assert_eq!(report.removed, misplaced);
    assert!(report.bytes > 0);
    // The sweep visits shards in order, so records migrated to a
    // later-visited shard are enumerated twice: once misplaced, once
    // already home.
    assert_eq!(report.scanned, 16 + misplaced);

    // Every record is on exactly its owner, byte-identical; none lost.
    for (key, bytes) in &originals {
        let owner = ring.slot_for(&key.0);
        for (slot, shard) in shards.iter().enumerate() {
            let held = shard.store.get(key);
            if slot == owner {
                assert_eq!(
                    held.expect("owner holds the record").to_bytes(),
                    *bytes,
                    "rebalance altered bytes for {key:?}"
                );
            } else {
                assert!(held.is_err(), "stale copy of {key:?} on slot {slot}");
            }
        }
    }

    // A second sweep is a no-op: the cluster converged.
    let again = dnacomp_server::rebalance(&ring, 1, Duration::from_secs(10), 5).unwrap();
    assert_eq!(again.moved, 0);
    assert_eq!(again.removed, 0);
    assert_eq!(again.scanned, 16);

    for s in shards {
        s.teardown();
    }
}

// ---------------------------------------------------------------------------
// Resumable rebalance: a persisted cursor skips finished work exactly
// ---------------------------------------------------------------------------

fn hex(key: &[u8; 16]) -> String {
    key.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn rebalance_resumes_from_a_persisted_cursor_with_exact_accounting() {
    let shards: Vec<Shard> = (1..=3).map(|id| Shard::start(id, "cursor")).collect();
    let ring = Ring::new(shards.iter().map(|s| s.spec.clone()).collect(), 64, 7).unwrap();
    let cursor_path = std::env::temp_dir().join(format!(
        "dnacomp-route-cursor-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&cursor_path);

    // Everything lands on shard 0, as if the cluster grew from one node.
    for i in 0..16usize {
        let seq = GenomeModel::random_only(0.5).generate(900 + i * 211, 177 + i as u64);
        let blob = compressor_for(Algorithm::Gzip).compress(&seq).unwrap();
        shards[0]
            .store
            .put_with_key(ContentKey::of_sequence(&seq), &blob)
            .unwrap();
    }
    let mut keys0: Vec<[u8; 16]> = shards[0].store.keys().iter().map(|k| k.0).collect();
    keys0.sort_unstable();
    let cut = keys0[7];

    // A crash left a cursor saying: slot 0 is done through `cut`.
    let cursor = RebalanceCursor {
        epoch: ring.epoch(),
        next_slot: 0,
        last_key: Some(hex(&cut)),
    };
    std::fs::write(&cursor_path, serde_json::to_string(&cursor).unwrap()).unwrap();

    let resumed =
        rebalance_resumable(&ring, 1, Duration::from_secs(10), 5, Some(&cursor_path)).unwrap();
    // Exactly the 8 keys at or before the cursor were skipped; the 8
    // processed ones are scanned once on slot 0 plus once more on any
    // destination slot they were shipped to.
    assert_eq!(resumed.skipped, 8);
    assert_eq!(resumed.scanned, 8 + resumed.moved + resumed.deduped);
    assert!(
        !cursor_path.exists(),
        "cursor must be removed on completion"
    );
    // The skipped misplaced keys were really left alone.
    let left_behind: Vec<[u8; 16]> = keys0[..8]
        .iter()
        .copied()
        .filter(|k| ring.slot_for(k) != 0)
        .collect();
    assert!(!left_behind.is_empty(), "degenerate ring: nothing skipped was misplaced");
    for key in &left_behind {
        shards[0]
            .store
            .get(&ContentKey(*key))
            .expect("cursor-skipped key must still be on the source shard");
    }

    // A cursor from another epoch is ignored: the full sweep runs and
    // converges the stragglers.
    let stale = RebalanceCursor {
        epoch: ring.epoch() ^ 0xBAD,
        next_slot: ring.shards().len(),
        last_key: None,
    };
    std::fs::write(&cursor_path, serde_json::to_string(&stale).unwrap()).unwrap();
    let full =
        rebalance_resumable(&ring, 1, Duration::from_secs(10), 5, Some(&cursor_path)).unwrap();
    assert_eq!(full.skipped, 0, "stale-epoch cursor must be ignored");
    assert_eq!(full.moved + full.deduped, left_behind.len() as u64);
    assert!(!cursor_path.exists());

    // Converged: every key sits on exactly its owner.
    for key in &keys0 {
        let owner = ring.slot_for(key);
        for (slot, shard) in shards.iter().enumerate() {
            let held = shard.store.get(&ContentKey(*key));
            if slot == owner {
                held.expect("owner holds the record");
            } else {
                assert!(held.is_err(), "stale copy of {key:02x?} on slot {slot}");
            }
        }
    }

    for s in shards {
        s.teardown();
    }
}

// ---------------------------------------------------------------------------
// Read-repair: a divergent replica is healed by the next read through it
// ---------------------------------------------------------------------------

#[test]
fn read_repair_restores_a_divergent_replica() {
    let (shards, router) = start_cluster(3, "readrep");
    let ring = Ring::new(shards.iter().map(|s| s.spec.clone()).collect(), 64, 7).unwrap();

    let mut client = connect(router.local_addr());
    let seq = GenomeModel::random_only(0.5).generate(2_048, 99);
    let key = match client
        .compress("readrep.fa", &seq, Priority::Normal, ctx_for(&seq))
        .expect("compress via router")
    {
        Response::CompressOk { key: Some(key), .. } => key,
        other => panic!("expected stored CompressOk, got {other:?}"),
    };

    // R = 3 over 3 shards: every store holds the record.
    for shard in &shards {
        shard.store.get(&ContentKey(key)).expect("replica holds the record");
    }

    // Diverge the owner (bit-rot, botched restore, …): drop its copy.
    let owner = ring.replica_slots(&key, 3)[0];
    assert!(shards[owner].store.remove(&ContentKey(key)).unwrap());

    // A read through the router falls through to the next replica and
    // synchronously repairs the stale one before replying.
    let bytes = client.get(key).expect("get via router with a divergent owner");
    let blob = CompressedBlob::from_bytes(&bytes).expect("served blob parses");
    let back = compressor_for(blob.algorithm).decompress(&blob).expect("decompress");
    assert_eq!(back, seq, "read-repair path altered bytes");
    assert_eq!(
        shards[owner]
            .store
            .get(&ContentKey(key))
            .expect("owner re-converged by read-repair")
            .to_bytes(),
        bytes,
        "repaired copy differs from the served one"
    );

    client.bye().unwrap();
    let snap = router.shutdown();
    assert_eq!(snap.read_repairs, 1, "exactly one read-repair must be recorded");
    assert_eq!(snap.quorum_failures, 0);
    for s in shards {
        s.teardown();
    }
}

// ---------------------------------------------------------------------------
// The replicated chaos soak: one shard killed and LEFT DOWN — every
// quorum-acked Put stays readable; hint drain + anti-entropy converge
// the revived shard with exact counter accounting
// ---------------------------------------------------------------------------

#[test]
fn quorum_acked_puts_survive_one_shard_down_and_self_heal() {
    const CLIENTS: usize = 4;
    const OPS: usize = 16;
    let hint_dir = std::env::temp_dir().join(format!(
        "dnacomp-route-heal-hints-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&hint_dir);

    let mut shards: Vec<Shard> = (1..=3).map(|id| Shard::start(id, "heal")).collect();
    let ring = Ring::new(shards.iter().map(|s| s.spec.clone()).collect(), 64, 7).unwrap();
    let router = RouterServer::start(
        "127.0.0.1:0",
        ring.clone(),
        RouterConfig {
            hint_dir: Some(hint_dir.clone()),
            hint_cap: 256,
            ..quick_router() // replicas 3, write quorum 2 (the defaults)
        },
    )
    .expect("bind router");
    let addr = router.local_addr();

    // Writers: every op MUST be acked — with W=2 and two shards always
    // healthy, a dead third replica never blocks the quorum.
    let acked: Arc<Mutex<Vec<([u8; 16], PackedSeq)>>> = Arc::new(Mutex::new(Vec::new()));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                let mut client = connect(addr);
                for op in 0..OPS {
                    let seq = GenomeModel::random_only(0.5)
                        .generate(700 + i * 89 + op * 127, (i * OPS + op) as u64);
                    match client.compress(
                        &format!("heal-{i}-{op}.fa"),
                        &seq,
                        Priority::Normal,
                        ctx_for(&seq),
                    ) {
                        Ok(Response::CompressOk { key: Some(key), .. }) => {
                            acked.lock().unwrap().push((key, seq));
                        }
                        other => panic!(
                            "writer {i} op {op}: quorum write must ack, got {other:?}"
                        ),
                    }
                    std::thread::sleep(Duration::from_millis(8));
                }
                client.bye().unwrap();
            })
        })
        .collect();

    // Mid-soak: kill one shard and LEAVE IT DOWN.
    std::thread::sleep(Duration::from_millis(100));
    let victim = 1usize;
    shards[victim].kill();

    for t in threads {
        t.join().expect("no writer may panic");
    }
    let acked = Arc::try_unwrap(acked).unwrap().into_inner().unwrap();
    assert_eq!(acked.len(), CLIENTS * OPS, "every write must be quorum-acked");

    // Wait for the prober to eject the dead shard, then read back with
    // the shard still down: 100% of acked keys, byte-exact round-trip.
    let deadline = Deadline::after(Duration::from_secs(10));
    while router.metrics_snapshot().shards.iter().all(|s| s.healthy) {
        assert!(!deadline.expired(), "dead shard never ejected");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut reader = connect(addr);
    for (key, seq) in &acked {
        let bytes = reader
            .get(*key)
            .unwrap_or_else(|e| panic!("acked key {key:02x?} unreadable with shard down: {e}"));
        let blob = CompressedBlob::from_bytes(&bytes).expect("acked blob parses");
        let back = compressor_for(blob.algorithm).decompress(&blob).expect("decompress");
        assert_eq!(&back, seq, "round-trip mismatch for {key:02x?} with shard down");
    }
    reader.bye().unwrap();

    // Hint accounting while the shard is still down: whatever was
    // queued is still pending — nothing drained, nothing dropped.
    let mid = router.metrics_snapshot();
    assert_eq!(mid.quorum_failures, 0, "a quorum ack may never lie");
    assert!(mid.hints_queued > 0, "misses on the dead replica must be hinted");
    assert_eq!(mid.hints_drained, 0);
    assert_eq!(mid.hints_dropped, 0);
    assert_eq!(mid.hints_pending, mid.hints_queued);
    assert!(
        mid.replica_writes >= 2 * acked.len() as u64
            && mid.replica_writes <= 3 * acked.len() as u64,
        "replica commits {} out of range for {} acked writes",
        mid.replica_writes,
        acked.len()
    );

    // Revive the shard: the prober re-admits it and drains every hint.
    shards[victim].restart();
    let deadline = Deadline::after(Duration::from_secs(15));
    loop {
        let snap = router.metrics_snapshot();
        if snap.shards.iter().all(|s| s.healthy) && snap.hints_pending == 0 {
            assert_eq!(snap.hints_drained, snap.hints_queued, "exact hint accounting");
            assert_eq!(snap.hints_dropped, 0);
            break;
        }
        assert!(
            !deadline.expired(),
            "hints never drained: {} pending of {} queued",
            snap.hints_pending,
            snap.hints_queued
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The revived shard converged: it holds every acked key.
    for (key, _) in &acked {
        shards[victim]
            .store
            .get(&ContentKey(*key))
            .expect("hint drain must converge the revived shard");
    }

    // Now lose part of its disk and let anti-entropy re-converge it:
    // only the differing digest buckets are expanded and shipped.
    let lost: Vec<[u8; 16]> = acked.iter().take(5).map(|(k, _)| *k).collect();
    for key in &lost {
        assert!(shards[victim].store.remove(&ContentKey(*key)).unwrap());
    }
    let first = router.repair(Duration::from_secs(10), 64).expect("repair sweep");
    assert!(first.buckets_differing >= 1);
    assert_eq!(first.buckets_shipped, first.buckets_differing);
    assert_eq!(first.keys_shipped, lost.len() as u64);
    assert_eq!(first.deduped, 0);
    for key in &lost {
        shards[victim]
            .store
            .get(&ContentKey(*key))
            .expect("repair must restore the lost record");
    }
    // Convergence proof: a second sweep finds zero differing buckets.
    let second = router.repair(Duration::from_secs(10), 64).expect("second repair sweep");
    assert_eq!(second.buckets_differing, 0, "cluster must converge to zero drift");
    assert_eq!(second.keys_shipped, 0);

    let snap = router.shutdown();
    assert_eq!(
        snap.repair_buckets_shipped,
        first.buckets_shipped + second.buckets_shipped,
        "repair metric must match the reports exactly"
    );
    assert_eq!(snap.quorum_failures, 0);
    assert!(snap.shard_ejections >= 1);
    assert!(snap.shard_readmissions >= 1);

    let _ = std::fs::remove_dir_all(&hint_dir);
    for s in shards {
        s.teardown();
    }
}

// ---------------------------------------------------------------------------
// The 3-shard chaos soak: shard kill + restart mid-run, no acked Put lost
// ---------------------------------------------------------------------------

#[test]
fn chaos_soak_with_shard_kill_loses_no_acked_puts() {
    const CLIENTS: usize = 6;
    const OPS: usize = 18;
    for &rate in &[0.0f64, 0.15] {
        let (mut shards, router) = start_cluster(3, "soak");
        let addr = router.local_addr();

        // The victim shard is chosen deterministically from the fault
        // plan's shard-kill schedule, like every other fault draw.
        let kill_plan = FaultPlan {
            shard_kill_rate: 0.5,
            ..FaultPlan::none()
        };
        let victim = (0u64..)
            .find_map(|w| (1..=3u32).find(|&s| kill_plan.shard_killed(s, w)))
            .unwrap() as usize
            - 1;

        let acked: Arc<Mutex<Vec<[u8; 16]>>> = Arc::new(Mutex::new(Vec::new()));
        let soak_started = Instant::now();
        let threads: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let acked = Arc::clone(&acked);
                std::thread::spawn(move || -> (u64, u64) {
                    let tcp = TcpStream::connect(addr).expect("connect router");
                    tcp.set_read_timeout(Some(IO_TICK)).unwrap();
                    tcp.set_write_timeout(Some(IO_TICK)).unwrap();
                    tcp.set_nodelay(true).unwrap();
                    let faulty = FaultyStream::new(
                        tcp,
                        FaultPlan::network(2000 + i as u64, rate),
                        format!("route-chaos-{i}"),
                    );
                    let mut client = NetClient::over(faulty, Duration::from_secs(10));
                    if client.handshake().is_err() {
                        return (0, 0);
                    }
                    let mut ok = 0u64;
                    let mut typed = 0u64;
                    for op in 0..OPS {
                        let seq = GenomeModel::random_only(0.5)
                            .generate(800 + i * 97 + op * 131, (i * OPS + op) as u64);
                        match client.compress(
                            &format!("soak-{i}-{op}.fa"),
                            &seq,
                            Priority::ALL[op % 3],
                            ctx_for(&seq),
                        ) {
                            Ok(Response::CompressOk { key: Some(key), .. }) => {
                                ok += 1;
                                acked.lock().unwrap().push(key);
                            }
                            Ok(Response::CompressOk { .. }) => ok += 1,
                            // One typed reply — shard down, shed, …:
                            // frame-synced, keep going.
                            Ok(Response::Error { .. })
                            | Err(ClientError::Server { .. }) => typed += 1,
                            Ok(other) => panic!("unexpected reply {other:?}"),
                            // Transport died (injected fault): clean break.
                            Err(_) => break,
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    (ok, typed)
                })
            })
            .collect();

        // Mid-soak: kill the victim's front-end, leave it down long
        // enough for strike-based ejection, then restart it.
        std::thread::sleep(Duration::from_millis(120));
        shards[victim].kill();
        std::thread::sleep(Duration::from_millis(400));
        shards[victim].restart();

        let mut ok_total = 0u64;
        let mut typed_total = 0u64;
        for t in threads {
            let (ok, typed) = t.join().expect("no chaos client may panic");
            ok_total += ok;
            typed_total += typed;
        }
        assert!(
            soak_started.elapsed() < Duration::from_secs(120),
            "soak at rate {rate} took {:?}",
            soak_started.elapsed()
        );

        // Wait for the prober to re-admit the restarted shard, so the
        // final read-back runs against a fully healthy cluster.
        let deadline = Deadline::after(Duration::from_secs(10));
        while router
            .metrics_snapshot()
            .shards
            .iter()
            .any(|s| !s.healthy)
        {
            assert!(!deadline.expired(), "victim shard never re-admitted");
            std::thread::sleep(Duration::from_millis(20));
        }

        // No acked Put lost: every key acknowledged during the soak —
        // including those stored on the successor while the victim was
        // down — must be readable through the router.
        let keys = acked.lock().unwrap().clone();
        let mut reader = connect(addr);
        for key in &keys {
            let bytes = reader
                .get(*key)
                .unwrap_or_else(|e| panic!("acked key {key:02x?} lost at rate {rate}: {e}"));
            CompressedBlob::from_bytes(&bytes).expect("acked blob parses");
        }
        reader.bye().unwrap();

        let snap = router.shutdown();
        assert!(
            snap.shard_ejections >= 1,
            "rate {rate}: the killed shard was never ejected"
        );
        assert!(
            snap.shard_readmissions >= 1,
            "rate {rate}: the restarted shard was never re-admitted"
        );
        if rate == 0.0 {
            // Exact accounting: every op got exactly one typed reply
            // (transport to the router itself is fault-free, and a dead
            // shard yields typed errors, not hangs or silent drops).
            assert_eq!(
                ok_total + typed_total,
                (CLIENTS * OPS) as u64,
                "accounting hole at rate 0"
            );
            assert_eq!(snap.protocol_errors, 0);
        }
        assert!(!keys.is_empty(), "soak acked nothing at rate {rate}");

        for s in shards {
            s.teardown();
        }
    }
}
