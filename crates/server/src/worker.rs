//! The worker pool: per-thread simulator + breaker, shared everything
//! else.
//!
//! Each worker owns what must be mutable — a [`CloudSim`] (its own blob
//! store, so staged uploads never interleave across jobs) and a
//! [`CircuitBreaker`] for the degradation ladder — and shares what is
//! read-only or concurrent-safe: the [`FrameworkHandle`] rule snapshot,
//! the LRU decision cache, the metrics registry, and the supervision
//! state (its [`WorkerSlot`], the quarantine registry and the DLQ).
//!
//! ## Panic containment
//!
//! Job execution runs inside [`dnacomp_core::contain_panic`]: a panic
//! anywhere in the decide/compress/exchange/persist path fails **that
//! job** with [`JobError::Panicked`] and the worker keeps serving. Each
//! contained panic counts a quarantine strike against the job's content
//! fingerprint; crossing the threshold writes a dead letter and future
//! submissions of the same content are refused up front. Only a panic
//! *outside* the contained region (or an injected hard kill) takes the
//! thread down — that is the supervisor's department.
//!
//! Determinism: fault injection keys on `(algorithm, file, block,
//! attempt)`, never on the worker id or wall clock, so a job's outcome
//! is identical no matter which worker runs it or in what order — the
//! property the stress suite's "deterministic totals" assertion pins
//! down (with [`ServiceConfig::breaker_threshold`] set high enough that
//! ladder skipping cannot depend on a worker's job history). The panic
//! and kill faults key on the *file only*, making poisonous jobs
//! deterministically poisonous — the precondition for repeat-offender
//! quarantine to make sense.

use crate::cache::ContextKey;
use crate::dlq::{DeadLetter, DeadLetterQueue, QuarantineRegistry};
use crate::metrics::Metrics;
use crate::queue::JobQueue;
use crate::service::{
    lock_cache, CompressResponse, Job, JobError, JobResult, LruMap, ServiceConfig,
};
use crate::supervisor::{InFlight, WorkerSlot};
use dnacomp_algos::{compressor_for, Algorithm, CompressedBlob, ParallelCompressor, TaskPool};
use dnacomp_cloud::{BlobStore, CloudSim};
use dnacomp_core::{contain_panic, run_ladder, CircuitBreaker, FrameworkHandle};
use dnacomp_store::{ContentKey, PutOutcome};
use std::sync::Arc;
use std::time::Instant;

/// Everything one worker thread needs.
pub(crate) struct WorkerContext {
    pub(crate) queue: Arc<JobQueue<Job>>,
    pub(crate) framework: FrameworkHandle,
    pub(crate) cache: Arc<LruMap>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) config: ServiceConfig,
    pub(crate) dlq: Arc<DeadLetterQueue>,
    pub(crate) registry: Arc<QuarantineRegistry>,
    pub(crate) block_pool: Arc<TaskPool>,
    pub(crate) slot: Arc<WorkerSlot>,
}

fn build_sim(config: &ServiceConfig) -> CloudSim {
    let mut sim = CloudSim::default();
    if let Some(bytes) = config.block_bytes {
        sim.store = BlobStore::with_block_bytes(bytes);
    }
    sim.faults = config.faults;
    sim.retry = config.retry;
    sim
}

/// Worker main loop: drain the queue until it is closed and empty.
pub(crate) fn run(ctx: WorkerContext) {
    let mut sim = build_sim(&ctx.config);
    let mut breaker = CircuitBreaker::with_threshold(ctx.config.breaker_threshold);
    while let Some(job) = ctx.queue.pop() {
        ctx.slot.beat();
        ctx.metrics.record_dequeued();
        let waited = job.submitted.elapsed();
        if let Some(deadline) = job.req.deadline {
            if waited > deadline {
                ctx.metrics.record_expired();
                let _ = job.reply.send(Err(JobError::Expired {
                    waited_ms: waited.as_secs_f64() * 1e3,
                }));
                continue;
            }
        }
        let key = ContentKey::of_sequence(&job.req.sequence);
        // The quarantine gate comes before everything else — including
        // the injected hard kill below: quarantined content is refused
        // *without being processed*, so a repeat worker-killer can
        // never claim another thread.
        if ctx.registry.is_quarantined(&key) {
            ctx.metrics.record_quarantined();
            let _ = job.reply.send(Err(JobError::Quarantined {
                key_hex: key.to_hex(),
            }));
            ctx.slot.beat();
            continue;
        }
        // Publish the job before anything can go wrong so a dead thread
        // always leaves a readable account of what it was doing.
        ctx.slot.set_in_flight(Some(InFlight {
            req: job.req.clone(),
            key,
        }));
        // Simulated hard crash: a panic deliberately *outside* the
        // contained region, modelling the failures containment cannot
        // catch (abort-adjacent bugs, stack overflow). The reply sender
        // dies with the thread, resolving the ticket `WorkerGone`; the
        // supervisor attributes the crash via the in-flight cell.
        if ctx.config.faults.kills_worker(&job.req.file) {
            panic!("injected worker kill on {}", job.req.file);
        }
        let result = match contain_panic(|| execute(&ctx, &mut sim, &mut breaker, &job)) {
            Ok(result) => result,
            Err(message) => {
                ctx.metrics.record_panicked();
                let (strikes, crossed) = ctx.registry.strike(&key);
                if crossed {
                    let (depth, dropped) = ctx.dlq.push(DeadLetter {
                        key,
                        strikes,
                        last_error: message.clone(),
                        request: job.req.clone(),
                    });
                    ctx.metrics.set_dlq_state(depth, dropped);
                }
                Err(JobError::Panicked { message, strikes })
            }
        };
        ctx.slot.set_in_flight(None);
        match &result {
            Ok(r) => ctx.metrics.record_completed(r.algorithm, r.sim_ms),
            Err(JobError::Panicked { .. }) => {} // counted as panicked above
            Err(_) => ctx.metrics.record_failed(),
        }
        // A dropped ticket is a caller choice, not a service error.
        let _ = job.reply.send(result);
        ctx.slot.beat();
    }
}

/// Persist-on-complete: `put` the job's compressed result into the
/// attached store (no-op when the service is stateless) and roll the
/// outcome into the metrics registry. In exchange mode the ladder does
/// not hand the blob back, so the worker recompresses with the
/// algorithm the exchange actually used — deterministic, and the store
/// dedupes by content key anyway.
fn persist(
    ctx: &WorkerContext,
    job: &Job,
    used: Algorithm,
    blob: Option<&CompressedBlob>,
) -> Result<Option<PutOutcome>, JobError> {
    let Some(store) = &ctx.config.store else {
        return Ok(None);
    };
    let rebuilt;
    let blob = match blob {
        Some(b) => b,
        None => {
            rebuilt = compressor_for(used)
                .compress(&job.req.sequence)
                .map_err(|e| JobError::Exchange(e.into()))?;
            &rebuilt
        }
    };
    let outcome = store
        .put(&job.req.sequence, blob)
        .map_err(JobError::Store)?;
    ctx.metrics.record_store_put(outcome.deduped);
    let snap = store.snapshot();
    ctx.metrics.set_store_state(&snap);
    Ok(Some(outcome))
}

/// Run one job: cached decision → compress (or full exchange).
fn execute(
    ctx: &WorkerContext,
    sim: &mut CloudSim,
    breaker: &mut CircuitBreaker,
    job: &Job,
) -> JobResult {
    let req = &job.req;
    // Injected job panic: inside the contained region, keyed on the
    // file only, so a poisonous job panics on every execution.
    if ctx.config.faults.job_panics(&req.file) {
        panic!("injected job panic on {}", req.file);
    }
    let t0 = Instant::now();
    let key = ContextKey::quantize(&req.context);
    // Short-lock cache discipline: look up under the lock, but on a
    // miss *decide outside it*. The old code held the cache mutex
    // across `framework.decide`, serialising every concurrently-missing
    // worker behind one tree traversal — the measured wall-throughput
    // sag at higher worker counts. Correctness is unchanged because the
    // cached value is a pure function of the key (decided on the key's
    // canonical context): racing fillers compute the same algorithm,
    // and whichever insert lands last overwrites an equal value.
    let cached = lock_cache(&ctx.cache).get(&key).copied();
    let (decided, cache_hit) = match cached {
        Some(alg) => {
            ctx.metrics.record_cache_hit();
            (alg, true)
        }
        None => {
            ctx.metrics.record_cache_miss();
            let alg = ctx.framework.decide(&key.canonical());
            lock_cache(&ctx.cache).insert(key, alg);
            (alg, false)
        }
    };
    if req.exchange {
        match run_ladder(decided, breaker, sim, &req.context, &req.file, &req.sequence) {
            Ok((used, report)) => Ok(CompressResponse {
                file: req.file.clone(),
                algorithm: used,
                original_len: req.sequence.len(),
                compressed_bytes: report.compressed_bytes,
                blocks: 1,
                sim_ms: report.total_ms(),
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                wall_latency_ms: job.submitted.elapsed().as_secs_f64() * 1e3,
                cache_hit,
                worker: ctx.slot.id,
                retries: report.retries,
                degraded_from: report.degraded_from,
                persisted: persist(ctx, job, used, None)?,
            }),
            Err(e) => Err(JobError::Exchange(e)),
        }
    } else if framed_threshold(ctx, decided).is_some_and(|bs| req.sequence.len() > bs) {
        // Block-parallel path: frame the sequence on the service-wide
        // shared pool. The frame bytes are a pure function of
        // (algorithm, block size, sequence), so this job's output is
        // identical to the serial encoder's no matter how many threads
        // or concurrent jobs share the pool.
        let block_size = ctx.config.block_size.expect("checked by framed_threshold");
        let pc = ParallelCompressor::new(decided, block_size, Arc::clone(&ctx.block_pool));
        match pc.compress_with_stats(&req.sequence) {
            Ok((frame, stats)) => {
                ctx.metrics.record_block_parallel(frame.blocks.len() as u64);
                ctx.metrics.set_pool_stats(ctx.block_pool.stats());
                Ok(CompressResponse {
                    file: req.file.clone(),
                    algorithm: decided,
                    original_len: req.sequence.len(),
                    compressed_bytes: frame.total_bytes(),
                    blocks: frame.blocks.len(),
                    sim_ms: sim
                        .perf
                        .compress_ms(&req.context.client(), decided, &req.file, &stats),
                    wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                    wall_latency_ms: job.submitted.elapsed().as_secs_f64() * 1e3,
                    cache_hit,
                    worker: ctx.slot.id,
                    retries: 0,
                    degraded_from: Vec::new(),
                    // The store speaks flat blobs; passing `None` makes
                    // persist() rebuild one (deduped by content key).
                    persisted: persist(ctx, job, decided, None)?,
                })
            }
            Err(e) => Err(JobError::Exchange(e.into())),
        }
    } else {
        match compressor_for(decided).compress_with_stats(&req.sequence) {
            Ok((blob, stats)) => Ok(CompressResponse {
                file: req.file.clone(),
                algorithm: decided,
                original_len: req.sequence.len(),
                compressed_bytes: blob.total_bytes(),
                blocks: 1,
                sim_ms: sim
                    .perf
                    .compress_ms(&req.context.client(), decided, &req.file, &stats),
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                wall_latency_ms: job.submitted.elapsed().as_secs_f64() * 1e3,
                cache_hit,
                worker: ctx.slot.id,
                retries: 0,
                degraded_from: Vec::new(),
                persisted: persist(ctx, job, decided, Some(&blob))?,
            }),
            Err(e) => Err(JobError::Exchange(e.into())),
        }
    }
}

/// The frame threshold for this job, if the block-parallel path is
/// enabled and `decided` can run standalone per block.
fn framed_threshold(ctx: &WorkerContext, decided: Algorithm) -> Option<usize> {
    ctx.config
        .block_size
        .filter(|_| Algorithm::HORIZONTAL.contains(&decided))
}
