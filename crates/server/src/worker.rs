//! The worker pool: per-thread simulator + breaker, shared everything
//! else.
//!
//! Each worker owns what must be mutable — a [`CloudSim`] (its own blob
//! store, so staged uploads never interleave across jobs) and a
//! [`CircuitBreaker`] for the degradation ladder — and shares what is
//! read-only or concurrent-safe: the [`FrameworkHandle`] rule snapshot,
//! the LRU decision cache and the metrics registry.
//!
//! Determinism: fault injection keys on `(algorithm, file, block,
//! attempt)`, never on the worker id or wall clock, so a job's outcome
//! is identical no matter which worker runs it or in what order — the
//! property the stress suite's "deterministic totals" assertion pins
//! down (with [`ServiceConfig::breaker_threshold`] set high enough that
//! ladder skipping cannot depend on a worker's job history).

use crate::cache::ContextKey;
use crate::metrics::Metrics;
use crate::queue::JobQueue;
use crate::service::{
    CompressResponse, Job, JobError, JobResult, LruMap, ServiceConfig,
};
use dnacomp_algos::{compressor_for, Algorithm, CompressedBlob};
use dnacomp_cloud::{BlobStore, CloudSim};
use dnacomp_core::{run_ladder, CircuitBreaker, FrameworkHandle};
use dnacomp_store::PutOutcome;
use std::sync::Arc;
use std::time::Instant;

/// Everything one worker thread needs.
pub(crate) struct WorkerContext {
    pub(crate) id: usize,
    pub(crate) queue: Arc<JobQueue<Job>>,
    pub(crate) framework: FrameworkHandle,
    pub(crate) cache: Arc<LruMap>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) config: ServiceConfig,
}

fn build_sim(config: &ServiceConfig) -> CloudSim {
    let mut sim = CloudSim::default();
    if let Some(bytes) = config.block_bytes {
        sim.store = BlobStore::with_block_bytes(bytes);
    }
    sim.faults = config.faults;
    sim.retry = config.retry;
    sim
}

/// Worker main loop: drain the queue until it is closed and empty.
pub(crate) fn run(ctx: WorkerContext) {
    let mut sim = build_sim(&ctx.config);
    let mut breaker = CircuitBreaker::with_threshold(ctx.config.breaker_threshold);
    while let Some(job) = ctx.queue.pop() {
        ctx.metrics.record_dequeued();
        let waited = job.submitted.elapsed();
        if let Some(deadline) = job.req.deadline {
            if waited > deadline {
                ctx.metrics.record_expired();
                let _ = job.reply.send(Err(JobError::Expired {
                    waited_ms: waited.as_secs_f64() * 1e3,
                }));
                continue;
            }
        }
        let result = execute(&ctx, &mut sim, &mut breaker, &job);
        match &result {
            Ok(r) => ctx.metrics.record_completed(r.algorithm, r.sim_ms),
            Err(_) => ctx.metrics.record_failed(),
        }
        // A dropped ticket is a caller choice, not a service error.
        let _ = job.reply.send(result);
    }
}

/// Persist-on-complete: `put` the job's compressed result into the
/// attached store (no-op when the service is stateless) and roll the
/// outcome into the metrics registry. In exchange mode the ladder does
/// not hand the blob back, so the worker recompresses with the
/// algorithm the exchange actually used — deterministic, and the store
/// dedupes by content key anyway.
fn persist(
    ctx: &WorkerContext,
    job: &Job,
    used: Algorithm,
    blob: Option<&CompressedBlob>,
) -> Result<Option<PutOutcome>, JobError> {
    let Some(store) = &ctx.config.store else {
        return Ok(None);
    };
    let rebuilt;
    let blob = match blob {
        Some(b) => b,
        None => {
            rebuilt = compressor_for(used)
                .compress(&job.req.sequence)
                .map_err(|e| JobError::Exchange(e.into()))?;
            &rebuilt
        }
    };
    let outcome = store
        .put(&job.req.sequence, blob)
        .map_err(JobError::Store)?;
    ctx.metrics.record_store_put(outcome.deduped);
    let snap = store.snapshot();
    ctx.metrics
        .set_store_state(snap.bytes_on_disk, snap.scrub_failures);
    Ok(Some(outcome))
}

/// Run one job: cached decision → compress (or full exchange).
fn execute(
    ctx: &WorkerContext,
    sim: &mut CloudSim,
    breaker: &mut CircuitBreaker,
    job: &Job,
) -> JobResult {
    let req = &job.req;
    let t0 = Instant::now();
    let key = ContextKey::quantize(&req.context);
    let (decided, cache_hit) = {
        let mut cache = ctx.cache.lock().expect("cache poisoned");
        if let Some(&alg) = cache.get(&key) {
            ctx.metrics.record_cache_hit();
            (alg, true)
        } else {
            ctx.metrics.record_cache_miss();
            // Decide on the key's canonical context, not the raw one:
            // the cached value must be a pure function of the key so
            // fill order (a race) cannot change any job's outcome.
            let alg = ctx.framework.decide(&key.canonical());
            cache.insert(key, alg);
            (alg, false)
        }
    };
    if req.exchange {
        match run_ladder(decided, breaker, sim, &req.context, &req.file, &req.sequence) {
            Ok((used, report)) => Ok(CompressResponse {
                file: req.file.clone(),
                algorithm: used,
                original_len: req.sequence.len(),
                compressed_bytes: report.compressed_bytes,
                sim_ms: report.total_ms(),
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                cache_hit,
                worker: ctx.id,
                retries: report.retries,
                degraded_from: report.degraded_from,
                persisted: persist(ctx, job, used, None)?,
            }),
            Err(e) => Err(JobError::Exchange(e)),
        }
    } else {
        match compressor_for(decided).compress_with_stats(&req.sequence) {
            Ok((blob, stats)) => Ok(CompressResponse {
                file: req.file.clone(),
                algorithm: decided,
                original_len: req.sequence.len(),
                compressed_bytes: blob.total_bytes(),
                sim_ms: sim
                    .perf
                    .compress_ms(&req.context.client(), decided, &req.file, &stats),
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                cache_hit,
                worker: ctx.id,
                retries: 0,
                degraded_from: Vec::new(),
                persisted: persist(ctx, job, decided, Some(&blob))?,
            }),
            Err(e) => Err(JobError::Exchange(e.into())),
        }
    }
}
