//! Consistent-hash ring: the shard placement function of the router.
//!
//! Every shard owns a set of **virtual nodes** — points on a u64 ring
//! derived from `mix64(fnv1a(seed, shard id, vnode index))`, the same
//! seeded FNV-1a/SplitMix64 helpers the codec uses for checksums and
//! fault draws. A content key hashes to a point the same way and is
//! owned by the first virtual node clockwise from it. Virtual nodes
//! smooth the load split (≈ 1/N per shard with enough points) and make
//! membership changes cheap: adding one shard to an N-shard ring moves
//! ≈ 1/(N+1) of the keyspace, never reshuffles it.
//!
//! The **epoch** is a digest of the membership (ids, addresses, vnode
//! count, seed): two routers built from the same shard list agree on
//! it byte-for-byte, and any membership change produces a new epoch.
//! Peers assert their epoch in the [`crate::proto::Request::HelloEpoch`]
//! handshake, so a router with a stale shard map is refused instead of
//! silently forwarding into the wrong partition.

use dnacomp_codec::checksum::{mix64, Fnv1a};

/// Default virtual nodes per shard.
pub const DEFAULT_VNODES: u32 = 64;

/// Default ring placement seed.
pub const DEFAULT_RING_SEED: u64 = 0x5249_4E47; // "RING"

/// One back-end shard: its ring id and dialable address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Ring shard id (stable across restarts; 0 is reserved for
    /// "router / unsharded" in handshake identity checks).
    pub id: u32,
    /// `host:port` the shard's front-end listens on.
    pub addr: String,
}

/// An immutable consistent-hash ring over a fixed shard set.
#[derive(Clone, Debug)]
pub struct Ring {
    /// Sorted `(point, slot index into shards)` pairs.
    points: Vec<(u64, usize)>,
    shards: Vec<ShardSpec>,
    epoch: u64,
    vnodes: u32,
    seed: u64,
}

fn place(seed: u64, id: u32, vnode: u32) -> u64 {
    let mut h = Fnv1a::with_seed(seed);
    h.update(&id.to_le_bytes());
    h.update(&vnode.to_le_bytes());
    mix64(h.digest())
}

fn key_point(seed: u64, key: &[u8; 16]) -> u64 {
    let mut h = Fnv1a::with_seed(seed);
    h.update(key);
    mix64(h.digest())
}

impl Ring {
    /// Build a ring with `vnodes` virtual nodes per shard, placed by
    /// `seed`. Duplicate shard ids and the reserved id 0 are refused —
    /// a ring with ambiguous ownership is worse than no ring.
    pub fn new(shards: Vec<ShardSpec>, vnodes: u32, seed: u64) -> Result<Ring, String> {
        if shards.is_empty() {
            return Err("a ring needs at least one shard".into());
        }
        let vnodes = vnodes.max(1);
        for (i, s) in shards.iter().enumerate() {
            if s.id == 0 {
                return Err("shard id 0 is reserved for unsharded nodes".into());
            }
            if shards[..i].iter().any(|p| p.id == s.id) {
                return Err(format!("duplicate shard id {}", s.id));
            }
        }
        let mut points = Vec::with_capacity(shards.len() * vnodes as usize);
        for (slot, s) in shards.iter().enumerate() {
            for v in 0..vnodes {
                points.push((place(seed, s.id, v), slot));
            }
        }
        // Sort by point; a (vanishingly rare) collision is broken by
        // slot order so both sides of an identical config still agree.
        points.sort_unstable();
        let epoch = {
            let mut h = Fnv1a::with_seed(seed);
            h.update(&vnodes.to_le_bytes());
            for s in &shards {
                h.update(&s.id.to_le_bytes());
                h.update(&(s.addr.len() as u64).to_le_bytes());
                h.update(s.addr.as_bytes());
            }
            mix64(h.digest())
        };
        Ok(Ring {
            points,
            shards,
            epoch,
            vnodes,
            seed,
        })
    }

    /// The membership digest peers must present in `HelloEpoch`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The shard set, in construction order (= metrics slot order).
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// Slot index (into [`Ring::shards`]) owning `key`: the first
    /// virtual node clockwise from the key's point.
    pub fn slot_for(&self, key: &[u8; 16]) -> usize {
        let p = key_point(self.seed, key);
        let idx = self.points.partition_point(|&(pt, _)| pt < p);
        let (_, slot) = self.points[idx % self.points.len()];
        slot
    }

    /// The shard owning `key`.
    pub fn shard_for(&self, key: &[u8; 16]) -> &ShardSpec {
        &self.shards[self.slot_for(key)]
    }

    /// Slot of the **successor** shard for `key`: the owner of the
    /// next ring point belonging to a *different* shard — the
    /// designated retry target when the owner is down. `None` on a
    /// single-shard ring.
    pub fn successor_slot(&self, key: &[u8; 16]) -> Option<usize> {
        self.replica_slots(key, 2).get(1).copied()
    }

    /// The **replica set** for `key`: up to `replicas` distinct slots,
    /// starting with the owner and continuing clockwise to the next
    /// distinct shards — the placement rule for replicated writes.
    /// The walk is the same one [`Ring::successor_slot`] takes, so the
    /// R=2 replica set is exactly `[owner, successor]`. Capped by the
    /// fleet size; the owner is always element 0.
    pub fn replica_slots(&self, key: &[u8; 16], replicas: usize) -> Vec<usize> {
        let want = replicas.max(1).min(self.shards.len());
        let p = key_point(self.seed, key);
        let start = self.points.partition_point(|&(pt, _)| pt < p);
        let n = self.points.len();
        let mut out = Vec::with_capacity(want);
        for i in 0..n {
            let (_, slot) = self.points[(start + i) % n];
            if !out.contains(&slot) {
                out.push(slot);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(id: u32) -> ShardSpec {
        ShardSpec {
            id,
            addr: format!("127.0.0.1:{}", 7000 + id),
        }
    }

    fn keys(n: u64) -> impl Iterator<Item = [u8; 16]> {
        (0..n).map(|i| {
            let mut k = [0u8; 16];
            k[..8].copy_from_slice(&mix64(i).to_le_bytes());
            k[8..].copy_from_slice(&mix64(i ^ 0xDEAD).to_le_bytes());
            k
        })
    }

    #[test]
    fn placement_is_deterministic_across_builds() {
        let a = Ring::new(vec![shard(1), shard(2), shard(3)], 64, 7).unwrap();
        let b = Ring::new(vec![shard(1), shard(2), shard(3)], 64, 7).unwrap();
        assert_eq!(a.epoch(), b.epoch());
        for k in keys(500) {
            assert_eq!(a.slot_for(&k), b.slot_for(&k));
            assert_eq!(a.successor_slot(&k), b.successor_slot(&k));
        }
    }

    #[test]
    fn load_splits_roughly_evenly_with_enough_vnodes() {
        let ring = Ring::new(vec![shard(1), shard(2), shard(3)], 128, 7).unwrap();
        let mut counts = [0u64; 3];
        let total = 6_000u64;
        for k in keys(total) {
            counts[ring.slot_for(&k)] += 1;
        }
        let ideal = total / 3;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 2 && c < ideal * 2,
                "slot {i} got {c} of {total} (ideal {ideal}): {counts:?}"
            );
        }
    }

    #[test]
    fn successor_is_always_a_different_shard() {
        let ring = Ring::new(vec![shard(1), shard(2)], 32, 7).unwrap();
        for k in keys(300) {
            let owner = ring.slot_for(&k);
            let succ = ring.successor_slot(&k).unwrap();
            assert_ne!(owner, succ);
        }
        let solo = Ring::new(vec![shard(1)], 32, 7).unwrap();
        assert_eq!(solo.successor_slot(&[0u8; 16]), None);
    }

    #[test]
    fn replica_sets_are_distinct_owner_first_and_fleet_capped() {
        let ring = Ring::new(vec![shard(1), shard(2), shard(3)], 64, 7).unwrap();
        for k in keys(300) {
            let set = ring.replica_slots(&k, 3);
            assert_eq!(set.len(), 3, "R=3 on 3 shards covers the fleet");
            assert_eq!(set[0], ring.slot_for(&k), "owner leads the set");
            assert_eq!(set[1], ring.successor_slot(&k).unwrap());
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct shards");
            // Asking for more replicas than shards caps at the fleet;
            // asking for zero still yields the owner.
            assert_eq!(ring.replica_slots(&k, 9), set);
            assert_eq!(ring.replica_slots(&k, 0), vec![set[0]]);
            // The R=2 prefix is exactly [owner, successor].
            assert_eq!(ring.replica_slots(&k, 2), set[..2].to_vec());
        }
        let solo = Ring::new(vec![shard(1)], 32, 7).unwrap();
        assert_eq!(solo.replica_slots(&[0u8; 16], 3), vec![0]);
    }

    #[test]
    fn membership_changes_move_epoch_and_a_bounded_key_fraction() {
        let three = Ring::new(vec![shard(1), shard(2), shard(3)], 128, 7).unwrap();
        let four = Ring::new(vec![shard(1), shard(2), shard(3), shard(4)], 128, 7).unwrap();
        assert_ne!(three.epoch(), four.epoch());
        // Address changes alone also move the epoch.
        let moved = Ring::new(
            vec![
                shard(1),
                shard(2),
                ShardSpec {
                    id: 3,
                    addr: "10.0.0.9:7003".into(),
                },
            ],
            128,
            7,
        )
        .unwrap();
        assert_ne!(three.epoch(), moved.epoch());
        // Consistency: going 3 → 4 shards only keys now owned by the
        // new shard may move; everything else stays put.
        let total = 4_000u64;
        let mut stayed = 0u64;
        for k in keys(total) {
            let before = three.shard_for(&k).id;
            let after = four.shard_for(&k).id;
            if before == after {
                stayed += 1;
            } else {
                assert_eq!(after, 4, "key moved between surviving shards");
            }
        }
        // ≈ 3/4 should stay; accept anything clearly above 1/2.
        assert!(
            stayed > total / 2,
            "only {stayed} of {total} keys stayed put"
        );
    }

    #[test]
    fn degenerate_rings_are_refused() {
        assert!(Ring::new(vec![], 64, 7).is_err());
        assert!(Ring::new(vec![shard(0)], 64, 7).is_err());
        assert!(Ring::new(vec![shard(1), shard(1)], 64, 7).is_err());
    }
}
