//! Poison-job quarantine and the bounded dead-letter queue.
//!
//! A job that panics once may have hit a transient (a worker's
//! simulator state, a cosmic-ray bit); a job whose *content* keeps
//! panicking is poison, and re-running it only burns workers. The
//! [`QuarantineRegistry`] counts strikes per content fingerprint
//! ([`ContentKey`] — two jobs with the same sequence are the same
//! offender no matter what the caller named them); crossing the strike
//! threshold moves the offending request into the [`DeadLetterQueue`],
//! and later submissions of the same content are refused up front with
//! `JobError::Quarantined` instead of being executed.
//!
//! The DLQ is **bounded** (a supervision layer must not convert a
//! poison flood into an OOM): when full, the oldest letter is evicted
//! and counted as dropped. Letters are inspectable and replayable —
//! [`DeadLetterQueue::take`] hands the full original request back so a
//! service can resubmit it after clearing its strikes (`dnacomp dlq
//! replay` does exactly this from the persisted form).

use crate::service::CompressRequest;
use dnacomp_store::ContentKey;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock that shrugs off poisoning: supervision makes poisoned mutexes
/// an expected, recoverable event (a contained panic may have unwound
/// through a guard), and every structure locked this way is valid
/// after any prefix of its mutations.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One quarantined job: the original request plus its offense record.
#[derive(Clone, Debug)]
pub struct DeadLetter {
    /// Content fingerprint the strikes were counted against.
    pub key: ContentKey,
    /// Strikes at the moment of quarantine.
    pub strikes: u32,
    /// Message of the panic (or crash description) that crossed the
    /// threshold.
    pub last_error: String,
    /// The full original request, replayable as-is.
    pub request: CompressRequest,
}

/// Serialisable summary of a dead letter (no sequence payload) — what
/// `dlq list` prints and the metrics endpoint could expose.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeadLetterInfo {
    /// Hex form of the content fingerprint.
    pub key: String,
    /// The request's file identifier.
    pub file: String,
    /// Sequence length in bases.
    pub original_len: usize,
    /// Strikes at quarantine time.
    pub strikes: u32,
    /// The panic/crash message that sealed the quarantine.
    pub last_error: String,
}

impl DeadLetter {
    /// The listing-friendly summary.
    pub fn info(&self) -> DeadLetterInfo {
        DeadLetterInfo {
            key: self.key.to_hex(),
            file: self.request.file.clone(),
            original_len: self.request.sequence.len(),
            strikes: self.strikes,
            last_error: self.last_error.clone(),
        }
    }
}

struct DlqState {
    letters: VecDeque<DeadLetter>,
    dropped: u64,
}

/// Bounded FIFO of quarantined jobs.
pub struct DeadLetterQueue {
    capacity: usize,
    state: Mutex<DlqState>,
}

impl DeadLetterQueue {
    /// An empty queue holding at most `capacity` letters.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "DLQ capacity must be positive");
        DeadLetterQueue {
            capacity,
            state: Mutex::new(DlqState {
                letters: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Quarantine a letter. If the same content key is already present
    /// the existing letter is refreshed (strikes/error updated) rather
    /// than duplicated; otherwise the letter is appended, evicting the
    /// oldest when full. Returns `(depth, dropped)` after the push.
    pub fn push(&self, letter: DeadLetter) -> (u64, u64) {
        let mut st = lock_recover(&self.state);
        if let Some(existing) = st.letters.iter_mut().find(|l| l.key == letter.key) {
            existing.strikes = letter.strikes;
            existing.last_error = letter.last_error;
        } else {
            if st.letters.len() >= self.capacity {
                st.letters.pop_front();
                st.dropped += 1;
            }
            st.letters.push_back(letter);
        }
        (st.letters.len() as u64, st.dropped)
    }

    /// Letters currently held.
    pub fn depth(&self) -> usize {
        lock_recover(&self.state).letters.len()
    }

    /// Letters evicted because the queue was full.
    pub fn dropped(&self) -> u64 {
        lock_recover(&self.state).dropped
    }

    /// Summaries of every held letter, oldest first.
    pub fn list(&self) -> Vec<DeadLetterInfo> {
        lock_recover(&self.state)
            .letters
            .iter()
            .map(DeadLetter::info)
            .collect()
    }

    /// Remove and return the letter for `key`, if held (the `replay`
    /// and `drop` primitive).
    pub fn take(&self, key: &ContentKey) -> Option<DeadLetter> {
        let mut st = lock_recover(&self.state);
        let pos = st.letters.iter().position(|l| &l.key == key)?;
        st.letters.remove(pos)
    }

    /// Remove and return every held letter, oldest first (used to
    /// persist the DLQ at service shutdown).
    pub fn drain(&self) -> Vec<DeadLetter> {
        lock_recover(&self.state).letters.drain(..).collect()
    }
}

/// Per-content-fingerprint strike counter deciding quarantine.
pub struct QuarantineRegistry {
    threshold: u32,
    strikes: Mutex<HashMap<ContentKey, u32>>,
}

impl QuarantineRegistry {
    /// A registry quarantining content after `threshold` strikes.
    /// `threshold == u32::MAX` effectively disables quarantine.
    pub fn new(threshold: u32) -> Self {
        QuarantineRegistry {
            threshold: threshold.max(1),
            strikes: Mutex::new(HashMap::new()),
        }
    }

    /// Record one strike against `key`. Returns the new strike count
    /// and whether this strike *crossed* the threshold (true exactly
    /// once per key — the moment to write the dead letter).
    pub fn strike(&self, key: &ContentKey) -> (u32, bool) {
        let mut map = lock_recover(&self.strikes);
        let n = map.entry(*key).or_insert(0);
        *n = n.saturating_add(1);
        (*n, *n == self.threshold)
    }

    /// `true` once `key` has accumulated threshold strikes — the
    /// worker-side gate that refuses execution.
    pub fn is_quarantined(&self, key: &ContentKey) -> bool {
        lock_recover(&self.strikes)
            .get(key)
            .is_some_and(|&n| n >= self.threshold)
    }

    /// Forgive `key` entirely (replay resets the offender's record so
    /// one clean run re-earns trust from zero).
    pub fn clear(&self, key: &ContentKey) {
        lock_recover(&self.strikes).remove(key);
    }

    /// Strikes currently recorded against `key`.
    pub fn strikes(&self, key: &ContentKey) -> u32 {
        lock_recover(&self.strikes).get(key).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_core::Context;
    use dnacomp_seq::gen::GenomeModel;

    fn letter(i: u64, strikes: u32) -> DeadLetter {
        let seq = GenomeModel::default().generate(100 + i as usize, i);
        let key = ContentKey::of_sequence(&seq);
        DeadLetter {
            key,
            strikes,
            last_error: format!("panic {i}"),
            request: CompressRequest::new(
                format!("f{i}"),
                seq,
                Context {
                    ram_mb: 1024,
                    cpu_mhz: 1600,
                    bandwidth_mbps: 1.0,
                    file_bytes: 100,
                },
            ),
        }
    }

    #[test]
    fn bounded_push_evicts_oldest_and_counts_drops() {
        let dlq = DeadLetterQueue::new(2);
        dlq.push(letter(1, 2));
        dlq.push(letter(2, 2));
        let (depth, dropped) = dlq.push(letter(3, 2));
        assert_eq!((depth, dropped), (2, 1));
        let files: Vec<String> = dlq.list().into_iter().map(|l| l.file).collect();
        assert_eq!(files, vec!["f2", "f3"]);
        assert_eq!(dlq.dropped(), 1);
    }

    #[test]
    fn same_key_refreshes_instead_of_duplicating() {
        let dlq = DeadLetterQueue::new(4);
        dlq.push(letter(1, 2));
        let mut updated = letter(1, 5);
        updated.last_error = "again".into();
        let (depth, dropped) = dlq.push(updated);
        assert_eq!((depth, dropped), (1, 0));
        assert_eq!(dlq.list()[0].strikes, 5);
        assert_eq!(dlq.list()[0].last_error, "again");
    }

    #[test]
    fn take_removes_by_key() {
        let dlq = DeadLetterQueue::new(4);
        let l = letter(7, 3);
        let key = l.key;
        dlq.push(l);
        assert!(dlq.take(&key).is_some());
        assert!(dlq.take(&key).is_none());
        assert_eq!(dlq.depth(), 0);
    }

    #[test]
    fn registry_crosses_threshold_exactly_once() {
        let reg = QuarantineRegistry::new(2);
        let seq = GenomeModel::default().generate(64, 1);
        let key = ContentKey::of_sequence(&seq);
        assert!(!reg.is_quarantined(&key));
        assert_eq!(reg.strike(&key), (1, false));
        assert_eq!(reg.strike(&key), (2, true));
        assert_eq!(reg.strike(&key), (3, false));
        assert!(reg.is_quarantined(&key));
        reg.clear(&key);
        assert!(!reg.is_quarantined(&key));
        assert_eq!(reg.strikes(&key), 0);
    }

    #[test]
    fn info_summarises_without_payload() {
        let l = letter(9, 4);
        let info = l.info();
        assert_eq!(info.key, l.key.to_hex());
        assert_eq!(info.file, "f9");
        assert_eq!(info.strikes, 4);
        assert_eq!(info.original_len, 109);
        // The summary roundtrips through JSON for the CLI.
        let json = serde_json::to_string(&info).unwrap();
        let back: DeadLetterInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(back, info);
    }
}
