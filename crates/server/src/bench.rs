//! Service benchmarking: corpus replay and throughput accounting.
//!
//! `dnacomp bench-serve` replays the synthetic corpus through a
//! [`CompressionService`] at several worker counts and reports
//! throughput two ways:
//!
//! * **wall-clock** — honest but hardware-bound: on a single-core
//!   container N workers cannot beat one on CPU-bound work, so this
//!   number mostly validates that the pool adds no overhead;
//! * **simulated** — every job carries a deterministic simulated cost
//!   (the same `PerfModel` milliseconds the whole reproduction is
//!   priced in). [`makespan_ms`] schedules those costs onto N worker
//!   lanes with the earliest-free-lane rule, in submission order —
//!   exactly what a pool whose workers were the bottleneck would do —
//!   yielding a *reproducible* throughput curve independent of host
//!   load or core count. This is the number the ≥ 4× scaling
//!   acceptance gate reads, and `BENCH_serve.json` archives.
//!
//! The replay itself runs through the real concurrent service (real
//! threads, real queue, real cache), so the simulated curve is backed
//! by an actual concurrent execution, not a model of one.
//!
//! ## Two latency families, on purpose
//!
//! The `metrics` snapshot of a sweep point reports **simulated**
//! latency percentiles. Each job's `sim_ms` is a pure function of the
//! job — deliberately independent of the pool size — so those
//! percentiles (and the peak queue depth, pinned at the queue capacity
//! by the saturating submitter) are *identical across sweep rows*.
//! That is a feature of the deterministic pricing model, not a
//! measurement: do not read them as a scaling curve. The per-row
//! numbers that genuinely reflect the run are the **wall-clock**
//! per-job latencies (`wall_latency_*_ms`): submission→completion
//! times of real jobs on real threads, aggregated as *exact* sample
//! percentiles, not histogram-bucket upper bounds.

use crate::metrics::MetricsSnapshot;
use crate::queue::Priority;
use crate::service::{
    CompressRequest, CompressionService, JobTicket, ServiceConfig, SubmitError,
};
use dnacomp_algos::Algorithm;
use dnacomp_core::{ContextAwareFramework, FrameworkHandle, LabeledRow};
use dnacomp_cloud::context_grid;
use dnacomp_ml::TreeMethod;
use dnacomp_seq::corpus::CorpusBuilder;
use dnacomp_seq::PackedSeq;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Train a framework on a synthetic labelled grid in milliseconds.
///
/// The full measurement grid (corpus × contexts × algorithms on the
/// simulator) takes minutes; service benchmarks only need *a* realistic
/// rule tree, so this labels a size sweep with the paper's headline
/// pattern — small files favour GenCompress, mid-size CTW-class
/// compressors lose to DNAX as size grows — and trains CART on it.
pub fn synthetic_framework(seed: u64) -> FrameworkHandle {
    let mut rows = Vec::new();
    for i in 0..240u64 {
        let kb = 1.0 + ((seed + i) % 240) as f64 * 4.2;
        rows.push(LabeledRow {
            file: format!("synthetic_{i}"),
            file_bytes: (kb * 1024.0) as u64,
            ram_mb: [1024u32, 2048, 3072, 4096][(i % 4) as usize],
            cpu_mhz: [1600u32, 2393, 2800][(i % 3) as usize],
            bandwidth_mbps: [0.5, 2.0, 10.0][(i % 3) as usize],
            winner: if kb < 50.0 {
                Algorithm::GenCompress
            } else {
                Algorithm::Dnax
            },
            score: 0.0,
        });
    }
    FrameworkHandle::new(ContextAwareFramework::train(&rows, TreeMethod::Cart))
}

/// Deterministic makespan of `costs` (ms, submission order) on
/// `workers` lanes: each job goes to the earliest-free lane — the
/// schedule a saturated pool converges to. `workers = 1` degenerates
/// to the plain sum.
pub fn makespan_ms(costs: &[f64], workers: usize) -> f64 {
    assert!(workers > 0, "need at least one lane");
    let mut free_at = vec![0.0f64; workers];
    for &c in costs {
        let lane = free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .map(|(i, _)| i)
            .expect("workers > 0");
        free_at[lane] += c.max(0.0);
    }
    free_at.into_iter().fold(0.0, f64::max)
}

/// Benchmark shape.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// NCBI-style synthetic corpus files to generate.
    pub files: usize,
    /// Leading contexts of the measurement grid to replay.
    pub contexts: usize,
    /// Full corpus × context passes (pass ≥ 2 exercises the cache).
    pub repeats: usize,
    /// Worker counts to sweep.
    pub worker_counts: Vec<usize>,
    /// Corpus seed.
    pub seed: u64,
    /// Largest generated file, bases.
    pub max_len: usize,
    /// Run full exchanges instead of compress-only jobs.
    pub exchange: bool,
    /// Block-parallel threshold for the replayed service
    /// ([`ServiceConfig::block_size`]); `None` keeps flat blobs.
    pub block_size: Option<usize>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            files: 40,
            contexts: 16,
            repeats: 2,
            worker_counts: vec![1, 4, 8],
            seed: 42,
            max_len: 64 * 1024,
            exchange: false,
            block_size: None,
        }
    }
}

/// One worker-count sweep point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Wall-clock for the whole replay, ms.
    pub wall_ms: f64,
    /// Deterministic simulated makespan, ms (see [`makespan_ms`]).
    pub sim_makespan_ms: f64,
    /// `completed / (sim_makespan_ms / 1000)`.
    pub jobs_per_sim_sec: f64,
    /// `completed / (wall_ms / 1000)`.
    pub jobs_per_wall_sec: f64,
    /// Decision-cache hit rate over the replay.
    pub cache_hit_rate: f64,
    /// Simulated-throughput speedup vs the 1-worker point.
    pub speedup_vs_one: f64,
    /// Exact median of per-job submission→completion wall latency, ms.
    /// Unlike the snapshot's simulated percentiles this genuinely
    /// varies with the worker count.
    pub wall_latency_p50_ms: f64,
    /// Exact 95th percentile of per-job wall latency, ms.
    pub wall_latency_p95_ms: f64,
    /// Mean per-job wall latency, ms.
    pub wall_latency_mean_ms: f64,
    /// Final metrics snapshot of this run. Its `latency_*` fields are
    /// **simulated** (pure per-job costs, identical across sweep rows
    /// by construction — see the module docs).
    pub metrics: MetricsSnapshot,
}

/// Full benchmark output (`BENCH_serve.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Corpus files replayed.
    pub corpus_files: usize,
    /// Contexts replayed.
    pub contexts: usize,
    /// Corpus × context passes.
    pub repeats: usize,
    /// Jobs submitted per sweep point.
    pub jobs: usize,
    /// Whether jobs ran full exchanges or compress-only.
    pub exchange: bool,
    /// Block-parallel threshold the replayed service used, if any.
    pub block_size: Option<usize>,
    /// One entry per worker count.
    pub sweep: Vec<SweepPoint>,
}

impl BenchReport {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialisation cannot fail")
    }
}

/// Pre-generated workload: every (file, context) pair, `repeats` times.
pub fn build_workload(cfg: &BenchConfig) -> Vec<CompressRequest> {
    let specs = CorpusBuilder::paper(cfg.seed)
        .ncbi_files(cfg.files)
        .include_standard(false)
        .size_range(1_000, cfg.max_len)
        .build();
    let sequences: Vec<(String, PackedSeq)> = specs
        .iter()
        .map(|s| (s.name.clone(), s.generate()))
        .collect();
    let contexts: Vec<_> = context_grid().into_iter().take(cfg.contexts).collect();
    let mut jobs = Vec::with_capacity(sequences.len() * contexts.len() * cfg.repeats);
    for rep in 0..cfg.repeats {
        for (ci, client) in contexts.iter().enumerate() {
            for (name, seq) in &sequences {
                let mut req = CompressRequest::new(
                    format!("{name}.c{ci}"),
                    seq.clone(),
                    dnacomp_core::Context::new(client, seq.len() as u64),
                );
                req.exchange = cfg.exchange;
                // Mix lanes deterministically so replays exercise the
                // priority queue, not just one lane.
                req.priority = Priority::ALL[(ci + rep) % 3];
                jobs.push(req);
            }
        }
    }
    jobs
}

fn drain(tickets: Vec<JobTicket>) -> (u64, Vec<f64>, Vec<f64>) {
    let mut completed = 0;
    let mut costs = Vec::with_capacity(tickets.len());
    let mut wall_lats = Vec::with_capacity(tickets.len());
    for t in tickets {
        if let Ok(resp) = t.wait() {
            completed += 1;
            costs.push(resp.sim_ms);
            wall_lats.push(resp.wall_latency_ms);
        }
    }
    (completed, costs, wall_lats)
}

/// Exact sample quantile (nearest-rank) of unsorted samples.
fn exact_quantile_ms(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((q.clamp(0.0, 1.0) * samples.len() as f64).ceil() as usize).max(1);
    samples[rank - 1]
}

/// Replay `jobs` through a fresh service with `workers` threads.
///
/// Submission applies backpressure by blocking the producer loop when
/// the queue rejects (retry after draining one ticket would deadlock a
/// single submitter, so it spins on `std::thread::yield_now`);
/// rejected-then-retried submissions are *not* double-counted.
pub fn replay(
    framework: FrameworkHandle,
    jobs: &[CompressRequest],
    workers: usize,
) -> (SweepPoint, Vec<f64>) {
    replay_with(framework, jobs, workers, None)
}

/// [`replay`] with an explicit block-parallel threshold.
pub fn replay_with(
    framework: FrameworkHandle,
    jobs: &[CompressRequest],
    workers: usize,
    block_size: Option<usize>,
) -> (SweepPoint, Vec<f64>) {
    let service = CompressionService::start(
        framework,
        ServiceConfig {
            workers,
            queue_capacity: 256,
            block_size,
            ..ServiceConfig::default()
        },
    );
    let t0 = Instant::now();
    let mut tickets = Vec::with_capacity(jobs.len());
    for job in jobs {
        loop {
            match service.submit(job.clone()) {
                Ok(ticket) => {
                    tickets.push(ticket);
                    break;
                }
                Err(SubmitError::QueueFull) => std::thread::yield_now(),
                Err(SubmitError::ShuttingDown) => {
                    unreachable!("service not shut down during replay")
                }
            }
        }
    }
    let (completed, costs, mut wall_lats) = drain(tickets);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let metrics = service.shutdown();
    let sim_makespan_ms = makespan_ms(&costs, workers);
    let wall_latency_mean_ms = if wall_lats.is_empty() {
        0.0
    } else {
        wall_lats.iter().sum::<f64>() / wall_lats.len() as f64
    };
    let point = SweepPoint {
        workers,
        completed,
        wall_ms,
        sim_makespan_ms,
        jobs_per_sim_sec: if sim_makespan_ms > 0.0 {
            completed as f64 / (sim_makespan_ms / 1_000.0)
        } else {
            0.0
        },
        jobs_per_wall_sec: if wall_ms > 0.0 {
            completed as f64 / (wall_ms / 1_000.0)
        } else {
            0.0
        },
        cache_hit_rate: metrics.cache_hit_rate,
        speedup_vs_one: 1.0, // patched by the sweep driver
        wall_latency_p50_ms: exact_quantile_ms(&mut wall_lats, 0.50),
        wall_latency_p95_ms: exact_quantile_ms(&mut wall_lats, 0.95),
        wall_latency_mean_ms,
        metrics,
    };
    (point, costs)
}

/// Run the full sweep: one replay per worker count.
pub fn run_bench(cfg: &BenchConfig) -> BenchReport {
    let jobs = build_workload(cfg);
    let framework = synthetic_framework(cfg.seed);
    let mut sweep = Vec::new();
    let mut one_worker_throughput = None;
    for &workers in &cfg.worker_counts {
        let (mut point, _) = replay_with(framework.clone(), &jobs, workers, cfg.block_size);
        if workers == 1 {
            one_worker_throughput = Some(point.jobs_per_sim_sec);
        }
        if let Some(base) = one_worker_throughput {
            if base > 0.0 {
                point.speedup_vs_one = point.jobs_per_sim_sec / base;
            }
        }
        sweep.push(point);
    }
    BenchReport {
        corpus_files: cfg.files,
        contexts: cfg.contexts,
        repeats: cfg.repeats,
        jobs: jobs.len(),
        exchange: cfg.exchange,
        block_size: cfg.block_size,
        sweep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_degenerates_to_sum_for_one_lane() {
        let costs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert!((makespan_ms(&costs, 1) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_scales_and_respects_bounds() {
        let costs: Vec<f64> = (0..100).map(|i| 1.0 + (i % 7) as f64).collect();
        let total: f64 = costs.iter().sum();
        let max = costs.iter().cloned().fold(0.0, f64::max);
        for workers in [2, 4, 8] {
            let m = makespan_ms(&costs, workers);
            // Classic bounds: perfect split ≤ m ≤ list-scheduling bound.
            assert!(m >= total / workers as f64 - 1e-9);
            assert!(m <= total / workers as f64 + max + 1e-9);
        }
        // More lanes never hurt.
        assert!(makespan_ms(&costs, 8) <= makespan_ms(&costs, 4) + 1e-9);
    }

    #[test]
    fn synthetic_framework_learns_the_size_rule() {
        let fw = synthetic_framework(42);
        let ctx = |kb: u64| dnacomp_core::Context {
            ram_mb: 2048,
            cpu_mhz: 2393,
            bandwidth_mbps: 2.0,
            file_bytes: kb * 1024,
        };
        assert_eq!(fw.decide(&ctx(10)), Algorithm::GenCompress);
        assert_eq!(fw.decide(&ctx(800)), Algorithm::Dnax);
    }

    #[test]
    fn workload_shape_matches_config() {
        let cfg = BenchConfig {
            files: 5,
            contexts: 3,
            repeats: 2,
            ..BenchConfig::default()
        };
        let jobs = build_workload(&cfg);
        assert_eq!(jobs.len(), 5 * 3 * 2);
        // Repeats reuse identical (file, context) pairs — the cache's
        // bread and butter.
        assert_eq!(jobs[0].file, jobs[15].file);
        assert_eq!(jobs[0].context, jobs[15].context);
    }
}
