//! The TCP front-end: a supervised listener that speaks the
//! [`crate::proto`] wire protocol on behalf of a [`CompressionService`].
//!
//! Design rules, in order:
//!
//! 1. **Every accepted frame gets exactly one typed reply or a clean
//!    close** — the wire extension of the service's "every ticket
//!    resolves exactly once" contract. Even refusals (`ServerBusy`,
//!    `Shed`, `TooLarge`) are frames, never silent drops.
//! 2. **No operation outlives its deadline.** Idle connections close
//!    after the idle budget; a frame that started must finish within
//!    the frame budget; a job reply must arrive within the request
//!    budget. Slow-loris peers therefore cost one frame budget, not a
//!    thread forever.
//! 3. **Violators get strikes, desyncers get killed.** A violation
//!    that leaves the stream at a frame boundary (bad checksum,
//!    unknown type, malformed payload) earns a typed `BadFrame` reply
//!    and a strike; [`NetConfig::max_strikes`] strikes end the
//!    connection. A violation that loses framing (bad magic, forged
//!    length, mid-frame timeout or EOF) kills the connection
//!    immediately — there is no longer a frame boundary to reply on.
//! 4. **Backpressure is typed and layered.** The connection cap
//!    refuses at accept with `ServerBusy`; the service's admission
//!    control sheds Low lanes first (`shed_above`), surfacing as
//!    typed `Shed` replies; a full queue surfaces as `ServerBusy`.
//!    Degradation is graceful at every layer — load never turns into
//!    hangs or aborts.

use crate::conn::{read_frame, write_frame, IO_TICK};
use crate::proto::{
    request_frame, response_frame, ErrorCode, ProtoError, Request, Response, MAX_WIRE_PAYLOAD,
    WIRE_VERSION,
};
use crate::queue::Priority;
use crate::service::{CompressRequest, CompressionService, JobError, SubmitError};
use dnacomp_algos::CompressedBlob;
use dnacomp_codec::checksum::fnv1a;
use dnacomp_core::{contain_panic, Context, Deadline};
use dnacomp_seq::PackedSeq;
use dnacomp_store::{ContentKey, SequenceStore, StoreError};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Bases per chunk the client uses for streamed uploads: 64 KiB of
/// packed words per chunk, the same order as the "DF" container's
/// default block so a streamed upload maps 1:1 onto frame blocks.
pub const STREAM_CHUNK_BASES: u64 = 1 << 18;

/// Sequences longer than this are streamed (`CompressBegin`/`Chunk`/
/// `End`) instead of sent in one `Compress` frame.
pub const STREAM_THRESHOLD_BASES: usize = 1 << 20;

/// Front-end tuning knobs.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Concurrent connections before accept refuses with `ServerBusy`.
    pub max_connections: usize,
    /// Per-frame payload cap, bytes (affordability check).
    pub max_frame_payload: usize,
    /// Budget between frames before the server closes an idle
    /// connection cleanly.
    pub idle_timeout: Duration,
    /// Budget for the rest of a frame once its first byte arrived;
    /// exceeding it mid-frame is a kill offence (stream desync).
    pub frame_timeout: Duration,
    /// Budget for writing one reply frame.
    pub write_timeout: Duration,
    /// Budget from job submission to reply; exceeded ⇒ typed
    /// `Timeout` error reply (the ticket is abandoned, the service
    /// still resolves it internally).
    pub request_timeout: Duration,
    /// Frame-synced protocol violations tolerated before the kill.
    pub max_strikes: u32,
    /// Cap on a streamed upload's declared total length, bases.
    pub max_total_bases: u64,
    /// Run submitted jobs through the full cloud exchange.
    pub exchange: bool,
    /// Store for `get`/`stat` requests (also what the service
    /// persists into when it was started with one).
    pub store: Option<Arc<SequenceStore>>,
    /// Ring epoch this node is pinned to. `None` (the default) means
    /// epoch-agnostic: any [`Request::HelloEpoch`] or migration batch
    /// is accepted and the peer's epoch echoed back. `Some(e)` refuses
    /// mismatching epochs with a typed `WrongShard`.
    pub epoch: Option<u64>,
    /// Shard id this node answers to in `HelloEpoch` identity checks
    /// (0 = unsharded, the default).
    pub shard_id: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            max_frame_payload: MAX_WIRE_PAYLOAD,
            idle_timeout: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(30),
            max_strikes: 3,
            max_total_bases: 1 << 26,
            exchange: false,
            store: None,
            epoch: None,
            shard_id: 0,
        }
    }
}

/// A running TCP front-end. [`shutdown`](NetServer::shutdown) (or
/// drop) stops accepting, drains in-flight connections and joins
/// every handler thread.
#[derive(Debug)]
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `service`.
    pub fn start(
        service: Arc<CompressionService>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));

        let accept_stop = Arc::clone(&stop);
        let accept_handlers = Arc::clone(&handlers);
        let accept_thread = std::thread::Builder::new()
            .name("net-accept".into())
            .spawn(move || {
                let mut conn_id: u64 = 0;
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            conn_id += 1;
                            if active.load(Ordering::Relaxed) >= config.max_connections {
                                refuse_busy(&service, stream, &config);
                                continue;
                            }
                            active.fetch_add(1, Ordering::Relaxed);
                            let service = Arc::clone(&service);
                            let cfg = config.clone();
                            let stop = Arc::clone(&accept_stop);
                            let active = Arc::clone(&active);
                            let handle = std::thread::Builder::new()
                                .name(format!("net-conn-{conn_id}"))
                                .spawn(move || {
                                    service.metrics().record_conn_accepted();
                                    // A handler panic must close its own
                                    // connection's books, never the server.
                                    let killed = contain_panic(|| {
                                        handle_conn(stream, &service, &cfg, &stop)
                                    })
                                    .unwrap_or(true);
                                    if killed {
                                        service.metrics().record_conn_killed();
                                    }
                                    service.metrics().record_conn_closed();
                                    active.fetch_sub(1, Ordering::Relaxed);
                                })
                                .expect("spawn connection handler");
                            let mut hs = lock_handlers(&accept_handlers);
                            hs.retain(|h| !h.is_finished());
                            hs.push(handle);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })?;

        Ok(NetServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, drain in-flight connections and join every
    /// thread. Handlers notice the stop flag at their next frame
    /// boundary (within one idle-poll slice), finish the frame they
    /// are serving, and close — so the drain is bounded by one frame
    /// budget plus one request budget, not by client goodwill.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = lock_handlers(&self.handlers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn lock_handlers(
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    match handlers.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Best-effort `ServerBusy` refusal for an over-cap accept: the peer
/// gets a typed reason when it can read one, and a close either way.
fn refuse_busy(service: &CompressionService, mut stream: TcpStream, config: &NetConfig) {
    service.metrics().record_conn_refused();
    let _ = stream.set_write_timeout(Some(IO_TICK));
    let frame = response_frame(&Response::Error {
        code: ErrorCode::ServerBusy,
        message: "connection cap reached".into(),
    });
    if write_frame(&mut stream, &frame, Deadline::after(config.write_timeout)).is_ok() {
        service.metrics().record_frame_tx(frame.len() as u64);
    }
}

/// State of one in-progress streamed upload.
struct Upload {
    file: String,
    priority: Priority,
    context: Context,
    total_len: u64,
    chunk_bases: u64,
    next: u64,
    words: Vec<u8>,
}

impl Upload {
    fn chunk_count(&self) -> u64 {
        self.total_len.div_ceil(self.chunk_bases)
    }

    fn expected_words(&self, index: u64) -> u64 {
        let start = index * self.chunk_bases;
        let bases = self.total_len.saturating_sub(start).min(self.chunk_bases);
        bases.div_ceil(4)
    }
}

/// What handling one frame decided about the connection's future.
enum Flow {
    /// Keep serving frames.
    Continue,
    /// Clean close (Bye, or post-reply shutdown drain).
    Close,
    /// Supervisor kill: desync or strike budget exhausted.
    Kill,
}

/// Serve one connection to completion. Returns `true` when the
/// connection was killed (vs closed cleanly).
fn handle_conn(
    mut stream: TcpStream,
    service: &CompressionService,
    cfg: &NetConfig,
    stop: &AtomicBool,
) -> bool {
    let _ = stream.set_read_timeout(Some(IO_TICK));
    let _ = stream.set_write_timeout(Some(IO_TICK));
    let _ = stream.set_nodelay(true);
    let m = service.metrics();

    let mut strikes: u32 = 0;
    let mut handshaken = false;
    let mut upload: Option<Upload> = None;
    let mut idle = Deadline::after(cfg.idle_timeout);

    loop {
        if stop.load(Ordering::Relaxed) {
            return false; // drain: frame boundary, close cleanly
        }
        // Short idle slices keep the shutdown flag observed promptly
        // while the overall idle budget stays `idle_timeout`.
        let slice = Deadline::after(idle.remaining().min(Duration::from_millis(50)));
        let (ftype, payload, wire) =
            match read_frame(&mut stream, cfg.max_frame_payload, slice, cfg.frame_timeout) {
                Ok(frame) => frame,
                Err(ProtoError::Idle) => {
                    if idle.expired() {
                        return false; // clean idle close
                    }
                    continue;
                }
                Err(ProtoError::Closed) => return false,
                Err(ProtoError::ChecksumMismatch { .. }) => {
                    // Frame-synced violation: the whole frame was
                    // consumed, so a typed reply is still possible.
                    m.record_protocol_error();
                    strikes += 1;
                    let flow = send_reply(
                        &mut stream,
                        service,
                        cfg,
                        &Response::Error {
                            code: ErrorCode::BadFrame,
                            message: "frame checksum mismatch".into(),
                        },
                    );
                    if strikes >= cfg.max_strikes || matches!(flow, Flow::Kill) {
                        return true;
                    }
                    idle = Deadline::after(cfg.idle_timeout);
                    continue;
                }
                Err(e) => {
                    // Desync: bad magic/version, forged length, torn
                    // frame, mid-frame timeout, transport error. No
                    // frame boundary remains — best-effort typed
                    // refusal, then kill.
                    m.record_protocol_error();
                    let code = match e {
                        ProtoError::Oversize { .. } => ErrorCode::TooLarge,
                        _ => ErrorCode::BadFrame,
                    };
                    let _ = send_reply(
                        &mut stream,
                        service,
                        cfg,
                        &Response::Error {
                            code,
                            message: e.to_string(),
                        },
                    );
                    return true;
                }
            };
        m.record_frame_rx(wire);
        idle = Deadline::after(cfg.idle_timeout);

        let req = match Request::decode(ftype, &payload) {
            Ok(req) => req,
            Err(e) => {
                // Payload-level violation: frame-synced, reply + strike.
                m.record_protocol_error();
                strikes += 1;
                let flow = send_reply(
                    &mut stream,
                    service,
                    cfg,
                    &Response::Error {
                        code: ErrorCode::BadFrame,
                        message: e.to_string(),
                    },
                );
                if strikes >= cfg.max_strikes || matches!(flow, Flow::Kill) {
                    return true;
                }
                continue;
            }
        };

        let (reply, flow, strike) = dispatch(service, cfg, &mut handshaken, &mut upload, req);
        if strike {
            m.record_protocol_error();
            strikes += 1;
        }
        let wrote = send_reply(&mut stream, service, cfg, &reply);
        if matches!(wrote, Flow::Kill) {
            return false; // peer vanished mid-reply: close, not a kill
        }
        match flow {
            Flow::Kill => return true,
            Flow::Close => return false,
            Flow::Continue => {
                if strikes >= cfg.max_strikes {
                    return true;
                }
            }
        }
    }
}

/// Write one reply frame; `Flow::Kill` here means the write failed
/// (peer gone or write deadline blown).
fn send_reply(
    stream: &mut TcpStream,
    service: &CompressionService,
    cfg: &NetConfig,
    resp: &Response,
) -> Flow {
    let frame = response_frame(resp);
    match write_frame(stream, &frame, Deadline::after(cfg.write_timeout)) {
        Ok(()) => {
            service.metrics().record_frame_tx(frame.len() as u64);
            Flow::Continue
        }
        Err(_) => Flow::Kill,
    }
}

/// Vet a ring-aware handshake against this node's pinned identity.
/// Returns `(reply, flow, strike)`; the caller flips `handshaken` on
/// success.
fn epoch_handshake(cfg: &NetConfig, version: u8, epoch: u64, shard: u32) -> (Response, Flow, bool) {
    if version != WIRE_VERSION {
        return (
            Response::Error {
                code: ErrorCode::Handshake,
                message: format!("server speaks version {WIRE_VERSION}, client {version}"),
            },
            Flow::Kill,
            true,
        );
    }
    if shard != cfg.shard_id {
        return (
            Response::Error {
                code: ErrorCode::WrongShard,
                message: format!(
                    "this node is shard {}, client addressed shard {shard}",
                    cfg.shard_id
                ),
            },
            Flow::Kill,
            true,
        );
    }
    if let Some(pinned) = cfg.epoch {
        if epoch != pinned {
            return (
                Response::Error {
                    code: ErrorCode::WrongShard,
                    message: format!("stale ring epoch {epoch:#x} (node pinned to {pinned:#x})"),
                },
                Flow::Kill,
                true,
            );
        }
    }
    (
        Response::HelloEpochOk {
            version: WIRE_VERSION,
            epoch: cfg.epoch.unwrap_or(epoch),
            shard: cfg.shard_id,
        },
        Flow::Continue,
        false,
    )
}

/// Handle one decoded request. Returns `(reply, flow, strike)`.
fn dispatch(
    service: &CompressionService,
    cfg: &NetConfig,
    handshaken: &mut bool,
    upload: &mut Option<Upload>,
    req: Request,
) -> (Response, Flow, bool) {
    // The handshake gate: before Hello, only Hello.
    if !*handshaken {
        return match req {
            Request::Hello { version } if version == WIRE_VERSION => {
                *handshaken = true;
                (
                    Response::HelloOk {
                        version: WIRE_VERSION,
                    },
                    Flow::Continue,
                    false,
                )
            }
            Request::Hello { version } => (
                Response::Error {
                    code: ErrorCode::Handshake,
                    message: format!("server speaks version {WIRE_VERSION}, client {version}"),
                },
                Flow::Kill,
                true,
            ),
            Request::HelloEpoch {
                version,
                epoch,
                shard,
            } => {
                let (reply, flow, strike) = epoch_handshake(cfg, version, epoch, shard);
                if matches!(reply, Response::HelloEpochOk { .. }) {
                    *handshaken = true;
                }
                (reply, flow, strike)
            }
            _ => (
                Response::Error {
                    code: ErrorCode::Handshake,
                    message: "first frame must be Hello".into(),
                },
                Flow::Continue,
                true,
            ),
        };
    }

    match req {
        Request::Hello { .. } => (
            Response::HelloOk {
                version: WIRE_VERSION,
            },
            Flow::Continue,
            false,
        ),
        Request::Ping => (Response::Pong, Flow::Continue, false),
        Request::Metrics => (
            Response::MetricsOk {
                json: service.metrics().snapshot().to_json(),
            },
            Flow::Continue,
            false,
        ),
        Request::Bye => (Response::ByeOk, Flow::Close, false),
        Request::Compress {
            file,
            priority,
            context,
            seq_len,
            words,
        } => match PackedSeq::from_words(words, seq_len as usize) {
            Ok(seq) => (
                run_job(service, cfg, file, seq, priority, context),
                Flow::Continue,
                false,
            ),
            Err(_) => (
                Response::Error {
                    code: ErrorCode::BadSequence,
                    message: "packed words do not form a sequence".into(),
                },
                Flow::Continue,
                true,
            ),
        },
        Request::CompressBegin {
            file,
            priority,
            context,
            total_len,
            chunk_bases,
        } => {
            if upload.is_some() {
                return (
                    Response::Error {
                        code: ErrorCode::BadFrame,
                        message: "upload already open".into(),
                    },
                    Flow::Continue,
                    true,
                );
            }
            if chunk_bases == 0 || chunk_bases % 4 != 0 {
                return (
                    Response::Error {
                        code: ErrorCode::BadFrame,
                        message: "chunk_bases must be a positive multiple of 4".into(),
                    },
                    Flow::Continue,
                    true,
                );
            }
            if total_len > cfg.max_total_bases {
                return (
                    Response::Error {
                        code: ErrorCode::TooLarge,
                        message: format!(
                            "total_len {total_len} exceeds cap {}",
                            cfg.max_total_bases
                        ),
                    },
                    Flow::Continue,
                    false,
                );
            }
            if chunk_bases.div_ceil(4) > cfg.max_frame_payload as u64 {
                return (
                    Response::Error {
                        code: ErrorCode::TooLarge,
                        message: "chunk_bases exceeds the frame payload cap".into(),
                    },
                    Flow::Continue,
                    false,
                );
            }
            // Affordability: reserve from the *declared* geometry only
            // after every bound above held.
            *upload = Some(Upload {
                file,
                priority,
                context,
                total_len,
                chunk_bases,
                next: 0,
                words: Vec::with_capacity(total_len.div_ceil(4) as usize),
            });
            (Response::Ack, Flow::Continue, false)
        }
        Request::CompressChunk { index, words } => {
            let Some(up) = upload.as_mut() else {
                return (
                    Response::Error {
                        code: ErrorCode::BadFrame,
                        message: "chunk without an open upload".into(),
                    },
                    Flow::Continue,
                    true,
                );
            };
            if index != up.next || index >= up.chunk_count() {
                let msg = format!("chunk {index} out of order (expected {})", up.next);
                *upload = None;
                return (
                    Response::Error {
                        code: ErrorCode::BadFrame,
                        message: msg,
                    },
                    Flow::Continue,
                    true,
                );
            }
            if words.len() as u64 != up.expected_words(index) {
                let msg = format!(
                    "chunk {index} carries {} words, geometry says {}",
                    words.len(),
                    up.expected_words(index)
                );
                *upload = None;
                return (
                    Response::Error {
                        code: ErrorCode::BadSequence,
                        message: msg,
                    },
                    Flow::Continue,
                    true,
                );
            }
            up.words.extend_from_slice(&words);
            up.next += 1;
            (Response::Ack, Flow::Continue, false)
        }
        Request::CompressEnd { checksum } => {
            let Some(up) = upload.take() else {
                return (
                    Response::Error {
                        code: ErrorCode::BadFrame,
                        message: "end without an open upload".into(),
                    },
                    Flow::Continue,
                    true,
                );
            };
            if up.next != up.chunk_count() {
                return (
                    Response::Error {
                        code: ErrorCode::BadSequence,
                        message: format!(
                            "upload ended after {} of {} chunks",
                            up.next,
                            up.chunk_count()
                        ),
                    },
                    Flow::Continue,
                    true,
                );
            }
            if fnv1a(&up.words) != checksum {
                return (
                    Response::Error {
                        code: ErrorCode::BadSequence,
                        message: "reassembled sequence fails its checksum".into(),
                    },
                    Flow::Continue,
                    true,
                );
            }
            match PackedSeq::from_words(up.words, up.total_len as usize) {
                Ok(seq) => (
                    run_job(service, cfg, up.file, seq, up.priority, up.context),
                    Flow::Continue,
                    false,
                ),
                Err(_) => (
                    Response::Error {
                        code: ErrorCode::BadSequence,
                        message: "packed words do not form a sequence".into(),
                    },
                    Flow::Continue,
                    true,
                ),
            }
        }
        Request::Get { key } => {
            let Some(store) = cfg.store.as_deref() else {
                return (
                    Response::Error {
                        code: ErrorCode::NoStore,
                        message: "no store attached".into(),
                    },
                    Flow::Continue,
                    false,
                );
            };
            match store.get(&ContentKey(key)) {
                Ok(blob) => {
                    let bytes = blob.to_bytes();
                    if bytes.len() > cfg.max_frame_payload {
                        (
                            Response::Error {
                                code: ErrorCode::TooLarge,
                                message: "stored blob exceeds the frame payload cap".into(),
                            },
                            Flow::Continue,
                            false,
                        )
                    } else {
                        (Response::GetOk { blob: bytes }, Flow::Continue, false)
                    }
                }
                Err(StoreError::NotFound(k)) => (
                    Response::Error {
                        code: ErrorCode::UnknownKey,
                        message: format!("no record under {}", k.to_hex()),
                    },
                    Flow::Continue,
                    false,
                ),
                Err(e) => (
                    Response::Error {
                        code: ErrorCode::JobFailed,
                        message: format!("store read failed: {e}"),
                    },
                    Flow::Continue,
                    false,
                ),
            }
        }
        Request::Stat { key } => {
            let Some(store) = cfg.store.as_deref() else {
                return (
                    Response::Error {
                        code: ErrorCode::NoStore,
                        message: "no store attached".into(),
                    },
                    Flow::Continue,
                    false,
                );
            };
            let json = match key {
                None => {
                    let s = store.snapshot();
                    format!(
                        concat!(
                            "{{\"records\":{},\"segments\":{},",
                            "\"runs\":{},\"tombstones\":{},",
                            "\"bytes_on_disk\":{},\"live_bytes\":{},",
                            "\"puts\":{},\"dedup_hits\":{},",
                            "\"removes\":{},\"scrub_failures\":{},",
                            "\"seals\":{},\"merges\":{},",
                            "\"bloom_negatives\":{},",
                            "\"cache_hits\":{},\"cache_misses\":{},",
                            "\"wal_appends\":{},\"wal_batches\":{}}}"
                        ),
                        s.records,
                        s.segments,
                        s.runs,
                        s.tombstones,
                        s.bytes_on_disk,
                        s.live_bytes,
                        s.puts,
                        s.dedup_hits,
                        s.removes,
                        s.scrub_failures,
                        s.seals,
                        s.merges,
                        s.bloom_negatives,
                        s.cache_hits,
                        s.cache_misses,
                        s.wal_appends,
                        s.wal_batches
                    )
                }
                Some(key) => match store.stat(&ContentKey(key)) {
                    Some(rs) => format!(
                        concat!(
                            "{{\"key\":\"{}\",\"algorithm\":\"{}\",",
                            "\"original_len\":{},\"stored_bytes\":{},",
                            "\"segment\":{},\"level\":{}}}"
                        ),
                        rs.key.to_hex(),
                        rs.algorithm.name(),
                        rs.original_len,
                        rs.stored_bytes,
                        rs.segment,
                        rs.level
                    ),
                    None => {
                        return (
                            Response::Error {
                                code: ErrorCode::UnknownKey,
                                message: format!(
                                    "no record under {}",
                                    ContentKey(key).to_hex()
                                ),
                            },
                            Flow::Continue,
                            false,
                        )
                    }
                },
            };
            (Response::StatOk { json }, Flow::Continue, false)
        }
        Request::HelloEpoch {
            version,
            epoch,
            shard,
        } => epoch_handshake(cfg, version, epoch, shard),
        Request::Keys => {
            let Some(store) = cfg.store.as_deref() else {
                return (
                    Response::Error {
                        code: ErrorCode::NoStore,
                        message: "no store attached".into(),
                    },
                    Flow::Continue,
                    false,
                );
            };
            let keys: Vec<[u8; 16]> = store.keys().into_iter().map(|k| k.0).collect();
            // The key list must fit one reply frame; 10 bytes covers
            // the count uvarint.
            if keys.len() * 16 + 10 > cfg.max_frame_payload {
                (
                    Response::Error {
                        code: ErrorCode::TooLarge,
                        message: format!("{} keys exceed the reply frame cap", keys.len()),
                    },
                    Flow::Continue,
                    false,
                )
            } else {
                (Response::KeysOk { keys }, Flow::Continue, false)
            }
        }
        Request::Remove { key } => {
            let Some(store) = cfg.store.as_deref() else {
                return (
                    Response::Error {
                        code: ErrorCode::NoStore,
                        message: "no store attached".into(),
                    },
                    Flow::Continue,
                    false,
                );
            };
            match store.remove(&ContentKey(key)) {
                Ok(existed) => (Response::RemoveOk { existed }, Flow::Continue, false),
                Err(e) => (
                    Response::Error {
                        code: ErrorCode::JobFailed,
                        message: format!("remove failed: {e}"),
                    },
                    Flow::Continue,
                    false,
                ),
            }
        }
        Request::MigrateBatch { epoch, records } => {
            let Some(store) = cfg.store.as_deref() else {
                return (
                    Response::Error {
                        code: ErrorCode::NoStore,
                        message: "no store attached".into(),
                    },
                    Flow::Continue,
                    false,
                );
            };
            if let Some(pinned) = cfg.epoch {
                if epoch != pinned {
                    // A correctness refusal, not a protocol violation:
                    // the batch framed cleanly, the sender's ring is
                    // just stale. No strike, connection survives.
                    return (
                        Response::Error {
                            code: ErrorCode::WrongShard,
                            message: format!(
                                "migration planned under epoch {epoch:#x}, node pinned to {pinned:#x}"
                            ),
                        },
                        Flow::Continue,
                        false,
                    );
                }
            }
            let mut stored = 0u64;
            let mut deduped = 0u64;
            for (idx, (key, bytes)) in records.iter().enumerate() {
                let blob = match CompressedBlob::from_bytes(bytes) {
                    Ok(blob) => blob,
                    Err(_) => {
                        return (
                            Response::Error {
                                code: ErrorCode::BadSequence,
                                message: format!("record {idx} is not a valid container"),
                            },
                            Flow::Continue,
                            true,
                        )
                    }
                };
                match store.put_with_key(ContentKey(*key), &blob) {
                    Ok(outcome) => {
                        stored += 1;
                        if outcome.deduped {
                            deduped += 1;
                        }
                    }
                    Err(e) => {
                        return (
                            Response::Error {
                                code: ErrorCode::JobFailed,
                                message: format!("record {idx} write failed: {e}"),
                            },
                            Flow::Continue,
                            false,
                        )
                    }
                }
            }
            (Response::MigrateOk { stored, deduped }, Flow::Continue, false)
        }
    }
}

/// Submit one job and wait (bounded) for its ticket.
fn run_job(
    service: &CompressionService,
    cfg: &NetConfig,
    file: String,
    seq: PackedSeq,
    priority: Priority,
    context: Context,
) -> Response {
    let req = CompressRequest {
        file,
        sequence: seq,
        context,
        priority,
        deadline: Some(cfg.request_timeout),
        exchange: cfg.exchange,
    };
    let ticket = match service.submit(req) {
        Ok(t) => t,
        Err(SubmitError::QueueFull) => {
            return Response::Error {
                code: ErrorCode::ServerBusy,
                message: "submission queue full".into(),
            }
        }
        Err(SubmitError::ShuttingDown) => {
            return Response::Error {
                code: ErrorCode::ServerBusy,
                message: "service shutting down".into(),
            }
        }
    };
    let deadline = Deadline::after(cfg.request_timeout);
    let result = loop {
        if let Some(r) = ticket.try_wait() {
            break r;
        }
        if deadline.expired() {
            // The ticket still resolves inside the service; the wire
            // contract only promises this *frame* a typed reply.
            return Response::Error {
                code: ErrorCode::Timeout,
                message: "job still running at the request deadline".into(),
            };
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    match result {
        Ok(resp) => Response::CompressOk {
            file: resp.file,
            algorithm: resp.algorithm.tag(),
            original_len: resp.original_len as u64,
            compressed_bytes: resp.compressed_bytes as u64,
            blocks: resp.blocks as u64,
            sim_ms: resp.sim_ms,
            cache_hit: resp.cache_hit,
            key: resp.persisted.map(|p| p.key.0),
        },
        Err(e @ JobError::Shed { .. }) => Response::Error {
            code: ErrorCode::Shed,
            message: e.to_string(),
        },
        Err(e @ JobError::Expired { .. }) => Response::Error {
            code: ErrorCode::Timeout,
            message: e.to_string(),
        },
        Err(e) => Response::Error {
            code: ErrorCode::JobFailed,
            message: e.to_string(),
        },
    }
}

/// A typed failure from a [`NetClient`] call.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientError {
    /// Transport or framing failure.
    Proto(ProtoError),
    /// The server answered with a typed error frame.
    Server {
        /// The machine-readable reason.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
    /// The server answered with a frame of the wrong type.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected reply: {what}"),
        }
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// A protocol client over any byte stream — a plain `TcpStream` in
/// production, a [`crate::conn::FaultyStream`] in the chaos tests.
#[derive(Debug)]
pub struct NetClient<S> {
    stream: S,
    cap: usize,
    timeout: Duration,
}

impl NetClient<TcpStream> {
    /// Connect, configure tick timeouts, and run the handshake.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(|e| ProtoError::Io(e.kind()))?;
        stream
            .set_read_timeout(Some(IO_TICK))
            .map_err(|e| ProtoError::Io(e.kind()))?;
        stream
            .set_write_timeout(Some(IO_TICK))
            .map_err(|e| ProtoError::Io(e.kind()))?;
        let _ = stream.set_nodelay(true);
        let mut client = NetClient::over(stream, timeout);
        client.handshake()?;
        Ok(client)
    }
}

impl<S: Read + Write> NetClient<S> {
    /// Wrap an already-configured stream (no handshake yet). The
    /// stream's own read/write timeouts should be short ticks (see
    /// [`IO_TICK`]) for the deadline loops to work.
    pub fn over(stream: S, timeout: Duration) -> Self {
        NetClient {
            stream,
            cap: MAX_WIRE_PAYLOAD,
            timeout,
        }
    }

    /// Say Hello and require a matching HelloOk.
    pub fn handshake(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Hello {
            version: WIRE_VERSION,
        })? {
            Response::HelloOk { version } if version == WIRE_VERSION => Ok(()),
            Response::HelloOk { .. } => Err(ClientError::Unexpected("handshake version")),
            other => Err(unexpected(other, "HelloOk")),
        }
    }

    /// One request/response exchange, bounded by the client timeout.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let frame = request_frame(req);
        write_frame(&mut self.stream, &frame, Deadline::after(self.timeout))?;
        let (t, payload, _) = read_frame(
            &mut self.stream,
            self.cap,
            Deadline::after(self.timeout),
            self.timeout,
        )?;
        Ok(Response::decode(t, &payload)?)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other, "Pong")),
        }
    }

    /// Fetch the service metrics snapshot as JSON.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::MetricsOk { json } => Ok(json),
            other => Err(unexpected(other, "MetricsOk")),
        }
    }

    /// Ring-aware handshake: assert the ring epoch and the shard id
    /// this connection is meant for, and require the node to agree.
    pub fn handshake_epoch(&mut self, epoch: u64, shard: u32) -> Result<(), ClientError> {
        match self.call(&Request::HelloEpoch {
            version: WIRE_VERSION,
            epoch,
            shard,
        })? {
            Response::HelloEpochOk {
                version,
                epoch: server_epoch,
                shard: server_shard,
            } => {
                if version != WIRE_VERSION {
                    return Err(ClientError::Unexpected("handshake version"));
                }
                if server_epoch != epoch || server_shard != shard {
                    return Err(ClientError::Unexpected("handshake ring identity"));
                }
                Ok(())
            }
            other => Err(unexpected(other, "HelloEpochOk")),
        }
    }

    /// List every content key resident in the node's store.
    pub fn keys(&mut self) -> Result<Vec<[u8; 16]>, ClientError> {
        match self.call(&Request::Keys)? {
            Response::KeysOk { keys } => Ok(keys),
            other => Err(unexpected(other, "KeysOk")),
        }
    }

    /// Remove one record by content key; `Ok(existed)`.
    pub fn remove(&mut self, key: [u8; 16]) -> Result<bool, ClientError> {
        match self.call(&Request::Remove { key })? {
            Response::RemoveOk { existed } => Ok(existed),
            other => Err(unexpected(other, "RemoveOk")),
        }
    }

    /// Ship a checksummed batch of records into the node's store;
    /// `Ok((stored, deduped))`.
    pub fn migrate_batch(
        &mut self,
        epoch: u64,
        records: Vec<([u8; 16], Vec<u8>)>,
    ) -> Result<(u64, u64), ClientError> {
        match self.call(&Request::MigrateBatch { epoch, records })? {
            Response::MigrateOk { stored, deduped } => Ok((stored, deduped)),
            other => Err(unexpected(other, "MigrateOk")),
        }
    }

    /// Compress one sequence, streaming it in chunks when it is
    /// longer than [`STREAM_THRESHOLD_BASES`].
    pub fn compress(
        &mut self,
        file: &str,
        seq: &PackedSeq,
        priority: Priority,
        context: Context,
    ) -> Result<Response, ClientError> {
        if seq.len() <= STREAM_THRESHOLD_BASES {
            return self.call(&Request::Compress {
                file: file.to_owned(),
                priority,
                context,
                seq_len: seq.len() as u64,
                words: seq.as_words().to_vec(),
            });
        }
        self.compress_streamed(file, seq, priority, context, STREAM_CHUNK_BASES)
    }

    /// Compress via the streamed path with an explicit chunk size.
    pub fn compress_streamed(
        &mut self,
        file: &str,
        seq: &PackedSeq,
        priority: Priority,
        context: Context,
        chunk_bases: u64,
    ) -> Result<Response, ClientError> {
        let words = seq.as_words();
        let total_len = seq.len() as u64;
        expect_ack(self.call(&Request::CompressBegin {
            file: file.to_owned(),
            priority,
            context,
            total_len,
            chunk_bases,
        })?)?;
        let chunk_words = (chunk_bases / 4) as usize;
        for (index, chunk) in words.chunks(chunk_words.max(1)).enumerate() {
            expect_ack(self.call(&Request::CompressChunk {
                index: index as u64,
                words: chunk.to_vec(),
            })?)?;
        }
        self.call(&Request::CompressEnd {
            checksum: fnv1a(words),
        })
    }

    /// Fetch a stored container's bytes by content key.
    pub fn get(&mut self, key: [u8; 16]) -> Result<Vec<u8>, ClientError> {
        match self.call(&Request::Get { key })? {
            Response::GetOk { blob } => Ok(blob),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(unexpected(other, "GetOk")),
        }
    }

    /// Store statistics (whole store, or one record).
    pub fn stat(&mut self, key: Option<[u8; 16]>) -> Result<String, ClientError> {
        match self.call(&Request::Stat { key })? {
            Response::StatOk { json } => Ok(json),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(unexpected(other, "StatOk")),
        }
    }

    /// Clean goodbye; consumes the client.
    pub fn bye(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Bye)? {
            Response::ByeOk => Ok(()),
            other => Err(unexpected(other, "ByeOk")),
        }
    }

    /// The wrapped stream (chaos tests inspect fault state).
    pub fn stream_ref(&self) -> &S {
        &self.stream
    }
}

fn expect_ack(resp: Response) -> Result<(), ClientError> {
    match resp {
        Response::Ack => Ok(()),
        Response::Error { code, message } => Err(ClientError::Server { code, message }),
        other => Err(unexpected(other, "Ack")),
    }
}

fn unexpected(resp: Response, wanted: &'static str) -> ClientError {
    match resp {
        Response::Error { code, message } => ClientError::Server { code, message },
        _ => ClientError::Unexpected(wanted),
    }
}
