//! The shard router: one `"DW"` endpoint in front of N shard servers.
//!
//! A [`RouterServer`] speaks the existing wire protocol on both sides.
//! Clients connect to it exactly as they would to a single
//! [`crate::net::NetServer`]; every keyed request (`Get`, `Stat`,
//! `Compress` — whose content key is a pure function of the sequence)
//! is mapped to a shard by the consistent-hash [`Ring`] and forwarded
//! over a pooled back-end connection. The router is therefore a
//! *transparent* scale-out layer: a compress acknowledged through the
//! router is stored on some shard, and a later get for its key routes
//! to the same shard by construction.
//!
//! ## Failure discipline
//!
//! Every hop is bounded: back-end checkouts and calls live under the
//! per-shard deadline, a transport failure against the owner earns one
//! bounded retry against the key's **designated successor** (the next
//! distinct shard clockwise on the ring), and when both are gone the
//! client gets a typed [`ErrorCode::ShardDown`] — never a hang, never
//! a silent drop. `Get` adds a read fallback: a clean `UnknownKey`
//! from the owner retries the successor, so keys written to the
//! successor during an owner outage stay readable (no acknowledged
//! put is ever lost to a failover).
//!
//! A prober thread pings every shard on a fixed cadence; consecutive
//! failures eject a shard (strike-based, like connection kills), a
//! successful probe re-admits it. Ejected shards are skipped by the
//! forwarding path, which is what turns a dead back-end from "every
//! request times out" into "requests fail over instantly".
//!
//! ## Epochs and rebalance
//!
//! The ring's membership digest — its **epoch** — is asserted by
//! epoch-aware peers in the `HelloEpoch` handshake. A router refuses
//! mismatching epochs with [`ErrorCode::WrongShard`]: a stale peer
//! cannot forward into a reshaped ring. When the shard set changes,
//! [`rebalance`] walks every shard's resident keys over the wire and
//! migrates misplaced records to their new owners in checksummed
//! batches, deleting each source record only after the destination
//! acknowledged the copy.

use crate::conn::{read_frame, write_frame, Checkout, CountingStream, StreamPool, IO_TICK};
use crate::metrics::{RouterMetrics, RouterMetricsSnapshot, ShardLabel};
use crate::net::{ClientError, NetClient};
use crate::proto::{
    response_frame, ErrorCode, ProtoError, Request, Response, MAX_WIRE_PAYLOAD, WIRE_VERSION,
};
use crate::queue::Priority;
use crate::ring::{Ring, ShardSpec};
use dnacomp_codec::checksum::fnv1a;
use dnacomp_core::{contain_panic, Context, Deadline};
use dnacomp_seq::PackedSeq;
use dnacomp_store::ContentKey;
use serde::{Deserialize, Serialize};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Client connections before accept refuses with `ServerBusy`.
    pub max_connections: usize,
    /// Per-frame payload cap, bytes.
    pub max_frame_payload: usize,
    /// Client idle budget between frames.
    pub idle_timeout: Duration,
    /// Client mid-frame budget.
    pub frame_timeout: Duration,
    /// Reply write budget.
    pub write_timeout: Duration,
    /// Per-shard forward deadline: pool checkout + dial + the whole
    /// request/response exchange against one shard.
    pub shard_timeout: Duration,
    /// Back-end connections per shard — the hard per-shard
    /// concurrency budget ([`StreamPool`] blocks beyond it).
    pub pool_per_shard: usize,
    /// Frame-synced client violations tolerated before the kill.
    pub max_strikes: u32,
    /// Cap on a streamed upload's declared total length, bases.
    pub max_total_bases: u64,
    /// Cadence of shard health probes.
    pub probe_interval: Duration,
    /// Deadline for one probe ping.
    pub probe_timeout: Duration,
    /// Consecutive probe failures before a shard is ejected.
    pub probe_strikes: u32,
    /// Handshake back-ends with `HelloEpoch` (requires shards started
    /// with matching `--shard-id`/`--epoch`); plain `Hello` otherwise.
    pub pinned_backends: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_connections: 64,
            max_frame_payload: MAX_WIRE_PAYLOAD,
            idle_timeout: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            shard_timeout: Duration::from_secs(5),
            pool_per_shard: 2,
            max_strikes: 3,
            max_total_bases: 1 << 26,
            probe_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_millis(500),
            probe_strikes: 3,
            pinned_backends: false,
        }
    }
}

type BackendClient = NetClient<CountingStream<TcpStream>>;

/// Live state of one back-end shard.
#[derive(Debug)]
struct ShardState {
    spec: ShardSpec,
    healthy: AtomicBool,
    probe_strikes: AtomicU32,
    pool: StreamPool<BackendClient>,
}

/// Everything the handler and prober threads share.
#[derive(Debug)]
struct RouterShared {
    ring: Ring,
    cfg: RouterConfig,
    shards: Vec<ShardState>,
    metrics: RouterMetrics,
}

impl RouterShared {
    fn labels(&self) -> Vec<ShardLabel> {
        self.shards
            .iter()
            .map(|s| ShardLabel {
                id: s.spec.id,
                addr: s.spec.addr.clone(),
                healthy: s.healthy.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn snapshot(&self) -> RouterMetricsSnapshot {
        self.metrics.snapshot(self.ring.epoch(), &self.labels())
    }
}

/// How a back-end attempt failed (typed server errors are not
/// failures — they are forwarded to the client verbatim).
#[derive(Debug)]
enum BackendError {
    /// The per-shard connection budget stayed exhausted for the whole
    /// deadline.
    PoolBusy,
    /// Dial, handshake or transport failure.
    Transport(ClientError),
}

/// Dial one fresh connection to `slot`, wire-byte-counted and
/// handshaken.
fn dial(shared: &RouterShared, slot: usize) -> Result<BackendClient, ClientError> {
    let spec = &shared.shards[slot].spec;
    let stream =
        TcpStream::connect(spec.addr.as_str()).map_err(|e| ProtoError::Io(e.kind()))?;
    stream
        .set_read_timeout(Some(IO_TICK))
        .map_err(|e| ProtoError::Io(e.kind()))?;
    stream
        .set_write_timeout(Some(IO_TICK))
        .map_err(|e| ProtoError::Io(e.kind()))?;
    let _ = stream.set_nodelay(true);
    let (tx, rx) = shared.metrics.byte_counters(slot);
    let mut client = NetClient::over(CountingStream::new(stream, tx, rx), shared.cfg.shard_timeout);
    if shared.cfg.pinned_backends {
        client.handshake_epoch(shared.ring.epoch(), spec.id)?;
    } else {
        client.handshake()?;
    }
    Ok(client)
}

/// Run `f` against a pooled connection to `slot`, within `budget`.
///
/// A pooled connection that fails in transport is retried once on a
/// fresh dial before the attempt is declared failed — a shard restart
/// leaves stale sockets in every pool, and one redial cleanly
/// distinguishes "shard was restarted" from "shard is down".
fn with_backend<T>(
    shared: &RouterShared,
    slot: usize,
    budget: Duration,
    f: impl Fn(&mut BackendClient) -> Result<T, ClientError>,
) -> Result<T, BackendError> {
    let pool = &shared.shards[slot].pool;
    let deadline = Deadline::after(budget);
    let (mut client, reused) = match pool.checkout(deadline) {
        None => return Err(BackendError::PoolBusy),
        Some(Checkout::Reused(c)) => (c, true),
        Some(Checkout::Dial) => match dial(shared, slot) {
            Ok(c) => (c, false),
            Err(e) => {
                pool.discard();
                return Err(BackendError::Transport(e));
            }
        },
    };
    match f(&mut client) {
        Ok(v) => {
            pool.checkin(client);
            Ok(v)
        }
        Err(first) => {
            pool.discard();
            if !reused {
                return Err(BackendError::Transport(first));
            }
            // Stale pooled socket: one fresh dial, one more try.
            match pool.checkout(deadline) {
                Some(Checkout::Dial) => match dial(shared, slot) {
                    Ok(mut fresh) => match f(&mut fresh) {
                        Ok(v) => {
                            pool.checkin(fresh);
                            Ok(v)
                        }
                        Err(e) => {
                            pool.discard();
                            Err(BackendError::Transport(e))
                        }
                    },
                    Err(e) => {
                        pool.discard();
                        Err(BackendError::Transport(e))
                    }
                },
                Some(Checkout::Reused(c)) => {
                    // Another thread returned a conn meanwhile; use it.
                    let mut c = c;
                    match f(&mut c) {
                        Ok(v) => {
                            pool.checkin(c);
                            Ok(v)
                        }
                        Err(e) => {
                            pool.discard();
                            Err(BackendError::Transport(e))
                        }
                    }
                }
                None => Err(BackendError::Transport(first)),
            }
        }
    }
}

/// Forward one keyed request: owner first, then the designated
/// successor on transport failure (and, for `Get`, on a clean miss).
/// Exhausting both is a typed `ShardDown`.
fn forward(
    shared: &RouterShared,
    key: &[u8; 16],
    is_get: bool,
    run: impl Fn(&mut BackendClient) -> Result<Response, ClientError>,
) -> Response {
    let owner = shared.ring.slot_for(key);
    let successor = shared.ring.successor_slot(key);
    let mut candidates = Vec::with_capacity(2);
    if shared.shards[owner].healthy.load(Ordering::Relaxed) {
        candidates.push(owner);
    }
    if let Some(s) = successor {
        if shared.shards[s].healthy.load(Ordering::Relaxed) {
            candidates.push(s);
        }
    }
    if candidates.is_empty() {
        // Everything relevant is ejected: one desperate try at the
        // owner still beats an instant refusal (the prober may simply
        // not have re-admitted it yet).
        candidates.push(owner);
    }
    let last = candidates.len() - 1;
    let mut last_failure = String::from("no healthy candidate");
    for (i, &slot) in candidates.iter().enumerate() {
        shared.metrics.record_forward(slot);
        match with_backend(shared, slot, shared.cfg.shard_timeout, &run) {
            Ok(resp) => {
                shared.metrics.record_shard_frames(slot, 1, 1);
                if let Response::Error { code, .. } = &resp {
                    shared.metrics.record_shard_error(slot);
                    // Read fallback: the owner may legitimately miss a
                    // key that landed on the successor during an
                    // outage window.
                    if is_get && *code == ErrorCode::UnknownKey && i < last {
                        continue;
                    }
                }
                return resp;
            }
            Err(e) => {
                last_failure = match e {
                    BackendError::PoolBusy => {
                        format!("shard {} pool saturated", shared.shards[slot].spec.id)
                    }
                    BackendError::Transport(err) => {
                        format!("shard {}: {err}", shared.shards[slot].spec.id)
                    }
                };
                if i < last {
                    shared.metrics.record_retry(slot);
                }
            }
        }
    }
    Response::Error {
        code: ErrorCode::ShardDown,
        message: format!(
            "shard {} unreachable (successor {}): {last_failure}",
            shared.shards[owner].spec.id,
            successor.map_or_else(|| "none".to_owned(), |s| {
                format!("{} too", shared.shards[s].spec.id)
            })
        ),
    }
}

/// One shard's store stat, as its `Stat {key: None}` reply decodes.
#[derive(Clone, Debug, Default, Deserialize)]
struct ShardStat {
    records: u64,
    segments: u64,
    // Engine fields newer shards report; `default` keeps a mixed-epoch
    // cluster aggregating instead of dropping the older shards.
    #[serde(default)]
    runs: u64,
    #[serde(default)]
    tombstones: u64,
    bytes_on_disk: u64,
    live_bytes: u64,
    puts: u64,
    dedup_hits: u64,
    removes: u64,
    scrub_failures: u64,
    #[serde(default)]
    seals: u64,
    #[serde(default)]
    merges: u64,
    #[serde(default)]
    bloom_negatives: u64,
    #[serde(default)]
    cache_hits: u64,
    #[serde(default)]
    cache_misses: u64,
    #[serde(default)]
    wal_appends: u64,
    #[serde(default)]
    wal_batches: u64,
}

/// The merged store stat the router reports for `Stat {key: None}`:
/// the field-wise sum across every shard that answered.
#[derive(Clone, Debug, Default, Serialize)]
struct ClusterStat {
    shards_reporting: u64,
    records: u64,
    segments: u64,
    runs: u64,
    tombstones: u64,
    bytes_on_disk: u64,
    live_bytes: u64,
    puts: u64,
    dedup_hits: u64,
    removes: u64,
    scrub_failures: u64,
    seals: u64,
    merges: u64,
    bloom_negatives: u64,
    cache_hits: u64,
    cache_misses: u64,
    wal_appends: u64,
    wal_batches: u64,
}

/// Aggregate `Stat {key: None}` across every healthy shard.
fn aggregate_stat(shared: &RouterShared) -> Response {
    let mut sum = ClusterStat::default();
    for (slot, shard) in shared.shards.iter().enumerate() {
        if !shard.healthy.load(Ordering::Relaxed) {
            continue;
        }
        let got = with_backend(shared, slot, shared.cfg.shard_timeout, |c| {
            c.call(&Request::Stat { key: None })
        });
        shared.metrics.record_shard_frames(slot, 1, 1);
        if let Ok(Response::StatOk { json }) = got {
            if let Ok(stat) = serde_json::from_str::<ShardStat>(&json) {
                sum.shards_reporting += 1;
                sum.records += stat.records;
                sum.segments += stat.segments;
                sum.runs += stat.runs;
                sum.tombstones += stat.tombstones;
                sum.bytes_on_disk += stat.bytes_on_disk;
                sum.live_bytes += stat.live_bytes;
                sum.puts += stat.puts;
                sum.dedup_hits += stat.dedup_hits;
                sum.removes += stat.removes;
                sum.scrub_failures += stat.scrub_failures;
                sum.seals += stat.seals;
                sum.merges += stat.merges;
                sum.bloom_negatives += stat.bloom_negatives;
                sum.cache_hits += stat.cache_hits;
                sum.cache_misses += stat.cache_misses;
                sum.wal_appends += stat.wal_appends;
                sum.wal_batches += stat.wal_batches;
            }
        }
    }
    Response::StatOk {
        json: serde_json::to_string(&sum).expect("stat serialisation cannot fail"),
    }
}

/// State of one in-progress streamed upload through the router.
struct Upload {
    file: String,
    priority: Priority,
    context: Context,
    total_len: u64,
    chunk_bases: u64,
    next: u64,
    words: Vec<u8>,
}

impl Upload {
    fn chunk_count(&self) -> u64 {
        self.total_len.div_ceil(self.chunk_bases)
    }

    fn expected_words(&self, index: u64) -> u64 {
        let start = index * self.chunk_bases;
        let bases = self.total_len.saturating_sub(start).min(self.chunk_bases);
        bases.div_ceil(4)
    }
}

/// What handling one frame decided about the connection's future.
enum Flow {
    Continue,
    Close,
    Kill,
}

fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

/// Route a fully assembled sequence: its content key *is* the routing
/// key, so the shard that compresses it is the shard that will own
/// its gets.
fn route_compress(
    shared: &RouterShared,
    file: String,
    seq: PackedSeq,
    priority: Priority,
    context: Context,
) -> Response {
    let key = ContentKey::of_sequence(&seq).0;
    forward(shared, &key, false, move |c| {
        c.compress(&file, &seq, priority, context.clone())
    })
}

/// Handle one decoded client request. Returns `(reply, flow, strike)`.
fn dispatch(
    shared: &RouterShared,
    handshaken: &mut bool,
    upload: &mut Option<Upload>,
    req: Request,
) -> (Response, Flow, bool) {
    // The handshake gate, with the router's epoch rule: an epoch-aware
    // peer whose ring disagrees is refused before any forward.
    let hello = |version: u8, epoch: Option<u64>| -> (Response, Flow, bool) {
        if version != WIRE_VERSION {
            return (
                err(
                    ErrorCode::Handshake,
                    format!("router speaks version {WIRE_VERSION}, client {version}"),
                ),
                Flow::Kill,
                true,
            );
        }
        match epoch {
            Some(e) if e != shared.ring.epoch() => (
                err(
                    ErrorCode::WrongShard,
                    format!(
                        "stale ring epoch {e:#x} (router at {:#x})",
                        shared.ring.epoch()
                    ),
                ),
                Flow::Kill,
                true,
            ),
            Some(e) => (
                Response::HelloEpochOk {
                    version: WIRE_VERSION,
                    epoch: e,
                    shard: 0,
                },
                Flow::Continue,
                false,
            ),
            None => (
                Response::HelloOk {
                    version: WIRE_VERSION,
                },
                Flow::Continue,
                false,
            ),
        }
    };
    if !*handshaken {
        return match req {
            Request::Hello { version } => {
                let out = hello(version, None);
                if !out.2 {
                    *handshaken = true;
                }
                out
            }
            Request::HelloEpoch {
                version,
                epoch,
                shard: 0,
            } => {
                let out = hello(version, Some(epoch));
                if !out.2 {
                    *handshaken = true;
                }
                out
            }
            Request::HelloEpoch { shard, .. } => (
                err(
                    ErrorCode::WrongShard,
                    format!("this is a router, not shard {shard}"),
                ),
                Flow::Kill,
                true,
            ),
            _ => (
                err(ErrorCode::Handshake, "first frame must be Hello"),
                Flow::Continue,
                true,
            ),
        };
    }

    match req {
        Request::Hello { version } => hello(version, None),
        Request::HelloEpoch {
            version,
            epoch,
            shard: 0,
        } => hello(version, Some(epoch)),
        Request::HelloEpoch { shard, .. } => (
            err(
                ErrorCode::WrongShard,
                format!("this is a router, not shard {shard}"),
            ),
            Flow::Kill,
            true,
        ),
        Request::Ping => (Response::Pong, Flow::Continue, false),
        Request::Metrics => (
            Response::MetricsOk {
                json: shared.snapshot().to_json(),
            },
            Flow::Continue,
            false,
        ),
        Request::Bye => (Response::ByeOk, Flow::Close, false),
        Request::Compress {
            file,
            priority,
            context,
            seq_len,
            words,
        } => match PackedSeq::from_words(words, seq_len as usize) {
            Ok(seq) => (
                route_compress(shared, file, seq, priority, context),
                Flow::Continue,
                false,
            ),
            Err(_) => (
                err(
                    ErrorCode::BadSequence,
                    "packed words do not form a sequence",
                ),
                Flow::Continue,
                true,
            ),
        },
        Request::CompressBegin {
            file,
            priority,
            context,
            total_len,
            chunk_bases,
        } => {
            if upload.is_some() {
                return (err(ErrorCode::BadFrame, "upload already open"), Flow::Continue, true);
            }
            if chunk_bases == 0 || chunk_bases % 4 != 0 {
                return (
                    err(
                        ErrorCode::BadFrame,
                        "chunk_bases must be a positive multiple of 4",
                    ),
                    Flow::Continue,
                    true,
                );
            }
            if total_len > shared.cfg.max_total_bases {
                return (
                    err(
                        ErrorCode::TooLarge,
                        format!(
                            "total_len {total_len} exceeds cap {}",
                            shared.cfg.max_total_bases
                        ),
                    ),
                    Flow::Continue,
                    false,
                );
            }
            if chunk_bases.div_ceil(4) > shared.cfg.max_frame_payload as u64 {
                return (
                    err(ErrorCode::TooLarge, "chunk_bases exceeds the frame payload cap"),
                    Flow::Continue,
                    false,
                );
            }
            *upload = Some(Upload {
                file,
                priority,
                context,
                total_len,
                chunk_bases,
                next: 0,
                words: Vec::with_capacity(total_len.div_ceil(4) as usize),
            });
            (Response::Ack, Flow::Continue, false)
        }
        Request::CompressChunk { index, words } => {
            let Some(up) = upload.as_mut() else {
                return (
                    err(ErrorCode::BadFrame, "chunk without an open upload"),
                    Flow::Continue,
                    true,
                );
            };
            if index != up.next || index >= up.chunk_count() {
                let msg = format!("chunk {index} out of order (expected {})", up.next);
                *upload = None;
                return (err(ErrorCode::BadFrame, msg), Flow::Continue, true);
            }
            if words.len() as u64 != up.expected_words(index) {
                let msg = format!(
                    "chunk {index} carries {} words, geometry says {}",
                    words.len(),
                    up.expected_words(index)
                );
                *upload = None;
                return (err(ErrorCode::BadSequence, msg), Flow::Continue, true);
            }
            up.words.extend_from_slice(&words);
            up.next += 1;
            (Response::Ack, Flow::Continue, false)
        }
        Request::CompressEnd { checksum } => {
            let Some(up) = upload.take() else {
                return (
                    err(ErrorCode::BadFrame, "end without an open upload"),
                    Flow::Continue,
                    true,
                );
            };
            if up.next != up.chunk_count() {
                return (
                    err(
                        ErrorCode::BadSequence,
                        format!("upload ended after {} of {} chunks", up.next, up.chunk_count()),
                    ),
                    Flow::Continue,
                    true,
                );
            }
            if fnv1a(&up.words) != checksum {
                return (
                    err(
                        ErrorCode::BadSequence,
                        "reassembled sequence fails its checksum",
                    ),
                    Flow::Continue,
                    true,
                );
            }
            match PackedSeq::from_words(up.words, up.total_len as usize) {
                Ok(seq) => (
                    route_compress(shared, up.file, seq, up.priority, up.context),
                    Flow::Continue,
                    false,
                ),
                Err(_) => (
                    err(
                        ErrorCode::BadSequence,
                        "packed words do not form a sequence",
                    ),
                    Flow::Continue,
                    true,
                ),
            }
        }
        Request::Get { key } => (
            forward(shared, &key, true, move |c| c.call(&Request::Get { key })),
            Flow::Continue,
            false,
        ),
        Request::Stat { key: Some(key) } => (
            forward(shared, &key, true, move |c| {
                c.call(&Request::Stat { key: Some(key) })
            }),
            Flow::Continue,
            false,
        ),
        Request::Stat { key: None } => (aggregate_stat(shared), Flow::Continue, false),
        Request::Keys | Request::Remove { .. } | Request::MigrateBatch { .. } => (
            err(
                ErrorCode::Unsupported,
                "store admin requests go to shards directly, not through the router",
            ),
            Flow::Continue,
            false,
        ),
    }
}

/// Write one reply frame; `Flow::Kill` means the peer is gone.
fn send_reply(stream: &mut TcpStream, shared: &RouterShared, resp: &Response) -> Flow {
    let frame = response_frame(resp);
    match write_frame(stream, &frame, Deadline::after(shared.cfg.write_timeout)) {
        Ok(()) => {
            shared.metrics.record_frame_tx();
            Flow::Continue
        }
        Err(_) => Flow::Kill,
    }
}

/// Serve one client connection to completion; `true` = killed.
fn handle_conn(mut stream: TcpStream, shared: &RouterShared, stop: &AtomicBool) -> bool {
    let _ = stream.set_read_timeout(Some(IO_TICK));
    let _ = stream.set_write_timeout(Some(IO_TICK));
    let _ = stream.set_nodelay(true);
    let m = &shared.metrics;
    let cfg = &shared.cfg;

    let mut strikes: u32 = 0;
    let mut handshaken = false;
    let mut upload: Option<Upload> = None;
    let mut idle = Deadline::after(cfg.idle_timeout);

    loop {
        if stop.load(Ordering::Relaxed) {
            return false;
        }
        let slice = Deadline::after(idle.remaining().min(Duration::from_millis(50)));
        let (ftype, payload, _wire) =
            match read_frame(&mut stream, cfg.max_frame_payload, slice, cfg.frame_timeout) {
                Ok(frame) => frame,
                Err(ProtoError::Idle) => {
                    if idle.expired() {
                        return false;
                    }
                    continue;
                }
                Err(ProtoError::Closed) => return false,
                Err(ProtoError::ChecksumMismatch { .. }) => {
                    m.record_protocol_error();
                    strikes += 1;
                    let flow = send_reply(
                        &mut stream,
                        shared,
                        &err(ErrorCode::BadFrame, "frame checksum mismatch"),
                    );
                    if strikes >= cfg.max_strikes || matches!(flow, Flow::Kill) {
                        return true;
                    }
                    idle = Deadline::after(cfg.idle_timeout);
                    continue;
                }
                Err(e) => {
                    m.record_protocol_error();
                    let code = match e {
                        ProtoError::Oversize { .. } => ErrorCode::TooLarge,
                        _ => ErrorCode::BadFrame,
                    };
                    let _ = send_reply(&mut stream, shared, &err(code, e.to_string()));
                    return true;
                }
            };
        m.record_frame_rx();
        idle = Deadline::after(cfg.idle_timeout);

        let req = match Request::decode(ftype, &payload) {
            Ok(req) => req,
            Err(e) => {
                m.record_protocol_error();
                strikes += 1;
                let flow =
                    send_reply(&mut stream, shared, &err(ErrorCode::BadFrame, e.to_string()));
                if strikes >= cfg.max_strikes || matches!(flow, Flow::Kill) {
                    return true;
                }
                continue;
            }
        };

        let (reply, flow, strike) = dispatch(shared, &mut handshaken, &mut upload, req);
        if strike {
            m.record_protocol_error();
            strikes += 1;
        }
        let wrote = send_reply(&mut stream, shared, &reply);
        if matches!(wrote, Flow::Kill) {
            return false;
        }
        match flow {
            Flow::Kill => return true,
            Flow::Close => return false,
            Flow::Continue => {
                if strikes >= cfg.max_strikes {
                    return true;
                }
            }
        }
    }
}

/// One probe pass over every shard: ping, strike, eject, re-admit.
fn probe_pass(shared: &RouterShared) {
    for (slot, shard) in shared.shards.iter().enumerate() {
        let got = with_backend(shared, slot, shared.cfg.probe_timeout, |c| c.ping());
        match got {
            // A saturated pool proves the shard is busy serving, which
            // is the opposite of dead.
            Ok(()) | Err(BackendError::PoolBusy) => {
                shard.probe_strikes.store(0, Ordering::Relaxed);
                if !shard.healthy.swap(true, Ordering::Relaxed) {
                    shared.metrics.record_readmission(slot);
                }
            }
            Err(BackendError::Transport(_)) => {
                let strikes = shard.probe_strikes.fetch_add(1, Ordering::Relaxed) + 1;
                if strikes >= shared.cfg.probe_strikes
                    && shard.healthy.swap(false, Ordering::Relaxed)
                {
                    shared.metrics.record_ejection(slot);
                    // Close every idle socket to the dead shard now:
                    // the next forward dials fresh instead of timing
                    // out on a corpse.
                    drop(shard.pool.drain_idle());
                }
            }
        }
    }
}

/// A running shard router. [`shutdown`](RouterServer::shutdown) (or
/// drop) stops accepting, drains in-flight connections and joins every
/// thread.
#[derive(Debug)]
pub struct RouterServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    prober_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: Arc<RouterShared>,
}

impl RouterServer {
    /// Bind `addr`, build the ring over `shards`, start the prober and
    /// begin accepting clients.
    pub fn start(
        addr: impl ToSocketAddrs,
        ring: Ring,
        config: RouterConfig,
    ) -> std::io::Result<RouterServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));

        let metrics = RouterMetrics::new(ring.shards().len());
        let shards = ring
            .shards()
            .iter()
            .map(|spec| ShardState {
                spec: spec.clone(),
                healthy: AtomicBool::new(true),
                probe_strikes: AtomicU32::new(0),
                pool: StreamPool::new(config.pool_per_shard),
            })
            .collect();
        let shared = Arc::new(RouterShared {
            ring,
            cfg: config,
            shards,
            metrics,
        });

        let prober_shared = Arc::clone(&shared);
        let prober_stop = Arc::clone(&stop);
        let prober_thread = std::thread::Builder::new()
            .name("route-probe".into())
            .spawn(move || {
                while !prober_stop.load(Ordering::Relaxed) {
                    let _ = contain_panic(|| probe_pass(&prober_shared));
                    // Sleep the probe interval in short slices so
                    // shutdown is never blocked on a probe nap.
                    let nap = Deadline::after(prober_shared.cfg.probe_interval);
                    while !nap.expired() && !prober_stop.load(Ordering::Relaxed) {
                        std::thread::sleep(
                            nap.remaining().min(Duration::from_millis(20)),
                        );
                    }
                }
            })?;

        let accept_shared = Arc::clone(&shared);
        let accept_stop = Arc::clone(&stop);
        let accept_handlers = Arc::clone(&handlers);
        let accept_thread = std::thread::Builder::new()
            .name("route-accept".into())
            .spawn(move || {
                let mut conn_id: u64 = 0;
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            conn_id += 1;
                            if active.load(Ordering::Relaxed)
                                >= accept_shared.cfg.max_connections
                            {
                                refuse_busy(&accept_shared, stream);
                                continue;
                            }
                            active.fetch_add(1, Ordering::Relaxed);
                            let shared = Arc::clone(&accept_shared);
                            let stop = Arc::clone(&accept_stop);
                            let active = Arc::clone(&active);
                            let handle = std::thread::Builder::new()
                                .name(format!("route-conn-{conn_id}"))
                                .spawn(move || {
                                    shared.metrics.record_conn_accepted();
                                    let killed =
                                        contain_panic(|| handle_conn(stream, &shared, &stop))
                                            .unwrap_or(true);
                                    if killed {
                                        shared.metrics.record_conn_killed();
                                    }
                                    shared.metrics.record_conn_closed();
                                    active.fetch_sub(1, Ordering::Relaxed);
                                })
                                .expect("spawn router connection handler");
                            let mut hs = lock_handlers(&accept_handlers);
                            hs.retain(|h| !h.is_finished());
                            hs.push(handle);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })?;

        Ok(RouterServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            prober_thread: Some(prober_thread),
            handlers,
            shared,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The ring epoch this router serves.
    pub fn epoch(&self) -> u64 {
        self.shared.ring.epoch()
    }

    /// The aggregated metrics rollup (fleet counters + per-shard).
    pub fn metrics_snapshot(&self) -> RouterMetricsSnapshot {
        self.shared.snapshot()
    }

    /// Stop accepting, drain in-flight connections and join every
    /// thread.
    pub fn shutdown(mut self) -> RouterMetricsSnapshot {
        self.stop_and_join();
        self.shared.snapshot()
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.prober_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = lock_handlers(&self.handlers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn lock_handlers(
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    match handlers.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Best-effort `ServerBusy` refusal for an over-cap accept.
fn refuse_busy(shared: &RouterShared, mut stream: TcpStream) {
    shared.metrics.record_conn_refused();
    let _ = stream.set_write_timeout(Some(IO_TICK));
    let frame = response_frame(&err(ErrorCode::ServerBusy, "connection cap reached"));
    if write_frame(
        &mut stream,
        &frame,
        Deadline::after(shared.cfg.write_timeout),
    )
    .is_ok()
    {
        shared.metrics.record_frame_tx();
    }
}

/// Outcome of one [`rebalance`] sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Keys enumerated across every shard.
    pub scanned: u64,
    /// Records shipped to their new owner.
    pub moved: u64,
    /// Shipped records the owner already held.
    pub deduped: u64,
    /// Source records deleted after the owner acknowledged.
    pub removed: u64,
    /// Container bytes shipped over the wire.
    pub bytes: u64,
}

/// Migrate every misplaced record to its owner under `ring`.
///
/// For each shard: enumerate its resident keys, fetch each record the
/// ring now assigns elsewhere, ship them to the owner in checksummed
/// batches of at most `batch_records` records, and delete each source
/// record **only after** the owner's typed `MigrateOk` acknowledged
/// the batch — a crash mid-rebalance duplicates records (idempotent:
/// the store dedups by key), it never loses one.
pub fn rebalance(
    ring: &Ring,
    timeout: Duration,
    batch_records: usize,
) -> Result<RebalanceReport, String> {
    let batch_records = batch_records.max(1);
    let mut report = RebalanceReport::default();
    let epoch = ring.epoch();
    let n = ring.shards().len();
    // One lazily dialled connection per shard, reused across batches.
    let mut conns: Vec<Option<NetClient<TcpStream>>> = (0..n).map(|_| None).collect();
    let connect = |conns: &mut Vec<Option<NetClient<TcpStream>>>,
                       slot: usize|
     -> Result<(), String> {
        if conns[slot].is_none() {
            let addr = ring.shards()[slot].addr.as_str();
            conns[slot] = Some(
                NetClient::connect(addr, timeout)
                    .map_err(|e| format!("dialling shard at {addr}: {e}"))?,
            );
        }
        Ok(())
    };

    for source in 0..n {
        connect(&mut conns, source)?;
        let keys = conns[source]
            .as_mut()
            .expect("just connected")
            .keys()
            .map_err(|e| format!("listing keys on shard {}: {e}", ring.shards()[source].id))?;
        report.scanned += keys.len() as u64;

        // Group misplaced keys by their new owner.
        let mut by_owner: Vec<Vec<[u8; 16]>> = (0..n).map(|_| Vec::new()).collect();
        for key in keys {
            let owner = ring.slot_for(&key);
            if owner != source {
                by_owner[owner].push(key);
            }
        }

        for (owner, misplaced) in by_owner.into_iter().enumerate() {
            for chunk in misplaced.chunks(batch_records) {
                // Fetch the batch from the source.
                let mut records = Vec::with_capacity(chunk.len());
                for &key in chunk {
                    let got = conns[source]
                        .as_mut()
                        .expect("source connected")
                        .call(&Request::Get { key })
                        .map_err(|e| format!("fetching record: {e}"))?;
                    match got {
                        Response::GetOk { blob } => {
                            report.bytes += blob.len() as u64;
                            records.push((key, blob));
                        }
                        // Deleted between enumeration and fetch: fine.
                        Response::Error {
                            code: ErrorCode::UnknownKey,
                            ..
                        } => {}
                        other => return Err(format!("unexpected get reply: {other:?}")),
                    }
                }
                if records.is_empty() {
                    continue;
                }
                let batch_keys: Vec<[u8; 16]> = records.iter().map(|(k, _)| *k).collect();
                connect(&mut conns, owner)?;
                let (stored, deduped) = conns[owner]
                    .as_mut()
                    .expect("owner connected")
                    .migrate_batch(epoch, records)
                    .map_err(|e| {
                        format!("migrating to shard {}: {e}", ring.shards()[owner].id)
                    })?;
                report.moved += stored;
                report.deduped += deduped;
                // Only now is the source copy redundant.
                for key in batch_keys {
                    if conns[source]
                        .as_mut()
                        .expect("source connected")
                        .remove(key)
                        .map_err(|e| format!("removing migrated record: {e}"))?
                    {
                        report.removed += 1;
                    }
                }
            }
        }
    }
    for conn in conns.into_iter().flatten() {
        let _ = conn.bye();
    }
    Ok(report)
}
