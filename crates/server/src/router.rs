//! The shard router: one `"DW"` endpoint in front of N shard servers.
//!
//! A [`RouterServer`] speaks the existing wire protocol on both sides.
//! Clients connect to it exactly as they would to a single
//! [`crate::net::NetServer`]; every keyed request (`Get`, `Stat`,
//! `Compress` — whose content key is a pure function of the sequence)
//! is mapped to a shard by the consistent-hash [`Ring`] and forwarded
//! over a pooled back-end connection. The router is therefore a
//! *transparent* scale-out layer: a compress acknowledged through the
//! router is stored on some shard, and a later get for its key routes
//! to the same shard by construction.
//!
//! ## Replication and failure discipline
//!
//! Every keyed write fans out to the key's **replica set** — the
//! owner plus its R−1 distinct ring successors
//! ([`Ring::replica_slots`]) — and the client is acknowledged only
//! once a configurable **write quorum** W of replicas committed.
//! Per-replica failures are typed partial results, never client
//! errors: as long as the quorum held, each missed replica becomes a
//! persisted **hinted handoff** record ([`crate::hints::HintQueue`])
//! that the prober drains back to the shard once it is healthy again.
//! Only a write that cannot reach W replicas surfaces, as a typed
//! [`ErrorCode::QuorumFailed`].
//!
//! Reads walk the same replica set: a transport failure or clean
//! `UnknownKey` falls through to the next replica, and a replica that
//! missed (or serves a corrupt container) is **read-repaired** with
//! the canonical bytes — verified against the content key — over the
//! checksummed migrate path. Exhausting every replica is a typed
//! [`ErrorCode::ShardDown`]; never a hang, never a silent drop.
//!
//! A prober thread pings every shard on a fixed cadence; consecutive
//! failures eject a shard (strike-based, like connection kills), a
//! successful probe re-admits it. Ejected shards are skipped by the
//! forwarding path, which is what turns a dead back-end from "every
//! request times out" into "requests fail over instantly".
//!
//! ## Epochs, rebalance and anti-entropy
//!
//! The ring's membership digest — its **epoch** — is asserted by
//! epoch-aware peers in the `HelloEpoch` handshake. A router refuses
//! mismatching epochs with [`ErrorCode::WrongShard`]: a stale peer
//! cannot forward into a reshaped ring. When the shard set changes,
//! [`rebalance`] walks every shard's resident keys over the wire and
//! migrates misplaced records to their new owners in checksummed
//! batches, deleting each source record only after the destination
//! acknowledged the copy; the sweep persists a resumable cursor so a
//! crash restarts where it stopped instead of rescanning every shard.
//! [`repair`] is the self-healing backstop: an anti-entropy sweep
//! that compares bucketed key digests per shard and ships only the
//! differing buckets, so a shard restored from an empty disk
//! converges to full replication without a manual rebalance.

use crate::conn::{read_frame, write_frame, Checkout, CountingStream, StreamPool, IO_TICK};
use crate::hints::{key_hex, key_unhex, HintQueue};
use crate::metrics::{RouterMetrics, RouterMetricsSnapshot, ShardLabel};
use crate::net::{ClientError, NetClient};
use crate::proto::{
    response_frame, ErrorCode, ProtoError, Request, Response, MAX_WIRE_PAYLOAD, WIRE_VERSION,
};
use crate::queue::Priority;
use crate::ring::{Ring, ShardSpec};
use dnacomp_algos::{compressor_for, Algorithm, CompressedBlob};
use dnacomp_codec::checksum::{fnv1a, mix64};
use dnacomp_core::{contain_panic, Context, Deadline};
use dnacomp_seq::PackedSeq;
use dnacomp_store::ContentKey;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Client connections before accept refuses with `ServerBusy`.
    pub max_connections: usize,
    /// Per-frame payload cap, bytes.
    pub max_frame_payload: usize,
    /// Client idle budget between frames.
    pub idle_timeout: Duration,
    /// Client mid-frame budget.
    pub frame_timeout: Duration,
    /// Reply write budget.
    pub write_timeout: Duration,
    /// Per-shard forward deadline: pool checkout + dial + the whole
    /// request/response exchange against one shard.
    pub shard_timeout: Duration,
    /// Back-end connections per shard — the hard per-shard
    /// concurrency budget ([`StreamPool`] blocks beyond it).
    pub pool_per_shard: usize,
    /// Frame-synced client violations tolerated before the kill.
    pub max_strikes: u32,
    /// Cap on a streamed upload's declared total length, bases.
    pub max_total_bases: u64,
    /// Cadence of shard health probes.
    pub probe_interval: Duration,
    /// Deadline for one probe ping.
    pub probe_timeout: Duration,
    /// Consecutive probe failures before a shard is ejected.
    pub probe_strikes: u32,
    /// Handshake back-ends with `HelloEpoch` (requires shards started
    /// with matching `--shard-id`/`--epoch`); plain `Hello` otherwise.
    pub pinned_backends: bool,
    /// Replication factor R: each keyed write lands on the key's
    /// owner plus the next R−1 distinct shards clockwise (capped by
    /// the fleet size; 1 = the old single-owner behaviour).
    pub replicas: usize,
    /// Write quorum W: replica commits required before the client is
    /// acknowledged (clamped to `1..=R` per key).
    pub write_quorum: usize,
    /// Directory persisting hinted-handoff records for replicas that
    /// missed a quorum write; `None` disables hinting (anti-entropy
    /// repair remains the convergence path).
    pub hint_dir: Option<PathBuf>,
    /// Pending hints held before new ones are dropped (and counted).
    pub hint_cap: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_connections: 64,
            max_frame_payload: MAX_WIRE_PAYLOAD,
            idle_timeout: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            shard_timeout: Duration::from_secs(5),
            pool_per_shard: 2,
            max_strikes: 3,
            max_total_bases: 1 << 26,
            probe_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_millis(500),
            probe_strikes: 3,
            pinned_backends: false,
            replicas: 3,
            write_quorum: 2,
            hint_dir: None,
            hint_cap: 1024,
        }
    }
}

type BackendClient = NetClient<CountingStream<TcpStream>>;

/// Live state of one back-end shard.
#[derive(Debug)]
struct ShardState {
    spec: ShardSpec,
    healthy: AtomicBool,
    probe_strikes: AtomicU32,
    pool: StreamPool<BackendClient>,
}

/// Everything the handler and prober threads share.
#[derive(Debug)]
struct RouterShared {
    ring: Ring,
    cfg: RouterConfig,
    shards: Vec<ShardState>,
    metrics: RouterMetrics,
    hints: Option<HintQueue>,
}

impl RouterShared {
    fn labels(&self) -> Vec<ShardLabel> {
        self.shards
            .iter()
            .map(|s| ShardLabel {
                id: s.spec.id,
                addr: s.spec.addr.clone(),
                healthy: s.healthy.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn snapshot(&self) -> RouterMetricsSnapshot {
        self.metrics.snapshot(self.ring.epoch(), &self.labels())
    }
}

/// How a back-end attempt failed (typed server errors are not
/// failures — they are forwarded to the client verbatim).
#[derive(Debug)]
enum BackendError {
    /// The per-shard connection budget stayed exhausted for the whole
    /// deadline.
    PoolBusy,
    /// Dial, handshake or transport failure.
    Transport(ClientError),
}

/// Dial one fresh connection to `slot`, wire-byte-counted and
/// handshaken.
fn dial(shared: &RouterShared, slot: usize) -> Result<BackendClient, ClientError> {
    let spec = &shared.shards[slot].spec;
    let stream =
        TcpStream::connect(spec.addr.as_str()).map_err(|e| ProtoError::Io(e.kind()))?;
    stream
        .set_read_timeout(Some(IO_TICK))
        .map_err(|e| ProtoError::Io(e.kind()))?;
    stream
        .set_write_timeout(Some(IO_TICK))
        .map_err(|e| ProtoError::Io(e.kind()))?;
    let _ = stream.set_nodelay(true);
    let (tx, rx) = shared.metrics.byte_counters(slot);
    let mut client = NetClient::over(CountingStream::new(stream, tx, rx), shared.cfg.shard_timeout);
    if shared.cfg.pinned_backends {
        client.handshake_epoch(shared.ring.epoch(), spec.id)?;
    } else {
        client.handshake()?;
    }
    Ok(client)
}

/// Run `f` against a pooled connection to `slot`, within `budget`.
///
/// A pooled connection that fails in transport is retried once on a
/// fresh dial before the attempt is declared failed — a shard restart
/// leaves stale sockets in every pool, and one redial cleanly
/// distinguishes "shard was restarted" from "shard is down".
fn with_backend<T>(
    shared: &RouterShared,
    slot: usize,
    budget: Duration,
    f: impl Fn(&mut BackendClient) -> Result<T, ClientError>,
) -> Result<T, BackendError> {
    let pool = &shared.shards[slot].pool;
    let deadline = Deadline::after(budget);
    let (mut client, reused) = match pool.checkout(deadline) {
        None => return Err(BackendError::PoolBusy),
        Some(Checkout::Reused(c)) => (c, true),
        Some(Checkout::Dial) => match dial(shared, slot) {
            Ok(c) => (c, false),
            Err(e) => {
                pool.discard();
                return Err(BackendError::Transport(e));
            }
        },
    };
    match f(&mut client) {
        Ok(v) => {
            pool.checkin(client);
            Ok(v)
        }
        Err(first) => {
            pool.discard();
            if !reused {
                return Err(BackendError::Transport(first));
            }
            // Stale pooled socket: one fresh dial, one more try.
            match pool.checkout(deadline) {
                Some(Checkout::Dial) => match dial(shared, slot) {
                    Ok(mut fresh) => match f(&mut fresh) {
                        Ok(v) => {
                            pool.checkin(fresh);
                            Ok(v)
                        }
                        Err(e) => {
                            pool.discard();
                            Err(BackendError::Transport(e))
                        }
                    },
                    Err(e) => {
                        pool.discard();
                        Err(BackendError::Transport(e))
                    }
                },
                Some(Checkout::Reused(c)) => {
                    // Another thread returned a conn meanwhile; use it.
                    let mut c = c;
                    match f(&mut c) {
                        Ok(v) => {
                            pool.checkin(c);
                            Ok(v)
                        }
                        Err(e) => {
                            pool.discard();
                            Err(BackendError::Transport(e))
                        }
                    }
                }
                None => Err(BackendError::Transport(first)),
            }
        }
    }
}

fn healthy(shared: &RouterShared, slot: usize) -> bool {
    shared.shards[slot].healthy.load(Ordering::Relaxed)
}

fn backend_failure(shared: &RouterShared, slot: usize, e: &BackendError) -> String {
    match e {
        BackendError::PoolBusy => {
            format!("shard {} pool saturated", shared.shards[slot].spec.id)
        }
        BackendError::Transport(err) => {
            format!("shard {}: {err}", shared.shards[slot].spec.id)
        }
    }
}

/// The candidate order for one key's reads: its replica set, widened
/// to at least two distinct shards so an unreplicated ring keeps the
/// owner → successor fallback, filtered to healthy shards. If the
/// whole set is ejected the unfiltered set is returned — one
/// desperate pass still beats an instant refusal (the prober may
/// simply not have re-admitted anything yet).
fn read_candidates(shared: &RouterShared, key: &[u8; 16]) -> Vec<usize> {
    let all = shared.ring.replica_slots(key, shared.cfg.replicas.max(2));
    let alive: Vec<usize> = all.iter().copied().filter(|&s| healthy(shared, s)).collect();
    if alive.is_empty() {
        all
    } else {
        alive
    }
}

/// Forward one keyed read (`Stat {key}`): walk the key's replica
/// candidates, falling through on transport failure and on a clean
/// `UnknownKey` (the record may live on a replica that took it during
/// an owner outage). Exhausting every candidate is a typed
/// `ShardDown`; an everywhere-miss is the last `UnknownKey` verbatim.
fn forward(
    shared: &RouterShared,
    key: &[u8; 16],
    run: impl Fn(&mut BackendClient) -> Result<Response, ClientError>,
) -> Response {
    let candidates = read_candidates(shared, key);
    let last = candidates.len() - 1;
    let mut last_miss: Option<Response> = None;
    let mut last_failure = String::from("no healthy candidate");
    for (i, &slot) in candidates.iter().enumerate() {
        shared.metrics.record_forward(slot);
        match with_backend(shared, slot, shared.cfg.shard_timeout, &run) {
            Ok(resp) => {
                shared.metrics.record_shard_frames(slot, 1, 1);
                if let Response::Error { code, .. } = &resp {
                    shared.metrics.record_shard_error(slot);
                    if *code == ErrorCode::UnknownKey {
                        if i < last {
                            last_miss = Some(resp);
                            continue;
                        }
                        return last_miss.unwrap_or(resp);
                    }
                }
                return resp;
            }
            Err(e) => {
                last_failure = backend_failure(shared, slot, &e);
                if i < last {
                    shared.metrics.record_retry(slot);
                }
            }
        }
    }
    last_miss.unwrap_or_else(|| Response::Error {
        code: ErrorCode::ShardDown,
        message: format!(
            "no replica of the key reachable ({} candidate shard(s)): {last_failure}",
            candidates.len()
        ),
    })
}

/// One shard's store stat, as its `Stat {key: None}` reply decodes.
#[derive(Clone, Debug, Default, Deserialize)]
struct ShardStat {
    records: u64,
    segments: u64,
    // Engine fields newer shards report; `default` keeps a mixed-epoch
    // cluster aggregating instead of dropping the older shards.
    #[serde(default)]
    runs: u64,
    #[serde(default)]
    tombstones: u64,
    bytes_on_disk: u64,
    live_bytes: u64,
    puts: u64,
    dedup_hits: u64,
    removes: u64,
    scrub_failures: u64,
    #[serde(default)]
    seals: u64,
    #[serde(default)]
    merges: u64,
    #[serde(default)]
    bloom_negatives: u64,
    #[serde(default)]
    cache_hits: u64,
    #[serde(default)]
    cache_misses: u64,
    #[serde(default)]
    wal_appends: u64,
    #[serde(default)]
    wal_batches: u64,
}

/// The merged store stat the router reports for `Stat {key: None}`:
/// the field-wise sum across every shard that answered.
#[derive(Clone, Debug, Default, Serialize)]
struct ClusterStat {
    shards_reporting: u64,
    records: u64,
    segments: u64,
    runs: u64,
    tombstones: u64,
    bytes_on_disk: u64,
    live_bytes: u64,
    puts: u64,
    dedup_hits: u64,
    removes: u64,
    scrub_failures: u64,
    seals: u64,
    merges: u64,
    bloom_negatives: u64,
    cache_hits: u64,
    cache_misses: u64,
    wal_appends: u64,
    wal_batches: u64,
}

/// Aggregate `Stat {key: None}` across every healthy shard.
fn aggregate_stat(shared: &RouterShared) -> Response {
    let mut sum = ClusterStat::default();
    for (slot, shard) in shared.shards.iter().enumerate() {
        if !shard.healthy.load(Ordering::Relaxed) {
            continue;
        }
        let got = with_backend(shared, slot, shared.cfg.shard_timeout, |c| {
            c.call(&Request::Stat { key: None })
        });
        shared.metrics.record_shard_frames(slot, 1, 1);
        if let Ok(Response::StatOk { json }) = got {
            if let Ok(stat) = serde_json::from_str::<ShardStat>(&json) {
                sum.shards_reporting += 1;
                sum.records += stat.records;
                sum.segments += stat.segments;
                sum.runs += stat.runs;
                sum.tombstones += stat.tombstones;
                sum.bytes_on_disk += stat.bytes_on_disk;
                sum.live_bytes += stat.live_bytes;
                sum.puts += stat.puts;
                sum.dedup_hits += stat.dedup_hits;
                sum.removes += stat.removes;
                sum.scrub_failures += stat.scrub_failures;
                sum.seals += stat.seals;
                sum.merges += stat.merges;
                sum.bloom_negatives += stat.bloom_negatives;
                sum.cache_hits += stat.cache_hits;
                sum.cache_misses += stat.cache_misses;
                sum.wal_appends += stat.wal_appends;
                sum.wal_batches += stat.wal_batches;
            }
        }
    }
    Response::StatOk {
        json: serde_json::to_string(&sum).expect("stat serialisation cannot fail"),
    }
}

/// State of one in-progress streamed upload through the router.
struct Upload {
    file: String,
    priority: Priority,
    context: Context,
    total_len: u64,
    chunk_bases: u64,
    next: u64,
    words: Vec<u8>,
}

impl Upload {
    fn chunk_count(&self) -> u64 {
        self.total_len.div_ceil(self.chunk_bases)
    }

    fn expected_words(&self, index: u64) -> u64 {
        let start = index * self.chunk_bases;
        let bases = self.total_len.saturating_sub(start).min(self.chunk_bases);
        bases.div_ceil(4)
    }
}

/// What handling one frame decided about the connection's future.
enum Flow {
    Continue,
    Close,
    Kill,
}

fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error {
        code,
        message: message.into(),
    }
}

/// A quorum write committed but some replicas missed it: persist one
/// handoff hint per missed replica, carrying the canonical container
/// bytes fetched back from a committed holder. A replica the queue
/// cannot take (capacity, I/O failure, no canonical copy readable) is
/// a counted drop — anti-entropy repair is its convergence path.
fn queue_hints(shared: &RouterShared, key: &[u8; 16], holder: usize, missed: &[usize]) {
    let Some(hints) = &shared.hints else {
        return;
    };
    let got = with_backend(shared, holder, shared.cfg.shard_timeout, |c| {
        c.call(&Request::Get { key: *key })
    });
    let blob = match got {
        Ok(Response::GetOk { blob }) => {
            shared.metrics.record_shard_frames(holder, 1, 1);
            blob
        }
        _ => {
            for _ in missed {
                shared.metrics.record_hint_dropped();
            }
            return;
        }
    };
    for &slot in missed {
        match hints.save(shared.shards[slot].spec.id, key, &blob) {
            Ok(true) => shared.metrics.record_hint_queued(),
            Ok(false) | Err(_) => shared.metrics.record_hint_dropped(),
        }
    }
    shared.metrics.set_hints_pending(hints.pending() as u64);
}

/// Route a fully assembled sequence through a quorum write: its
/// content key *is* the routing key, the replica set is the owner
/// plus its R−1 distinct ring successors, and the client is
/// acknowledged only once `write_quorum` replicas committed. Missed
/// replicas become hinted handoffs — typed partial results, never
/// client errors — as long as the quorum held; short of the quorum
/// the client gets a typed `QuorumFailed` (safe to retry verbatim:
/// duplicate keyed commits dedup by content address).
fn route_compress(
    shared: &RouterShared,
    file: String,
    seq: PackedSeq,
    priority: Priority,
    context: Context,
) -> Response {
    let key = ContentKey::of_sequence(&seq).0;
    let replicas = shared.ring.replica_slots(&key, shared.cfg.replicas);
    let quorum = shared.cfg.write_quorum.clamp(1, replicas.len());
    let desperate = replicas.iter().all(|&s| !healthy(shared, s));
    let mut first_ok: Option<Response> = None;
    let mut commits = 0usize;
    let mut holder: Option<usize> = None;
    let mut missed: Vec<usize> = Vec::new();
    let mut last_failure = String::from("no healthy replica");
    for &slot in &replicas {
        if !desperate && !healthy(shared, slot) {
            missed.push(slot);
            last_failure = format!("shard {} is ejected", shared.shards[slot].spec.id);
            continue;
        }
        shared.metrics.record_forward(slot);
        match with_backend(shared, slot, shared.cfg.shard_timeout, |c| {
            c.compress(&file, &seq, priority, context.clone())
        }) {
            Ok(resp) => {
                shared.metrics.record_shard_frames(slot, 1, 1);
                match resp {
                    Response::CompressOk { .. } => {
                        shared.metrics.record_replica_write();
                        commits += 1;
                        holder.get_or_insert(slot);
                        if first_ok.is_none() {
                            first_ok = Some(resp);
                        }
                    }
                    other => {
                        shared.metrics.record_shard_error(slot);
                        missed.push(slot);
                        last_failure = match &other {
                            Response::Error { code, message } => format!(
                                "shard {}: {code}: {message}",
                                shared.shards[slot].spec.id
                            ),
                            _ => format!(
                                "shard {}: unexpected reply",
                                shared.shards[slot].spec.id
                            ),
                        };
                    }
                }
            }
            Err(e) => {
                missed.push(slot);
                last_failure = backend_failure(shared, slot, &e);
            }
        }
    }
    if let Some(holder) = holder {
        if !missed.is_empty() {
            queue_hints(shared, &key, holder, &missed);
        }
    }
    if commits >= quorum {
        first_ok.expect("a committed replica produced the CompressOk")
    } else {
        shared.metrics.record_quorum_failure();
        Response::Error {
            code: ErrorCode::QuorumFailed,
            message: format!(
                "{commits} of {} replica commit(s), need {quorum}: {last_failure}",
                replicas.len()
            ),
        }
    }
}

/// Ship the canonical container to each stale (missed or divergent)
/// replica over the checksummed migrate path. Where the algorithm can
/// decompress standalone, the copy is first verified to decode back
/// to the content key — bytes that are not canonical are never
/// propagated.
fn read_repair(shared: &RouterShared, key: &[u8; 16], blob: &[u8], stale: &[usize]) {
    let Ok(container) = CompressedBlob::from_bytes(blob) else {
        return;
    };
    if container.algorithm != Algorithm::Reference {
        match compressor_for(container.algorithm).decompress(&container) {
            Ok(seq) if ContentKey::of_sequence(&seq).0 == *key => {}
            _ => return,
        }
    }
    let epoch = shared.ring.epoch();
    for &slot in stale {
        if !healthy(shared, slot) {
            continue;
        }
        let got = with_backend(shared, slot, shared.cfg.shard_timeout, |c| {
            c.migrate_batch(epoch, vec![(*key, blob.to_vec())])
        });
        if got.is_ok() {
            shared.metrics.record_shard_frames(slot, 1, 1);
            shared.metrics.record_read_repair();
        }
    }
}

/// Route one `Get`: walk the key's replica candidates, falling
/// through on transport failure, a clean `UnknownKey`, or a corrupt
/// container (a divergent replica). The first good copy answers the
/// client; healthy replicas that missed are then read-repaired with
/// the canonical bytes.
fn route_get(shared: &RouterShared, key: [u8; 16]) -> Response {
    let candidates = read_candidates(shared, &key);
    // Only true members of the replica set are repair targets — the
    // widened R=1 successor is a legitimate non-holder.
    let replica_set = shared.ring.replica_slots(&key, shared.cfg.replicas);
    let last = candidates.len() - 1;
    let mut stale: Vec<usize> = Vec::new();
    let mut last_miss: Option<Response> = None;
    let mut last_failure = String::from("no healthy candidate");
    for (i, &slot) in candidates.iter().enumerate() {
        shared.metrics.record_forward(slot);
        match with_backend(shared, slot, shared.cfg.shard_timeout, |c| {
            c.call(&Request::Get { key })
        }) {
            Ok(Response::GetOk { blob }) => {
                shared.metrics.record_shard_frames(slot, 1, 1);
                if CompressedBlob::from_bytes(&blob).is_err() {
                    // Divergent replica: what it serves is not even a
                    // valid container. Treat as a miss and repair it.
                    shared.metrics.record_shard_error(slot);
                    if replica_set.contains(&slot) {
                        stale.push(slot);
                    }
                    last_failure = format!(
                        "shard {} served a corrupt container",
                        shared.shards[slot].spec.id
                    );
                    continue;
                }
                if !stale.is_empty() {
                    read_repair(shared, &key, &blob, &stale);
                }
                return Response::GetOk { blob };
            }
            Ok(resp @ Response::Error { .. }) => {
                shared.metrics.record_shard_frames(slot, 1, 1);
                shared.metrics.record_shard_error(slot);
                let is_miss = matches!(
                    &resp,
                    Response::Error {
                        code: ErrorCode::UnknownKey,
                        ..
                    }
                );
                if !is_miss {
                    return resp;
                }
                if replica_set.contains(&slot) && healthy(shared, slot) {
                    stale.push(slot);
                }
                last_miss = Some(resp);
            }
            Ok(other) => {
                shared.metrics.record_shard_frames(slot, 1, 1);
                return other;
            }
            Err(e) => {
                last_failure = backend_failure(shared, slot, &e);
                if i < last {
                    shared.metrics.record_retry(slot);
                }
            }
        }
    }
    last_miss.unwrap_or_else(|| Response::Error {
        code: ErrorCode::ShardDown,
        message: format!(
            "no replica of the key reachable ({} candidate shard(s)): {last_failure}",
            candidates.len()
        ),
    })
}

/// Handle one decoded client request. Returns `(reply, flow, strike)`.
fn dispatch(
    shared: &RouterShared,
    handshaken: &mut bool,
    upload: &mut Option<Upload>,
    req: Request,
) -> (Response, Flow, bool) {
    // The handshake gate, with the router's epoch rule: an epoch-aware
    // peer whose ring disagrees is refused before any forward.
    let hello = |version: u8, epoch: Option<u64>| -> (Response, Flow, bool) {
        if version != WIRE_VERSION {
            return (
                err(
                    ErrorCode::Handshake,
                    format!("router speaks version {WIRE_VERSION}, client {version}"),
                ),
                Flow::Kill,
                true,
            );
        }
        match epoch {
            Some(e) if e != shared.ring.epoch() => (
                err(
                    ErrorCode::WrongShard,
                    format!(
                        "stale ring epoch {e:#x} (router at {:#x})",
                        shared.ring.epoch()
                    ),
                ),
                Flow::Kill,
                true,
            ),
            Some(e) => (
                Response::HelloEpochOk {
                    version: WIRE_VERSION,
                    epoch: e,
                    shard: 0,
                },
                Flow::Continue,
                false,
            ),
            None => (
                Response::HelloOk {
                    version: WIRE_VERSION,
                },
                Flow::Continue,
                false,
            ),
        }
    };
    if !*handshaken {
        return match req {
            Request::Hello { version } => {
                let out = hello(version, None);
                if !out.2 {
                    *handshaken = true;
                }
                out
            }
            Request::HelloEpoch {
                version,
                epoch,
                shard: 0,
            } => {
                let out = hello(version, Some(epoch));
                if !out.2 {
                    *handshaken = true;
                }
                out
            }
            Request::HelloEpoch { shard, .. } => (
                err(
                    ErrorCode::WrongShard,
                    format!("this is a router, not shard {shard}"),
                ),
                Flow::Kill,
                true,
            ),
            _ => (
                err(ErrorCode::Handshake, "first frame must be Hello"),
                Flow::Continue,
                true,
            ),
        };
    }

    match req {
        Request::Hello { version } => hello(version, None),
        Request::HelloEpoch {
            version,
            epoch,
            shard: 0,
        } => hello(version, Some(epoch)),
        Request::HelloEpoch { shard, .. } => (
            err(
                ErrorCode::WrongShard,
                format!("this is a router, not shard {shard}"),
            ),
            Flow::Kill,
            true,
        ),
        Request::Ping => (Response::Pong, Flow::Continue, false),
        Request::Metrics => (
            Response::MetricsOk {
                json: shared.snapshot().to_json(),
            },
            Flow::Continue,
            false,
        ),
        Request::Bye => (Response::ByeOk, Flow::Close, false),
        Request::Compress {
            file,
            priority,
            context,
            seq_len,
            words,
        } => match PackedSeq::from_words(words, seq_len as usize) {
            Ok(seq) => (
                route_compress(shared, file, seq, priority, context),
                Flow::Continue,
                false,
            ),
            Err(_) => (
                err(
                    ErrorCode::BadSequence,
                    "packed words do not form a sequence",
                ),
                Flow::Continue,
                true,
            ),
        },
        Request::CompressBegin {
            file,
            priority,
            context,
            total_len,
            chunk_bases,
        } => {
            if upload.is_some() {
                return (err(ErrorCode::BadFrame, "upload already open"), Flow::Continue, true);
            }
            if chunk_bases == 0 || chunk_bases % 4 != 0 {
                return (
                    err(
                        ErrorCode::BadFrame,
                        "chunk_bases must be a positive multiple of 4",
                    ),
                    Flow::Continue,
                    true,
                );
            }
            if total_len > shared.cfg.max_total_bases {
                return (
                    err(
                        ErrorCode::TooLarge,
                        format!(
                            "total_len {total_len} exceeds cap {}",
                            shared.cfg.max_total_bases
                        ),
                    ),
                    Flow::Continue,
                    false,
                );
            }
            if chunk_bases.div_ceil(4) > shared.cfg.max_frame_payload as u64 {
                return (
                    err(ErrorCode::TooLarge, "chunk_bases exceeds the frame payload cap"),
                    Flow::Continue,
                    false,
                );
            }
            *upload = Some(Upload {
                file,
                priority,
                context,
                total_len,
                chunk_bases,
                next: 0,
                words: Vec::with_capacity(total_len.div_ceil(4) as usize),
            });
            (Response::Ack, Flow::Continue, false)
        }
        Request::CompressChunk { index, words } => {
            let Some(up) = upload.as_mut() else {
                return (
                    err(ErrorCode::BadFrame, "chunk without an open upload"),
                    Flow::Continue,
                    true,
                );
            };
            if index != up.next || index >= up.chunk_count() {
                let msg = format!("chunk {index} out of order (expected {})", up.next);
                *upload = None;
                return (err(ErrorCode::BadFrame, msg), Flow::Continue, true);
            }
            if words.len() as u64 != up.expected_words(index) {
                let msg = format!(
                    "chunk {index} carries {} words, geometry says {}",
                    words.len(),
                    up.expected_words(index)
                );
                *upload = None;
                return (err(ErrorCode::BadSequence, msg), Flow::Continue, true);
            }
            up.words.extend_from_slice(&words);
            up.next += 1;
            (Response::Ack, Flow::Continue, false)
        }
        Request::CompressEnd { checksum } => {
            let Some(up) = upload.take() else {
                return (
                    err(ErrorCode::BadFrame, "end without an open upload"),
                    Flow::Continue,
                    true,
                );
            };
            if up.next != up.chunk_count() {
                return (
                    err(
                        ErrorCode::BadSequence,
                        format!("upload ended after {} of {} chunks", up.next, up.chunk_count()),
                    ),
                    Flow::Continue,
                    true,
                );
            }
            if fnv1a(&up.words) != checksum {
                return (
                    err(
                        ErrorCode::BadSequence,
                        "reassembled sequence fails its checksum",
                    ),
                    Flow::Continue,
                    true,
                );
            }
            match PackedSeq::from_words(up.words, up.total_len as usize) {
                Ok(seq) => (
                    route_compress(shared, up.file, seq, up.priority, up.context),
                    Flow::Continue,
                    false,
                ),
                Err(_) => (
                    err(
                        ErrorCode::BadSequence,
                        "packed words do not form a sequence",
                    ),
                    Flow::Continue,
                    true,
                ),
            }
        }
        Request::Get { key } => (route_get(shared, key), Flow::Continue, false),
        Request::Stat { key: Some(key) } => (
            forward(shared, &key, move |c| {
                c.call(&Request::Stat { key: Some(key) })
            }),
            Flow::Continue,
            false,
        ),
        Request::Stat { key: None } => (aggregate_stat(shared), Flow::Continue, false),
        Request::Keys | Request::Remove { .. } | Request::MigrateBatch { .. } => (
            err(
                ErrorCode::Unsupported,
                "store admin requests go to shards directly, not through the router",
            ),
            Flow::Continue,
            false,
        ),
    }
}

/// Write one reply frame; `Flow::Kill` means the peer is gone.
fn send_reply(stream: &mut TcpStream, shared: &RouterShared, resp: &Response) -> Flow {
    let frame = response_frame(resp);
    match write_frame(stream, &frame, Deadline::after(shared.cfg.write_timeout)) {
        Ok(()) => {
            shared.metrics.record_frame_tx();
            Flow::Continue
        }
        Err(_) => Flow::Kill,
    }
}

/// Serve one client connection to completion; `true` = killed.
fn handle_conn(mut stream: TcpStream, shared: &RouterShared, stop: &AtomicBool) -> bool {
    let _ = stream.set_read_timeout(Some(IO_TICK));
    let _ = stream.set_write_timeout(Some(IO_TICK));
    let _ = stream.set_nodelay(true);
    let m = &shared.metrics;
    let cfg = &shared.cfg;

    let mut strikes: u32 = 0;
    let mut handshaken = false;
    let mut upload: Option<Upload> = None;
    let mut idle = Deadline::after(cfg.idle_timeout);

    loop {
        if stop.load(Ordering::Relaxed) {
            return false;
        }
        let slice = Deadline::after(idle.remaining().min(Duration::from_millis(50)));
        let (ftype, payload, _wire) =
            match read_frame(&mut stream, cfg.max_frame_payload, slice, cfg.frame_timeout) {
                Ok(frame) => frame,
                Err(ProtoError::Idle) => {
                    if idle.expired() {
                        return false;
                    }
                    continue;
                }
                Err(ProtoError::Closed) => return false,
                Err(ProtoError::ChecksumMismatch { .. }) => {
                    m.record_protocol_error();
                    strikes += 1;
                    let flow = send_reply(
                        &mut stream,
                        shared,
                        &err(ErrorCode::BadFrame, "frame checksum mismatch"),
                    );
                    if strikes >= cfg.max_strikes || matches!(flow, Flow::Kill) {
                        return true;
                    }
                    idle = Deadline::after(cfg.idle_timeout);
                    continue;
                }
                Err(e) => {
                    m.record_protocol_error();
                    let code = match e {
                        ProtoError::Oversize { .. } => ErrorCode::TooLarge,
                        _ => ErrorCode::BadFrame,
                    };
                    let _ = send_reply(&mut stream, shared, &err(code, e.to_string()));
                    return true;
                }
            };
        m.record_frame_rx();
        idle = Deadline::after(cfg.idle_timeout);

        let req = match Request::decode(ftype, &payload) {
            Ok(req) => req,
            Err(e) => {
                m.record_protocol_error();
                strikes += 1;
                let flow =
                    send_reply(&mut stream, shared, &err(ErrorCode::BadFrame, e.to_string()));
                if strikes >= cfg.max_strikes || matches!(flow, Flow::Kill) {
                    return true;
                }
                continue;
            }
        };

        let (reply, flow, strike) = dispatch(shared, &mut handshaken, &mut upload, req);
        if strike {
            m.record_protocol_error();
            strikes += 1;
        }
        let wrote = send_reply(&mut stream, shared, &reply);
        if matches!(wrote, Flow::Kill) {
            return false;
        }
        match flow {
            Flow::Kill => return true,
            Flow::Close => return false,
            Flow::Continue => {
                if strikes >= cfg.max_strikes {
                    return true;
                }
            }
        }
    }
}

/// One probe pass over every shard: ping, strike, eject, re-admit —
/// then drain pending handoff hints to every healthy shard.
fn probe_pass(shared: &RouterShared) {
    for (slot, shard) in shared.shards.iter().enumerate() {
        let got = with_backend(shared, slot, shared.cfg.probe_timeout, |c| c.ping());
        match got {
            // A saturated pool proves the shard is busy serving, which
            // is the opposite of dead.
            Ok(()) | Err(BackendError::PoolBusy) => {
                shard.probe_strikes.store(0, Ordering::Relaxed);
                if !shard.healthy.swap(true, Ordering::Relaxed) {
                    shared.metrics.record_readmission(slot);
                }
            }
            Err(BackendError::Transport(_)) => {
                let strikes = shard.probe_strikes.fetch_add(1, Ordering::Relaxed) + 1;
                if strikes >= shared.cfg.probe_strikes
                    && shard.healthy.swap(false, Ordering::Relaxed)
                {
                    shared.metrics.record_ejection(slot);
                    // Close every idle socket to the dead shard now:
                    // the next forward dials fresh instead of timing
                    // out on a corpse.
                    drop(shard.pool.drain_idle());
                }
            }
        }
    }
    drain_hints(shared);
}

/// Deliver pending handoff hints to every currently-healthy shard,
/// over the checksummed migrate path, removing each hint only after
/// its shard acknowledged the batch. A delivery failure stops that
/// shard's drain for this pass (it probably flapped again); a hint
/// whose payload no longer parses is condemned as a counted drop.
fn drain_hints(shared: &RouterShared) {
    let Some(hints) = &shared.hints else {
        return;
    };
    if hints.pending() == 0 {
        return;
    }
    let epoch = shared.ring.epoch();
    for (slot, shard) in shared.shards.iter().enumerate() {
        if !shard.healthy.load(Ordering::Relaxed) {
            continue;
        }
        for key in hints.for_shard(shard.spec.id) {
            let bytes = match hints.load(shard.spec.id, &key) {
                Ok(bytes) => bytes,
                Err(_) => {
                    let _ = hints.remove(shard.spec.id, &key);
                    shared.metrics.record_hint_dropped();
                    continue;
                }
            };
            let got = with_backend(shared, slot, shared.cfg.shard_timeout, |c| {
                c.migrate_batch(epoch, vec![(key, bytes.clone())])
            });
            match got {
                Ok(_) => {
                    shared.metrics.record_shard_frames(slot, 1, 1);
                    let _ = hints.remove(shard.spec.id, &key);
                    shared.metrics.record_hint_drained();
                }
                Err(_) => break,
            }
        }
    }
    shared.metrics.set_hints_pending(hints.pending() as u64);
}

/// A running shard router. [`shutdown`](RouterServer::shutdown) (or
/// drop) stops accepting, drains in-flight connections and joins every
/// thread.
#[derive(Debug)]
pub struct RouterServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    prober_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shared: Arc<RouterShared>,
}

impl RouterServer {
    /// Bind `addr`, build the ring over `shards`, start the prober and
    /// begin accepting clients.
    pub fn start(
        addr: impl ToSocketAddrs,
        ring: Ring,
        config: RouterConfig,
    ) -> std::io::Result<RouterServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));

        let metrics = RouterMetrics::new(ring.shards().len());
        let shards = ring
            .shards()
            .iter()
            .map(|spec| ShardState {
                spec: spec.clone(),
                healthy: AtomicBool::new(true),
                probe_strikes: AtomicU32::new(0),
                pool: StreamPool::new(config.pool_per_shard),
            })
            .collect();
        let hints = match &config.hint_dir {
            Some(dir) => Some(HintQueue::open(dir, config.hint_cap).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, e)
            })?),
            None => None,
        };
        let shared = Arc::new(RouterShared {
            ring,
            cfg: config,
            shards,
            metrics,
            hints,
        });
        if let Some(h) = &shared.hints {
            // Hints from a previous router process survive its restart;
            // the gauge reflects them from the first snapshot on.
            shared.metrics.set_hints_pending(h.pending() as u64);
        }

        let prober_shared = Arc::clone(&shared);
        let prober_stop = Arc::clone(&stop);
        let prober_thread = std::thread::Builder::new()
            .name("route-probe".into())
            .spawn(move || {
                while !prober_stop.load(Ordering::Relaxed) {
                    let _ = contain_panic(|| probe_pass(&prober_shared));
                    // Sleep the probe interval in short slices so
                    // shutdown is never blocked on a probe nap.
                    let nap = Deadline::after(prober_shared.cfg.probe_interval);
                    while !nap.expired() && !prober_stop.load(Ordering::Relaxed) {
                        std::thread::sleep(
                            nap.remaining().min(Duration::from_millis(20)),
                        );
                    }
                }
            })?;

        let accept_shared = Arc::clone(&shared);
        let accept_stop = Arc::clone(&stop);
        let accept_handlers = Arc::clone(&handlers);
        let accept_thread = std::thread::Builder::new()
            .name("route-accept".into())
            .spawn(move || {
                let mut conn_id: u64 = 0;
                while !accept_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            conn_id += 1;
                            if active.load(Ordering::Relaxed)
                                >= accept_shared.cfg.max_connections
                            {
                                refuse_busy(&accept_shared, stream);
                                continue;
                            }
                            active.fetch_add(1, Ordering::Relaxed);
                            let shared = Arc::clone(&accept_shared);
                            let stop = Arc::clone(&accept_stop);
                            let active = Arc::clone(&active);
                            let handle = std::thread::Builder::new()
                                .name(format!("route-conn-{conn_id}"))
                                .spawn(move || {
                                    shared.metrics.record_conn_accepted();
                                    let killed =
                                        contain_panic(|| handle_conn(stream, &shared, &stop))
                                            .unwrap_or(true);
                                    if killed {
                                        shared.metrics.record_conn_killed();
                                    }
                                    shared.metrics.record_conn_closed();
                                    active.fetch_sub(1, Ordering::Relaxed);
                                })
                                .expect("spawn router connection handler");
                            let mut hs = lock_handlers(&accept_handlers);
                            hs.retain(|h| !h.is_finished());
                            hs.push(handle);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })?;

        Ok(RouterServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            prober_thread: Some(prober_thread),
            handlers,
            shared,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The ring epoch this router serves.
    pub fn epoch(&self) -> u64 {
        self.shared.ring.epoch()
    }

    /// The aggregated metrics rollup (fleet counters + per-shard).
    pub fn metrics_snapshot(&self) -> RouterMetricsSnapshot {
        self.shared.snapshot()
    }

    /// Run one anti-entropy [`repair`] sweep over this router's ring
    /// (dialling the shards directly, like [`rebalance`]) at the
    /// router's configured replication factor, accounting shipped
    /// buckets into the metrics rollup.
    pub fn repair(&self, timeout: Duration, buckets: u32) -> Result<RepairReport, String> {
        let report = repair(&self.shared.ring, self.shared.cfg.replicas, timeout, buckets)?;
        self.shared
            .metrics
            .record_repair_buckets(report.buckets_shipped);
        Ok(report)
    }

    /// Stop accepting, drain in-flight connections and join every
    /// thread.
    pub fn shutdown(mut self) -> RouterMetricsSnapshot {
        self.stop_and_join();
        self.shared.snapshot()
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.prober_thread.take() {
            let _ = t.join();
        }
        let handles: Vec<_> = lock_handlers(&self.handlers).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn lock_handlers(
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    match handlers.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Best-effort `ServerBusy` refusal for an over-cap accept.
fn refuse_busy(shared: &RouterShared, mut stream: TcpStream) {
    shared.metrics.record_conn_refused();
    let _ = stream.set_write_timeout(Some(IO_TICK));
    let frame = response_frame(&err(ErrorCode::ServerBusy, "connection cap reached"));
    if write_frame(
        &mut stream,
        &frame,
        Deadline::after(shared.cfg.write_timeout),
    )
    .is_ok()
    {
        shared.metrics.record_frame_tx();
    }
}

/// Outcome of one [`rebalance`] sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Keys enumerated and processed across every shard.
    pub scanned: u64,
    /// Keys skipped because a resume cursor marked them done.
    pub skipped: u64,
    /// Records shipped to their new owner.
    pub moved: u64,
    /// Shipped records the owner already held.
    pub deduped: u64,
    /// Source records deleted after the owner acknowledged.
    pub removed: u64,
    /// Container bytes shipped over the wire.
    pub bytes: u64,
}

/// Persisted progress of a [`rebalance_resumable`] sweep: shard slots
/// strictly below `next_slot` are fully swept; within `next_slot`,
/// keys at or below `last_key` (in sorted key order) are done. A
/// cursor from a different ring epoch is ignored — the plan it
/// tracked no longer exists.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RebalanceCursor {
    /// Ring epoch the sweep was planned under.
    pub epoch: u64,
    /// First shard slot not yet fully swept.
    pub next_slot: usize,
    /// Last key (hex) already processed within `next_slot`, if any.
    pub last_key: Option<String>,
}

/// Dial-on-demand connections for offline sweeps ([`rebalance`],
/// [`repair`]): one lazily dialled plain-TCP client per shard slot.
struct SweepConns<'a> {
    ring: &'a Ring,
    timeout: Duration,
    conns: Vec<Option<NetClient<TcpStream>>>,
}

impl<'a> SweepConns<'a> {
    fn new(ring: &'a Ring, timeout: Duration) -> Self {
        SweepConns {
            ring,
            timeout,
            conns: (0..ring.shards().len()).map(|_| None).collect(),
        }
    }

    fn get(&mut self, slot: usize) -> Result<&mut NetClient<TcpStream>, String> {
        if self.conns[slot].is_none() {
            let addr = self.ring.shards()[slot].addr.as_str();
            self.conns[slot] = Some(
                NetClient::connect(addr, self.timeout)
                    .map_err(|e| format!("dialling shard at {addr}: {e}"))?,
            );
        }
        Ok(self.conns[slot].as_mut().expect("just connected"))
    }

    fn finish(self) {
        for conn in self.conns.into_iter().flatten() {
            let _ = conn.bye();
        }
    }
}

/// Migrate every misplaced record to its owner under `ring`, with
/// `replicas` copies per key considered correctly placed. Equivalent
/// to [`rebalance_resumable`] with no cursor.
pub fn rebalance(
    ring: &Ring,
    replicas: usize,
    timeout: Duration,
    batch_records: usize,
) -> Result<RebalanceReport, String> {
    rebalance_resumable(ring, replicas, timeout, batch_records, None)
}

/// Migrate every misplaced record to its owner under `ring`.
///
/// For each shard, in slot order: enumerate its resident keys in
/// sorted order, fetch each record whose replica set (under
/// `replicas`) does not include this shard, ship them to the key's
/// owner in checksummed batches of at most `batch_records` records,
/// and delete each source record **only after** the owner's typed
/// `MigrateOk` acknowledged the batch — a crash mid-rebalance
/// duplicates records (idempotent: the store dedups by key), it never
/// loses one.
///
/// With `cursor_path` set, the sweep position is persisted after
/// every batch and the file removed on completion; a re-run after a
/// crash resumes from the cursor instead of rescanning every shard,
/// counting cursor-skipped keys as `skipped` (fully-swept shards are
/// not contacted at all). Cursor writes are best-effort: losing one
/// only costs rescanning, never a record.
pub fn rebalance_resumable(
    ring: &Ring,
    replicas: usize,
    timeout: Duration,
    batch_records: usize,
    cursor_path: Option<&Path>,
) -> Result<RebalanceReport, String> {
    let batch_records = batch_records.max(1);
    let mut report = RebalanceReport::default();
    let epoch = ring.epoch();
    let n = ring.shards().len();
    let mut conns = SweepConns::new(ring, timeout);

    // Resume point, if a cursor from this epoch exists.
    let mut start_slot = 0usize;
    let mut resume_after: Option<[u8; 16]> = None;
    if let Some(path) = cursor_path {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(cur) = serde_json::from_str::<RebalanceCursor>(&text) {
                if cur.epoch == epoch {
                    start_slot = cur.next_slot.min(n);
                    resume_after = cur.last_key.as_deref().and_then(key_unhex);
                }
            }
        }
    }
    let save_cursor = |slot: usize, last: Option<[u8; 16]>| {
        if let Some(path) = cursor_path {
            let cur = RebalanceCursor {
                epoch,
                next_slot: slot,
                last_key: last.map(|k| key_hex(&k)),
            };
            if let Ok(json) = serde_json::to_string(&cur) {
                let _ = std::fs::write(path, json);
            }
        }
    };

    for source in start_slot..n {
        let mut keys = conns
            .get(source)?
            .keys()
            .map_err(|e| format!("listing keys on shard {}: {e}", ring.shards()[source].id))?;
        keys.sort_unstable();
        let cut = if source == start_slot {
            resume_after.take()
        } else {
            None
        };

        // Walk keys in sorted order, flushing misplaced ones in
        // batches; the cursor advances to the last enumerated key of
        // each flushed batch, so everything at or before it is done.
        let mut pending: Vec<[u8; 16]> = Vec::new();
        let flush = |pending: &mut Vec<[u8; 16]>,
                         conns: &mut SweepConns<'_>,
                         report: &mut RebalanceReport,
                         upto: [u8; 16]|
         -> Result<(), String> {
            let mut by_owner: BTreeMap<usize, Vec<[u8; 16]>> = BTreeMap::new();
            for key in pending.drain(..) {
                by_owner
                    .entry(ring.replica_slots(&key, replicas)[0])
                    .or_default()
                    .push(key);
            }
            for (owner, keys) in by_owner {
                // Fetch the batch from the source.
                let mut records = Vec::with_capacity(keys.len());
                for &key in &keys {
                    let got = conns
                        .get(source)?
                        .call(&Request::Get { key })
                        .map_err(|e| format!("fetching record: {e}"))?;
                    match got {
                        Response::GetOk { blob } => {
                            report.bytes += blob.len() as u64;
                            records.push((key, blob));
                        }
                        // Deleted between enumeration and fetch: fine.
                        Response::Error {
                            code: ErrorCode::UnknownKey,
                            ..
                        } => {}
                        other => return Err(format!("unexpected get reply: {other:?}")),
                    }
                }
                if records.is_empty() {
                    continue;
                }
                let batch_keys: Vec<[u8; 16]> = records.iter().map(|(k, _)| *k).collect();
                let (stored, deduped) = conns
                    .get(owner)?
                    .migrate_batch(epoch, records)
                    .map_err(|e| {
                        format!("migrating to shard {}: {e}", ring.shards()[owner].id)
                    })?;
                report.moved += stored;
                report.deduped += deduped;
                // Only now is the source copy redundant.
                for key in batch_keys {
                    if conns
                        .get(source)?
                        .remove(key)
                        .map_err(|e| format!("removing migrated record: {e}"))?
                    {
                        report.removed += 1;
                    }
                }
            }
            save_cursor(source, Some(upto));
            Ok(())
        };

        let total = keys.len();
        for (i, key) in keys.into_iter().enumerate() {
            if let Some(cut) = cut {
                if key <= cut {
                    report.skipped += 1;
                    continue;
                }
            }
            report.scanned += 1;
            if !ring.replica_slots(&key, replicas).contains(&source) {
                pending.push(key);
            }
            if pending.len() >= batch_records || (i + 1 == total && !pending.is_empty()) {
                flush(&mut pending, &mut conns, &mut report, key)?;
            }
        }
        save_cursor(source + 1, None);
    }
    conns.finish();
    if let Some(path) = cursor_path {
        let _ = std::fs::remove_file(path);
    }
    Ok(report)
}

/// Outcome of one [`repair`] anti-entropy sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Resident keys enumerated across every shard.
    pub keys_scanned: u64,
    /// `(shard, bucket)` digest pairs compared.
    pub buckets_checked: u64,
    /// Digests that disagreed with the expected placement.
    pub buckets_differing: u64,
    /// Differing buckets that had missing keys shipped (a bucket that
    /// differs only by *extra* copies is [`rebalance`]'s business).
    pub buckets_shipped: u64,
    /// Records shipped to under-replicated shards.
    pub keys_shipped: u64,
    /// Shipped records the target already held.
    pub deduped: u64,
    /// Container bytes shipped over the wire.
    pub bytes: u64,
}

/// The digest bucket a key rolls up into.
fn repair_bucket(key: &[u8; 16], buckets: u32) -> u32 {
    (fnv1a(key) % buckets as u64) as u32
}

/// Order-independent per-bucket rollup of a key set: each bucket
/// holds a count and a wrapping sum of `mix64(fnv1a(key))` — two sets
/// agree on a bucket iff (modulo collisions far below the container
/// checksum's error floor) they hold the same keys in it.
fn repair_digests(keys: &BTreeSet<[u8; 16]>, buckets: u32) -> Vec<(u64, u64)> {
    let mut out = vec![(0u64, 0u64); buckets as usize];
    for key in keys {
        let b = repair_bucket(key, buckets) as usize;
        out[b].0 += 1;
        out[b].1 = out[b].1.wrapping_add(mix64(fnv1a(key)));
    }
    out
}

/// Anti-entropy sweep: converge every shard toward holding every key
/// whose replica set (under `replicas`) includes it.
///
/// Instead of shipping whole key listings between shards, each
/// shard's residency is rolled up into `buckets` order-independent
/// FNV-1a digest buckets and compared against the expected placement
/// of the cluster-wide key union. Only differing buckets are
/// expanded, and only the missing keys are fetched from a current
/// holder and shipped over the checksummed `MigrateBatch` path — so a
/// shard restored from an empty disk converges to full replication
/// while an already-converged cluster exchanges nothing but digests.
///
/// The sweep is **additive**: it never removes a record (extra copies
/// after a membership change are [`rebalance`]'s business), so repair
/// can never destroy a replica.
pub fn repair(
    ring: &Ring,
    replicas: usize,
    timeout: Duration,
    buckets: u32,
) -> Result<RepairReport, String> {
    let buckets = buckets.max(1);
    let n = ring.shards().len();
    let mut report = RepairReport::default();
    let mut conns = SweepConns::new(ring, timeout);

    // Enumerate residency per shard.
    let mut resident: Vec<BTreeSet<[u8; 16]>> = Vec::with_capacity(n);
    for slot in 0..n {
        let keys = conns
            .get(slot)?
            .keys()
            .map_err(|e| format!("listing keys on shard {}: {e}", ring.shards()[slot].id))?;
        report.keys_scanned += keys.len() as u64;
        resident.push(keys.into_iter().collect());
    }

    // The cluster-wide key union, each with one current holder, and
    // the placement every shard is expected to converge to.
    let mut holders: BTreeMap<[u8; 16], usize> = BTreeMap::new();
    for (slot, keys) in resident.iter().enumerate() {
        for key in keys {
            holders.entry(*key).or_insert(slot);
        }
    }
    let mut expected: Vec<BTreeSet<[u8; 16]>> = vec![BTreeSet::new(); n];
    for key in holders.keys() {
        for slot in ring.replica_slots(key, replicas) {
            expected[slot].insert(*key);
        }
    }

    let epoch = ring.epoch();
    for slot in 0..n {
        let have = repair_digests(&resident[slot], buckets);
        let want = repair_digests(&expected[slot], buckets);
        for b in 0..buckets {
            report.buckets_checked += 1;
            if have[b as usize] == want[b as usize] {
                continue;
            }
            report.buckets_differing += 1;
            let missing: Vec<[u8; 16]> = expected[slot]
                .iter()
                .filter(|k| repair_bucket(k, buckets) == b && !resident[slot].contains(*k))
                .copied()
                .collect();
            if missing.is_empty() {
                continue;
            }
            report.buckets_shipped += 1;
            // Fetch each missing key from a current holder, then ship
            // the bucket to the shard in bounded checksummed batches.
            let mut records: Vec<([u8; 16], Vec<u8>)> = Vec::with_capacity(missing.len());
            for key in missing {
                let holder = holders[&key];
                let got = conns
                    .get(holder)?
                    .call(&Request::Get { key })
                    .map_err(|e| format!("fetching record: {e}"))?;
                match got {
                    Response::GetOk { blob } => {
                        report.bytes += blob.len() as u64;
                        records.push((key, blob));
                    }
                    // Deleted between enumeration and fetch: fine.
                    Response::Error {
                        code: ErrorCode::UnknownKey,
                        ..
                    } => {}
                    other => return Err(format!("unexpected get reply: {other:?}")),
                }
            }
            for chunk in records.chunks(64) {
                let (stored, deduped) = conns
                    .get(slot)?
                    .migrate_batch(epoch, chunk.to_vec())
                    .map_err(|e| {
                        format!("repairing shard {}: {e}", ring.shards()[slot].id)
                    })?;
                report.keys_shipped += stored;
                report.deduped += deduped;
            }
        }
    }
    conns.finish();
    Ok(report)
}
