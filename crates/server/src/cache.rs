//! LRU decision cache over quantized contexts.
//!
//! Per-request model selection is the service's hot path (every job
//! would otherwise walk the rule tree), and real traffic repeats
//! contexts heavily: the same client class ships many files of similar
//! size. The cache exploits that by quantizing the context to a
//! [`ContextKey`] — file size rounded to the nearest power of two,
//! machine resources taken verbatim, bandwidth to tenths of a Mbit/s —
//! and remembering the tree's decision per key in a small LRU.
//!
//! **Determinism.** On a miss the worker does *not* cache the decision
//! for the raw context; it decides on the key's
//! [`canonical context`](ContextKey::canonical), the fixed
//! representative of the whole equivalence class. The cached value is
//! therefore a pure function of the key — identical no matter which
//! job, worker or interleaving filled it — which is what makes a
//! concurrent replay bit-reproducible. The price is quantization error:
//! within one size octave every file gets the representative's
//! algorithm, even if the exact tree threshold falls inside the bucket.
//! That trades a bounded decision blur (the labels on either side of a
//! threshold have near-equal cost by construction — that is why the
//! threshold is there) for an O(1) lookup on > 90 % of jobs.

use dnacomp_core::Context;

/// Quantized context — the cache key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ContextKey {
    /// `round(log2(file_bytes))`; one bucket per size octave.
    pub size_log2: u8,
    /// Client RAM, MB (verbatim — the grid has few distinct levels).
    pub ram_mb: u32,
    /// Client CPU clock, MHz (verbatim).
    pub cpu_mhz: u32,
    /// Bandwidth in tenths of a Mbit/s.
    pub bw_decimbps: u32,
}

impl ContextKey {
    /// Quantize a context.
    pub fn quantize(ctx: &Context) -> Self {
        ContextKey {
            size_log2: (ctx.file_bytes.max(1) as f64).log2().round() as u8,
            ram_mb: ctx.ram_mb,
            cpu_mhz: ctx.cpu_mhz,
            bw_decimbps: (ctx.bandwidth_mbps * 10.0).round() as u32,
        }
    }

    /// The fixed representative context of this key's equivalence
    /// class: file size `2^size_log2`, resources de-quantized. Deciding
    /// on the canonical context (not the raw one) is what makes cached
    /// decisions order-independent.
    pub fn canonical(&self) -> Context {
        Context {
            ram_mb: self.ram_mb,
            cpu_mhz: self.cpu_mhz,
            bandwidth_mbps: self.bw_decimbps as f64 / 10.0,
            file_bytes: 1u64 << self.size_log2.min(63),
        }
    }
}

/// A fixed-capacity least-recently-used map.
///
/// Backed by a `Vec` ordered oldest → newest; `get` promotes to the
/// back, `insert` evicts the front when full. Lookups are O(capacity),
/// which at the intended sizes (≤ a few thousand entries) is nanoseconds
/// against the microseconds-to-milliseconds jobs it shortcuts — and the
/// flat layout keeps the recency order trivially inspectable for tests.
#[derive(Clone, Debug)]
pub struct LruCache<K: PartialEq, V> {
    capacity: usize,
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> LruCache<K, V> {
    /// An empty cache evicting beyond `capacity` entries.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum entries before eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        self.entries.push(entry);
        self.entries.last().map(|(_, v)| v)
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used
    /// entry if the cache is full. Returns the evicted pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        self.entries.push((key, value));
        if self.entries.len() > self.capacity {
            Some(self.entries.remove(0))
        } else {
            None
        }
    }

    /// Keys oldest → newest (eviction order); for tests and debugging.
    pub fn keys_lru_first(&self) -> Vec<&K> {
        self.entries.iter().map(|(k, _)| k).collect()
    }

    /// Drop every entry (capacity is kept). Poison recovery uses this:
    /// a cache rebuilt from scratch is always correct, merely cold.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used_first() {
        let mut c = LruCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        // Touch "a": "b" becomes the LRU entry.
        assert_eq!(c.get(&"a"), Some(&1));
        let evicted = c.insert("d", 4);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(c.keys_lru_first(), vec![&"c", &"a", &"d"]);
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn reinsert_refreshes_without_growing() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert!(c.insert("a", 10).is_none()); // refresh, not eviction
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.insert("c", 3), Some(("b", 2))); // "b" was LRU
    }

    #[test]
    fn quantization_buckets_by_octave() {
        let ctx = |bytes: u64| Context {
            ram_mb: 2048,
            cpu_mhz: 2393,
            bandwidth_mbps: 2.0,
            file_bytes: bytes,
        };
        // 100 kB and 110 kB round to the same 2^17 ≈ 128 kB octave…
        assert_eq!(
            ContextKey::quantize(&ctx(100_000)),
            ContextKey::quantize(&ctx(110_000))
        );
        // …but 20 kB does not.
        assert_ne!(
            ContextKey::quantize(&ctx(20_000)),
            ContextKey::quantize(&ctx(110_000))
        );
        // Machine differences always split keys.
        let other = Context {
            ram_mb: 1024,
            ..ctx(100_000)
        };
        assert_ne!(
            ContextKey::quantize(&ctx(100_000)),
            ContextKey::quantize(&other)
        );
    }

    #[test]
    fn canonical_is_a_fixed_point() {
        let ctx = Context {
            ram_mb: 3072,
            cpu_mhz: 2393,
            bandwidth_mbps: 2.0,
            file_bytes: 90_000,
        };
        let key = ContextKey::quantize(&ctx);
        let canon = key.canonical();
        // Quantizing the canonical context lands on the same key, so
        // cached decisions are stable under re-quantization.
        assert_eq!(ContextKey::quantize(&canon), key);
        assert_eq!(canon.file_bytes, 1 << key.size_log2);
    }

    #[test]
    fn zero_byte_files_quantize_safely() {
        let ctx = Context {
            ram_mb: 1024,
            cpu_mhz: 1600,
            bandwidth_mbps: 0.5,
            file_bytes: 0,
        };
        let key = ContextKey::quantize(&ctx);
        assert_eq!(key.size_log2, 0);
        assert_eq!(key.canonical().file_bytes, 1);
    }
}
