//! The compression service: submission front end + worker pool wiring.
//!
//! One [`CompressionService`] owns a bounded [`JobQueue`], a fixed pool
//! of OS threads (see [`crate::worker`]), a shared [`LruCache`] of
//! quantized-context decisions, a [`Metrics`] registry, and a
//! [`FrameworkHandle`] — the read-only rule-tree snapshot every worker
//! consults. Producers call [`submit`](CompressionService::submit) and
//! get a [`JobTicket`] back; the response arrives on the ticket when a
//! worker finishes.
//!
//! ## Job lifecycle & the every-ticket-resolves contract
//!
//! ```text
//! submit ─┬─ queue full ──────────────► Err(SubmitError::QueueFull)
//!         ├─ shedding ────────────────► ticket: Err(JobError::Shed)
//!         └─ accepted → queued ─┬─ deadline passed at dequeue
//!                               │        └► ticket: Err(JobError::Expired)
//!                               ├─ content quarantined
//!                               │        └► ticket: Err(JobError::Quarantined)
//!                               ├─ executed ─┬─ ok    ► ticket: Ok(CompressResponse)
//!                               │            ├─ err   ► ticket: Err(JobError::Exchange/Store)
//!                               │            └─ panic ► ticket: Err(JobError::Panicked)
//!                               └─ worker crashed under the job
//!                                        └► ticket: Err(JobError::WorkerGone)
//! ```
//!
//! **Every ticket resolves exactly once, with a typed outcome**: `Ok`,
//! a typed `Err`, shed, or quarantined. Hard rejection
//! (`SubmitError`) is only ever synchronous, at submit; a shed job
//! never enters the queue but its ticket still resolves. Worker panics
//! are contained per job ([`JobError::Panicked`]); worker *crashes*
//! resolve the victim's ticket via the dropped reply sender
//! ([`JobError::WorkerGone`]) and the supervisor respawns the thread
//! (see [`crate::supervisor`]). [`shutdown`](CompressionService::shutdown)
//! closes the queue (new submissions fail fast) and joins the
//! supervisor, which keeps replacing crashed workers until everything
//! accepted has drained.

use crate::cache::{ContextKey, LruCache};
use crate::dlq::{DeadLetter, DeadLetterInfo, DeadLetterQueue, QuarantineRegistry};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{JobQueue, Priority, PushError};
use crate::supervisor;
use dnacomp_algos::{Algorithm, TaskPool};
use dnacomp_cloud::{ExchangeError, FaultPlan, RetryPolicy};
use dnacomp_core::{Context, FrameworkHandle};
use dnacomp_seq::PackedSeq;
use dnacomp_store::{ContentKey, PutOutcome, SequenceStore, StoreError};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One unit of work for the service.
#[derive(Clone, Debug)]
pub struct CompressRequest {
    /// File identifier (names the blob in exchange mode; feeds the
    /// deterministic fault/jitter keys).
    pub file: String,
    /// The sequence to compress.
    pub sequence: PackedSeq,
    /// The client context the decision is made for.
    pub context: Context,
    /// Queue lane.
    pub priority: Priority,
    /// Wall-clock budget from submission until a worker *starts* the
    /// job; exceeded ⇒ the ticket resolves `Err(JobError::Expired)`.
    pub deadline: Option<Duration>,
    /// `true`: run the full resilient cloud exchange (compress →
    /// upload → download → decompress, degradation ladder on failure).
    /// `false`: compress only, priced on the same simulated clock.
    pub exchange: bool,
}

impl CompressRequest {
    /// A compress-only, normal-priority, deadline-free request.
    pub fn new(file: impl Into<String>, sequence: PackedSeq, context: Context) -> Self {
        CompressRequest {
            file: file.into(),
            sequence,
            context,
            priority: Priority::Normal,
            deadline: None,
            exchange: false,
        }
    }
}

/// Successful outcome of one job.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressResponse {
    /// Echo of the request's file identifier.
    pub file: String,
    /// Algorithm that actually compressed the payload (after any
    /// degradation).
    pub algorithm: Algorithm,
    /// Input length in bases.
    pub original_len: usize,
    /// Serialised container size in bytes.
    pub compressed_bytes: usize,
    /// Frame blocks the compressed container holds: `1` for a flat
    /// blob, the block count when the block-parallel frame path ran
    /// ([`ServiceConfig::block_size`]).
    pub blocks: usize,
    /// Simulated cost of the job, ms: compression time in compress-only
    /// mode, full exchange total in exchange mode.
    pub sim_ms: f64,
    /// Wall-clock time the worker spent executing, ms.
    pub wall_ms: f64,
    /// Wall-clock time from submission to completion, ms (queue wait
    /// included) — the per-job latency `bench-serve` aggregates into
    /// exact percentiles, unlike the pool-size-independent `sim_ms`.
    pub wall_latency_ms: f64,
    /// `true` when the decision came from the LRU cache (rule tree
    /// skipped).
    pub cache_hit: bool,
    /// Index of the worker that ran the job.
    pub worker: usize,
    /// Block attempts repeated during the exchange (0 in compress-only
    /// mode).
    pub retries: u32,
    /// Algorithms the degradation ladder abandoned before success.
    pub degraded_from: Vec<Algorithm>,
    /// Where the result landed when the service runs in
    /// persist-on-complete mode ([`ServiceConfig::store`]): the content
    /// key plus whether the store already held the sequence. `None`
    /// when no store is attached.
    pub persisted: Option<PutOutcome>,
}

/// Why a ticket resolved without a response.
#[derive(Debug)]
pub enum JobError {
    /// The job out-waited its deadline in the queue; `waited_ms` is how
    /// long it sat before a worker picked it up.
    Expired {
        /// Queue wait, wall-clock ms.
        waited_ms: f64,
    },
    /// The exchange (or compression) failed with a typed error after
    /// exhausting the degradation ladder.
    Exchange(ExchangeError),
    /// The job compressed fine but persisting it to the attached
    /// [`SequenceStore`] failed; the result was not delivered because
    /// persist-on-complete promises the record is durable on success.
    Store(StoreError),
    /// The worker crashed (or the pool died) under this job without
    /// answering. The supervisor counts the crash, strikes the job's
    /// content, and respawns the worker — resubmitting is safe unless
    /// the content has been quarantined meanwhile.
    WorkerGone,
    /// The job panicked inside a worker; the panic was contained
    /// ([`dnacomp_core::contain_panic`]) and charged to this job alone.
    Panicked {
        /// Extracted panic payload.
        message: String,
        /// Quarantine strikes now held against this job's content.
        strikes: u32,
    },
    /// The job's content crossed the strike threshold earlier and is
    /// quarantined in the dead-letter queue; execution was refused.
    Quarantined {
        /// Hex content fingerprint — the handle for `dlq replay`/`drop`.
        key_hex: String,
    },
    /// Load shedding refused the job at admission
    /// ([`ServiceConfig::shed_above`]); it never entered the queue.
    Shed {
        /// Queue depth observed at the shedding decision.
        depth: usize,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Expired { waited_ms } => {
                write!(f, "job expired after waiting {waited_ms:.1} ms in queue")
            }
            JobError::Exchange(e) => write!(f, "exchange failed: {e}"),
            JobError::Store(e) => write!(f, "persisting result failed: {e}"),
            JobError::WorkerGone => f.write_str("worker crashed without answering"),
            JobError::Panicked { message, strikes } => {
                write!(f, "job panicked (contained; strike {strikes}): {message}")
            }
            JobError::Quarantined { key_hex } => {
                write!(f, "content {key_hex} is quarantined in the dead-letter queue")
            }
            JobError::Shed { depth } => {
                write!(f, "shed at admission: queue depth {depth} over the shedding threshold")
            }
        }
    }
}

/// Why a submission was rejected synchronously.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Backpressure: the bounded queue is at capacity.
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("submission queue is full"),
            SubmitError::ShuttingDown => f.write_str("service is shutting down"),
        }
    }
}

/// Result delivered on a [`JobTicket`].
pub type JobResult = Result<CompressResponse, JobError>;

/// The shared decision cache (quantized context → algorithm).
pub(crate) type LruMap = Mutex<LruCache<ContextKey, Algorithm>>;

/// Lock the decision cache, recovering from poisoning by clearing it.
///
/// A panic while holding the cache lock (contained by the worker's
/// panic guard) poisons the mutex but cannot make the *service* wrong:
/// cached values are pure functions of their keys, so dropping every
/// entry restores a trivially consistent (merely cold) cache. This
/// replaces the old `expect("cache poisoned")`, which let one contained
/// panic take down every subsequent job on the decide path.
pub(crate) fn lock_cache(cache: &LruMap) -> std::sync::MutexGuard<'_, LruCache<ContextKey, Algorithm>> {
    match cache.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            guard.clear();
            guard
        }
    }
}

/// An internal queued job: the request plus reply plumbing.
pub(crate) struct Job {
    pub(crate) req: CompressRequest,
    pub(crate) submitted: Instant,
    pub(crate) reply: mpsc::Sender<JobResult>,
}

/// Claim check for a submitted job.
pub struct JobTicket {
    rx: mpsc::Receiver<JobResult>,
}

impl JobTicket {
    /// Block until the job resolves.
    pub fn wait(self) -> JobResult {
        self.rx.recv().unwrap_or(Err(JobError::WorkerGone))
    }

    /// Non-blocking poll: `None` while the job is still in flight.
    pub fn try_wait(&self) -> Option<JobResult> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(JobError::WorkerGone)),
        }
    }
}

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads to spawn.
    pub workers: usize,
    /// Bounded queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Decision-cache entries before LRU eviction.
    pub cache_capacity: usize,
    /// Fault schedule for each worker's simulator (deterministic per
    /// job: faults key on algorithm/file/block, not on the worker).
    pub faults: FaultPlan,
    /// Retry/backoff/timeout policy for exchanges.
    pub retry: RetryPolicy,
    /// Block size of each worker's blob store, bytes (`None`: default).
    /// When [`block_size`](Self::block_size) is set and this is `None`,
    /// the service aligns it to the packed bytes of one frame block
    /// (`block_size / 4`) so resumable-upload blocks land exactly on
    /// frame boundaries.
    pub block_bytes: Option<usize>,
    /// Block-parallel threshold, bases. `Some(n)`: compress-only jobs
    /// longer than `n` are compressed as a framed container
    /// ([`dnacomp_algos::FramedBlob`]), one block task per `n` bases,
    /// on the service-wide shared [`TaskPool`] — block tasks from
    /// concurrent jobs interleave FIFO instead of head-of-line
    /// blocking. `None` (default): every job is one flat blob.
    pub block_size: Option<usize>,
    /// Consecutive failures before a worker's circuit breaker opens a
    /// ladder rung. Use `u32::MAX` to disable breaker skipping, which
    /// makes every job's outcome a pure function of the job (full
    /// determinism even under faults).
    pub breaker_threshold: u32,
    /// Persist-on-complete: every successful job's compressed result is
    /// `put` into this shared store before the ticket resolves, and the
    /// response carries the [`PutOutcome`]. `None` (the default) keeps
    /// the service stateless, as in earlier revisions.
    pub store: Option<Arc<SequenceStore>>,
    /// Load shedding / admission control. `Some(depth)`: once the queue
    /// holds ≥ `depth` jobs, low-priority submissions are shed (ticket
    /// resolves [`JobError::Shed`] immediately, nothing is enqueued);
    /// normal-priority submissions shed at `2 × depth`; high priority is
    /// never shed — it only ever hits the hard
    /// [`SubmitError::QueueFull`] wall. `None` (default) disables
    /// shedding.
    pub shed_above: Option<usize>,
    /// Panics/crashes charged to one content fingerprint before it is
    /// quarantined into the dead-letter queue. `u32::MAX` disables
    /// quarantine.
    pub quarantine_after: u32,
    /// Total worker respawns the supervisor may perform over the
    /// service's lifetime. `0` means a crashed worker stays dead.
    pub restart_budget: u32,
    /// Dead letters held before the oldest is evicted (and counted in
    /// the `dlq_dropped` metric).
    pub dlq_capacity: usize,
    /// Background store scrub interval. `Some(d)` with a store attached
    /// spawns a [`dnacomp_store::ScrubTask`] auditing
    /// [`scrub_records_per_tick`](Self::scrub_records_per_tick) run
    /// records from disk every `d`; failures feed the
    /// `store_scrub_failures` metric. `None` (default): no background
    /// scrubbing — explicit `verify` still works.
    pub scrub_interval: Option<Duration>,
    /// Records audited per scrub tick (ignored without
    /// [`scrub_interval`](Self::scrub_interval)).
    pub scrub_records_per_tick: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 256,
            cache_capacity: 1024,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            block_bytes: None,
            block_size: None,
            breaker_threshold: 3,
            store: None,
            shed_above: None,
            quarantine_after: 2,
            restart_budget: 8,
            dlq_capacity: 64,
            scrub_interval: None,
            scrub_records_per_tick: 256,
        }
    }
}

/// The running service. Dropping it performs an orderly shutdown.
pub struct CompressionService {
    queue: Arc<JobQueue<Job>>,
    metrics: Arc<Metrics>,
    cache: Arc<LruMap>,
    dlq: Arc<DeadLetterQueue>,
    registry: Arc<QuarantineRegistry>,
    block_pool: Arc<TaskPool>,
    shed_above: Option<usize>,
    supervisor: Option<std::thread::JoinHandle<()>>,
    scrub: Option<dnacomp_store::ScrubTask>,
}

impl CompressionService {
    /// Spawn the worker pool (plus its supervisor) and open the queue.
    pub fn start(framework: FrameworkHandle, mut config: ServiceConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        // Align the resumable-upload block of each worker's blob store
        // to the packed bytes of one frame block, unless overridden.
        if let (Some(bases), None) = (config.block_size, config.block_bytes) {
            config.block_bytes = Some(bases.div_ceil(4).max(1));
        }
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let metrics = Arc::new(Metrics::new());
        let cache = Arc::new(Mutex::new(LruCache::new(config.cache_capacity)));
        let dlq = Arc::new(DeadLetterQueue::new(config.dlq_capacity));
        let registry = Arc::new(QuarantineRegistry::new(config.quarantine_after));
        // One service-wide block pool, sized like the job pool: block
        // tasks from every worker's framed jobs interleave here, and a
        // worker running a framed job helps drain its own batch, so
        // total concurrency stays bounded by `2 × workers`.
        let block_pool = Arc::new(TaskPool::new(config.workers));
        let shed_above = config.shed_above;
        let restart_budget = config.restart_budget;
        // Background scrub: only meaningful with a store to audit.
        let scrub = match (config.scrub_interval, config.store.as_ref()) {
            (Some(interval), Some(store)) => Some(dnacomp_store::ScrubTask::start(
                Arc::clone(store),
                interval,
                config.scrub_records_per_tick,
            )),
            _ => None,
        };
        let shared = supervisor::PoolShared {
            queue: Arc::clone(&queue),
            framework,
            cache: Arc::clone(&cache),
            metrics: Arc::clone(&metrics),
            config,
            dlq: Arc::clone(&dlq),
            registry: Arc::clone(&registry),
            block_pool: Arc::clone(&block_pool),
        };
        let epoch = Instant::now();
        let slots: Vec<Arc<supervisor::WorkerSlot>> = (0..shared.config.workers)
            .map(|id| Arc::new(supervisor::WorkerSlot::new(id, epoch)))
            .collect();
        let handles = slots
            .iter()
            .map(|slot| Some(supervisor::spawn_worker(&shared, Arc::clone(slot), 0)))
            .collect();
        let generations = vec![0u32; slots.len()];
        let sup = supervisor::Supervisor {
            shared,
            slots,
            handles,
            generations,
            restarts_left: restart_budget,
        };
        let supervisor = std::thread::Builder::new()
            .name("dnacomp-supervisor".to_owned())
            .spawn(move || supervisor::run(sup))
            .expect("spawning supervisor thread");
        CompressionService {
            queue,
            metrics,
            cache,
            dlq,
            registry,
            block_pool,
            shed_above,
            supervisor: Some(supervisor),
            scrub,
        }
    }

    /// Submit a job. Non-blocking: a full queue rejects immediately
    /// (backpressure) rather than stalling the producer; an overloaded
    /// queue *sheds* lower-priority work instead (the ticket resolves
    /// [`JobError::Shed`] without the job ever being enqueued).
    pub fn submit(&self, req: CompressRequest) -> Result<JobTicket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let priority = req.priority;
        // Admission control: shed before touching the queue. Low lane
        // sheds first (at the configured depth), normal at twice it,
        // high priority never — it competes only with the hard
        // QueueFull limit. Shed jobs are not "accepted": they are
        // resolved on the spot and appear only in `jobs_shed`.
        if let Some(limit) = self.shed_above {
            let lane_limit = match priority {
                Priority::High => None,
                Priority::Normal => Some(limit.saturating_mul(2)),
                Priority::Low => Some(limit),
            };
            if let Some(lane_limit) = lane_limit {
                let depth = self.queue.len();
                if depth >= lane_limit.max(1) {
                    self.metrics.record_shed();
                    let _ = tx.send(Err(JobError::Shed { depth }));
                    return Ok(JobTicket { rx });
                }
            }
        }
        let job = Job {
            req,
            submitted: Instant::now(),
            reply: tx,
        };
        // Depth rises before the job is visible to workers (and is
        // undone on rejection) so the worker-side decrement always has
        // a matching prior increment — see `Metrics::record_enqueued`.
        self.metrics.record_enqueued();
        match self.queue.try_push(job, priority) {
            Ok(()) => {
                self.metrics.record_accepted();
                Ok(JobTicket { rx })
            }
            Err(PushError::Full(_)) => {
                self.metrics.record_dequeued();
                self.metrics.record_rejected_full();
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed(_)) => {
                self.metrics.record_dequeued();
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Sharing counters of the service-wide block pool.
    pub fn block_pool_stats(&self) -> dnacomp_algos::PoolStats {
        self.block_pool.stats()
    }

    /// Decisions currently cached.
    pub fn cached_decisions(&self) -> usize {
        lock_cache(&self.cache).len()
    }

    /// Jobs currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Dead letters currently quarantined.
    pub fn dlq_depth(&self) -> usize {
        self.dlq.depth()
    }

    /// Summaries of every quarantined job, oldest first.
    pub fn dlq_list(&self) -> Vec<DeadLetterInfo> {
        self.dlq.list()
    }

    /// Drop a dead letter without replaying it. Clears the content's
    /// strikes too (dropping is a human judgement that the record is
    /// noise). Returns the discarded letter, `None` if the key is not
    /// quarantined.
    pub fn dlq_drop(&self, key: &ContentKey) -> Option<DeadLetter> {
        let letter = self.dlq.take(key)?;
        self.registry.clear(key);
        self.metrics
            .set_dlq_state(self.dlq.depth() as u64, self.dlq.dropped());
        Some(letter)
    }

    /// Replay a dead letter: forgive its strikes and resubmit the
    /// original request. `None` if the key is not quarantined; the
    /// inner `Result` is the resubmission outcome (on a synchronous
    /// rejection the letter is restored to the DLQ, strikes stay
    /// cleared).
    pub fn dlq_replay(&self, key: &ContentKey) -> Option<Result<JobTicket, SubmitError>> {
        let letter = self.dlq.take(key)?;
        self.registry.clear(key);
        match self.submit(letter.request.clone()) {
            Ok(ticket) => {
                self.metrics
                    .set_dlq_state(self.dlq.depth() as u64, self.dlq.dropped());
                Some(Ok(ticket))
            }
            Err(e) => {
                self.dlq.push(letter);
                Some(Err(e))
            }
        }
    }

    /// Remove and return every dead letter, oldest first — how `dnacomp
    /// serve --dlq-dir` persists the quarantine before shutdown.
    pub fn dlq_drain(&self) -> Vec<DeadLetter> {
        let letters = self.dlq.drain();
        self.metrics.set_dlq_state(0, self.dlq.dropped());
        letters
    }

    /// Close the queue, drain it, join the supervision tree, and return
    /// the final metrics snapshot.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_in_place();
        self.metrics.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        if let Some(scrub) = self.scrub.take() {
            scrub.stop();
        }
        self.queue.close();
        if let Some(h) = self.supervisor.take() {
            // The supervisor joins (and keeps respawning, budget
            // permitting) the workers until the queue drains, and it
            // swallows their panic payloads — a worker panic is already
            // a typed job outcome, never re-raised into the caller.
            let _ = h.join();
        }
        // Final pool-sharing gauges: workers publish after every framed
        // job, but the last publication may predate the last task.
        self.metrics.set_pool_stats(self.block_pool.stats());
    }
}

impl Drop for CompressionService {
    fn drop(&mut self) {
        if self.supervisor.is_some() {
            self.shutdown_in_place();
        }
    }
}
