//! The compression service: submission front end + worker pool wiring.
//!
//! One [`CompressionService`] owns a bounded [`JobQueue`], a fixed pool
//! of OS threads (see [`crate::worker`]), a shared [`LruCache`] of
//! quantized-context decisions, a [`Metrics`] registry, and a
//! [`FrameworkHandle`] — the read-only rule-tree snapshot every worker
//! consults. Producers call [`submit`](CompressionService::submit) and
//! get a [`JobTicket`] back; the response arrives on the ticket when a
//! worker finishes.
//!
//! ## Job lifecycle & the no-lost-jobs contract
//!
//! ```text
//! submit ─┬─ queue full ──────────────► Err(SubmitError::QueueFull)
//!         └─ accepted → queued ─┬─ deadline passed at dequeue
//!         │                     │        └► ticket: Err(JobError::Expired)
//!         │                     └─ executed ─┬─ ok  ► ticket: Ok(CompressResponse)
//!         │                                  └─ err ► ticket: Err(JobError::Exchange)
//!         └─ (shutdown drains the queue before workers exit)
//! ```
//!
//! Every **accepted** job resolves its ticket exactly once — rejection
//! is only ever synchronous, at submit. [`shutdown`](CompressionService::shutdown)
//! closes the queue (new submissions fail fast) but joins the workers
//! only after they drain what was already accepted.

use crate::cache::{ContextKey, LruCache};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{JobQueue, Priority, PushError};
use crate::worker;
use dnacomp_algos::Algorithm;
use dnacomp_cloud::{ExchangeError, FaultPlan, RetryPolicy};
use dnacomp_core::{Context, FrameworkHandle};
use dnacomp_seq::PackedSeq;
use dnacomp_store::{PutOutcome, SequenceStore, StoreError};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One unit of work for the service.
#[derive(Clone, Debug)]
pub struct CompressRequest {
    /// File identifier (names the blob in exchange mode; feeds the
    /// deterministic fault/jitter keys).
    pub file: String,
    /// The sequence to compress.
    pub sequence: PackedSeq,
    /// The client context the decision is made for.
    pub context: Context,
    /// Queue lane.
    pub priority: Priority,
    /// Wall-clock budget from submission until a worker *starts* the
    /// job; exceeded ⇒ the ticket resolves `Err(JobError::Expired)`.
    pub deadline: Option<Duration>,
    /// `true`: run the full resilient cloud exchange (compress →
    /// upload → download → decompress, degradation ladder on failure).
    /// `false`: compress only, priced on the same simulated clock.
    pub exchange: bool,
}

impl CompressRequest {
    /// A compress-only, normal-priority, deadline-free request.
    pub fn new(file: impl Into<String>, sequence: PackedSeq, context: Context) -> Self {
        CompressRequest {
            file: file.into(),
            sequence,
            context,
            priority: Priority::Normal,
            deadline: None,
            exchange: false,
        }
    }
}

/// Successful outcome of one job.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressResponse {
    /// Echo of the request's file identifier.
    pub file: String,
    /// Algorithm that actually compressed the payload (after any
    /// degradation).
    pub algorithm: Algorithm,
    /// Input length in bases.
    pub original_len: usize,
    /// Serialised container size in bytes.
    pub compressed_bytes: usize,
    /// Simulated cost of the job, ms: compression time in compress-only
    /// mode, full exchange total in exchange mode.
    pub sim_ms: f64,
    /// Wall-clock time the worker spent executing, ms.
    pub wall_ms: f64,
    /// `true` when the decision came from the LRU cache (rule tree
    /// skipped).
    pub cache_hit: bool,
    /// Index of the worker that ran the job.
    pub worker: usize,
    /// Block attempts repeated during the exchange (0 in compress-only
    /// mode).
    pub retries: u32,
    /// Algorithms the degradation ladder abandoned before success.
    pub degraded_from: Vec<Algorithm>,
    /// Where the result landed when the service runs in
    /// persist-on-complete mode ([`ServiceConfig::store`]): the content
    /// key plus whether the store already held the sequence. `None`
    /// when no store is attached.
    pub persisted: Option<PutOutcome>,
}

/// Why a ticket resolved without a response.
#[derive(Debug)]
pub enum JobError {
    /// The job out-waited its deadline in the queue; `waited_ms` is how
    /// long it sat before a worker picked it up.
    Expired {
        /// Queue wait, wall-clock ms.
        waited_ms: f64,
    },
    /// The exchange (or compression) failed with a typed error after
    /// exhausting the degradation ladder.
    Exchange(ExchangeError),
    /// The job compressed fine but persisting it to the attached
    /// [`SequenceStore`] failed; the result was not delivered because
    /// persist-on-complete promises the record is durable on success.
    Store(StoreError),
    /// The worker disappeared without answering (pool torn down
    /// mid-job); should not happen under orderly shutdown.
    WorkerGone,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Expired { waited_ms } => {
                write!(f, "job expired after waiting {waited_ms:.1} ms in queue")
            }
            JobError::Exchange(e) => write!(f, "exchange failed: {e}"),
            JobError::Store(e) => write!(f, "persisting result failed: {e}"),
            JobError::WorkerGone => f.write_str("worker exited without answering"),
        }
    }
}

/// Why a submission was rejected synchronously.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Backpressure: the bounded queue is at capacity.
    QueueFull,
    /// The service is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => f.write_str("submission queue is full"),
            SubmitError::ShuttingDown => f.write_str("service is shutting down"),
        }
    }
}

/// Result delivered on a [`JobTicket`].
pub type JobResult = Result<CompressResponse, JobError>;

/// The shared decision cache (quantized context → algorithm).
pub(crate) type LruMap = Mutex<LruCache<ContextKey, Algorithm>>;

/// An internal queued job: the request plus reply plumbing.
pub(crate) struct Job {
    pub(crate) req: CompressRequest,
    pub(crate) submitted: Instant,
    pub(crate) reply: mpsc::Sender<JobResult>,
}

/// Claim check for a submitted job.
pub struct JobTicket {
    rx: mpsc::Receiver<JobResult>,
}

impl JobTicket {
    /// Block until the job resolves.
    pub fn wait(self) -> JobResult {
        self.rx.recv().unwrap_or(Err(JobError::WorkerGone))
    }

    /// Non-blocking poll: `None` while the job is still in flight.
    pub fn try_wait(&self) -> Option<JobResult> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(JobError::WorkerGone)),
        }
    }
}

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads to spawn.
    pub workers: usize,
    /// Bounded queue capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Decision-cache entries before LRU eviction.
    pub cache_capacity: usize,
    /// Fault schedule for each worker's simulator (deterministic per
    /// job: faults key on algorithm/file/block, not on the worker).
    pub faults: FaultPlan,
    /// Retry/backoff/timeout policy for exchanges.
    pub retry: RetryPolicy,
    /// Block size of each worker's blob store, bytes (`None`: default).
    pub block_bytes: Option<usize>,
    /// Consecutive failures before a worker's circuit breaker opens a
    /// ladder rung. Use `u32::MAX` to disable breaker skipping, which
    /// makes every job's outcome a pure function of the job (full
    /// determinism even under faults).
    pub breaker_threshold: u32,
    /// Persist-on-complete: every successful job's compressed result is
    /// `put` into this shared store before the ticket resolves, and the
    /// response carries the [`PutOutcome`]. `None` (the default) keeps
    /// the service stateless, as in earlier revisions.
    pub store: Option<Arc<SequenceStore>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 256,
            cache_capacity: 1024,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            block_bytes: None,
            breaker_threshold: 3,
            store: None,
        }
    }
}

/// The running service. Dropping it performs an orderly shutdown.
pub struct CompressionService {
    queue: Arc<JobQueue<Job>>,
    metrics: Arc<Metrics>,
    cache: Arc<LruMap>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl CompressionService {
    /// Spawn the worker pool and open the queue.
    pub fn start(framework: FrameworkHandle, config: ServiceConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let metrics = Arc::new(Metrics::new());
        let cache = Arc::new(Mutex::new(LruCache::new(config.cache_capacity)));
        let handles = (0..config.workers)
            .map(|id| {
                let ctx = worker::WorkerContext {
                    id,
                    queue: Arc::clone(&queue),
                    framework: framework.clone(),
                    cache: Arc::clone(&cache),
                    metrics: Arc::clone(&metrics),
                    config: config.clone(),
                };
                std::thread::Builder::new()
                    .name(format!("dnacomp-worker-{id}"))
                    .spawn(move || worker::run(ctx))
                    .expect("spawning worker thread")
            })
            .collect();
        CompressionService {
            queue,
            metrics,
            cache,
            handles,
        }
    }

    /// Submit a job. Non-blocking: a full queue rejects immediately
    /// (backpressure) rather than stalling the producer.
    pub fn submit(&self, req: CompressRequest) -> Result<JobTicket, SubmitError> {
        let (tx, rx) = mpsc::channel();
        let priority = req.priority;
        let job = Job {
            req,
            submitted: Instant::now(),
            reply: tx,
        };
        // Depth rises before the job is visible to workers (and is
        // undone on rejection) so the worker-side decrement always has
        // a matching prior increment — see `Metrics::record_enqueued`.
        self.metrics.record_enqueued();
        match self.queue.try_push(job, priority) {
            Ok(()) => {
                self.metrics.record_accepted();
                Ok(JobTicket { rx })
            }
            Err(PushError::Full(_)) => {
                self.metrics.record_dequeued();
                self.metrics.record_rejected_full();
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed(_)) => {
                self.metrics.record_dequeued();
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Decisions currently cached.
    pub fn cached_decisions(&self) -> usize {
        self.cache.lock().expect("cache poisoned").len()
    }

    /// Jobs currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Close the queue, drain it, join every worker, and return the
    /// final metrics snapshot.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_in_place();
        self.metrics.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for h in self.handles.drain(..) {
            // A worker that panicked already poisoned nothing shared
            // beyond its own job; surface the panic to the caller.
            if let Err(e) = h.join() {
                std::panic::resume_unwind(e);
            }
        }
    }
}

impl Drop for CompressionService {
    fn drop(&mut self) {
        if !self.handles.is_empty() {
            self.shutdown_in_place();
        }
    }
}
