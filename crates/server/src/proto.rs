//! Wire protocol for the TCP front-end: length-prefixed, checksummed
//! frames carrying a typed request/response set.
//!
//! Frame layout (bytes):
//!
//! ```text
//! 0..2   magic  b"DW"  ("DX" is the flat blob, "DF" the block frame)
//! 2      protocol version (1)
//! 3      frame type byte
//! 4..    uvarint: payload length in bytes
//! ..     payload
//! ..     u64 LE: FNV-1a checksum of [version, type, payload]
//! ```
//!
//! The same codec helpers the containers use ([`dnacomp_codec::varint`],
//! [`dnacomp_codec::checksum`]) frame the wire, so a torn or bit-flipped
//! frame is detected exactly like a corrupted blob: typed, before any
//! payload is trusted.
//!
//! ## Hostile-frame discipline
//!
//! Mirroring the container decoders, [`decode_frame`] applies an
//! **affordability check before allocation**: a declared payload length
//! over the connection's cap ([`MAX_WIRE_PAYLOAD`] by default) is
//! refused as [`ProtoError::Oversize`] while only the fixed-size header
//! has been read. Checksums cover the type byte too, so a frame whose
//! type was flipped in transit fails closed instead of dispatching the
//! wrong handler.
//!
//! ## Streaming
//!
//! Large sequences travel as [`Request::CompressBegin`] → N ×
//! [`Request::CompressChunk`] → [`Request::CompressEnd`]: chunk
//! boundaries are the same pure function of `(chunk_bases, total_len)`
//! the framed "DF" container uses, so a streamed upload maps 1:1 onto
//! frame blocks and the server never needs a reassembly side channel
//! beyond the declared geometry.

use crate::queue::Priority;
use dnacomp_codec::checksum::Fnv1a;
use dnacomp_codec::varint::{read_u64_le, read_uvarint, write_u64_le, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_core::Context;

/// Magic prefix of every wire frame.
pub const WIRE_MAGIC: [u8; 2] = *b"DW";
/// Protocol version spoken by this build.
pub const WIRE_VERSION: u8 = 1;
/// Hard cap on a frame's payload, bytes (4 MiB): the affordability
/// limit checked before any payload allocation.
pub const MAX_WIRE_PAYLOAD: usize = 1 << 22;
/// Cap on string fields (file names) inside payloads, bytes.
pub const MAX_NAME_BYTES: usize = 4096;
/// Fixed frame overhead outside the payload: magic + version + type
/// + checksum (the length uvarint adds 1–5 more).
pub const FRAME_OVERHEAD: usize = 12;

/// Why a frame or payload was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// Underlying transport error.
    Io(std::io::ErrorKind),
    /// The first two bytes are not [`WIRE_MAGIC`] — the stream is not
    /// speaking this protocol (or lost sync).
    BadMagic,
    /// Version byte this build does not speak.
    BadVersion(u8),
    /// Frame type byte outside the typed set.
    UnknownType(u8),
    /// Declared payload length exceeds the cap; refused before
    /// allocation.
    Oversize {
        /// Length the header claimed.
        declared: u64,
        /// The connection's payload cap.
        cap: u64,
    },
    /// Frame checksum disagrees with the received bytes.
    ChecksumMismatch {
        /// Checksum the frame carried.
        expected: u64,
        /// Checksum of what actually arrived.
        actual: u64,
    },
    /// The stream ended mid-frame.
    Truncated,
    /// Structurally invalid payload for the declared type.
    Malformed(&'static str),
    /// A read or write blew its deadline mid-frame.
    Timeout,
    /// No new frame arrived within the idle budget (clean close).
    Idle,
    /// The peer closed the stream at a frame boundary (clean close).
    Closed,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(kind) => write!(f, "i/o error: {kind:?}"),
            ProtoError::BadMagic => f.write_str("bad frame magic"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::UnknownType(t) => write!(f, "unknown frame type {t:#04x}"),
            ProtoError::Oversize { declared, cap } => {
                write!(f, "declared payload {declared} exceeds cap {cap}")
            }
            ProtoError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch (expected {expected:#018x}, got {actual:#018x})"
            ),
            ProtoError::Truncated => f.write_str("stream ended mid-frame"),
            ProtoError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtoError::Timeout => f.write_str("deadline exceeded mid-frame"),
            ProtoError::Idle => f.write_str("idle timeout"),
            ProtoError::Closed => f.write_str("connection closed"),
        }
    }
}

impl From<CodecError> for ProtoError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::UnexpectedEof => ProtoError::Truncated,
            _ => ProtoError::Malformed("bad varint field"),
        }
    }
}

/// Typed reasons a request was answered with [`Response::Error`].
/// The numeric value is the wire encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Connection cap or submission queue full; retry later.
    ServerBusy = 1,
    /// The frame violated the protocol (strike counted).
    BadFrame = 2,
    /// Request valid but not supported in this server mode.
    Unsupported = 3,
    /// `get`/`stat` need a store and none is attached.
    NoStore = 4,
    /// No record under the requested content key.
    UnknownKey = 5,
    /// Admission control shed the job (low lanes shed first).
    Shed = 6,
    /// The job ran and failed with a typed service error.
    JobFailed = 7,
    /// The job out-waited the server's request budget.
    Timeout = 8,
    /// Declared size exceeds a server limit.
    TooLarge = 9,
    /// The streamed sequence failed reassembly validation.
    BadSequence = 10,
    /// Handshake expected/failed.
    Handshake = 11,
    /// The shard owning the requested key (and its successor) is
    /// unreachable or ejected; retry once the fleet heals.
    ShardDown = 12,
    /// The peer's ring view disagrees with this node: stale ring
    /// epoch, or a shard identity claim that does not match.
    WrongShard = 13,
    /// A replicated write committed on fewer shards than its write
    /// quorum. Replicas that did commit keep their copies — re-sending
    /// the same sequence is idempotent under content addressing — but
    /// the client must not treat the write as durable.
    QuorumFailed = 14,
}

impl ErrorCode {
    /// Decode from the wire byte.
    pub fn from_wire(byte: u8) -> Option<ErrorCode> {
        Some(match byte {
            1 => ErrorCode::ServerBusy,
            2 => ErrorCode::BadFrame,
            3 => ErrorCode::Unsupported,
            4 => ErrorCode::NoStore,
            5 => ErrorCode::UnknownKey,
            6 => ErrorCode::Shed,
            7 => ErrorCode::JobFailed,
            8 => ErrorCode::Timeout,
            9 => ErrorCode::TooLarge,
            10 => ErrorCode::BadSequence,
            11 => ErrorCode::Handshake,
            12 => ErrorCode::ShardDown,
            13 => ErrorCode::WrongShard,
            14 => ErrorCode::QuorumFailed,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::ServerBusy => "server-busy",
            ErrorCode::BadFrame => "bad-frame",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::NoStore => "no-store",
            ErrorCode::UnknownKey => "unknown-key",
            ErrorCode::Shed => "shed",
            ErrorCode::JobFailed => "job-failed",
            ErrorCode::Timeout => "timeout",
            ErrorCode::TooLarge => "too-large",
            ErrorCode::BadSequence => "bad-sequence",
            ErrorCode::Handshake => "handshake",
            ErrorCode::ShardDown => "shard-down",
            ErrorCode::WrongShard => "wrong-shard",
            ErrorCode::QuorumFailed => "quorum-failed",
        };
        f.write_str(name)
    }
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Handshake; must be the first frame on a connection.
    Hello {
        /// Protocol version the client speaks.
        version: u8,
    },
    /// Liveness probe.
    Ping,
    /// Ask for the service metrics snapshot (JSON).
    Metrics,
    /// Clean goodbye; the server replies and closes.
    Bye,
    /// Compress one sequence, whole payload in a single frame.
    Compress {
        /// Job identifier (feeds fault keys and the response echo).
        file: String,
        /// Queue lane.
        priority: Priority,
        /// The client's decision context.
        context: Context,
        /// Sequence length in bases.
        seq_len: u64,
        /// 2-bit packed words, `seq_len.div_ceil(4)` bytes.
        words: Vec<u8>,
    },
    /// Open a streamed upload: geometry only, no payload yet.
    CompressBegin {
        /// Job identifier.
        file: String,
        /// Queue lane.
        priority: Priority,
        /// The client's decision context.
        context: Context,
        /// Total sequence length in bases.
        total_len: u64,
        /// Bases per chunk (must be a positive multiple of 4 so packed
        /// words concatenate without bit shifts); chunk count is
        /// `total_len.div_ceil(chunk_bases)`, exactly the "DF" frame
        /// geometry.
        chunk_bases: u64,
    },
    /// One chunk of a streamed upload, in order.
    CompressChunk {
        /// Chunk index, starting at 0.
        index: u64,
        /// Packed words of this chunk.
        words: Vec<u8>,
    },
    /// Close a streamed upload.
    CompressEnd {
        /// FNV-1a over the whole reassembled packed words.
        checksum: u64,
    },
    /// Fetch a stored compressed container by content key.
    Get {
        /// 128-bit content key.
        key: [u8; 16],
    },
    /// Store statistics: whole-store when `key` is `None`.
    Stat {
        /// Optional record key.
        key: Option<[u8; 16]>,
    },
    /// Ring-aware handshake: like [`Request::Hello`] but the client
    /// also asserts the ring epoch it routes by and which shard it
    /// believes it is talking to. A node pinned to a different epoch
    /// or shard id refuses with [`ErrorCode::WrongShard`], so a stale
    /// router can never silently forward into the wrong ring.
    HelloEpoch {
        /// Protocol version the client speaks.
        version: u8,
        /// Ring epoch the client's shard map was built from.
        epoch: u64,
        /// Shard id the client believes this node is (0 = router /
        /// unsharded).
        shard: u32,
    },
    /// List every content key resident in the node's store (the
    /// rebalance enumeration primitive).
    Keys,
    /// Remove one record by content key (issued by the rebalancer
    /// only after the destination acknowledged the migrated copy).
    Remove {
        /// 128-bit content key.
        key: [u8; 16],
    },
    /// A checksummed batch of records migrating between stores.
    /// The wire encoding appends an FNV-1a digest over every
    /// `(key, blob)` pair; a batch whose digest disagrees is refused
    /// at decode as malformed, before any record is written.
    MigrateBatch {
        /// Ring epoch the batch was planned under; an epoch-pinned
        /// receiver refuses mismatches with [`ErrorCode::WrongShard`].
        epoch: u64,
        /// The records: content key plus serialised container bytes.
        records: Vec<([u8; 16], Vec<u8>)>,
    },
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// Protocol version the server speaks.
        version: u8,
    },
    /// Liveness reply.
    Pong,
    /// Metrics snapshot as a JSON object.
    MetricsOk {
        /// The JSON text.
        json: String,
    },
    /// Goodbye acknowledged; the server closes after this frame.
    ByeOk,
    /// Generic acknowledgement: the frame was accepted and changed
    /// state but produced no data (streamed `CompressBegin`/`Chunk`).
    Ack,
    /// A compress job completed.
    CompressOk {
        /// Echo of the request's file identifier.
        file: String,
        /// Tag of the algorithm that compressed the payload.
        algorithm: u8,
        /// Input length in bases.
        original_len: u64,
        /// Serialised container size in bytes.
        compressed_bytes: u64,
        /// Container blocks (1 = flat blob).
        blocks: u64,
        /// Simulated cost, ms.
        sim_ms: f64,
        /// Whether the decision came from the LRU cache.
        cache_hit: bool,
        /// Content key when the server persisted the result.
        key: Option<[u8; 16]>,
    },
    /// A stored container, in its ordinary container wire format.
    GetOk {
        /// The container bytes (flat "DX" blob).
        blob: Vec<u8>,
    },
    /// Store statistics as a JSON object.
    StatOk {
        /// The JSON text.
        json: String,
    },
    /// Typed refusal or failure; the connection usually survives.
    Error {
        /// Machine-readable reason.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Ring-aware handshake accepted; carries the node's own view.
    HelloEpochOk {
        /// Protocol version the server speaks.
        version: u8,
        /// Ring epoch the node is pinned to (echoes the client's when
        /// the node is epoch-agnostic).
        epoch: u64,
        /// The node's shard id (0 = router / unsharded).
        shard: u32,
    },
    /// The store's resident content keys.
    KeysOk {
        /// Every key, in store iteration order.
        keys: Vec<[u8; 16]>,
    },
    /// Remove acknowledged.
    RemoveOk {
        /// Whether the record existed.
        existed: bool,
    },
    /// Migration batch applied.
    MigrateOk {
        /// Records written (including deduplicated ones).
        stored: u64,
        /// Records that already existed under the same key.
        deduped: u64,
    },
}

// Frame type bytes. Requests are < 0x80, responses ≥ 0x80.
const T_HELLO: u8 = 0x01;
const T_PING: u8 = 0x02;
const T_METRICS: u8 = 0x03;
const T_BYE: u8 = 0x04;
const T_COMPRESS: u8 = 0x10;
const T_COMPRESS_BEGIN: u8 = 0x11;
const T_COMPRESS_CHUNK: u8 = 0x12;
const T_COMPRESS_END: u8 = 0x13;
const T_GET: u8 = 0x20;
const T_STAT: u8 = 0x21;
const T_HELLO_EPOCH: u8 = 0x30;
const T_KEYS: u8 = 0x31;
const T_REMOVE: u8 = 0x32;
const T_MIGRATE_BATCH: u8 = 0x33;
const T_HELLO_OK: u8 = 0x81;
const T_PONG: u8 = 0x82;
const T_METRICS_OK: u8 = 0x83;
const T_BYE_OK: u8 = 0x84;
const T_ACK: u8 = 0x85;
const T_COMPRESS_OK: u8 = 0x90;
const T_GET_OK: u8 = 0xA0;
const T_STAT_OK: u8 = 0xA1;
const T_HELLO_EPOCH_OK: u8 = 0xB0;
const T_KEYS_OK: u8 = 0xB1;
const T_REMOVE_OK: u8 = 0xB2;
const T_MIGRATE_OK: u8 = 0xB3;
const T_ERROR: u8 = 0xFF;

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(bytes: &[u8], pos: &mut usize, cap: usize) -> Result<String, ProtoError> {
    let len = read_uvarint(bytes, pos)? as usize;
    if len > cap {
        return Err(ProtoError::Malformed("string field over cap"));
    }
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or(ProtoError::Truncated)?;
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| ProtoError::Malformed("string field not utf-8"))?
        .to_owned();
    *pos = end;
    Ok(s)
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_uvarint(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn read_bytes(bytes: &[u8], pos: &mut usize, cap: usize) -> Result<Vec<u8>, ProtoError> {
    let len = read_uvarint(bytes, pos)? as usize;
    if len > cap {
        return Err(ProtoError::Malformed("byte field over cap"));
    }
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or(ProtoError::Truncated)?;
    let v = bytes[*pos..end].to_vec();
    *pos = end;
    Ok(v)
}

fn read_array16(bytes: &[u8], pos: &mut usize) -> Result<[u8; 16], ProtoError> {
    let end = pos
        .checked_add(16)
        .filter(|&e| e <= bytes.len())
        .ok_or(ProtoError::Truncated)?;
    let mut key = [0u8; 16];
    key.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(key)
}

fn write_context(out: &mut Vec<u8>, ctx: &Context) {
    write_uvarint(out, ctx.ram_mb as u64);
    write_uvarint(out, ctx.cpu_mhz as u64);
    write_u64_le(out, ctx.bandwidth_mbps.to_bits());
    write_uvarint(out, ctx.file_bytes);
}

fn read_context(bytes: &[u8], pos: &mut usize) -> Result<Context, ProtoError> {
    let ram_mb = read_uvarint(bytes, pos)?;
    let cpu_mhz = read_uvarint(bytes, pos)?;
    let bandwidth_mbps = f64::from_bits(read_u64_le(bytes, pos)?);
    let file_bytes = read_uvarint(bytes, pos)?;
    if ram_mb > u32::MAX as u64 || cpu_mhz > u32::MAX as u64 {
        return Err(ProtoError::Malformed("context field out of range"));
    }
    if !bandwidth_mbps.is_finite() || bandwidth_mbps < 0.0 {
        return Err(ProtoError::Malformed("context bandwidth not finite"));
    }
    Ok(Context {
        ram_mb: ram_mb as u32,
        cpu_mhz: cpu_mhz as u32,
        bandwidth_mbps,
        file_bytes,
    })
}

fn priority_byte(p: Priority) -> u8 {
    match p {
        Priority::High => 0,
        Priority::Normal => 1,
        Priority::Low => 2,
    }
}

fn priority_from(byte: u8) -> Result<Priority, ProtoError> {
    match byte {
        0 => Ok(Priority::High),
        1 => Ok(Priority::Normal),
        2 => Ok(Priority::Low),
        _ => Err(ProtoError::Malformed("bad priority byte")),
    }
}

fn read_u8(bytes: &[u8], pos: &mut usize) -> Result<u8, ProtoError> {
    let &b = bytes.get(*pos).ok_or(ProtoError::Truncated)?;
    *pos += 1;
    Ok(b)
}

fn done(bytes: &[u8], pos: usize) -> Result<(), ProtoError> {
    if pos != bytes.len() {
        return Err(ProtoError::Malformed("trailing payload bytes"));
    }
    Ok(())
}

/// FNV-1a digest over every `(key, blob)` pair of a migration batch,
/// in order. Carried at the end of the [`Request::MigrateBatch`]
/// payload and re-verified at decode, so a batch that framed cleanly
/// but whose record bytes were assembled wrong still fails closed.
pub fn migrate_batch_checksum(records: &[([u8; 16], Vec<u8>)]) -> u64 {
    let mut h = Fnv1a::new();
    for (key, blob) in records {
        h.update(key);
        h.update(&(blob.len() as u64).to_le_bytes());
        h.update(blob);
    }
    h.digest()
}

impl Request {
    /// Frame type byte plus encoded payload.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        let t = match self {
            Request::Hello { version } => {
                out.push(*version);
                T_HELLO
            }
            Request::Ping => T_PING,
            Request::Metrics => T_METRICS,
            Request::Bye => T_BYE,
            Request::Compress {
                file,
                priority,
                context,
                seq_len,
                words,
            } => {
                write_str(&mut out, file);
                out.push(priority_byte(*priority));
                write_context(&mut out, context);
                write_uvarint(&mut out, *seq_len);
                write_bytes(&mut out, words);
                T_COMPRESS
            }
            Request::CompressBegin {
                file,
                priority,
                context,
                total_len,
                chunk_bases,
            } => {
                write_str(&mut out, file);
                out.push(priority_byte(*priority));
                write_context(&mut out, context);
                write_uvarint(&mut out, *total_len);
                write_uvarint(&mut out, *chunk_bases);
                T_COMPRESS_BEGIN
            }
            Request::CompressChunk { index, words } => {
                write_uvarint(&mut out, *index);
                write_bytes(&mut out, words);
                T_COMPRESS_CHUNK
            }
            Request::CompressEnd { checksum } => {
                write_u64_le(&mut out, *checksum);
                T_COMPRESS_END
            }
            Request::Get { key } => {
                out.extend_from_slice(key);
                T_GET
            }
            Request::Stat { key } => {
                if let Some(key) = key {
                    out.extend_from_slice(key);
                }
                T_STAT
            }
            Request::HelloEpoch {
                version,
                epoch,
                shard,
            } => {
                out.push(*version);
                write_u64_le(&mut out, *epoch);
                write_uvarint(&mut out, *shard as u64);
                T_HELLO_EPOCH
            }
            Request::Keys => T_KEYS,
            Request::Remove { key } => {
                out.extend_from_slice(key);
                T_REMOVE
            }
            Request::MigrateBatch { epoch, records } => {
                write_u64_le(&mut out, *epoch);
                write_uvarint(&mut out, records.len() as u64);
                for (key, blob) in records {
                    out.extend_from_slice(key);
                    write_bytes(&mut out, blob);
                }
                write_u64_le(&mut out, migrate_batch_checksum(records));
                T_MIGRATE_BATCH
            }
        };
        (t, out)
    }

    /// Decode a request payload for frame type `t`.
    pub fn decode(t: u8, bytes: &[u8]) -> Result<Request, ProtoError> {
        let mut pos = 0;
        let req = match t {
            T_HELLO => Request::Hello {
                version: read_u8(bytes, &mut pos)?,
            },
            T_PING => Request::Ping,
            T_METRICS => Request::Metrics,
            T_BYE => Request::Bye,
            T_COMPRESS => {
                let file = read_str(bytes, &mut pos, MAX_NAME_BYTES)?;
                let priority = priority_from(read_u8(bytes, &mut pos)?)?;
                let context = read_context(bytes, &mut pos)?;
                let seq_len = read_uvarint(bytes, &mut pos)?;
                let words = read_bytes(bytes, &mut pos, MAX_WIRE_PAYLOAD)?;
                if words.len() as u64 != seq_len.div_ceil(4) {
                    return Err(ProtoError::Malformed("words disagree with length"));
                }
                Request::Compress {
                    file,
                    priority,
                    context,
                    seq_len,
                    words,
                }
            }
            T_COMPRESS_BEGIN => {
                let file = read_str(bytes, &mut pos, MAX_NAME_BYTES)?;
                let priority = priority_from(read_u8(bytes, &mut pos)?)?;
                let context = read_context(bytes, &mut pos)?;
                let total_len = read_uvarint(bytes, &mut pos)?;
                let chunk_bases = read_uvarint(bytes, &mut pos)?;
                Request::CompressBegin {
                    file,
                    priority,
                    context,
                    total_len,
                    chunk_bases,
                }
            }
            T_COMPRESS_CHUNK => {
                let index = read_uvarint(bytes, &mut pos)?;
                let words = read_bytes(bytes, &mut pos, MAX_WIRE_PAYLOAD)?;
                Request::CompressChunk { index, words }
            }
            T_COMPRESS_END => Request::CompressEnd {
                checksum: read_u64_le(bytes, &mut pos)?,
            },
            T_GET => Request::Get {
                key: read_array16(bytes, &mut pos)?,
            },
            T_STAT => Request::Stat {
                key: if bytes.is_empty() {
                    None
                } else {
                    Some(read_array16(bytes, &mut pos)?)
                },
            },
            T_HELLO_EPOCH => {
                let version = read_u8(bytes, &mut pos)?;
                let epoch = read_u64_le(bytes, &mut pos)?;
                let shard = read_uvarint(bytes, &mut pos)?;
                if shard > u32::MAX as u64 {
                    return Err(ProtoError::Malformed("shard id out of range"));
                }
                Request::HelloEpoch {
                    version,
                    epoch,
                    shard: shard as u32,
                }
            }
            T_KEYS => Request::Keys,
            T_REMOVE => Request::Remove {
                key: read_array16(bytes, &mut pos)?,
            },
            T_MIGRATE_BATCH => {
                let epoch = read_u64_le(bytes, &mut pos)?;
                let count = read_uvarint(bytes, &mut pos)? as usize;
                // Affordability: each record costs at least 17 bytes on
                // the wire, so a forged count is refused before any
                // record Vec is allocated.
                if count > bytes.len().saturating_sub(pos) / 17 {
                    return Err(ProtoError::Malformed("migrate count over payload"));
                }
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = read_array16(bytes, &mut pos)?;
                    let blob = read_bytes(bytes, &mut pos, MAX_WIRE_PAYLOAD)?;
                    records.push((key, blob));
                }
                let expected = read_u64_le(bytes, &mut pos)?;
                if expected != migrate_batch_checksum(&records) {
                    return Err(ProtoError::Malformed("migrate batch checksum mismatch"));
                }
                Request::MigrateBatch { epoch, records }
            }
            other => return Err(ProtoError::UnknownType(other)),
        };
        done(bytes, pos)?;
        Ok(req)
    }
}

impl Response {
    /// Frame type byte plus encoded payload.
    pub fn encode(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        let t = match self {
            Response::HelloOk { version } => {
                out.push(*version);
                T_HELLO_OK
            }
            Response::Pong => T_PONG,
            Response::MetricsOk { json } => {
                write_str(&mut out, json);
                T_METRICS_OK
            }
            Response::ByeOk => T_BYE_OK,
            Response::Ack => T_ACK,
            Response::CompressOk {
                file,
                algorithm,
                original_len,
                compressed_bytes,
                blocks,
                sim_ms,
                cache_hit,
                key,
            } => {
                write_str(&mut out, file);
                out.push(*algorithm);
                write_uvarint(&mut out, *original_len);
                write_uvarint(&mut out, *compressed_bytes);
                write_uvarint(&mut out, *blocks);
                write_u64_le(&mut out, sim_ms.to_bits());
                out.push(u8::from(*cache_hit));
                match key {
                    Some(key) => {
                        out.push(1);
                        out.extend_from_slice(key);
                    }
                    None => out.push(0),
                }
                T_COMPRESS_OK
            }
            Response::GetOk { blob } => {
                write_bytes(&mut out, blob);
                T_GET_OK
            }
            Response::StatOk { json } => {
                write_str(&mut out, json);
                T_STAT_OK
            }
            Response::Error { code, message } => {
                out.push(*code as u8);
                write_str(&mut out, message);
                T_ERROR
            }
            Response::HelloEpochOk {
                version,
                epoch,
                shard,
            } => {
                out.push(*version);
                write_u64_le(&mut out, *epoch);
                write_uvarint(&mut out, *shard as u64);
                T_HELLO_EPOCH_OK
            }
            Response::KeysOk { keys } => {
                write_uvarint(&mut out, keys.len() as u64);
                for key in keys {
                    out.extend_from_slice(key);
                }
                T_KEYS_OK
            }
            Response::RemoveOk { existed } => {
                out.push(u8::from(*existed));
                T_REMOVE_OK
            }
            Response::MigrateOk { stored, deduped } => {
                write_uvarint(&mut out, *stored);
                write_uvarint(&mut out, *deduped);
                T_MIGRATE_OK
            }
        };
        (t, out)
    }

    /// Decode a response payload for frame type `t`.
    pub fn decode(t: u8, bytes: &[u8]) -> Result<Response, ProtoError> {
        let mut pos = 0;
        let resp = match t {
            T_HELLO_OK => Response::HelloOk {
                version: read_u8(bytes, &mut pos)?,
            },
            T_PONG => Response::Pong,
            T_METRICS_OK => Response::MetricsOk {
                json: read_str(bytes, &mut pos, MAX_WIRE_PAYLOAD)?,
            },
            T_BYE_OK => Response::ByeOk,
            T_ACK => Response::Ack,
            T_COMPRESS_OK => {
                let file = read_str(bytes, &mut pos, MAX_NAME_BYTES)?;
                let algorithm = read_u8(bytes, &mut pos)?;
                let original_len = read_uvarint(bytes, &mut pos)?;
                let compressed_bytes = read_uvarint(bytes, &mut pos)?;
                let blocks = read_uvarint(bytes, &mut pos)?;
                let sim_ms = f64::from_bits(read_u64_le(bytes, &mut pos)?);
                let cache_hit = read_u8(bytes, &mut pos)? != 0;
                let key = match read_u8(bytes, &mut pos)? {
                    0 => None,
                    1 => Some(read_array16(bytes, &mut pos)?),
                    _ => return Err(ProtoError::Malformed("bad key-present flag")),
                };
                Response::CompressOk {
                    file,
                    algorithm,
                    original_len,
                    compressed_bytes,
                    blocks,
                    sim_ms,
                    cache_hit,
                    key,
                }
            }
            T_GET_OK => Response::GetOk {
                blob: read_bytes(bytes, &mut pos, MAX_WIRE_PAYLOAD)?,
            },
            T_STAT_OK => Response::StatOk {
                json: read_str(bytes, &mut pos, MAX_WIRE_PAYLOAD)?,
            },
            T_ERROR => {
                let code = ErrorCode::from_wire(read_u8(bytes, &mut pos)?)
                    .ok_or(ProtoError::Malformed("unknown error code"))?;
                let message = read_str(bytes, &mut pos, MAX_NAME_BYTES)?;
                Response::Error { code, message }
            }
            T_HELLO_EPOCH_OK => {
                let version = read_u8(bytes, &mut pos)?;
                let epoch = read_u64_le(bytes, &mut pos)?;
                let shard = read_uvarint(bytes, &mut pos)?;
                if shard > u32::MAX as u64 {
                    return Err(ProtoError::Malformed("shard id out of range"));
                }
                Response::HelloEpochOk {
                    version,
                    epoch,
                    shard: shard as u32,
                }
            }
            T_KEYS_OK => {
                let count = read_uvarint(bytes, &mut pos)? as usize;
                if count > bytes.len().saturating_sub(pos) / 16 {
                    return Err(ProtoError::Malformed("key count over payload"));
                }
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(read_array16(bytes, &mut pos)?);
                }
                Response::KeysOk { keys }
            }
            T_REMOVE_OK => Response::RemoveOk {
                existed: match read_u8(bytes, &mut pos)? {
                    0 => false,
                    1 => true,
                    _ => return Err(ProtoError::Malformed("bad existed flag")),
                },
            },
            T_MIGRATE_OK => Response::MigrateOk {
                stored: read_uvarint(bytes, &mut pos)?,
                deduped: read_uvarint(bytes, &mut pos)?,
            },
            other => return Err(ProtoError::UnknownType(other)),
        };
        done(bytes, pos)?;
        Ok(resp)
    }
}

/// Checksum of a frame's covered region: version, type, payload.
pub fn frame_checksum_of(ftype: u8, payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(&[WIRE_VERSION, ftype]);
    h.update(payload);
    h.digest()
}

/// Serialise one complete frame.
pub fn frame_bytes(ftype: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + 5 + payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.push(WIRE_VERSION);
    out.push(ftype);
    write_uvarint(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    write_u64_le(&mut out, frame_checksum_of(ftype, payload));
    out
}

/// Serialise a request into a complete frame.
pub fn request_frame(req: &Request) -> Vec<u8> {
    let (t, payload) = req.encode();
    frame_bytes(t, &payload)
}

/// Serialise a response into a complete frame.
pub fn response_frame(resp: &Response) -> Vec<u8> {
    let (t, payload) = resp.encode();
    frame_bytes(t, &payload)
}

/// Parse one frame from the front of `bytes`.
///
/// Returns `(frame type, payload, bytes consumed)`. The declared
/// payload length is checked against `cap` **before** the payload is
/// copied — the same refuse-before-allocation discipline as the
/// container decoders. Used by the pure-buffer tests; the incremental
/// stream reader in [`crate::conn`] enforces identical checks byte by
/// byte.
pub fn decode_frame(bytes: &[u8], cap: usize) -> Result<(u8, Vec<u8>, usize), ProtoError> {
    if bytes.len() < 2 {
        return Err(ProtoError::Truncated);
    }
    if bytes[0..2] != WIRE_MAGIC {
        return Err(ProtoError::BadMagic);
    }
    if bytes.len() < 4 {
        return Err(ProtoError::Truncated);
    }
    if bytes[2] != WIRE_VERSION {
        return Err(ProtoError::BadVersion(bytes[2]));
    }
    let ftype = bytes[3];
    let mut pos = 4;
    let declared = read_uvarint(bytes, &mut pos)?;
    if declared > cap as u64 {
        return Err(ProtoError::Oversize {
            declared,
            cap: cap as u64,
        });
    }
    let len = declared as usize;
    let payload_end = pos.checked_add(len).ok_or(ProtoError::Truncated)?;
    if payload_end + 8 > bytes.len() {
        return Err(ProtoError::Truncated);
    }
    let payload = bytes[pos..payload_end].to_vec();
    let mut cpos = payload_end;
    let expected = read_u64_le(bytes, &mut cpos)?;
    let actual = frame_checksum_of(ftype, &payload);
    if expected != actual {
        return Err(ProtoError::ChecksumMismatch { expected, actual });
    }
    Ok((ftype, payload, cpos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context {
            ram_mb: 2048,
            cpu_mhz: 2393,
            bandwidth_mbps: 2.0,
            file_bytes: 51_200,
        }
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Hello { version: 1 },
            Request::Ping,
            Request::Metrics,
            Request::Bye,
            Request::Compress {
                file: "f1".into(),
                priority: Priority::Normal,
                context: ctx(),
                seq_len: 10,
                words: vec![0xAB, 0xCD, 0x12],
            },
            Request::CompressBegin {
                file: "big".into(),
                priority: Priority::Low,
                context: ctx(),
                total_len: 100_000,
                chunk_bases: 4096,
            },
            Request::CompressChunk {
                index: 3,
                words: vec![1, 2, 3, 4],
            },
            Request::CompressEnd { checksum: 0xDEAD_BEEF },
            Request::Get { key: [7u8; 16] },
            Request::Stat { key: None },
            Request::Stat { key: Some([9u8; 16]) },
            Request::HelloEpoch {
                version: 1,
                epoch: 0xFEED_F00D_CAFE,
                shard: 3,
            },
            Request::Keys,
            Request::Remove { key: [0x55; 16] },
            Request::MigrateBatch {
                epoch: 42,
                records: vec![],
            },
            Request::MigrateBatch {
                epoch: 7,
                records: vec![([1u8; 16], vec![9, 8, 7]), ([2u8; 16], vec![])],
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::HelloOk { version: 1 },
            Response::Pong,
            Response::MetricsOk { json: "{}".into() },
            Response::ByeOk,
            Response::Ack,
            Response::CompressOk {
                file: "f1".into(),
                algorithm: 4,
                original_len: 10_000,
                compressed_bytes: 2_600,
                blocks: 3,
                sim_ms: 12.5,
                cache_hit: true,
                key: Some([3u8; 16]),
            },
            Response::CompressOk {
                file: "f2".into(),
                algorithm: 0,
                original_len: 0,
                compressed_bytes: 13,
                blocks: 1,
                sim_ms: 0.0,
                cache_hit: false,
                key: None,
            },
            Response::GetOk { blob: vec![1, 2, 3] },
            Response::StatOk { json: "{\"records\":1}".into() },
            Response::Error {
                code: ErrorCode::ServerBusy,
                message: "full".into(),
            },
            Response::Error {
                code: ErrorCode::ShardDown,
                message: "shard 2 ejected".into(),
            },
            Response::Error {
                code: ErrorCode::WrongShard,
                message: "stale ring epoch".into(),
            },
            Response::Error {
                code: ErrorCode::QuorumFailed,
                message: "1 of 3 replica commits, need 2".into(),
            },
            Response::HelloEpochOk {
                version: 1,
                epoch: u64::MAX,
                shard: u32::MAX,
            },
            Response::KeysOk { keys: vec![] },
            Response::KeysOk {
                keys: vec![[4u8; 16], [5u8; 16]],
            },
            Response::RemoveOk { existed: true },
            Response::MigrateOk {
                stored: 12,
                deduped: 3,
            },
        ]
    }

    #[test]
    fn every_message_roundtrips_through_its_frame() {
        for req in sample_requests() {
            let frame = request_frame(&req);
            let (t, payload, used) = decode_frame(&frame, MAX_WIRE_PAYLOAD).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(Request::decode(t, &payload).unwrap(), req);
        }
        for resp in sample_responses() {
            let frame = response_frame(&resp);
            let (t, payload, used) = decode_frame(&frame, MAX_WIRE_PAYLOAD).unwrap();
            assert_eq!(used, frame.len());
            assert_eq!(Response::decode(t, &payload).unwrap(), resp);
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = request_frame(&Request::Compress {
            file: "f".into(),
            priority: Priority::High,
            context: ctx(),
            seq_len: 8,
            words: vec![1, 2],
        });
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                // A flip may corrupt the magic, version, length, payload
                // or checksum — all typed rejections, never a silent
                // success returning the original request.
                match decode_frame(&bad, MAX_WIRE_PAYLOAD) {
                    Err(_) => {}
                    Ok((t, payload, _)) => {
                        // Length-field flips can still frame-checksum
                        // correctly only if they decode to the same
                        // request; anything else must fail.
                        assert_ne!(
                            Request::decode(t, &payload).ok(),
                            Some(Request::Ping),
                            "flip at {byte}:{bit} silently accepted"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn oversize_declared_length_is_refused_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&WIRE_MAGIC);
        frame.push(WIRE_VERSION);
        frame.push(0x02);
        // Forge a length far over the cap; the body is absent.
        dnacomp_codec::varint::write_uvarint(&mut frame, (MAX_WIRE_PAYLOAD as u64) * 1000);
        assert_eq!(
            decode_frame(&frame, MAX_WIRE_PAYLOAD),
            Err(ProtoError::Oversize {
                declared: (MAX_WIRE_PAYLOAD as u64) * 1000,
                cap: MAX_WIRE_PAYLOAD as u64,
            })
        );
    }

    #[test]
    fn bad_magic_version_and_truncation_are_typed() {
        let good = request_frame(&Request::Ping);
        let mut bad = good.clone();
        bad[0] = b'X';
        assert_eq!(decode_frame(&bad, MAX_WIRE_PAYLOAD), Err(ProtoError::BadMagic));
        let mut bad = good.clone();
        bad[2] = 9;
        assert_eq!(
            decode_frame(&bad, MAX_WIRE_PAYLOAD),
            Err(ProtoError::BadVersion(9))
        );
        for cut in 0..good.len() {
            assert!(decode_frame(&good[..cut], MAX_WIRE_PAYLOAD).is_err());
        }
    }

    #[test]
    fn trailing_payload_bytes_are_rejected() {
        let (t, mut payload) = Request::Ping.encode();
        payload.push(0);
        assert_eq!(
            Request::decode(t, &payload),
            Err(ProtoError::Malformed("trailing payload bytes"))
        );
        let (t, mut payload) = Request::Get { key: [0u8; 16] }.encode();
        payload.push(1);
        assert!(Request::decode(t, &payload).is_err());
    }

    #[test]
    fn unknown_types_and_error_codes_are_typed() {
        assert_eq!(
            Request::decode(0x6E, &[]),
            Err(ProtoError::UnknownType(0x6E))
        );
        assert_eq!(
            Response::decode(0xF0, &[]),
            Err(ProtoError::UnknownType(0xF0))
        );
        assert_eq!(ErrorCode::from_wire(0), None);
        assert_eq!(ErrorCode::from_wire(200), None);
        for code in 1..=14u8 {
            let decoded = ErrorCode::from_wire(code).unwrap();
            assert_eq!(decoded as u8, code);
        }
        assert_eq!(ErrorCode::from_wire(15), None);
    }

    #[test]
    fn migrate_batch_integrity_is_enforced_at_decode() {
        let batch = Request::MigrateBatch {
            epoch: 9,
            records: vec![([7u8; 16], vec![1, 2, 3, 4])],
        };
        let (t, payload) = batch.encode();
        assert_eq!(Request::decode(t, &payload).unwrap(), batch);
        // Flip one record byte: the frame itself would re-checksum
        // fine if re-framed, but the batch digest catches it.
        let mut bad = payload.clone();
        bad[8 + 1 + 16] ^= 0x40; // inside the first record's key/blob region
        assert!(matches!(
            Request::decode(t, &bad),
            Err(ProtoError::Malformed(_)) | Err(ProtoError::Truncated)
        ));
        // Forge the record count far beyond the payload: refused by the
        // affordability check before any allocation.
        let mut forged = Vec::new();
        write_u64_le(&mut forged, 9);
        write_uvarint(&mut forged, u32::MAX as u64);
        assert_eq!(
            Request::decode(t, &forged),
            Err(ProtoError::Malformed("migrate count over payload"))
        );
    }

    #[test]
    fn lying_shard_ids_and_forged_epochs_stay_typed() {
        // A shard id over u32::MAX is a lie by construction.
        let mut payload = vec![WIRE_VERSION];
        write_u64_le(&mut payload, 5);
        write_uvarint(&mut payload, u64::MAX);
        assert_eq!(
            Request::decode(T_HELLO_EPOCH, &payload),
            Err(ProtoError::Malformed("shard id out of range"))
        );
        // Any epoch value is decodable — epoch *checking* is the
        // receiver's policy, not the codec's.
        let req = Request::HelloEpoch {
            version: 1,
            epoch: u64::MAX,
            shard: 0,
        };
        let (t, payload) = req.encode();
        assert_eq!(Request::decode(t, &payload).unwrap(), req);
        // KeysOk with a forged count is refused before allocation.
        let mut forged = Vec::new();
        write_uvarint(&mut forged, u32::MAX as u64);
        assert_eq!(
            Response::decode(T_KEYS_OK, &forged),
            Err(ProtoError::Malformed("key count over payload"))
        );
    }

    #[test]
    fn compress_words_must_match_declared_length() {
        let (t, payload) = Request::Compress {
            file: "f".into(),
            priority: Priority::Normal,
            context: ctx(),
            seq_len: 100,
            words: vec![0; 3], // should be 25
        }
        .encode();
        assert_eq!(
            Request::decode(t, &payload),
            Err(ProtoError::Malformed("words disagree with length"))
        );
    }
}
