//! Per-algorithm throughput benchmark: `dnacomp bench-algos`.
//!
//! Measures, for every self-contained algorithm
//! ([`Algorithm::HORIZONTAL`]):
//!
//! * **serial** compress/decompress wall throughput — one flat
//!   whole-sequence blob on one thread;
//! * **block wall** throughput — the framed block path
//!   ([`ParallelCompressor`]) on a real shared [`TaskPool`], as the
//!   service runs it. On a single-core host this is bounded by the
//!   hardware, not the design: it mostly validates that framing adds
//!   no overhead;
//! * **block lane** throughput — the reproducible parallel number:
//!   every block is compressed alone and *individually timed*, then the
//!   measured per-block wall times are list-scheduled onto
//!   [`AlgoBenchConfig::lanes`] lanes with the same earliest-free-lane
//!   rule `bench-serve` uses ([`crate::bench::makespan_ms`]). This is
//!   what an N-core deployment of the same code would see, computed
//!   from real single-core measurements — the convention
//!   `BENCH_serve.json` established, applied per algorithm. The JSON
//!   records `host_cpus` and `threads` so nobody mistakes the lane
//!   curve for a wall-clock measurement on this host.
//!
//! A kernel micro-benchmark compares three 2-bit pack/unpack tiers —
//! the runtime-dispatched SIMD kernels ([`dnacomp_seq::pack_2bit`]),
//! the u64 word-at-a-time portable kernels, and the byte-at-a-time
//! baseline — plus the SIMD vs bytewise match-extension primitive
//! ([`dnacomp_seq::common_prefix_len`]). The report records the
//! dispatched [`CpuFeatures`] so a scalar fallback run is never
//! mistaken for a vectorised one.
//!
//! Each algorithm row also carries its entropy backend and, where the
//! pipeline has a model/entropy split, a per-stage wall breakdown
//! ([`dnacomp_algos::Compressor::stage_times`]) — the number that says
//! whether the model or the coder is the bottleneck.
//!
//! **Quick mode** is the CI perf smoke gate: a small corpus, plus hard
//! assertions — every algorithm must round-trip both ways across the
//! serial/parallel encoder-decoder matrix, the packing kernels must
//! clear a conservative throughput floor (scaled down for debug
//! builds, which CI's `--quick` tier runs), and the rANS speed tier
//! must not regress against the arithmetic coder on the same CTW model
//! (profile-scaled floor).
//!
//! Throughputs are megabases per second (1 MB = 10⁶ bases ≙ one
//! uncompressed ASCII byte each).

use crate::bench::makespan_ms;
use dnacomp_algos::{
    compressor_for, Algorithm, Compressor, Ctw, FramedBlob, ParallelCompressor, TaskPool,
};
use dnacomp_codec::arith::EntropyBackend;
use dnacomp_codec::CodecError;
use dnacomp_seq::gen::GenomeModel;
use dnacomp_seq::{
    common_prefix_len, common_prefix_len_bytewise, pack_2bit, pack_2bit_bytewise, pack_2bit_u64,
    unpack_2bit, unpack_2bit_bytewise, unpack_2bit_u64, Base, CpuFeatures,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Benchmark shape.
#[derive(Clone, Debug)]
pub struct AlgoBenchConfig {
    /// Smoke-gate mode: tiny corpus, round-trip and kernel-floor
    /// assertions enabled.
    pub quick: bool,
    /// Dedicated threads of the shared block pool (0 = inline serial).
    pub threads: usize,
    /// Lanes for the list-scheduled makespan throughput.
    pub lanes: usize,
    /// Frame block size in bases; `None` picks `bases / 16` per row.
    pub block_size: Option<usize>,
    /// Corpus seed.
    pub seed: u64,
}

impl Default for AlgoBenchConfig {
    fn default() -> Self {
        AlgoBenchConfig {
            quick: false,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            lanes: 4,
            block_size: None,
            seed: 42,
        }
    }
}

/// Kernel micro-benchmark: runtime-dispatched SIMD vs u64
/// word-at-a-time vs byte-at-a-time 2-bit packing, plus the
/// match-extension primitive.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelBench {
    /// Bases packed/unpacked per repetition.
    pub bases: usize,
    /// Runtime-dispatched pack throughput, MB/s (best of 3) — SIMD on
    /// capable hosts, the portable kernel otherwise.
    pub pack_simd_mb_s: f64,
    /// u64 kernel pack throughput, MB/s (best of 3).
    pub pack_u64_mb_s: f64,
    /// Byte-at-a-time pack throughput, MB/s.
    pub pack_bytewise_mb_s: f64,
    /// Runtime-dispatched unpack throughput, MB/s.
    pub unpack_simd_mb_s: f64,
    /// u64 kernel unpack throughput, MB/s.
    pub unpack_u64_mb_s: f64,
    /// Byte-at-a-time unpack throughput, MB/s.
    pub unpack_bytewise_mb_s: f64,
    /// Dispatched common-prefix (match extension) throughput, MB/s.
    pub prefix_simd_mb_s: f64,
    /// Byte-at-a-time common-prefix throughput, MB/s.
    pub prefix_bytewise_mb_s: f64,
    /// `pack_u64 / pack_bytewise`.
    pub pack_speedup: f64,
    /// `unpack_u64 / unpack_bytewise`.
    pub unpack_speedup: f64,
    /// `pack_simd / pack_u64` — the speed-tier win over the old kernel.
    pub pack_simd_speedup: f64,
    /// `unpack_simd / unpack_u64`.
    pub unpack_simd_speedup: f64,
    /// `prefix_simd / prefix_bytewise`.
    pub prefix_speedup: f64,
}

/// One algorithm's measurements.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlgoBenchRow {
    /// The paper's spelling of the algorithm name.
    pub algorithm: String,
    /// Input length, bases.
    pub bases: usize,
    /// Frame block size, bases.
    pub block_size: usize,
    /// Frame container size, bytes.
    pub compressed_bytes: usize,
    /// Frame compression ratio, bits per base.
    pub bits_per_base: f64,
    /// Whole-sequence flat-blob compress throughput, one thread, MB/s.
    pub serial_compress_mb_s: f64,
    /// Whole-sequence flat-blob decompress throughput, MB/s.
    pub serial_decompress_mb_s: f64,
    /// Framed compress wall throughput on the real shared pool, MB/s
    /// (host-bound; see `host_cpus` in the report).
    pub block_wall_compress_mb_s: f64,
    /// Framed decompress wall throughput on the real shared pool, MB/s.
    pub block_wall_decompress_mb_s: f64,
    /// Measured per-block compress times list-scheduled onto `lanes`
    /// lanes, MB/s — the reproducible parallel number.
    pub block_lane_compress_mb_s: f64,
    /// Per-block decompress times list-scheduled onto `lanes`, MB/s.
    pub block_lane_decompress_mb_s: f64,
    /// `block_lane_compress / serial_compress`.
    pub lane_speedup_compress: f64,
    /// Parallel encode → serial decode → original verified, and the
    /// reverse direction too.
    pub roundtrip_ok: bool,
    /// Parallel and serial encoders produced identical frame bytes.
    pub parallel_matches_serial: bool,
    /// Entropy backend the default instance codes with
    /// (`"arith"` or `"rans"`).
    pub entropy_backend: String,
    /// Wall ms spent in the model stage of one serial compress, when
    /// the pipeline has a model/entropy split.
    pub model_stage_ms: Option<f64>,
    /// Wall ms attributed to the entropy coder of the same run.
    pub entropy_stage_ms: Option<f64>,
}

/// Full benchmark output (`BENCH_algos.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlgoBenchReport {
    /// CPUs the host actually has — read this before reading any
    /// `*_wall_*` number.
    pub host_cpus: usize,
    /// Dedicated threads of the shared block pool during wall runs.
    pub threads: usize,
    /// Lanes of the list-scheduled makespan throughput.
    pub lanes: usize,
    /// Whether this was the quick smoke-gate run.
    pub quick: bool,
    /// Corpus seed.
    pub seed: u64,
    /// SIMD dispatch actually used by the kernels during this run
    /// (e.g. `"avx2+ssse3+sse2"`, `"scalar(forced)"`).
    pub cpu_features: String,
    /// Packing-kernel micro-benchmark.
    pub kernels: KernelBench,
    /// rANS-vs-arithmetic head-to-head on the same CTW model.
    pub speed_gate: SpeedGate,
    /// One row per algorithm.
    pub algorithms: Vec<AlgoBenchRow>,
}

/// Head-to-head of the CTW speed tier (v2: linear-domain mixing +
/// rANS) against the legacy tier (v1: log-domain mixing + arithmetic
/// coding) — the number the CI gate holds the speed tier to.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpeedGate {
    /// Bases compressed per measurement.
    pub bases: usize,
    /// CTW serial compress with the rANS backend, MB/s (best of 3).
    pub ctw_rans_mb_s: f64,
    /// CTW serial compress with the arithmetic backend, MB/s.
    pub ctw_arith_mb_s: f64,
    /// `ctw_rans / ctw_arith`.
    pub rans_vs_arith: f64,
}

impl AlgoBenchReport {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialisation cannot fail")
    }
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn mb_s(bases: usize, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bases as f64 / 1e6 / secs
}

/// Corpus length for `alg`: full mode tiers by measured algorithm cost
/// so the whole sweep finishes in minutes, while the fast tier stays at
/// ≥ 4 MiB — the size the block-parallel acceptance number is read at.
fn tier_bases(alg: Algorithm, quick: bool) -> usize {
    if quick {
        return 8_192;
    }
    match alg {
        // Linear-ish and fast: full 4 MiB.
        Algorithm::Raw | Algorithm::Dnax | Algorithm::Gzip | Algorithm::DnaPackLite => 4 << 20,
        // Mid-cost match/grammar models.
        Algorithm::BioCompress2
        | Algorithm::GenCompress
        | Algorithm::Dnac
        | Algorithm::DnaCompress
        | Algorithm::Cfact
        | Algorithm::DnaSequitur
        | Algorithm::Bwt => 256 << 10,
        // Heavy context-mixing models.
        Algorithm::Ctw | Algorithm::CtwLz | Algorithm::XmLite => 64 << 10,
        Algorithm::Reference => unreachable!("not in HORIZONTAL"),
    }
}

/// Best-of-3 throughput of `f` over `bytes` input bytes, MB/s.
fn best_of_3(bytes: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let ((), secs) = time(&mut f);
        best = best.min(secs);
    }
    mb_s(bytes, best)
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

fn bench_kernels(quick: bool) -> KernelBench {
    let bases = if quick { 1 << 20 } else { 8 << 20 };
    let codes: Vec<u8> = (0..bases).map(|i| ((i * 2654435761) >> 7) as u8 & 3).collect();
    let packed = pack_2bit_u64(&codes);
    let pack_simd = best_of_3(bases, || {
        std::hint::black_box(pack_2bit(std::hint::black_box(&codes)));
    });
    let pack_u64 = best_of_3(bases, || {
        std::hint::black_box(pack_2bit_u64(std::hint::black_box(&codes)));
    });
    let pack_bytewise = best_of_3(bases, || {
        std::hint::black_box(pack_2bit_bytewise(std::hint::black_box(&codes)));
    });
    let unpack_simd = best_of_3(bases, || {
        std::hint::black_box(unpack_2bit(std::hint::black_box(&packed), bases));
    });
    let unpack_u64 = best_of_3(bases, || {
        std::hint::black_box(unpack_2bit_u64(std::hint::black_box(&packed), bases));
    });
    let unpack_bytewise = best_of_3(bases, || {
        std::hint::black_box(unpack_2bit_bytewise(std::hint::black_box(&packed), bases));
    });
    // Match extension: two identical strands, so every call scans the
    // full length — the worst (and most informative) case.
    let strand: Vec<Base> = codes.iter().map(|&c| Base::from_code(c)).collect();
    let strand2 = strand.clone();
    let prefix_simd = best_of_3(bases, || {
        std::hint::black_box(common_prefix_len(
            std::hint::black_box(&strand),
            std::hint::black_box(&strand2),
        ));
    });
    let prefix_bytewise = best_of_3(bases, || {
        std::hint::black_box(common_prefix_len_bytewise(
            std::hint::black_box(&strand),
            std::hint::black_box(&strand2),
        ));
    });
    KernelBench {
        bases,
        pack_simd_mb_s: pack_simd,
        pack_u64_mb_s: pack_u64,
        pack_bytewise_mb_s: pack_bytewise,
        unpack_simd_mb_s: unpack_simd,
        unpack_u64_mb_s: unpack_u64,
        unpack_bytewise_mb_s: unpack_bytewise,
        prefix_simd_mb_s: prefix_simd,
        prefix_bytewise_mb_s: prefix_bytewise,
        pack_speedup: ratio(pack_u64, pack_bytewise),
        unpack_speedup: ratio(unpack_u64, unpack_bytewise),
        pack_simd_speedup: ratio(pack_simd, pack_u64),
        unpack_simd_speedup: ratio(unpack_simd, unpack_u64),
        prefix_speedup: ratio(prefix_simd, prefix_bytewise),
    }
}

/// rANS-vs-arithmetic head-to-head: the CTW speed tier (linear-domain
/// mixing + rANS, what v2 blobs use) against the legacy tier
/// (log-domain mixing + arithmetic coder, what v1 blobs use).
fn bench_speed_gate(quick: bool, seed: u64) -> SpeedGate {
    let bases = if quick { 24 << 10 } else { 64 << 10 };
    let seq = GenomeModel::default().generate(bases, seed);
    let rans = Ctw::with_backend(EntropyBackend::Rans);
    let arith = Ctw::with_backend(EntropyBackend::Arith);
    let rans_mb_s = best_of_3(bases, || {
        std::hint::black_box(rans.compress(std::hint::black_box(&seq)).ok());
    });
    let arith_mb_s = best_of_3(bases, || {
        std::hint::black_box(arith.compress(std::hint::black_box(&seq)).ok());
    });
    SpeedGate {
        bases,
        ctw_rans_mb_s: rans_mb_s,
        ctw_arith_mb_s: arith_mb_s,
        rans_vs_arith: ratio(rans_mb_s, arith_mb_s),
    }
}

fn bench_algorithm(
    alg: Algorithm,
    cfg: &AlgoBenchConfig,
    pool: &Arc<TaskPool>,
) -> Result<AlgoBenchRow, CodecError> {
    let bases = tier_bases(alg, cfg.quick);
    let block_size = cfg.block_size.unwrap_or_else(|| (bases / 16).max(1));
    let seq = GenomeModel::default().generate(bases, cfg.seed);
    let codec = compressor_for(alg);

    // Serial reference: one flat whole-sequence blob. Best of 3 — the
    // same noise discipline the kernel rows use; a single draw on a
    // shared 1-CPU host can be 2× off its own steady state.
    let mut serial_c = f64::INFINITY;
    let mut blob = None;
    for _ in 0..3 {
        let (b, secs) = time(|| codec.compress(&seq));
        blob = Some(b?);
        serial_c = serial_c.min(secs);
    }
    let blob = blob.expect("three compress rounds ran");
    let mut serial_d = f64::INFINITY;
    let mut serial_ok = true;
    for _ in 0..3 {
        let (decoded, secs) = time(|| codec.decompress(&blob));
        serial_ok &= decoded? == seq;
        serial_d = serial_d.min(secs);
    }

    // Framed path on the real shared pool (wall numbers).
    let pc = ParallelCompressor::new(alg, block_size, Arc::clone(pool));
    let (frame, wall_c) = time(|| pc.compress(&seq));
    let frame = frame?;
    let (par_decoded, wall_d) = time(|| pc.decompress(&frame));
    let par_decoded = par_decoded?;

    // Cross-decoder matrix: the serial decoder must accept the parallel
    // frame and the parallel decoder the serial frame, bit-exact.
    let serial_frame = dnacomp_algos::frame::compress_serial(&*codec, &seq, block_size)?;
    let matches = serial_frame.to_bytes() == frame.to_bytes();
    let cross_ok = dnacomp_algos::frame::decompress_serial(&frame)? == seq
        && pc.decompress(&serial_frame)? == seq
        && par_decoded == seq;

    // Per-block times for the reproducible lane makespan: each block
    // compressed (then decompressed) alone, individually timed.
    let n_blocks = FramedBlob::block_count(block_size, seq.len());
    let mut c_times = Vec::with_capacity(n_blocks);
    let mut d_times = Vec::with_capacity(n_blocks);
    for index in 0..n_blocks {
        let start = index * block_size;
        let end = (start + block_size).min(seq.len());
        let block = seq.slice(start, end);
        let (b, secs) = time(|| codec.compress(&block));
        let b = b?;
        c_times.push(secs * 1e3);
        let (back, secs) = time(|| codec.decompress(&b));
        let _ = back?;
        d_times.push(secs * 1e3);
    }
    let lane_c_ms = makespan_ms(&c_times, cfg.lanes);
    let lane_d_ms = makespan_ms(&d_times, cfg.lanes);
    let lane_c = mb_s(bases, lane_c_ms / 1e3);
    let serial_c_mb_s = mb_s(bases, serial_c);
    let stages = codec.stage_times(&seq);

    Ok(AlgoBenchRow {
        algorithm: alg.name().to_owned(),
        bases,
        block_size,
        compressed_bytes: frame.total_bytes(),
        bits_per_base: frame.bits_per_base(),
        serial_compress_mb_s: serial_c_mb_s,
        serial_decompress_mb_s: mb_s(bases, serial_d),
        block_wall_compress_mb_s: mb_s(bases, wall_c),
        block_wall_decompress_mb_s: mb_s(bases, wall_d),
        block_lane_compress_mb_s: lane_c,
        block_lane_decompress_mb_s: mb_s(bases, lane_d_ms / 1e3),
        lane_speedup_compress: if serial_c_mb_s > 0.0 { lane_c / serial_c_mb_s } else { 0.0 },
        roundtrip_ok: serial_ok && cross_ok,
        parallel_matches_serial: matches,
        entropy_backend: codec.entropy_backend().to_owned(),
        model_stage_ms: stages.map(|(m, _)| m),
        entropy_stage_ms: stages.map(|(_, e)| e),
    })
}

/// Conservative kernel floor, MB/s. Debug builds (CI's `--quick` tier
/// runs the unoptimised binary) pay ~20× on the SWAR loops, so the
/// floor scales with the build profile rather than silently passing a
/// release-only bar.
fn kernel_floor_mb_s() -> f64 {
    if cfg!(debug_assertions) {
        5.0
    } else {
        100.0
    }
}

/// Run the benchmark. In quick mode, round-trip or kernel-floor
/// failures come back as `Err` — the CI gate's exit code.
pub fn run_algo_bench(cfg: &AlgoBenchConfig) -> Result<AlgoBenchReport, String> {
    let pool = Arc::new(TaskPool::new(cfg.threads));
    let kernels = bench_kernels(cfg.quick);
    let speed_gate = bench_speed_gate(cfg.quick, cfg.seed);
    let mut algorithms = Vec::new();
    for alg in Algorithm::HORIZONTAL {
        eprintln!("bench-algos: {} ({} bases) …", alg.name(), tier_bases(alg, cfg.quick));
        let row = bench_algorithm(alg, cfg, &pool)
            .map_err(|e| format!("{}: benchmark failed: {e}", alg.name()))?;
        algorithms.push(row);
    }
    let report = AlgoBenchReport {
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        threads: cfg.threads,
        lanes: cfg.lanes,
        quick: cfg.quick,
        seed: cfg.seed,
        cpu_features: CpuFeatures::get().summary(),
        kernels,
        speed_gate,
        algorithms,
    };
    if cfg.quick {
        for row in &report.algorithms {
            if !row.roundtrip_ok {
                return Err(format!("{}: smoke round-trip failed", row.algorithm));
            }
            if !row.parallel_matches_serial {
                return Err(format!(
                    "{}: parallel frame bytes differ from serial encoder",
                    row.algorithm
                ));
            }
        }
        let floor = kernel_floor_mb_s();
        for (name, got) in [
            ("pack_2bit_u64", report.kernels.pack_u64_mb_s),
            ("unpack_2bit_u64", report.kernels.unpack_u64_mb_s),
            ("pack_2bit", report.kernels.pack_simd_mb_s),
            ("unpack_2bit", report.kernels.unpack_simd_mb_s),
        ] {
            if got < floor {
                return Err(format!(
                    "{name} throughput {got:.1} MB/s below the {floor:.0} MB/s floor"
                ));
            }
        }
        if report.cpu_features.is_empty() {
            return Err("cpu_features missing from the report".to_string());
        }
        // Speed-tier floor, scaled by build profile: the optimised rANS
        // tier must clearly beat the arithmetic tier; the unoptimised
        // debug build only has to stay in the same league (its table
        // lookups don't get vectorised, and CI's quick tier runs debug).
        let tier_floor = if cfg!(debug_assertions) { 0.8 } else { 1.5 };
        if report.speed_gate.rans_vs_arith < tier_floor {
            return Err(format!(
                "speed tier regressed: CTW rans {:.2} MB/s vs arith {:.2} MB/s \
                 ({:.2}x < {tier_floor}x floor)",
                report.speed_gate.ctw_rans_mb_s,
                report.speed_gate.ctw_arith_mb_s,
                report.speed_gate.rans_vs_arith,
            ));
        }
        // Release-only: on a SIMD-capable host the dispatched kernels
        // must not lose to the portable u64 kernels they replace (debug
        // intrinsics compile to unoptimised shims, so no debug bar).
        if !cfg!(debug_assertions) && CpuFeatures::get().ssse3 {
            for (name, speedup) in [
                ("pack_2bit", report.kernels.pack_simd_speedup),
                ("unpack_2bit", report.kernels.unpack_simd_speedup),
                ("common_prefix_len", report.kernels.prefix_speedup),
            ] {
                if speedup < 1.0 {
                    return Err(format!(
                        "{name} SIMD dispatch slower than baseline ({speedup:.2}x) \
                         on a {} host",
                        report.cpu_features
                    ));
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_passes_its_own_gate() {
        let cfg = AlgoBenchConfig {
            quick: true,
            threads: 2,
            ..AlgoBenchConfig::default()
        };
        let report = run_algo_bench(&cfg).expect("smoke gate must pass");
        assert_eq!(report.algorithms.len(), Algorithm::HORIZONTAL.len());
        assert!(report.algorithms.iter().all(|r| r.roundtrip_ok));
        assert!(report.algorithms.iter().all(|r| r.parallel_matches_serial));
        assert!(report.kernels.pack_u64_mb_s > 0.0);
        assert!(report.kernels.pack_simd_mb_s > 0.0);
        assert!(report.kernels.prefix_simd_mb_s > 0.0);
        assert!(!report.cpu_features.is_empty());
        assert!(report.speed_gate.ctw_rans_mb_s > 0.0);
        assert!(report.speed_gate.ctw_arith_mb_s > 0.0);
        // The speed-tier algorithms advertise their backend and stage
        // split; the legacy ones stay on "arith" with no split.
        for name in ["CTW", "CTW+LZ", "XM-lite", "BWT"] {
            let row = report
                .algorithms
                .iter()
                .find(|r| r.algorithm == name)
                .unwrap_or_else(|| panic!("no {name} row"));
            assert_eq!(row.entropy_backend, "rans", "{name}");
            assert!(row.model_stage_ms.is_some(), "{name} lacks stage split");
        }
        assert!(report
            .algorithms
            .iter()
            .any(|r| r.entropy_backend == "arith"));
        let json = report.to_json();
        let back: AlgoBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn tiering_covers_every_horizontal_algorithm() {
        for alg in Algorithm::HORIZONTAL {
            assert!(tier_bases(alg, false) >= 64 << 10);
            assert_eq!(tier_bases(alg, true), 8_192);
        }
    }
}
