//! Per-algorithm throughput benchmark: `dnacomp bench-algos`.
//!
//! Measures, for every self-contained algorithm
//! ([`Algorithm::HORIZONTAL`]):
//!
//! * **serial** compress/decompress wall throughput — one flat
//!   whole-sequence blob on one thread;
//! * **block wall** throughput — the framed block path
//!   ([`ParallelCompressor`]) on a real shared [`TaskPool`], as the
//!   service runs it. On a single-core host this is bounded by the
//!   hardware, not the design: it mostly validates that framing adds
//!   no overhead;
//! * **block lane** throughput — the reproducible parallel number:
//!   every block is compressed alone and *individually timed*, then the
//!   measured per-block wall times are list-scheduled onto
//!   [`AlgoBenchConfig::lanes`] lanes with the same earliest-free-lane
//!   rule `bench-serve` uses ([`crate::bench::makespan_ms`]). This is
//!   what an N-core deployment of the same code would see, computed
//!   from real single-core measurements — the convention
//!   `BENCH_serve.json` established, applied per algorithm. The JSON
//!   records `host_cpus` and `threads` so nobody mistakes the lane
//!   curve for a wall-clock measurement on this host.
//!
//! A kernel micro-benchmark compares the u64 word-at-a-time 2-bit
//! pack/unpack ([`dnacomp_seq::pack_2bit_u64`]) against the
//! byte-at-a-time baseline kept for exactly this purpose.
//!
//! **Quick mode** is the CI perf smoke gate: a small corpus, plus hard
//! assertions — every algorithm must round-trip both ways across the
//! serial/parallel encoder-decoder matrix, and the packing kernels
//! must clear a conservative throughput floor (scaled down for debug
//! builds, which CI's `--quick` tier runs).
//!
//! Throughputs are megabases per second (1 MB = 10⁶ bases ≙ one
//! uncompressed ASCII byte each).

use crate::bench::makespan_ms;
use dnacomp_algos::{compressor_for, Algorithm, FramedBlob, ParallelCompressor, TaskPool};
use dnacomp_codec::CodecError;
use dnacomp_seq::gen::GenomeModel;
use dnacomp_seq::{pack_2bit_bytewise, pack_2bit_u64, unpack_2bit_bytewise, unpack_2bit_u64};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Benchmark shape.
#[derive(Clone, Debug)]
pub struct AlgoBenchConfig {
    /// Smoke-gate mode: tiny corpus, round-trip and kernel-floor
    /// assertions enabled.
    pub quick: bool,
    /// Dedicated threads of the shared block pool (0 = inline serial).
    pub threads: usize,
    /// Lanes for the list-scheduled makespan throughput.
    pub lanes: usize,
    /// Frame block size in bases; `None` picks `bases / 16` per row.
    pub block_size: Option<usize>,
    /// Corpus seed.
    pub seed: u64,
}

impl Default for AlgoBenchConfig {
    fn default() -> Self {
        AlgoBenchConfig {
            quick: false,
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            lanes: 4,
            block_size: None,
            seed: 42,
        }
    }
}

/// Kernel micro-benchmark: u64 word-at-a-time vs byte-at-a-time 2-bit
/// packing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelBench {
    /// Bases packed/unpacked per repetition.
    pub bases: usize,
    /// u64 kernel pack throughput, MB/s (best of 3).
    pub pack_u64_mb_s: f64,
    /// Byte-at-a-time pack throughput, MB/s.
    pub pack_bytewise_mb_s: f64,
    /// u64 kernel unpack throughput, MB/s.
    pub unpack_u64_mb_s: f64,
    /// Byte-at-a-time unpack throughput, MB/s.
    pub unpack_bytewise_mb_s: f64,
    /// `pack_u64 / pack_bytewise`.
    pub pack_speedup: f64,
    /// `unpack_u64 / unpack_bytewise`.
    pub unpack_speedup: f64,
}

/// One algorithm's measurements.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlgoBenchRow {
    /// The paper's spelling of the algorithm name.
    pub algorithm: String,
    /// Input length, bases.
    pub bases: usize,
    /// Frame block size, bases.
    pub block_size: usize,
    /// Frame container size, bytes.
    pub compressed_bytes: usize,
    /// Frame compression ratio, bits per base.
    pub bits_per_base: f64,
    /// Whole-sequence flat-blob compress throughput, one thread, MB/s.
    pub serial_compress_mb_s: f64,
    /// Whole-sequence flat-blob decompress throughput, MB/s.
    pub serial_decompress_mb_s: f64,
    /// Framed compress wall throughput on the real shared pool, MB/s
    /// (host-bound; see `host_cpus` in the report).
    pub block_wall_compress_mb_s: f64,
    /// Framed decompress wall throughput on the real shared pool, MB/s.
    pub block_wall_decompress_mb_s: f64,
    /// Measured per-block compress times list-scheduled onto `lanes`
    /// lanes, MB/s — the reproducible parallel number.
    pub block_lane_compress_mb_s: f64,
    /// Per-block decompress times list-scheduled onto `lanes`, MB/s.
    pub block_lane_decompress_mb_s: f64,
    /// `block_lane_compress / serial_compress`.
    pub lane_speedup_compress: f64,
    /// Parallel encode → serial decode → original verified, and the
    /// reverse direction too.
    pub roundtrip_ok: bool,
    /// Parallel and serial encoders produced identical frame bytes.
    pub parallel_matches_serial: bool,
}

/// Full benchmark output (`BENCH_algos.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlgoBenchReport {
    /// CPUs the host actually has — read this before reading any
    /// `*_wall_*` number.
    pub host_cpus: usize,
    /// Dedicated threads of the shared block pool during wall runs.
    pub threads: usize,
    /// Lanes of the list-scheduled makespan throughput.
    pub lanes: usize,
    /// Whether this was the quick smoke-gate run.
    pub quick: bool,
    /// Corpus seed.
    pub seed: u64,
    /// Packing-kernel micro-benchmark.
    pub kernels: KernelBench,
    /// One row per algorithm.
    pub algorithms: Vec<AlgoBenchRow>,
}

impl AlgoBenchReport {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialisation cannot fail")
    }
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn mb_s(bases: usize, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bases as f64 / 1e6 / secs
}

/// Corpus length for `alg`: full mode tiers by measured algorithm cost
/// so the whole sweep finishes in minutes, while the fast tier stays at
/// ≥ 4 MiB — the size the block-parallel acceptance number is read at.
fn tier_bases(alg: Algorithm, quick: bool) -> usize {
    if quick {
        return 8_192;
    }
    match alg {
        // Linear-ish and fast: full 4 MiB.
        Algorithm::Raw | Algorithm::Dnax | Algorithm::Gzip | Algorithm::DnaPackLite => 4 << 20,
        // Mid-cost match/grammar models.
        Algorithm::BioCompress2
        | Algorithm::GenCompress
        | Algorithm::Dnac
        | Algorithm::DnaCompress
        | Algorithm::Cfact
        | Algorithm::DnaSequitur => 256 << 10,
        // Heavy context-mixing models.
        Algorithm::Ctw | Algorithm::CtwLz | Algorithm::XmLite => 64 << 10,
        Algorithm::Reference => unreachable!("not in HORIZONTAL"),
    }
}

/// Best-of-3 throughput of `f` over `bytes` input bytes, MB/s.
fn best_of_3(bytes: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let ((), secs) = time(&mut f);
        best = best.min(secs);
    }
    mb_s(bytes, best)
}

fn bench_kernels(quick: bool) -> KernelBench {
    let bases = if quick { 1 << 20 } else { 8 << 20 };
    let codes: Vec<u8> = (0..bases).map(|i| ((i * 2654435761) >> 7) as u8 & 3).collect();
    let packed = pack_2bit_u64(&codes);
    let pack_u64 = best_of_3(bases, || {
        std::hint::black_box(pack_2bit_u64(std::hint::black_box(&codes)));
    });
    let pack_bytewise = best_of_3(bases, || {
        std::hint::black_box(pack_2bit_bytewise(std::hint::black_box(&codes)));
    });
    let unpack_u64 = best_of_3(bases, || {
        std::hint::black_box(unpack_2bit_u64(std::hint::black_box(&packed), bases));
    });
    let unpack_bytewise = best_of_3(bases, || {
        std::hint::black_box(unpack_2bit_bytewise(std::hint::black_box(&packed), bases));
    });
    KernelBench {
        bases,
        pack_u64_mb_s: pack_u64,
        pack_bytewise_mb_s: pack_bytewise,
        unpack_u64_mb_s: unpack_u64,
        unpack_bytewise_mb_s: unpack_bytewise,
        pack_speedup: if pack_bytewise > 0.0 { pack_u64 / pack_bytewise } else { 0.0 },
        unpack_speedup: if unpack_bytewise > 0.0 { unpack_u64 / unpack_bytewise } else { 0.0 },
    }
}

fn bench_algorithm(
    alg: Algorithm,
    cfg: &AlgoBenchConfig,
    pool: &Arc<TaskPool>,
) -> Result<AlgoBenchRow, CodecError> {
    let bases = tier_bases(alg, cfg.quick);
    let block_size = cfg.block_size.unwrap_or_else(|| (bases / 16).max(1));
    let seq = GenomeModel::default().generate(bases, cfg.seed);
    let codec = compressor_for(alg);

    // Serial reference: one flat whole-sequence blob.
    let (blob, serial_c) = time(|| codec.compress(&seq));
    let blob = blob?;
    let (decoded, serial_d) = time(|| codec.decompress(&blob));
    let serial_ok = decoded? == seq;

    // Framed path on the real shared pool (wall numbers).
    let pc = ParallelCompressor::new(alg, block_size, Arc::clone(pool));
    let (frame, wall_c) = time(|| pc.compress(&seq));
    let frame = frame?;
    let (par_decoded, wall_d) = time(|| pc.decompress(&frame));
    let par_decoded = par_decoded?;

    // Cross-decoder matrix: the serial decoder must accept the parallel
    // frame and the parallel decoder the serial frame, bit-exact.
    let serial_frame = dnacomp_algos::frame::compress_serial(&*codec, &seq, block_size)?;
    let matches = serial_frame.to_bytes() == frame.to_bytes();
    let cross_ok = dnacomp_algos::frame::decompress_serial(&frame)? == seq
        && pc.decompress(&serial_frame)? == seq
        && par_decoded == seq;

    // Per-block times for the reproducible lane makespan: each block
    // compressed (then decompressed) alone, individually timed.
    let n_blocks = FramedBlob::block_count(block_size, seq.len());
    let mut c_times = Vec::with_capacity(n_blocks);
    let mut d_times = Vec::with_capacity(n_blocks);
    for index in 0..n_blocks {
        let start = index * block_size;
        let end = (start + block_size).min(seq.len());
        let block = seq.slice(start, end);
        let (b, secs) = time(|| codec.compress(&block));
        let b = b?;
        c_times.push(secs * 1e3);
        let (back, secs) = time(|| codec.decompress(&b));
        let _ = back?;
        d_times.push(secs * 1e3);
    }
    let lane_c_ms = makespan_ms(&c_times, cfg.lanes);
    let lane_d_ms = makespan_ms(&d_times, cfg.lanes);
    let lane_c = mb_s(bases, lane_c_ms / 1e3);
    let serial_c_mb_s = mb_s(bases, serial_c);

    Ok(AlgoBenchRow {
        algorithm: alg.name().to_owned(),
        bases,
        block_size,
        compressed_bytes: frame.total_bytes(),
        bits_per_base: frame.bits_per_base(),
        serial_compress_mb_s: serial_c_mb_s,
        serial_decompress_mb_s: mb_s(bases, serial_d),
        block_wall_compress_mb_s: mb_s(bases, wall_c),
        block_wall_decompress_mb_s: mb_s(bases, wall_d),
        block_lane_compress_mb_s: lane_c,
        block_lane_decompress_mb_s: mb_s(bases, lane_d_ms / 1e3),
        lane_speedup_compress: if serial_c_mb_s > 0.0 { lane_c / serial_c_mb_s } else { 0.0 },
        roundtrip_ok: serial_ok && cross_ok,
        parallel_matches_serial: matches,
    })
}

/// Conservative kernel floor, MB/s. Debug builds (CI's `--quick` tier
/// runs the unoptimised binary) pay ~20× on the SWAR loops, so the
/// floor scales with the build profile rather than silently passing a
/// release-only bar.
fn kernel_floor_mb_s() -> f64 {
    if cfg!(debug_assertions) {
        5.0
    } else {
        100.0
    }
}

/// Run the benchmark. In quick mode, round-trip or kernel-floor
/// failures come back as `Err` — the CI gate's exit code.
pub fn run_algo_bench(cfg: &AlgoBenchConfig) -> Result<AlgoBenchReport, String> {
    let pool = Arc::new(TaskPool::new(cfg.threads));
    let kernels = bench_kernels(cfg.quick);
    let mut algorithms = Vec::new();
    for alg in Algorithm::HORIZONTAL {
        eprintln!("bench-algos: {} ({} bases) …", alg.name(), tier_bases(alg, cfg.quick));
        let row = bench_algorithm(alg, cfg, &pool)
            .map_err(|e| format!("{}: benchmark failed: {e}", alg.name()))?;
        algorithms.push(row);
    }
    let report = AlgoBenchReport {
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        threads: cfg.threads,
        lanes: cfg.lanes,
        quick: cfg.quick,
        seed: cfg.seed,
        kernels,
        algorithms,
    };
    if cfg.quick {
        for row in &report.algorithms {
            if !row.roundtrip_ok {
                return Err(format!("{}: smoke round-trip failed", row.algorithm));
            }
            if !row.parallel_matches_serial {
                return Err(format!(
                    "{}: parallel frame bytes differ from serial encoder",
                    row.algorithm
                ));
            }
        }
        let floor = kernel_floor_mb_s();
        for (name, got) in [
            ("pack_2bit_u64", report.kernels.pack_u64_mb_s),
            ("unpack_2bit_u64", report.kernels.unpack_u64_mb_s),
        ] {
            if got < floor {
                return Err(format!(
                    "{name} throughput {got:.1} MB/s below the {floor:.0} MB/s floor"
                ));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_passes_its_own_gate() {
        let cfg = AlgoBenchConfig {
            quick: true,
            threads: 2,
            ..AlgoBenchConfig::default()
        };
        let report = run_algo_bench(&cfg).expect("smoke gate must pass");
        assert_eq!(report.algorithms.len(), Algorithm::HORIZONTAL.len());
        assert!(report.algorithms.iter().all(|r| r.roundtrip_ok));
        assert!(report.algorithms.iter().all(|r| r.parallel_matches_serial));
        assert!(report.kernels.pack_u64_mb_s > 0.0);
        let json = report.to_json();
        let back: AlgoBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn tiering_covers_every_horizontal_algorithm() {
        for alg in Algorithm::HORIZONTAL {
            assert!(tier_bases(alg, false) >= 64 << 10);
            assert_eq!(tier_bases(alg, true), 8_192);
        }
    }
}
