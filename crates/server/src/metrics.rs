//! Lock-free service metrics: counters, gauges and a latency histogram.
//!
//! Workers record events with relaxed atomics (monotonic counters need
//! no ordering), so metrics never serialize the hot path. A
//! [`snapshot`](Metrics::snapshot) materialises a consistent-enough
//! view as a plain serialisable struct — the payload `dnacomp serve`
//! prints and `BENCH_serve.json` archives.
//!
//! Latency is tracked on the **simulated clock** (the same millisecond
//! accounting the `PerfModel` prices every exchange with), in a
//! geometric-bucket histogram: bucket `i` covers costs up to
//! `0.5 · 1.6^i` ms. Quantile queries return the upper bound of the
//! bucket where the cumulative count crosses the rank — a ≤ 60 %
//! overestimate by construction, which is enough to watch p50/p95
//! drift under load without storing samples.

use dnacomp_algos::{Algorithm, PoolStats};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket count.
const HIST_BUCKETS: usize = 48;
/// Upper bound of bucket 0, ms.
const HIST_MIN_MS: f64 = 0.5;
/// Geometric growth factor between buckets.
const HIST_GROWTH: f64 = 1.6;

/// One more than the largest [`Algorithm::tag`] value.
const ALG_SLOTS: usize = 16;

fn bucket_upper_ms(i: usize) -> f64 {
    HIST_MIN_MS * HIST_GROWTH.powi(i as i32)
}

fn bucket_for(ms: f64) -> usize {
    let v = ms.max(0.0);
    let mut i = 0;
    while i + 1 < HIST_BUCKETS && v > bucket_upper_ms(i) {
        i += 1;
    }
    i
}

/// Live metrics registry shared by every worker of one service.
#[derive(Debug)]
pub struct Metrics {
    accepted: AtomicU64,
    rejected_full: AtomicU64,
    expired: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    queue_depth: AtomicU64,
    peak_queue_depth: AtomicU64,
    wins: [AtomicU64; ALG_SLOTS],
    latency: [AtomicU64; HIST_BUCKETS],
    latency_sum_us: AtomicU64,
    store_puts: AtomicU64,
    store_dedup_hits: AtomicU64,
    store_bytes_on_disk: AtomicU64,
    store_scrub_failures: AtomicU64,
    store_runs: AtomicU64,
    store_tombstones: AtomicU64,
    store_compactions: AtomicU64,
    store_cache_hits: AtomicU64,
    store_cache_misses: AtomicU64,
    store_bloom_negatives: AtomicU64,
    store_wal_appends: AtomicU64,
    store_wal_batches: AtomicU64,
    worker_restarts: AtomicU64,
    jobs_panicked: AtomicU64,
    jobs_quarantined: AtomicU64,
    jobs_shed: AtomicU64,
    jobs_crashed: AtomicU64,
    dlq_depth: AtomicU64,
    dlq_dropped: AtomicU64,
    last_heartbeat_age_ms: AtomicU64,
    blocks_compressed: AtomicU64,
    block_parallel_jobs: AtomicU64,
    pool_tasks_run_by_pool: AtomicU64,
    pool_tasks_run_inline: AtomicU64,
    pool_batches: AtomicU64,
    connections_open: AtomicU64,
    connections_accepted: AtomicU64,
    connections_refused: AtomicU64,
    connections_killed: AtomicU64,
    frames_rx: AtomicU64,
    frames_tx: AtomicU64,
    net_bytes_rx: AtomicU64,
    net_bytes_tx: AtomicU64,
    protocol_errors: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            accepted: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            peak_queue_depth: AtomicU64::new(0),
            wins: std::array::from_fn(|_| AtomicU64::new(0)),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_sum_us: AtomicU64::new(0),
            store_puts: AtomicU64::new(0),
            store_dedup_hits: AtomicU64::new(0),
            store_bytes_on_disk: AtomicU64::new(0),
            store_scrub_failures: AtomicU64::new(0),
            store_runs: AtomicU64::new(0),
            store_tombstones: AtomicU64::new(0),
            store_compactions: AtomicU64::new(0),
            store_cache_hits: AtomicU64::new(0),
            store_cache_misses: AtomicU64::new(0),
            store_bloom_negatives: AtomicU64::new(0),
            store_wal_appends: AtomicU64::new(0),
            store_wal_batches: AtomicU64::new(0),
            worker_restarts: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
            jobs_quarantined: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            jobs_crashed: AtomicU64::new(0),
            dlq_depth: AtomicU64::new(0),
            dlq_dropped: AtomicU64::new(0),
            last_heartbeat_age_ms: AtomicU64::new(0),
            blocks_compressed: AtomicU64::new(0),
            block_parallel_jobs: AtomicU64::new(0),
            pool_tasks_run_by_pool: AtomicU64::new(0),
            pool_tasks_run_inline: AtomicU64::new(0),
            pool_batches: AtomicU64::new(0),
            connections_open: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            connections_refused: AtomicU64::new(0),
            connections_killed: AtomicU64::new(0),
            frames_rx: AtomicU64::new(0),
            frames_tx: AtomicU64::new(0),
            net_bytes_rx: AtomicU64::new(0),
            net_bytes_tx: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        }
    }
}

impl Metrics {
    /// Fresh registry, all zeros.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// A submission entered admission. The depth gauge must rise
    /// *before* the job becomes visible to workers: the push/pop mutex
    /// then orders this increment before the matching
    /// [`record_dequeued`](Self::record_dequeued), so the decrement can
    /// never run first, clamp at zero, and leak a permanent +1.
    /// Consequence: peak depth may exceed the queue capacity by the
    /// number of submissions concurrently in admission.
    pub fn record_enqueued(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// A job passed admission and entered the queue.
    pub fn record_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission bounced off the full queue (backpressure).
    pub fn record_rejected_full(&self) {
        self.rejected_full.fetch_add(1, Ordering::Relaxed);
    }

    /// A counted job left the queue: a worker dequeued it, or a
    /// rejected submission is undoing its [`record_enqueued`](Self::record_enqueued).
    pub fn record_dequeued(&self) {
        // Saturating purely as snapshot hygiene: pairing is guaranteed
        // by the enqueue-before-visible protocol above.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// A dequeued job was past its deadline and answered `Expired`.
    pub fn record_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    /// A job finished successfully with `alg` at simulated cost `sim_ms`.
    pub fn record_completed(&self, alg: Algorithm, sim_ms: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.wins[alg.tag() as usize % ALG_SLOTS].fetch_add(1, Ordering::Relaxed);
        self.latency[bucket_for(sim_ms)].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us
            .fetch_add((sim_ms * 1_000.0).max(0.0) as u64, Ordering::Relaxed);
    }

    /// A job failed (typed exchange/codec error after the ladder).
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// The decision cache answered without touching the rule tree.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// The decision cache missed; the rule tree was consulted.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A completed job was persisted into the attached store;
    /// `deduped` says whether the content was already present.
    pub fn record_store_put(&self, deduped: bool) {
        self.store_puts.fetch_add(1, Ordering::Relaxed);
        if deduped {
            self.store_dedup_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Refresh the store gauges from a store snapshot: disk usage, LSM
    /// shape (runs, tombstones, compactions), read-path efficiency
    /// (block cache, bloom negatives), and WAL group-commit batching.
    pub fn set_store_state(&self, snap: &dnacomp_store::StoreSnapshot) {
        self.store_bytes_on_disk
            .store(snap.bytes_on_disk, Ordering::Relaxed);
        self.store_scrub_failures
            .fetch_max(snap.scrub_failures, Ordering::Relaxed);
        self.store_runs.store(snap.runs, Ordering::Relaxed);
        self.store_tombstones
            .store(snap.tombstones, Ordering::Relaxed);
        self.store_compactions
            .store(snap.seals + snap.merges, Ordering::Relaxed);
        self.store_cache_hits
            .store(snap.cache_hits, Ordering::Relaxed);
        self.store_cache_misses
            .store(snap.cache_misses, Ordering::Relaxed);
        self.store_bloom_negatives
            .store(snap.bloom_negatives, Ordering::Relaxed);
        self.store_wal_appends
            .store(snap.wal_appends, Ordering::Relaxed);
        self.store_wal_batches
            .store(snap.wal_batches, Ordering::Relaxed);
    }

    /// The supervisor replaced a dead worker thread.
    pub fn record_worker_restart(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// A job panicked; the panic was contained and the ticket answered
    /// `Err(JobError::Panicked)`.
    pub fn record_panicked(&self) {
        self.jobs_panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was refused execution because its content fingerprint is
    /// quarantined (ticket answered `Err(JobError::Quarantined)`).
    pub fn record_quarantined(&self) {
        self.jobs_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Admission control shed a job under overload (ticket answered
    /// `Err(JobError::Shed)` without the job ever entering the queue).
    pub fn record_shed(&self) {
        self.jobs_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A job died with its worker (thread killed outside containment);
    /// its ticket resolved `Err(JobError::WorkerGone)` via channel
    /// disconnect and the supervisor attributed the loss here.
    pub fn record_crashed(&self) {
        self.jobs_crashed.fetch_add(1, Ordering::Relaxed);
    }

    /// Refresh the dead-letter-queue gauges: current depth and letters
    /// dropped because the bounded queue was full.
    pub fn set_dlq_state(&self, depth: u64, dropped: u64) {
        self.dlq_depth.store(depth, Ordering::Relaxed);
        self.dlq_dropped.fetch_max(dropped, Ordering::Relaxed);
    }

    /// Refresh the watchdog gauge: age of the stalest live worker
    /// heartbeat, wall-clock ms.
    pub fn set_heartbeat_age_ms(&self, age_ms: u64) {
        self.last_heartbeat_age_ms.store(age_ms, Ordering::Relaxed);
    }

    /// A job ran the block-parallel frame path, producing `blocks`
    /// independently compressed blocks.
    pub fn record_block_parallel(&self, blocks: u64) {
        self.block_parallel_jobs.fetch_add(1, Ordering::Relaxed);
        self.blocks_compressed.fetch_add(blocks, Ordering::Relaxed);
    }

    /// Refresh the pool-sharing gauges from the shared block pool's
    /// running totals (monotonic, so `fetch_max` tolerates stale
    /// publications racing fresher ones).
    pub fn set_pool_stats(&self, stats: PoolStats) {
        self.pool_tasks_run_by_pool
            .fetch_max(stats.tasks_run_by_pool, Ordering::Relaxed);
        self.pool_tasks_run_inline
            .fetch_max(stats.tasks_run_inline, Ordering::Relaxed);
        self.pool_batches.fetch_max(stats.batches, Ordering::Relaxed);
    }

    /// The TCP front-end accepted a connection (open gauge rises).
    pub fn record_conn_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
        self.connections_open.fetch_add(1, Ordering::Relaxed);
    }

    /// An accepted connection ended (cleanly or killed); the open
    /// gauge falls. Every [`record_conn_accepted`](Self::record_conn_accepted)
    /// is paired with exactly one of these by the handler's drop path.
    pub fn record_conn_closed(&self) {
        let _ = self
            .connections_open
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// A connection was refused at accept (cap reached): it was never
    /// open, so only the refusal counter moves.
    pub fn record_conn_refused(&self) {
        self.connections_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was killed by its supervisor (strikes, desync,
    /// mid-frame deadline). Counted *in addition to* the close.
    pub fn record_conn_killed(&self) {
        self.connections_killed.fetch_add(1, Ordering::Relaxed);
    }

    /// A complete, checksum-valid frame arrived (`bytes` on the wire).
    pub fn record_frame_rx(&self, bytes: u64) {
        self.frames_rx.fetch_add(1, Ordering::Relaxed);
        self.net_bytes_rx.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A complete frame was written to a peer (`bytes` on the wire).
    pub fn record_frame_tx(&self, bytes: u64) {
        self.frames_tx.fetch_add(1, Ordering::Relaxed);
        self.net_bytes_tx.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A peer violated the protocol (bad magic/version/checksum,
    /// unknown type, oversize declaration, malformed payload, torn
    /// frame). One increment per violation, whether it cost a strike
    /// or the connection.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections currently open, per this registry's accounting.
    pub fn connections_open(&self) -> u64 {
        self.connections_open.load(Ordering::Relaxed)
    }

    /// Jobs currently queued, per this registry's accounting.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Simulated-latency quantile (0 < `q` ≤ 1) over completed jobs:
    /// upper bound of the bucket holding the rank-`⌈q·n⌉` sample.
    pub fn latency_quantile_ms(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper_ms(i);
            }
        }
        bucket_upper_ms(HIST_BUCKETS - 1)
    }

    /// Materialise a serialisable snapshot of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let completed = self.completed.load(Ordering::Relaxed);
        let wins = Algorithm::ALL
            .into_iter()
            .filter_map(|alg| {
                let n = self.wins[alg.tag() as usize % ALG_SLOTS].load(Ordering::Relaxed);
                (n > 0).then(|| AlgorithmWins {
                    algorithm: alg.name().to_owned(),
                    wins: n,
                })
            })
            .collect();
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses == 0 {
                0.0
            } else {
                hits as f64 / (hits + misses) as f64
            },
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            algorithm_wins: wins,
            latency_p50_ms: self.latency_quantile_ms(0.50),
            latency_p95_ms: self.latency_quantile_ms(0.95),
            latency_mean_ms: if completed == 0 {
                0.0
            } else {
                self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1_000.0 / completed as f64
            },
            store_puts: self.store_puts.load(Ordering::Relaxed),
            store_dedup_hits: self.store_dedup_hits.load(Ordering::Relaxed),
            store_bytes_on_disk: self.store_bytes_on_disk.load(Ordering::Relaxed),
            store_scrub_failures: self.store_scrub_failures.load(Ordering::Relaxed),
            store_runs: self.store_runs.load(Ordering::Relaxed),
            store_tombstones: self.store_tombstones.load(Ordering::Relaxed),
            store_compactions: self.store_compactions.load(Ordering::Relaxed),
            store_cache_hits: self.store_cache_hits.load(Ordering::Relaxed),
            store_cache_misses: self.store_cache_misses.load(Ordering::Relaxed),
            store_bloom_negatives: self.store_bloom_negatives.load(Ordering::Relaxed),
            store_wal_appends: self.store_wal_appends.load(Ordering::Relaxed),
            store_wal_batches: self.store_wal_batches.load(Ordering::Relaxed),
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            jobs_panicked: self.jobs_panicked.load(Ordering::Relaxed),
            jobs_quarantined: self.jobs_quarantined.load(Ordering::Relaxed),
            jobs_shed: self.jobs_shed.load(Ordering::Relaxed),
            jobs_crashed: self.jobs_crashed.load(Ordering::Relaxed),
            dlq_depth: self.dlq_depth.load(Ordering::Relaxed),
            dlq_dropped: self.dlq_dropped.load(Ordering::Relaxed),
            last_heartbeat_age_ms: self.last_heartbeat_age_ms.load(Ordering::Relaxed),
            blocks_compressed: self.blocks_compressed.load(Ordering::Relaxed),
            block_parallel_jobs: self.block_parallel_jobs.load(Ordering::Relaxed),
            pool_tasks_run_by_pool: self.pool_tasks_run_by_pool.load(Ordering::Relaxed),
            pool_tasks_run_inline: self.pool_tasks_run_inline.load(Ordering::Relaxed),
            pool_batches: self.pool_batches.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            connections_killed: self.connections_killed.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            frames_tx: self.frames_tx.load(Ordering::Relaxed),
            net_bytes_rx: self.net_bytes_rx.load(Ordering::Relaxed),
            net_bytes_tx: self.net_bytes_tx.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// Completions credited to one algorithm.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AlgorithmWins {
    /// The paper's spelling of the algorithm name.
    pub algorithm: String,
    /// Jobs this algorithm completed.
    pub wins: u64,
}

/// Point-in-time copy of the registry, ready for JSON export.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Jobs admitted into the queue.
    pub accepted: u64,
    /// Submissions bounced by backpressure.
    pub rejected_full: u64,
    /// Jobs dequeued after their deadline and answered `Expired`.
    pub expired: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs that failed with a typed error.
    pub failed: u64,
    /// Decision-cache hits.
    pub cache_hits: u64,
    /// Decision-cache misses.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 when no lookups happened.
    pub cache_hit_rate: f64,
    /// Jobs queued at snapshot time.
    pub queue_depth: u64,
    /// High-water mark of the queue depth (counts submissions from
    /// admission, so it can exceed capacity by in-flight submitters).
    pub peak_queue_depth: u64,
    /// Per-algorithm completion counts (algorithms with ≥ 1 win).
    pub algorithm_wins: Vec<AlgorithmWins>,
    /// Median simulated latency (bucket upper bound), ms.
    pub latency_p50_ms: f64,
    /// 95th-percentile simulated latency (bucket upper bound), ms.
    pub latency_p95_ms: f64,
    /// Mean simulated latency, ms.
    pub latency_mean_ms: f64,
    /// Results persisted into the attached store (0 when stateless).
    pub store_puts: u64,
    /// Persisted results the store already held (deduplicated).
    pub store_dedup_hits: u64,
    /// Committed store bytes on disk at the last persist.
    pub store_bytes_on_disk: u64,
    /// Store records that ever failed checksum validation.
    pub store_scrub_failures: u64,
    /// Sorted runs (level ≥ 1 files) in the store at the last persist.
    #[serde(default)]
    pub store_runs: u64,
    /// Run-resident records removed but not yet merged away.
    #[serde(default)]
    pub store_tombstones: u64,
    /// L0 seals plus run merges since the store opened.
    #[serde(default)]
    pub store_compactions: u64,
    /// Store block-cache hits since open.
    #[serde(default)]
    pub store_cache_hits: u64,
    /// Store block-cache misses since open.
    #[serde(default)]
    pub store_cache_misses: u64,
    /// Run probes answered "absent" by a bloom filter, zero disk I/O.
    #[serde(default)]
    pub store_bloom_negatives: u64,
    /// Store manifest entries appended (WAL appends) since open.
    #[serde(default)]
    pub store_wal_appends: u64,
    /// Fsync batches covering those appends; the gap to
    /// `store_wal_appends` is the group-commit saving.
    #[serde(default)]
    pub store_wal_batches: u64,
    /// Dead worker threads the supervisor replaced.
    pub worker_restarts: u64,
    /// Jobs whose panic was contained (`Err(JobError::Panicked)`).
    pub jobs_panicked: u64,
    /// Jobs refused because their content fingerprint is quarantined.
    pub jobs_quarantined: u64,
    /// Jobs shed by admission control under overload.
    pub jobs_shed: u64,
    /// Jobs that died with their worker (resolved `WorkerGone`).
    pub jobs_crashed: u64,
    /// Dead letters currently held in the bounded DLQ.
    pub dlq_depth: u64,
    /// Dead letters evicted because the bounded DLQ was full.
    pub dlq_dropped: u64,
    /// Age of the stalest live worker heartbeat at snapshot, ms.
    pub last_heartbeat_age_ms: u64,
    /// Frame blocks compressed by the block-parallel path.
    pub blocks_compressed: u64,
    /// Jobs that ran the block-parallel frame path.
    pub block_parallel_jobs: u64,
    /// Shared-pool block tasks executed by dedicated pool threads.
    pub pool_tasks_run_by_pool: u64,
    /// Shared-pool block tasks executed inline by the submitting worker
    /// (help-first draining).
    pub pool_tasks_run_inline: u64,
    /// Block batches submitted to the shared pool.
    pub pool_batches: u64,
    /// TCP connections open at snapshot time (point-in-time gauge).
    pub connections_open: u64,
    /// TCP connections ever accepted by the front-end.
    pub connections_accepted: u64,
    /// TCP connections refused at accept (connection cap).
    pub connections_refused: u64,
    /// TCP connections killed by their supervisor (strikes, desync,
    /// mid-frame deadline).
    pub connections_killed: u64,
    /// Complete checksum-valid frames received.
    pub frames_rx: u64,
    /// Complete frames transmitted.
    pub frames_tx: u64,
    /// Wire bytes received in valid frames.
    pub net_bytes_rx: u64,
    /// Wire bytes transmitted in frames.
    pub net_bytes_tx: u64,
    /// Protocol violations observed across all connections.
    pub protocol_errors: u64,
}

impl MetricsSnapshot {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialisation cannot fail")
    }
}

/// Live counters for one back-end shard of a router.
///
/// The byte counters are `Arc`-shared so a
/// [`crate::conn::CountingStream`] wrapped around each pooled
/// connection feeds them directly — the rollup's per-shard byte
/// numbers are exact wire bytes, not estimates.
#[derive(Debug)]
pub struct ShardCounters {
    forwards: AtomicU64,
    retries: AtomicU64,
    errors: AtomicU64,
    frames_tx: AtomicU64,
    frames_rx: AtomicU64,
    bytes_tx: std::sync::Arc<AtomicU64>,
    bytes_rx: std::sync::Arc<AtomicU64>,
    ejections: AtomicU64,
    readmissions: AtomicU64,
}

impl Default for ShardCounters {
    fn default() -> Self {
        ShardCounters {
            forwards: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            frames_tx: AtomicU64::new(0),
            frames_rx: AtomicU64::new(0),
            bytes_tx: std::sync::Arc::new(AtomicU64::new(0)),
            bytes_rx: std::sync::Arc::new(AtomicU64::new(0)),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
        }
    }
}

/// Live metrics registry for one router: fleet-wide counters plus a
/// fixed slot of [`ShardCounters`] per configured shard.
#[derive(Debug)]
pub struct RouterMetrics {
    connections_accepted: AtomicU64,
    connections_refused: AtomicU64,
    connections_closed: AtomicU64,
    connections_killed: AtomicU64,
    frames_rx: AtomicU64,
    frames_tx: AtomicU64,
    protocol_errors: AtomicU64,
    route_forwards: AtomicU64,
    route_retries: AtomicU64,
    shard_ejections: AtomicU64,
    shard_readmissions: AtomicU64,
    replica_writes: AtomicU64,
    quorum_failures: AtomicU64,
    read_repairs: AtomicU64,
    hints_queued: AtomicU64,
    hints_drained: AtomicU64,
    hints_dropped: AtomicU64,
    hints_pending: AtomicU64,
    repair_buckets_shipped: AtomicU64,
    per_shard: Vec<ShardCounters>,
}

impl RouterMetrics {
    /// A zeroed registry with one counter slot per shard.
    pub fn new(shards: usize) -> Self {
        RouterMetrics {
            connections_accepted: AtomicU64::new(0),
            connections_refused: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            connections_killed: AtomicU64::new(0),
            frames_rx: AtomicU64::new(0),
            frames_tx: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            route_forwards: AtomicU64::new(0),
            route_retries: AtomicU64::new(0),
            shard_ejections: AtomicU64::new(0),
            shard_readmissions: AtomicU64::new(0),
            replica_writes: AtomicU64::new(0),
            quorum_failures: AtomicU64::new(0),
            read_repairs: AtomicU64::new(0),
            hints_queued: AtomicU64::new(0),
            hints_drained: AtomicU64::new(0),
            hints_dropped: AtomicU64::new(0),
            hints_pending: AtomicU64::new(0),
            repair_buckets_shipped: AtomicU64::new(0),
            per_shard: (0..shards).map(|_| ShardCounters::default()).collect(),
        }
    }

    /// A client connection was accepted.
    pub fn record_conn_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A client connection was refused at the cap.
    pub fn record_conn_refused(&self) {
        self.connections_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// A client connection ended cleanly.
    pub fn record_conn_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// A client connection was killed for protocol violations.
    pub fn record_conn_killed(&self) {
        self.connections_killed.fetch_add(1, Ordering::Relaxed);
    }

    /// One client-facing frame arrived.
    pub fn record_frame_rx(&self) {
        self.frames_rx.fetch_add(1, Ordering::Relaxed);
    }

    /// One client-facing frame was sent.
    pub fn record_frame_tx(&self) {
        self.frames_tx.fetch_add(1, Ordering::Relaxed);
    }

    /// A client frame violated the protocol.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was forwarded to `shard`.
    pub fn record_forward(&self, shard: usize) {
        self.route_forwards.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = self.per_shard.get(shard) {
            s.forwards.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A forward against `shard` failed in transport and was retried.
    pub fn record_retry(&self, shard: usize) {
        self.route_retries.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = self.per_shard.get(shard) {
            s.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `shard` answered a forward with a typed error frame.
    pub fn record_shard_error(&self, shard: usize) {
        if let Some(s) = self.per_shard.get(shard) {
            s.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Count one request/response frame pair exchanged with `shard`.
    pub fn record_shard_frames(&self, shard: usize, tx: u64, rx: u64) {
        if let Some(s) = self.per_shard.get(shard) {
            s.frames_tx.fetch_add(tx, Ordering::Relaxed);
            s.frames_rx.fetch_add(rx, Ordering::Relaxed);
        }
    }

    /// `shard` struck out on health probes and was ejected.
    pub fn record_ejection(&self, shard: usize) {
        self.shard_ejections.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = self.per_shard.get(shard) {
            s.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `shard` answered a probe again and was re-admitted.
    pub fn record_readmission(&self, shard: usize) {
        self.shard_readmissions.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = self.per_shard.get(shard) {
            s.readmissions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One replica of a quorum write committed (per-shard attribution
    /// already lands in that slot's `forwards`).
    pub fn record_replica_write(&self) {
        self.replica_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// A replicated write fell short of its write quorum.
    pub fn record_quorum_failure(&self) {
        self.quorum_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// A Get repaired a stale replica with the canonical bytes.
    pub fn record_read_repair(&self) {
        self.read_repairs.fetch_add(1, Ordering::Relaxed);
    }

    /// A handoff hint was persisted for a missed replica.
    pub fn record_hint_queued(&self) {
        self.hints_queued.fetch_add(1, Ordering::Relaxed);
    }

    /// A persisted hint was delivered to its shard and removed.
    pub fn record_hint_drained(&self) {
        self.hints_drained.fetch_add(1, Ordering::Relaxed);
    }

    /// A hint was dropped (queue at capacity, or condemned as
    /// corrupt); anti-entropy repair is now that replica's only path
    /// to convergence.
    pub fn record_hint_dropped(&self) {
        self.hints_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Set the hints-pending **gauge** (hints currently persisted and
    /// undelivered — it falls as hints drain, unlike the counters).
    pub fn set_hints_pending(&self, pending: u64) {
        self.hints_pending.store(pending, Ordering::Relaxed);
    }

    /// An anti-entropy sweep shipped `buckets` differing digest
    /// buckets.
    pub fn record_repair_buckets(&self, buckets: u64) {
        self.repair_buckets_shipped
            .fetch_add(buckets, Ordering::Relaxed);
    }

    /// Shared byte counters for `shard`, to hand to a
    /// [`crate::conn::CountingStream`] around each pooled connection.
    pub fn byte_counters(
        &self,
        shard: usize,
    ) -> (std::sync::Arc<AtomicU64>, std::sync::Arc<AtomicU64>) {
        let s = &self.per_shard[shard];
        (
            std::sync::Arc::clone(&s.bytes_tx),
            std::sync::Arc::clone(&s.bytes_rx),
        )
    }

    /// Materialise the aggregated rollup. `labels` carries the ring's
    /// per-shard identity and current health, in slot order.
    pub fn snapshot(&self, epoch: u64, labels: &[ShardLabel]) -> RouterMetricsSnapshot {
        let shards = self
            .per_shard
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let label = labels.get(i);
                ShardCountersSnapshot {
                    shard: label.map_or(i as u32, |l| l.id),
                    addr: label.map_or_else(String::new, |l| l.addr.clone()),
                    healthy: label.is_none_or(|l| l.healthy),
                    forwards: s.forwards.load(Ordering::Relaxed),
                    retries: s.retries.load(Ordering::Relaxed),
                    errors: s.errors.load(Ordering::Relaxed),
                    frames_tx: s.frames_tx.load(Ordering::Relaxed),
                    frames_rx: s.frames_rx.load(Ordering::Relaxed),
                    bytes_tx: s.bytes_tx.load(Ordering::Relaxed),
                    bytes_rx: s.bytes_rx.load(Ordering::Relaxed),
                    ejections: s.ejections.load(Ordering::Relaxed),
                    readmissions: s.readmissions.load(Ordering::Relaxed),
                }
            })
            .collect();
        RouterMetricsSnapshot {
            epoch,
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            connections_killed: self.connections_killed.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            frames_tx: self.frames_tx.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            route_forwards: self.route_forwards.load(Ordering::Relaxed),
            route_retries: self.route_retries.load(Ordering::Relaxed),
            shard_ejections: self.shard_ejections.load(Ordering::Relaxed),
            shard_readmissions: self.shard_readmissions.load(Ordering::Relaxed),
            replica_writes: self.replica_writes.load(Ordering::Relaxed),
            quorum_failures: self.quorum_failures.load(Ordering::Relaxed),
            read_repairs: self.read_repairs.load(Ordering::Relaxed),
            hints_queued: self.hints_queued.load(Ordering::Relaxed),
            hints_drained: self.hints_drained.load(Ordering::Relaxed),
            hints_dropped: self.hints_dropped.load(Ordering::Relaxed),
            hints_pending: self.hints_pending.load(Ordering::Relaxed),
            repair_buckets_shipped: self.repair_buckets_shipped.load(Ordering::Relaxed),
            shards,
        }
    }
}

/// Identity and health of one shard slot at snapshot time.
#[derive(Clone, Debug)]
pub struct ShardLabel {
    /// Ring shard id.
    pub id: u32,
    /// Back-end address.
    pub addr: String,
    /// Whether the shard is currently admitted.
    pub healthy: bool,
}

/// Point-in-time rollup of one shard's counters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShardCountersSnapshot {
    /// Ring shard id.
    pub shard: u32,
    /// Back-end address.
    pub addr: String,
    /// Whether the shard was admitted when the snapshot was taken.
    pub healthy: bool,
    /// Requests forwarded to this shard.
    pub forwards: u64,
    /// Transport-failed forwards retried elsewhere.
    pub retries: u64,
    /// Typed error frames this shard answered with.
    pub errors: u64,
    /// Protocol frames sent to this shard.
    pub frames_tx: u64,
    /// Protocol frames received from this shard.
    pub frames_rx: u64,
    /// Exact wire bytes written to this shard.
    pub bytes_tx: u64,
    /// Exact wire bytes read from this shard.
    pub bytes_rx: u64,
    /// Times this shard was ejected by health probing.
    pub ejections: u64,
    /// Times this shard was re-admitted after ejection.
    pub readmissions: u64,
}

/// Point-in-time aggregated router rollup: the JSON payload
/// `dnacomp route serve` prints and the router answers `Metrics`
/// requests with.
///
/// Every numeric field is a **monotonic counter** (it only grows over
/// the router's lifetime) except two **gauges** that read as current
/// state and move in both directions: `hints_pending` (hints persisted
/// but not yet delivered) and each shard row's `healthy` flag.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RouterMetricsSnapshot {
    /// Ring epoch the router is serving.
    pub epoch: u64,
    /// Client connections accepted.
    pub connections_accepted: u64,
    /// Client connections refused at the cap.
    pub connections_refused: u64,
    /// Client connections that ended cleanly.
    pub connections_closed: u64,
    /// Client connections killed for protocol violations.
    pub connections_killed: u64,
    /// Client-facing frames received.
    pub frames_rx: u64,
    /// Client-facing frames sent.
    pub frames_tx: u64,
    /// Client-side protocol violations observed.
    pub protocol_errors: u64,
    /// Requests forwarded to a shard (primary or successor).
    pub route_forwards: u64,
    /// Forwards that failed in transport and were retried.
    pub route_retries: u64,
    /// Health-probe ejections across all shards.
    pub shard_ejections: u64,
    /// Re-admissions across all shards.
    pub shard_readmissions: u64,
    /// Replica commits across all quorum writes (counter; divide by
    /// acknowledged writes for the write amplification factor).
    #[serde(default)]
    pub replica_writes: u64,
    /// Writes that fell short of their write quorum (counter).
    #[serde(default)]
    pub quorum_failures: u64,
    /// Stale replicas repaired on the read path (counter).
    #[serde(default)]
    pub read_repairs: u64,
    /// Handoff hints persisted for missed replicas (counter).
    #[serde(default)]
    pub hints_queued: u64,
    /// Hints delivered to their shard and removed (counter).
    #[serde(default)]
    pub hints_drained: u64,
    /// Hints dropped at capacity or condemned as corrupt (counter).
    #[serde(default)]
    pub hints_dropped: u64,
    /// Hints persisted and still undelivered (**gauge** — falls as
    /// the drain catches up; the only non-monotonic number here
    /// besides per-shard `healthy`).
    #[serde(default)]
    pub hints_pending: u64,
    /// Differing digest buckets shipped by anti-entropy sweeps
    /// (counter).
    #[serde(default)]
    pub repair_buckets_shipped: u64,
    /// Per-shard rollup, in ring slot order.
    pub shards: Vec<ShardCountersSnapshot>,
}

impl RouterMetricsSnapshot {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn router_rollup_aggregates_per_shard_counters() {
        let m = RouterMetrics::new(2);
        m.record_conn_accepted();
        m.record_forward(0);
        m.record_forward(1);
        m.record_forward(1);
        m.record_retry(1);
        m.record_shard_error(0);
        m.record_shard_frames(0, 3, 3);
        m.record_ejection(1);
        m.record_readmission(1);
        m.record_replica_write();
        m.record_replica_write();
        m.record_quorum_failure();
        m.record_read_repair();
        m.record_hint_queued();
        m.record_hint_queued();
        m.record_hint_drained();
        m.record_hint_dropped();
        m.set_hints_pending(1);
        m.record_repair_buckets(3);
        let (tx, rx) = m.byte_counters(0);
        tx.fetch_add(100, Ordering::Relaxed);
        rx.fetch_add(40, Ordering::Relaxed);
        let labels = vec![
            ShardLabel {
                id: 1,
                addr: "a:1".into(),
                healthy: true,
            },
            ShardLabel {
                id: 2,
                addr: "b:2".into(),
                healthy: false,
            },
        ];
        let snap = m.snapshot(0xABC, &labels);
        assert_eq!(snap.epoch, 0xABC);
        assert_eq!(snap.route_forwards, 3);
        assert_eq!(snap.route_retries, 1);
        assert_eq!(snap.shard_ejections, 1);
        assert_eq!(snap.shard_readmissions, 1);
        assert_eq!(snap.replica_writes, 2);
        assert_eq!(snap.quorum_failures, 1);
        assert_eq!(snap.read_repairs, 1);
        assert_eq!(snap.hints_queued, 2);
        assert_eq!(snap.hints_drained, 1);
        assert_eq!(snap.hints_dropped, 1);
        assert_eq!(snap.hints_pending, 1);
        assert_eq!(snap.repair_buckets_shipped, 3);
        // The gauge moves both ways; counters never do.
        m.set_hints_pending(0);
        assert_eq!(m.snapshot(0xABC, &labels).hints_pending, 0);
        assert_eq!(snap.shards.len(), 2);
        assert_eq!(snap.shards[0].forwards, 1);
        assert_eq!(snap.shards[0].errors, 1);
        assert_eq!(snap.shards[0].bytes_tx, 100);
        assert_eq!(snap.shards[0].bytes_rx, 40);
        assert_eq!(snap.shards[1].forwards, 2);
        assert_eq!(snap.shards[1].retries, 1);
        assert!(!snap.shards[1].healthy);
        // The aggregated JSON roundtrips with per-shard rows intact.
        let back: RouterMetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(back.shards[1].ejections, 1);
    }

    #[test]
    fn counters_are_exact_under_contention() {
        let m = Arc::new(Metrics::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        m.record_enqueued();
                        m.record_accepted();
                        m.record_dequeued();
                        if i % 5 == 0 {
                            m.record_cache_miss();
                        } else {
                            m.record_cache_hit();
                        }
                        m.record_completed(Algorithm::Dnax, 10.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = m.snapshot();
        assert_eq!(s.accepted, 1000);
        assert_eq!(s.completed, 1000);
        assert_eq!(s.cache_hits, 800);
        assert_eq!(s.cache_misses, 200);
        assert!((s.cache_hit_rate - 0.8).abs() < 1e-12);
        assert_eq!(s.queue_depth, 0);
        assert!(s.peak_queue_depth >= 1);
        assert_eq!(s.algorithm_wins.len(), 1);
        assert_eq!(s.algorithm_wins[0].algorithm, "DNAX");
        assert_eq!(s.algorithm_wins[0].wins, 1000);
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let m = Metrics::new();
        for ms in [1.0, 2.0, 4.0, 8.0, 1000.0] {
            m.record_completed(Algorithm::Gzip, ms);
        }
        let p50 = m.latency_quantile_ms(0.5);
        let p95 = m.latency_quantile_ms(0.95);
        // Bucket upper bounds: ≥ the true quantile, ≤ growth × it.
        assert!((4.0..=4.0 * HIST_GROWTH).contains(&p50), "p50 {p50}");
        assert!((1000.0..=1000.0 * HIST_GROWTH).contains(&p95), "p95 {p95}");
        assert!(p50 <= p95);
        // Empty histogram reports zero.
        assert_eq!(Metrics::new().latency_quantile_ms(0.5), 0.0);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let m = Metrics::new();
        m.record_accepted();
        m.record_dequeued();
        m.record_cache_miss();
        m.record_completed(Algorithm::GenCompress, 3.0);
        let s = m.snapshot();
        let json = s.to_json();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn connection_accounting_pairs_opens_with_closes() {
        let m = Metrics::new();
        for _ in 0..5 {
            m.record_conn_accepted();
        }
        m.record_conn_refused();
        m.record_conn_killed();
        m.record_frame_rx(100);
        m.record_frame_rx(28);
        m.record_frame_tx(64);
        m.record_protocol_error();
        assert_eq!(m.connections_open(), 5);
        for _ in 0..5 {
            m.record_conn_closed();
        }
        // An unpaired extra close clamps at zero instead of wrapping.
        m.record_conn_closed();
        let s = m.snapshot();
        assert_eq!(s.connections_open, 0);
        assert_eq!(s.connections_accepted, 5);
        assert_eq!(s.connections_refused, 1);
        assert_eq!(s.connections_killed, 1);
        assert_eq!(s.frames_rx, 2);
        assert_eq!(s.net_bytes_rx, 128);
        assert_eq!(s.frames_tx, 1);
        assert_eq!(s.net_bytes_tx, 64);
        assert_eq!(s.protocol_errors, 1);
    }

    #[test]
    fn every_algorithm_has_a_win_slot() {
        let m = Metrics::new();
        for alg in Algorithm::ALL {
            m.record_completed(alg, 1.0);
        }
        let s = m.snapshot();
        assert_eq!(s.algorithm_wins.len(), Algorithm::ALL.len());
        assert!(s.algorithm_wins.iter().all(|w| w.wins == 1));
    }
}
