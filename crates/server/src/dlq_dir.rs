//! On-disk persistence for the dead-letter queue.
//!
//! `dnacomp serve --dlq-dir <dir>` drains the in-memory DLQ at
//! shutdown into one letter per content key; `dnacomp dlq
//! list|replay|drop` then operates on the directory offline. Each
//! letter is two files named by the key's hex form:
//!
//! - `<key>.dx` — the quarantined sequence as a [`Algorithm::Raw`]
//!   container (checksummed, so a corrupted letter is detected on
//!   load rather than replayed as garbage), written first;
//! - `<key>.json` — the offense record plus the request's context,
//!   written second. The JSON file is the commit point: a letter
//!   without it (a crash between the two writes) is invisible to
//!   `list` and harmlessly overwritten by the next save.
//!
//! Replaying from disk rebuilds a [`CompressRequest`] at normal
//! priority with no deadline — a replay is a fresh human decision,
//! not a re-run of the original submission's scheduling.

use crate::dlq::{DeadLetter, DeadLetterInfo};
use crate::service::CompressRequest;
use dnacomp_algos::{compressor_for, Algorithm, CompressedBlob};
use dnacomp_core::Context;
use dnacomp_store::ContentKey;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// The JSON half of one persisted letter: the listing summary plus
/// what `replay` needs to rebuild the request.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PersistedLetter {
    info: DeadLetterInfo,
    ram_mb: u32,
    cpu_mhz: u32,
    bandwidth_mbps: f64,
    file_bytes: u64,
    exchange: bool,
}

/// A directory of persisted dead letters.
pub struct DlqDir {
    dir: PathBuf,
}

impl DlqDir {
    /// Open (creating if needed) a dead-letter directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, String> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("creating dlq dir {}: {e}", dir.display()))?;
        Ok(DlqDir { dir })
    }

    fn json_path(&self, key: &ContentKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.to_hex()))
    }

    fn dx_path(&self, key: &ContentKey) -> PathBuf {
        self.dir.join(format!("{}.dx", key.to_hex()))
    }

    /// Persist one letter (payload first, record second — see module
    /// docs for the commit-point argument). Saving a key that is
    /// already present overwrites it.
    pub fn save(&self, letter: &DeadLetter) -> Result<(), String> {
        let blob = compressor_for(Algorithm::Raw)
            .compress(&letter.request.sequence)
            .map_err(|e| format!("packing letter {}: {e}", letter.key.to_hex()))?;
        let dx = self.dx_path(&letter.key);
        std::fs::write(&dx, blob.to_bytes())
            .map_err(|e| format!("writing {}: {e}", dx.display()))?;
        let record = PersistedLetter {
            info: letter.info(),
            ram_mb: letter.request.context.ram_mb,
            cpu_mhz: letter.request.context.cpu_mhz,
            bandwidth_mbps: letter.request.context.bandwidth_mbps,
            file_bytes: letter.request.context.file_bytes,
            exchange: letter.request.exchange,
        };
        let json = serde_json::to_string(&record)
            .map_err(|e| format!("encoding letter {}: {e}", letter.key.to_hex()))?;
        let path = self.json_path(&letter.key);
        std::fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        Ok(())
    }

    /// Summaries of every persisted letter, sorted by key for
    /// deterministic listings. Letters whose JSON record is missing or
    /// unreadable are reported as errors, not skipped silently.
    pub fn list(&self) -> Result<Vec<DeadLetterInfo>, String> {
        let mut infos = Vec::new();
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| format!("reading dlq dir {}: {e}", self.dir.display()))?;
        for entry in entries {
            let path = entry
                .map_err(|e| format!("reading dlq dir {}: {e}", self.dir.display()))?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let record: PersistedLetter = serde_json::from_str(&text)
                .map_err(|e| format!("parsing {}: {e}", path.display()))?;
            infos.push(record.info);
        }
        infos.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(infos)
    }

    /// The listing as a JSON array (what `dnacomp dlq list --json`
    /// prints).
    pub fn list_json(&self) -> Result<String, String> {
        let infos = self.list()?;
        serde_json::to_string(&infos).map_err(|e| format!("encoding dlq listing: {e}"))
    }

    /// Load one letter: the offense record plus a replayable request
    /// (checksum-verified payload). Errors if the key is not persisted
    /// or the payload is corrupt.
    pub fn load(&self, key: &ContentKey) -> Result<(DeadLetterInfo, CompressRequest), String> {
        let path = self.json_path(key);
        let text = std::fs::read_to_string(&path)
            .map_err(|_| format!("no dead letter with key {}", key.to_hex()))?;
        let record: PersistedLetter = serde_json::from_str(&text)
            .map_err(|e| format!("parsing {}: {e}", path.display()))?;
        let dx = self.dx_path(key);
        let bytes =
            std::fs::read(&dx).map_err(|e| format!("reading {}: {e}", dx.display()))?;
        let blob = CompressedBlob::from_bytes(&bytes)
            .map_err(|e| format!("{}: {e}", dx.display()))?;
        let seq = compressor_for(blob.algorithm)
            .decompress(&blob)
            .map_err(|e| format!("unpacking {}: {e}", dx.display()))?;
        let mut req = CompressRequest::new(
            record.info.file.clone(),
            seq,
            Context {
                ram_mb: record.ram_mb,
                cpu_mhz: record.cpu_mhz,
                bandwidth_mbps: record.bandwidth_mbps,
                file_bytes: record.file_bytes,
            },
        );
        req.exchange = record.exchange;
        Ok((record.info, req))
    }

    /// Remove a persisted letter (record first, payload second — the
    /// reverse of `save`, so a crash mid-removal never leaves a listed
    /// letter without its payload). Returns `false` if absent.
    pub fn remove(&self, key: &ContentKey) -> Result<bool, String> {
        let json = self.json_path(key);
        if !json.exists() {
            return Ok(false);
        }
        std::fs::remove_file(&json).map_err(|e| format!("removing {}: {e}", json.display()))?;
        let dx = self.dx_path(key);
        if dx.exists() {
            std::fs::remove_file(&dx).map_err(|e| format!("removing {}: {e}", dx.display()))?;
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;

    fn letter(i: u64) -> DeadLetter {
        let seq = GenomeModel::default().generate(200 + i as usize, i);
        let key = ContentKey::of_sequence(&seq);
        let mut request = CompressRequest::new(
            format!("poison_{i}"),
            seq,
            Context {
                ram_mb: 2048,
                cpu_mhz: 2393,
                bandwidth_mbps: 2.0,
                file_bytes: 200 + i,
            },
        );
        request.exchange = i.is_multiple_of(2);
        DeadLetter {
            key,
            strikes: 2,
            last_error: format!("injected panic {i}"),
            request,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dnacomp-dlqdir-{name}-{}", std::process::id()))
    }

    #[test]
    fn save_list_load_remove_roundtrip() {
        let dir = tmp("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let dlq = DlqDir::open(&dir).unwrap();
        let (a, b) = (letter(1), letter(2));
        dlq.save(&a).unwrap();
        dlq.save(&b).unwrap();

        let mut infos = dlq.list().unwrap();
        assert_eq!(infos.len(), 2);
        infos.sort_by(|x, y| x.file.cmp(&y.file));
        assert_eq!(infos[0].file, "poison_1");
        assert_eq!(infos[1].last_error, "injected panic 2");

        let (info, req) = dlq.load(&a.key).unwrap();
        assert_eq!(info, a.info());
        assert_eq!(req.sequence, a.request.sequence);
        assert_eq!(req.context.cpu_mhz, 2393);
        assert_eq!(req.exchange, a.request.exchange);

        assert!(dlq.remove(&a.key).unwrap());
        assert!(!dlq.remove(&a.key).unwrap());
        assert_eq!(dlq.list().unwrap().len(), 1);
        assert!(dlq.load(&a.key).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_payload_is_detected_on_load() {
        let dir = tmp("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let dlq = DlqDir::open(&dir).unwrap();
        let l = letter(3);
        dlq.save(&l).unwrap();
        // Flip a payload byte: the container checksum must catch it.
        let dx = dlq.dx_path(&l.key);
        let mut bytes = std::fs::read(&dx).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&dx, &bytes).unwrap();
        assert!(dlq.load(&l.key).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
