//! Routed-cluster loopback throughput benchmark (`BENCH_route.json`).
//!
//! One row per shard count: start `shards` full shard servers (each
//! its own [`CompressionService`] + TCP front-end), put a
//! [`RouterServer`] in front, fan a fixed workload over `clients`
//! concurrent client connections **to the router**, and account for
//! every job. The interesting ratio is `speedup_3_vs_1`: aggregate
//! completed-jobs/wall-second at three shards over one shard, with the
//! client count held well above one shard's back-end connection budget
//! (`pool_per_shard`). On any host — single-core included — the
//! routed cluster wins because the budget is per shard: three shards
//! grant 3× the concurrent in-flight requests, and each request spends
//! most of its wall-clock blocked on its shard's reply, not on a CPU.

use crate::bench::{build_workload, synthetic_framework, BenchConfig};
use crate::net::{NetClient, NetConfig, NetServer};
use crate::proto::Response;
use crate::ring::{Ring, ShardSpec, DEFAULT_RING_SEED, DEFAULT_VNODES};
use crate::router::{RouterConfig, RouterServer};
use crate::service::{CompressionService, ServiceConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Routed-bench knobs.
#[derive(Clone, Debug)]
pub struct RouteBenchConfig {
    /// Shard counts to sweep (the artifact uses `[1, 3]`).
    pub shard_counts: Vec<usize>,
    /// Concurrent client connections to the router. Keep this above
    /// `pool_per_shard × max(shard_counts)` so the per-shard budget,
    /// not the client count, is the binding constraint.
    pub clients: usize,
    /// Service worker threads per shard.
    pub workers_per_shard: usize,
    /// Router back-end connections per shard.
    pub pool_per_shard: usize,
    /// Replication factor for the router (default 1: the throughput
    /// sweep measures partitioning; pass 3 to measure replication
    /// write amplification and quorum latency instead).
    pub replicas: usize,
    /// Write quorum (clamped to `1..=replicas` per key).
    pub write_quorum: usize,
    /// The workload replayed over the wire.
    pub workload: BenchConfig,
}

impl Default for RouteBenchConfig {
    fn default() -> Self {
        RouteBenchConfig {
            shard_counts: vec![1, 3],
            clients: 9,
            workers_per_shard: 2,
            pool_per_shard: 1,
            replicas: 1,
            write_quorum: 1,
            workload: BenchConfig {
                files: 24,
                contexts: 4,
                repeats: 2,
                // Small sequences keep per-job CPU well under the
                // shard's ~1 ms reply-poll quantum, so throughput is
                // bound by in-flight budget (pool x shards), not CPU —
                // the regime the router actually scales.
                max_len: 1024,
                ..BenchConfig::default()
            },
        }
    }
}

/// One `BENCH_route.json` row: the cluster at one shard count.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RouteBenchRow {
    /// Shards behind the router.
    pub shards: usize,
    /// Concurrent client connections to the router.
    pub clients: usize,
    /// Service worker threads per shard.
    pub workers_per_shard: usize,
    /// Router back-end connections per shard.
    pub pool_per_shard: usize,
    /// Jobs sent through the router.
    pub jobs: u64,
    /// Jobs answered `CompressOk`.
    pub completed: u64,
    /// Jobs answered with a typed error frame.
    pub refused: u64,
    /// Wall-clock time for the row, ms.
    pub wall_ms: f64,
    /// Completed jobs per wall-clock second, end-to-end through the
    /// router.
    pub jobs_per_wall_sec: f64,
    /// Requests the router forwarded to a shard.
    pub route_forwards: u64,
    /// Forward attempts retried against a successor shard.
    pub route_retries: u64,
    /// Shards the prober ejected during the row (0 on a clean run).
    pub shard_ejections: u64,
    /// Replication factor the row ran at.
    #[serde(default = "one")]
    pub replicas: usize,
    /// Write quorum the row ran at.
    #[serde(default = "one")]
    pub write_quorum: usize,
    /// Replica commits across every quorum write.
    #[serde(default)]
    pub replica_writes: u64,
    /// Writes that fell short of the quorum (0 on a healthy cluster).
    #[serde(default)]
    pub quorum_failures: u64,
    /// `replica_writes / completed`: the replication write
    /// amplification factor (≈ R on a healthy cluster).
    #[serde(default)]
    pub write_amplification: f64,
    /// p95 client-observed latency of one quorum write, ms.
    #[serde(default)]
    pub quorum_p95_ms: f64,
    /// Logical CPUs on the machine that produced the row.
    pub host_cpus: usize,
    /// Threads the row used: clients + router accept/prober + per-shard
    /// workers and accept loops.
    pub threads: usize,
}

/// Serde default for rows written before replication existed (R=W=1).
#[allow(dead_code)] // referenced only through `#[serde(default = "one")]`
fn one() -> usize {
    1
}

/// The whole sweep plus its headline ratio.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RouteBenchReport {
    /// One row per swept shard count.
    pub rows: Vec<RouteBenchRow>,
    /// `jobs_per_wall_sec` at three shards over one shard; `0.0` when
    /// the sweep lacks either point.
    pub speedup_3_vs_1: f64,
}

impl RouteBenchReport {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialisation cannot fail")
    }
}

/// Run one row: a `shards`-shard cluster behind a router, `clients`
/// connections replaying the workload through it.
fn run_row(cfg: &RouteBenchConfig, shards: usize) -> Result<RouteBenchRow, String> {
    let shards = shards.max(1);
    let clients = cfg.clients.max(1);

    // Start the shard fleet on loopback.
    let mut servers = Vec::with_capacity(shards);
    let mut services = Vec::with_capacity(shards);
    let mut specs = Vec::with_capacity(shards);
    for i in 0..shards {
        let framework = synthetic_framework(cfg.workload.seed);
        let service = Arc::new(CompressionService::start(
            framework,
            ServiceConfig {
                workers: cfg.workers_per_shard.max(1),
                ..ServiceConfig::default()
            },
        ));
        let net = NetConfig {
            max_connections: cfg.pool_per_shard.max(1) * 2 + 2,
            ..NetConfig::default()
        };
        let server = NetServer::start(Arc::clone(&service), "127.0.0.1:0", net)
            .map_err(|e| format!("binding shard {i}: {e}"))?;
        specs.push(ShardSpec {
            id: i as u32 + 1,
            addr: server.local_addr().to_string(),
        });
        servers.push(server);
        services.push(service);
    }

    let ring = Ring::new(specs, DEFAULT_VNODES, DEFAULT_RING_SEED)?;
    let router = RouterServer::start(
        "127.0.0.1:0",
        ring,
        RouterConfig {
            max_connections: clients * 2,
            pool_per_shard: cfg.pool_per_shard.max(1),
            replicas: cfg.replicas.max(1),
            write_quorum: cfg.write_quorum.max(1),
            ..RouterConfig::default()
        },
    )
    .map_err(|e| format!("binding router: {e}"))?;
    let addr = router.local_addr();

    let jobs = build_workload(&cfg.workload);
    let total_jobs = jobs.len() as u64;
    let slices: Vec<Vec<_>> = (0..clients)
        .map(|c| {
            jobs.iter()
                .skip(c)
                .step_by(clients)
                .cloned()
                .collect::<Vec<_>>()
        })
        .collect();

    let started = Instant::now();
    let threads: Vec<_> = slices
        .into_iter()
        .enumerate()
        .map(|(c, slice)| {
            std::thread::spawn(move || -> Result<(u64, u64, Vec<f64>), String> {
                let mut client = NetClient::connect(addr, Duration::from_secs(60))
                    .map_err(|e| format!("client {c} connect: {e}"))?;
                let mut completed = 0u64;
                let mut refused = 0u64;
                let mut op_ms = Vec::with_capacity(slice.len());
                for job in &slice {
                    let op = Instant::now();
                    match client
                        .compress(&job.file, &job.sequence, job.priority, job.context.clone())
                        .map_err(|e| format!("client {c} compress: {e}"))?
                    {
                        Response::CompressOk { .. } => {
                            completed += 1;
                            op_ms.push(op.elapsed().as_secs_f64() * 1_000.0);
                        }
                        Response::Error { .. } => refused += 1,
                        other => return Err(format!("client {c}: unexpected reply {other:?}")),
                    }
                }
                client.bye().map_err(|e| format!("client {c} bye: {e}"))?;
                Ok((completed, refused, op_ms))
            })
        })
        .collect();

    let mut completed = 0u64;
    let mut refused = 0u64;
    let mut op_ms: Vec<f64> = Vec::new();
    for t in threads {
        let (c, r, ms) = t.join().map_err(|_| "bench client panicked".to_owned())??;
        completed += c;
        refused += r;
        op_ms.extend(ms);
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;
    // p95 of acknowledged writes, merged across every client thread.
    let quorum_p95_ms = if op_ms.is_empty() {
        0.0
    } else {
        op_ms.sort_by(|a, b| a.total_cmp(b));
        op_ms[((op_ms.len() - 1) * 95) / 100]
    };

    let snapshot = router.shutdown();
    for server in servers {
        server.shutdown();
    }
    for service in services {
        let service = Arc::try_unwrap(service)
            .map_err(|_| "shard service still referenced after drain".to_owned())?;
        service.shutdown();
    }

    if completed + refused != total_jobs {
        return Err(format!(
            "accounting hole at {shards} shard(s): {completed} completed + {refused} refused != {total_jobs} jobs"
        ));
    }

    let wall_secs = (wall_ms / 1_000.0).max(1e-9);
    Ok(RouteBenchRow {
        shards,
        clients,
        workers_per_shard: cfg.workers_per_shard.max(1),
        pool_per_shard: cfg.pool_per_shard.max(1),
        jobs: total_jobs,
        completed,
        refused,
        wall_ms,
        jobs_per_wall_sec: completed as f64 / wall_secs,
        route_forwards: snapshot.route_forwards,
        route_retries: snapshot.route_retries,
        shard_ejections: snapshot.shard_ejections,
        replicas: cfg.replicas.max(1),
        write_quorum: cfg.write_quorum.max(1),
        replica_writes: snapshot.replica_writes,
        quorum_failures: snapshot.quorum_failures,
        write_amplification: snapshot.replica_writes as f64 / completed.max(1) as f64,
        quorum_p95_ms,
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        threads: clients + 2 + shards * (cfg.workers_per_shard.max(1) + 1),
    })
}

/// Run the sweep and compute the 3-vs-1 headline speedup.
pub fn run_route_bench(cfg: &RouteBenchConfig) -> Result<RouteBenchReport, String> {
    let mut rows = Vec::with_capacity(cfg.shard_counts.len());
    for &shards in &cfg.shard_counts {
        rows.push(run_row(cfg, shards)?);
    }
    let rate_at = |n: usize| {
        rows.iter()
            .find(|r| r.shards == n)
            .map(|r| r.jobs_per_wall_sec)
    };
    let speedup_3_vs_1 = match (rate_at(1), rate_at(3)) {
        (Some(one), Some(three)) if one > 0.0 => three / one,
        _ => 0.0,
    };
    Ok(RouteBenchReport {
        rows,
        speedup_3_vs_1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routed_bench_accounts_for_every_job() {
        let cfg = RouteBenchConfig {
            shard_counts: vec![2],
            clients: 3,
            workers_per_shard: 1,
            pool_per_shard: 1,
            replicas: 2,
            write_quorum: 2,
            workload: BenchConfig {
                files: 4,
                contexts: 1,
                repeats: 1,
                max_len: 2 * 1024,
                ..BenchConfig::default()
            },
        };
        let report = run_route_bench(&cfg).unwrap();
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.shards, 2);
        assert_eq!(row.completed + row.refused, row.jobs);
        assert!(row.jobs > 0);
        assert!(row.route_forwards >= row.jobs);
        assert_eq!(row.shard_ejections, 0);
        assert!(row.host_cpus >= 1);
        // Replicated row: every completed write committed on both
        // shards (W = R = 2), so amplification is exactly 2 and every
        // quorum was met.
        assert_eq!(row.replicas, 2);
        assert_eq!(row.write_quorum, 2);
        assert_eq!(row.quorum_failures, 0);
        assert_eq!(row.replica_writes, 2 * row.completed);
        assert!((row.write_amplification - 2.0).abs() < 1e-9);
        assert!(row.quorum_p95_ms > 0.0);
        // No 1-shard and 3-shard rows → no headline ratio.
        assert_eq!(report.speedup_3_vs_1, 0.0);
    }
}
