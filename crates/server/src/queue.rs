//! Bounded, priority-aware job submission queue.
//!
//! The service's front door: producers [`push`](JobQueue::push) (or
//! [`try_push`](JobQueue::try_push) for non-blocking backpressure) and
//! the worker pool [`pop`](JobQueue::pop)s. The queue is a classic
//! `Mutex` + two-`Condvar` bounded buffer with one FIFO lane per
//! [`Priority`]; `pop` always drains the highest non-empty lane, so a
//! burst of bulk work cannot starve interactive jobs — but jobs of
//! equal priority keep strict submission order.
//!
//! Shutdown is cooperative: [`close`](JobQueue::close) rejects further
//! submissions while letting consumers drain what was already accepted
//! — `pop` only returns `None` once the queue is *closed and empty*.
//! That is the "no lost jobs" half of the service's contract: every
//! accepted job is either handed to a worker or still queued.
//!
//! Locking is poison-recovering ([`lock_recover`]): every mutation of
//! the queue state (`push_back` + length bump, `pop_front` + length
//! drop, the `closed` flag) is panic-free between lock and unlock, so a
//! guard abandoned by some unrelated unwinding thread never leaves the
//! state inconsistent — refusing to serve jobs over a stale poison flag
//! would be strictly worse than continuing.

use crate::dlq::lock_recover;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};

/// Job urgency. Lanes are strict: a `High` job is always dispatched
/// before any waiting `Normal` job, which beats any `Low` job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Interactive / latency-sensitive.
    High,
    /// The default lane.
    Normal,
    /// Bulk / background work.
    Low,
}

impl Priority {
    /// All priorities, highest first (lane order).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Why a submission was not accepted.
///
/// The rejected item is handed back so the producer can retry, reroute
/// or drop it explicitly — the queue never eats a job silently.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (backpressure); try again later.
    Full(T),
    /// The queue was closed; no further work is accepted.
    Closed(T),
}

struct State<T> {
    lanes: [VecDeque<T>; 3],
    len: usize,
    closed: bool,
}

/// Bounded multi-producer multi-consumer priority queue.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` jobs across all lanes.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        JobQueue {
            state: Mutex::new(State {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued jobs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (all lanes).
    pub fn len(&self) -> usize {
        lock_recover(&self.state).len
    }

    /// `true` when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking submit: returns the job in [`PushError::Full`] when
    /// the queue is at capacity instead of waiting — the backpressure
    /// signal the service turns into a `rejected` metric.
    pub fn try_push(&self, item: T, priority: Priority) -> Result<(), PushError<T>> {
        let mut st = lock_recover(&self.state);
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.len >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.lanes[priority.lane()].push_back(item);
        st.len += 1;
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking submit: waits for space, failing only if the queue is
    /// closed (before or while waiting).
    pub fn push(&self, item: T, priority: Priority) -> Result<(), PushError<T>> {
        let mut st = lock_recover(&self.state);
        loop {
            if st.closed {
                return Err(PushError::Closed(item));
            }
            if st.len < self.capacity {
                st.lanes[priority.lane()].push_back(item);
                st.len += 1;
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Take the next job: highest-priority lane first, FIFO within a
    /// lane. Blocks while the queue is empty; returns `None` only once
    /// the queue is closed **and** fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = lock_recover(&self.state);
        loop {
            if st.len > 0 {
                let item = st
                    .lanes
                    .iter_mut()
                    .find_map(VecDeque::pop_front)
                    .expect("len > 0 but all lanes empty");
                st.len -= 1;
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stop accepting work. Queued jobs remain poppable; blocked
    /// producers and (eventually) consumers are woken.
    pub fn close(&self) {
        let mut st = lock_recover(&self.state);
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// `true` once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.state).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_priority_and_lanes_between() {
        let q = JobQueue::new(8);
        q.try_push("low-1", Priority::Low).unwrap();
        q.try_push("norm-1", Priority::Normal).unwrap();
        q.try_push("high-1", Priority::High).unwrap();
        q.try_push("norm-2", Priority::Normal).unwrap();
        q.try_push("high-2", Priority::High).unwrap();
        let order: Vec<_> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, vec!["high-1", "high-2", "norm-1", "norm-2", "low-1"]);
    }

    #[test]
    fn backpressure_hands_the_job_back() {
        let q = JobQueue::new(2);
        q.try_push(1, Priority::Normal).unwrap();
        q.try_push(2, Priority::Normal).unwrap();
        match q.try_push(3, Priority::High) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_new_but_drains_old() {
        let q = JobQueue::new(4);
        q.try_push(1, Priority::Normal).unwrap();
        q.close();
        match q.try_push(2, Priority::Normal) {
            Err(PushError::Closed(2)) => {}
            other => panic!("expected Closed(2), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(JobQueue::new(1));
        q.try_push(1, Priority::Normal).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(2, Priority::Normal).is_ok())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1)); // frees the slot
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn mpmc_loses_nothing() {
        let q = Arc::new(JobQueue::new(16));
        let producers: Vec<_> = (0..4u32)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        q.push(p * 1000 + i, Priority::ALL[(i % 3) as usize])
                            .unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u32> = (0..4).flat_map(|p| (0..50).map(move |i| p * 1000 + i)).collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
