//! The supervision layer: watchdog, crash attribution, respawn.
//!
//! Workers contain most panics themselves ([`dnacomp_core::contain_panic`]
//! around job execution), so a worker *thread* dying is reserved for the
//! truly abnormal: a simulated hard crash (fault injection's
//! `worker_kill_rate`), a bug in the loop plumbing, or a panic that
//! escaped containment. The supervisor thread polls every worker's
//! [`JoinHandle`], and when one is finished it answers three questions:
//!
//! 1. **Did it die mid-job?** Each worker publishes its current job in
//!    its [`WorkerSlot::in_flight`] cell *before* executing and clears
//!    it after replying. A finished thread with a non-empty cell
//!    crashed; the victim job's ticket has already resolved
//!    `Err(WorkerGone)` (its reply sender died with the thread), and
//!    the crash counts a quarantine strike against the job's content.
//! 2. **Is there still work?** A worker that exited with the queue
//!    closed and empty simply drained to completion — nothing to do.
//! 3. **Can we afford a replacement?** Respawns draw from a finite
//!    restart budget ([`crate::ServiceConfig::restart_budget`]); a
//!    crash-looping pool must run out of credit rather than burn CPU
//!    forever. When the budget is gone and the last worker is dead, the
//!    supervisor performs the drain of last resort: it closes the queue
//!    and resolves every remaining ticket `Err(WorkerGone)` so no
//!    caller blocks on a pool that no longer exists.
//!
//! The supervisor also exports liveness: each worker heartbeats its
//! slot at job boundaries, and the supervisor publishes the worst
//! heartbeat age over *busy* workers as the `last_heartbeat_age_ms`
//! gauge (an idle pool reports 0 — staleness only means something when
//! someone claims to be working).

use crate::dlq::{lock_recover, DeadLetter, DeadLetterQueue, QuarantineRegistry};
use crate::metrics::Metrics;
use crate::queue::JobQueue;
use crate::service::{CompressRequest, Job, JobError, LruMap, ServiceConfig};
use crate::worker;
use dnacomp_core::{panic_message, FrameworkHandle};
use dnacomp_store::ContentKey;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Supervisor poll cadence. Short enough that crash→respawn latency is
/// invisible next to any real job; long enough to be free when idle.
const POLL: Duration = Duration::from_millis(2);

/// What a worker was holding when it died.
pub(crate) struct InFlight {
    /// The original request (replayable; becomes the dead letter when
    /// the crash crosses the strike threshold).
    pub(crate) req: CompressRequest,
    /// Content fingerprint strikes are counted against.
    pub(crate) key: ContentKey,
}

/// Per-worker shared state: heartbeat gauge + in-flight cell. Survives
/// the worker thread itself, which is the whole point — it is how the
/// supervisor reads the wreckage.
pub(crate) struct WorkerSlot {
    pub(crate) id: usize,
    epoch: Instant,
    /// Milliseconds since `epoch` at the last heartbeat.
    heartbeat_ms: AtomicU64,
    in_flight: Mutex<Option<InFlight>>,
}

impl WorkerSlot {
    pub(crate) fn new(id: usize, epoch: Instant) -> Self {
        WorkerSlot {
            id,
            epoch,
            heartbeat_ms: AtomicU64::new(0),
            in_flight: Mutex::new(None),
        }
    }

    /// Record "I am alive right now".
    pub(crate) fn beat(&self) {
        self.heartbeat_ms
            .store(self.epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// Milliseconds since the last heartbeat.
    fn heartbeat_age_ms(&self) -> u64 {
        (self.epoch.elapsed().as_millis() as u64)
            .saturating_sub(self.heartbeat_ms.load(Ordering::Relaxed))
    }

    /// Publish the job about to execute (or clear it after replying).
    pub(crate) fn set_in_flight(&self, inf: Option<InFlight>) {
        *lock_recover(&self.in_flight) = inf;
    }

    fn take_in_flight(&self) -> Option<InFlight> {
        lock_recover(&self.in_flight).take()
    }

    fn is_busy(&self) -> bool {
        lock_recover(&self.in_flight).is_some()
    }
}

/// Everything needed to run — and re-run — a worker.
#[derive(Clone)]
pub(crate) struct PoolShared {
    pub(crate) queue: Arc<JobQueue<Job>>,
    pub(crate) framework: FrameworkHandle,
    pub(crate) cache: Arc<LruMap>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) config: ServiceConfig,
    pub(crate) dlq: Arc<DeadLetterQueue>,
    pub(crate) registry: Arc<QuarantineRegistry>,
    pub(crate) block_pool: Arc<dnacomp_algos::TaskPool>,
}

/// Spawn one worker thread bound to `slot`. `generation` counts
/// respawns for the thread name (`dnacomp-worker-3-g2` is slot 3's
/// second replacement).
pub(crate) fn spawn_worker(
    shared: &PoolShared,
    slot: Arc<WorkerSlot>,
    generation: u32,
) -> JoinHandle<()> {
    let ctx = worker::WorkerContext {
        queue: Arc::clone(&shared.queue),
        framework: shared.framework.clone(),
        cache: Arc::clone(&shared.cache),
        metrics: Arc::clone(&shared.metrics),
        config: shared.config.clone(),
        dlq: Arc::clone(&shared.dlq),
        registry: Arc::clone(&shared.registry),
        block_pool: Arc::clone(&shared.block_pool),
        slot,
    };
    std::thread::Builder::new()
        .name(format!("dnacomp-worker-{}-g{generation}", ctx.slot.id))
        .spawn(move || worker::run(ctx))
        .expect("spawning worker thread")
}

/// The supervisor's working state.
pub(crate) struct Supervisor {
    pub(crate) shared: PoolShared,
    pub(crate) slots: Vec<Arc<WorkerSlot>>,
    /// Index-aligned with `slots`; `None` once a slot's thread exited
    /// and was not (or could not be) replaced.
    pub(crate) handles: Vec<Option<JoinHandle<()>>>,
    pub(crate) generations: Vec<u32>,
    pub(crate) restarts_left: u32,
}

impl Supervisor {
    /// Publish the watchdog + DLQ gauges.
    fn publish_gauges(&self) {
        let age = self
            .slots
            .iter()
            .zip(&self.handles)
            .filter(|(slot, handle)| handle.is_some() && slot.is_busy())
            .map(|(slot, _)| slot.heartbeat_age_ms())
            .max()
            .unwrap_or(0);
        self.shared.metrics.set_heartbeat_age_ms(age);
        self.shared
            .metrics
            .set_dlq_state(self.shared.dlq.depth() as u64, self.shared.dlq.dropped());
    }

    /// Handle one finished worker thread at `i`. Returns `true` if the
    /// slot is live again (a replacement was spawned).
    fn reap(&mut self, i: usize, handle: JoinHandle<()>) -> bool {
        // Never resume_unwind: a worker's panic is the worker's problem;
        // the payload becomes a string and the thread becomes history.
        let join_err = handle.join().err();
        let crashed = self.slots[i].take_in_flight();
        if let Some(inf) = crashed {
            // Died mid-job. The ticket already resolved WorkerGone when
            // the reply sender dropped; here we do the bookkeeping.
            self.shared.metrics.record_crashed();
            let msg = join_err
                .as_ref()
                .map(|p| panic_message(p.as_ref()))
                .unwrap_or_else(|| "worker exited mid-job".to_owned());
            let (strikes, crossed) = self.shared.registry.strike(&inf.key);
            if crossed {
                let (depth, dropped) = self.shared.dlq.push(DeadLetter {
                    key: inf.key,
                    strikes,
                    last_error: format!("crashed worker {}: {msg}", self.slots[i].id),
                    request: inf.req,
                });
                self.shared.metrics.set_dlq_state(depth, dropped);
            }
        }
        // Drained pools don't need replacements; neither do workers that
        // exited the loop normally after close.
        if self.shared.queue.is_closed() && self.shared.queue.is_empty() {
            return false;
        }
        if self.restarts_left == 0 {
            return false;
        }
        self.restarts_left -= 1;
        self.generations[i] += 1;
        self.shared.metrics.record_worker_restart();
        self.handles[i] = Some(spawn_worker(
            &self.shared,
            Arc::clone(&self.slots[i]),
            self.generations[i],
        ));
        true
    }

    /// The pool is extinct but jobs remain: close the queue and resolve
    /// every queued ticket with a typed error so no caller blocks
    /// forever. Each such job counts as crashed — it was accepted and
    /// the pool died under it.
    fn drain_of_last_resort(&self) {
        self.shared.queue.close();
        while let Some(job) = self.shared.queue.pop() {
            self.shared.metrics.record_dequeued();
            self.shared.metrics.record_crashed();
            let _ = job.reply.send(Err(JobError::WorkerGone));
        }
    }
}

/// Supervisor main loop. Runs until every worker has exited and the
/// queue is closed and empty — i.e. until there is provably nothing
/// left to supervise.
pub(crate) fn run(mut sup: Supervisor) {
    loop {
        let mut live = 0usize;
        for i in 0..sup.handles.len() {
            match &sup.handles[i] {
                Some(h) if h.is_finished() => {
                    let h = sup.handles[i].take().expect("checked Some");
                    if sup.reap(i, h) {
                        live += 1;
                    }
                }
                Some(_) => live += 1,
                None => {}
            }
        }
        sup.publish_gauges();
        if live == 0 {
            let drained = sup.shared.queue.is_closed() && sup.shared.queue.is_empty();
            if !drained {
                sup.drain_of_last_resort();
            }
            break;
        }
        std::thread::sleep(POLL);
    }
    sup.publish_gauges();
}
