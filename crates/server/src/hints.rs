//! Hinted handoff: persisted IOUs for replicas that missed a write.
//!
//! When a quorum write commits but one replica was down (or failed in
//! transport), the router owes that shard a copy. The hint queue is
//! the durable record of that debt: one hint per `(shard, key)` pair,
//! stored as two files in the same commit-point discipline as
//! [`crate::dlq_dir`]:
//!
//! - `<key>-s<shard>.dx` — the canonical container bytes exactly as a
//!   committed replica serves them, written first;
//! - `<key>-s<shard>.json` — the hint record (shard id, key, ring
//!   epoch, FNV-1a checksum of the payload bytes), written second.
//!   The JSON file is the commit point: a hint without it (a crash
//!   between the two writes) is invisible and harmlessly overwritten
//!   by the next save. The record's checksum covers the *container
//!   bytes at rest* (the `DX` format's own checksum covers the
//!   original sequence and is only checked at decompress time), so a
//!   torn or bit-flipped hint is refused on load rather than shipped
//!   as garbage.
//!
//! The queue is **bounded**: once `cap` hints are pending, new ones
//! are dropped (and counted by the router) — anti-entropy
//! ([`crate::router::repair`]) is the backstop that converges what
//! hinting could not hold. The prober drains hints to a shard as soon
//! as it is healthy, shipping each payload over the checksummed
//! `MigrateBatch` path and deleting the hint only after the shard
//! acknowledges the batch. Re-opening the directory rebuilds the
//! pending index, so hints survive a router restart.

use dnacomp_algos::CompressedBlob;
use dnacomp_codec::checksum::fnv1a;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The JSON half of one persisted hint.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct HintRecord {
    /// Ring id of the shard owed this copy.
    shard: u32,
    /// Content key, hex-encoded (matches the file stem).
    key: String,
    /// Ring epoch the write was routed under (diagnostic only; the
    /// drain re-asserts the current epoch on the wire).
    epoch: u64,
    /// FNV-1a over the `.dx` payload bytes, checked on load.
    #[serde(default)]
    checksum: u64,
}

/// Hex-encode a content key (the file-stem form used on disk and in
/// persisted cursors).
pub(crate) fn key_hex(key: &[u8; 16]) -> String {
    let mut s = String::with_capacity(32);
    for b in key {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decode [`key_hex`]'s output; `None` on anything malformed.
pub(crate) fn key_unhex(s: &str) -> Option<[u8; 16]> {
    if s.len() != 32 {
        return None;
    }
    let mut key = [0u8; 16];
    for (i, slot) in key.iter_mut().enumerate() {
        *slot = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).ok()?;
    }
    Some(key)
}

/// A bounded directory of pending handoff hints.
#[derive(Debug)]
pub struct HintQueue {
    dir: PathBuf,
    cap: usize,
    /// Pending `(shard, key)` pairs, rebuilt from disk on open.
    index: Mutex<BTreeSet<(u32, [u8; 16])>>,
}

impl HintQueue {
    /// Open (creating if needed) a hint directory and rebuild the
    /// pending index from its commit points. Records that fail to
    /// parse are an error — a hint dir the router cannot account for
    /// is worse than no hint dir.
    pub fn open(dir: impl AsRef<Path>, cap: usize) -> Result<HintQueue, String> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("creating hint dir {}: {e}", dir.display()))?;
        let mut index = BTreeSet::new();
        let entries = std::fs::read_dir(&dir)
            .map_err(|e| format!("reading hint dir {}: {e}", dir.display()))?;
        for entry in entries {
            let path = entry
                .map_err(|e| format!("reading hint dir {}: {e}", dir.display()))?
                .path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let record: HintRecord = serde_json::from_str(&text)
                .map_err(|e| format!("parsing {}: {e}", path.display()))?;
            let key = key_unhex(&record.key)
                .ok_or_else(|| format!("{}: malformed key hex", path.display()))?;
            index.insert((record.shard, key));
        }
        Ok(HintQueue {
            dir,
            cap: cap.max(1),
            index: Mutex::new(index),
        })
    }

    fn stem(&self, shard: u32, key: &[u8; 16]) -> String {
        format!("{}-s{shard}", key_hex(key))
    }

    fn dx_path(&self, shard: u32, key: &[u8; 16]) -> PathBuf {
        self.dir.join(format!("{}.dx", self.stem(shard, key)))
    }

    fn json_path(&self, shard: u32, key: &[u8; 16]) -> PathBuf {
        self.dir.join(format!("{}.json", self.stem(shard, key)))
    }

    /// Hints currently pending (all shards).
    pub fn pending(&self) -> usize {
        self.index.lock().expect("hint index poisoned").len()
    }

    /// Persist one hint: the container bytes owed to `shard` under
    /// `key`. Returns `Ok(false)` when the queue is at capacity and
    /// the hint was **dropped** (the caller should count it — repair
    /// is now the only path that converges this replica). Re-hinting
    /// a pending `(shard, key)` overwrites in place and is not a drop.
    pub fn save(&self, shard: u32, key: &[u8; 16], container: &[u8]) -> Result<bool, String> {
        let mut index = self.index.lock().expect("hint index poisoned");
        if !index.contains(&(shard, *key)) && index.len() >= self.cap {
            return Ok(false);
        }
        let dx = self.dx_path(shard, key);
        std::fs::write(&dx, container).map_err(|e| format!("writing {}: {e}", dx.display()))?;
        let record = HintRecord {
            shard,
            key: key_hex(key),
            epoch: 0,
            checksum: fnv1a(container),
        };
        let json = serde_json::to_string(&record)
            .map_err(|e| format!("encoding hint {}: {e}", self.stem(shard, key)))?;
        let path = self.json_path(shard, key);
        std::fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        index.insert((shard, *key));
        Ok(true)
    }

    /// Keys with pending hints for `shard`, in key order.
    pub fn for_shard(&self, shard: u32) -> Vec<[u8; 16]> {
        self.index
            .lock()
            .expect("hint index poisoned")
            .range((shard, [0u8; 16])..=(shard, [0xffu8; 16]))
            .map(|&(_, k)| k)
            .collect()
    }

    /// Load one hint's container bytes, verified against the record's
    /// at-rest checksum and re-parsed as a `DX` container, so a torn
    /// or bit-flipped payload is refused here instead of shipped.
    pub fn load(&self, shard: u32, key: &[u8; 16]) -> Result<Vec<u8>, String> {
        let json = self.json_path(shard, key);
        let text =
            std::fs::read_to_string(&json).map_err(|e| format!("reading {}: {e}", json.display()))?;
        let record: HintRecord =
            serde_json::from_str(&text).map_err(|e| format!("parsing {}: {e}", json.display()))?;
        let dx = self.dx_path(shard, key);
        let bytes = std::fs::read(&dx).map_err(|e| format!("reading {}: {e}", dx.display()))?;
        if fnv1a(&bytes) != record.checksum {
            return Err(format!("{}: payload checksum mismatch", dx.display()));
        }
        CompressedBlob::from_bytes(&bytes).map_err(|e| format!("{}: {e}", dx.display()))?;
        Ok(bytes)
    }

    /// Remove a delivered (or condemned) hint — record first, payload
    /// second, the reverse of `save`. Returns `false` if absent.
    pub fn remove(&self, shard: u32, key: &[u8; 16]) -> Result<bool, String> {
        let mut index = self.index.lock().expect("hint index poisoned");
        let json = self.json_path(shard, key);
        if json.exists() {
            std::fs::remove_file(&json)
                .map_err(|e| format!("removing {}: {e}", json.display()))?;
        }
        let dx = self.dx_path(shard, key);
        if dx.exists() {
            std::fs::remove_file(&dx).map_err(|e| format!("removing {}: {e}", dx.display()))?;
        }
        Ok(index.remove(&(shard, *key)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_algos::{compressor_for, Algorithm};
    use dnacomp_seq::gen::GenomeModel;
    use dnacomp_store::ContentKey;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dnacomp-hints-{name}-{}", std::process::id()))
    }

    fn payload(i: u64) -> ([u8; 16], Vec<u8>) {
        let seq = GenomeModel::default().generate(150 + i as usize, i);
        let key = ContentKey::of_sequence(&seq).0;
        let blob = compressor_for(Algorithm::Raw).compress(&seq).unwrap();
        (key, blob.to_bytes())
    }

    #[test]
    fn save_load_remove_and_restart_recovery() {
        let dir = tmp("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let q = HintQueue::open(&dir, 16).unwrap();
        let (k1, b1) = payload(1);
        let (k2, b2) = payload(2);
        assert!(q.save(7, &k1, &b1).unwrap());
        assert!(q.save(7, &k2, &b2).unwrap());
        assert!(q.save(9, &k1, &b1).unwrap());
        assert_eq!(q.pending(), 3);
        assert_eq!(q.for_shard(7).len(), 2);
        assert_eq!(q.for_shard(9), vec![k1]);
        assert_eq!(q.load(7, &k1).unwrap(), b1);
        // Re-hinting a pending pair overwrites, not duplicates.
        assert!(q.save(7, &k1, &b1).unwrap());
        assert_eq!(q.pending(), 3);

        // A fresh open rebuilds the index from the commit points.
        drop(q);
        let q = HintQueue::open(&dir, 16).unwrap();
        assert_eq!(q.pending(), 3);
        assert_eq!(q.load(9, &k1).unwrap(), b1);

        assert!(q.remove(7, &k1).unwrap());
        assert!(!q.remove(7, &k1).unwrap());
        assert_eq!(q.pending(), 2);
        assert!(q.load(7, &k1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn capacity_bound_drops_new_hints_but_not_rehints() {
        let dir = tmp("cap");
        let _ = std::fs::remove_dir_all(&dir);
        let q = HintQueue::open(&dir, 2).unwrap();
        let (k1, b1) = payload(3);
        let (k2, b2) = payload(4);
        let (k3, b3) = payload(5);
        assert!(q.save(1, &k1, &b1).unwrap());
        assert!(q.save(1, &k2, &b2).unwrap());
        assert!(!q.save(1, &k3, &b3).unwrap(), "over-cap hint must drop");
        assert!(q.save(1, &k2, &b2).unwrap(), "re-hint is not a drop");
        assert_eq!(q.pending(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_payloads_are_refused_on_load() {
        let dir = tmp("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let q = HintQueue::open(&dir, 4).unwrap();
        let (k, b) = payload(6);
        assert!(q.save(2, &k, &b).unwrap());
        let dx = q.dx_path(2, &k);
        let mut bytes = std::fs::read(&dx).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&dx, &bytes).unwrap();
        assert!(q.load(2, &k).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
