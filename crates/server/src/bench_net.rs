//! Loopback throughput benchmark for the TCP front-end.
//!
//! `dnacomp bench-serve --listen` runs the same synthetic workload as
//! the in-process sweep, but every job crosses the wire: N client
//! threads connect to a loopback [`NetServer`], stream their share of
//! the corpus through the protocol, and the report records end-to-end
//! wall throughput plus the connection metrics — so `BENCH_net.json`
//! tracks the network path's perf trajectory the same way
//! `BENCH_serve.json` tracks the in-process path.

use crate::bench::{build_workload, synthetic_framework, BenchConfig};
use crate::net::{NetClient, NetConfig, NetServer};
use crate::proto::Response;
use crate::service::{CompressionService, ServiceConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for the loopback network benchmark.
#[derive(Clone, Debug)]
pub struct NetBenchConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Worker threads in the backing service.
    pub workers: usize,
    /// Address to bind the benchmark server on (port 0 ⇒ ephemeral).
    pub listen: String,
    /// Workload shape (files × contexts × repeats), shared with the
    /// in-process bench so the rows are comparable.
    pub workload: BenchConfig,
}

impl Default for NetBenchConfig {
    fn default() -> Self {
        NetBenchConfig {
            clients: 4,
            workers: 4,
            listen: "127.0.0.1:0".to_owned(),
            workload: BenchConfig::default(),
        }
    }
}

/// One `BENCH_net.json` row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetBenchReport {
    /// Logical CPUs on the machine that produced the row — throughput
    /// numbers are meaningless without it.
    pub host_cpus: usize,
    /// Threads the run used: client threads + workers + accept loop.
    pub threads: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Service worker threads.
    pub workers: usize,
    /// Jobs sent over the wire.
    pub jobs: u64,
    /// Jobs answered `CompressOk`.
    pub completed: u64,
    /// Jobs answered with a typed error frame (shed, busy, …).
    pub refused: u64,
    /// Wall-clock time for the whole run, ms.
    pub wall_ms: f64,
    /// Completed jobs per wall-clock second, end-to-end over TCP.
    pub jobs_per_wall_sec: f64,
    /// Payload megabytes (input bases at 2 bit/base) per wall second.
    pub wire_mb_per_sec: f64,
    /// Frames the server received.
    pub frames_rx: u64,
    /// Frames the server sent.
    pub frames_tx: u64,
    /// Wire bytes the server received.
    pub net_bytes_rx: u64,
    /// Wire bytes the server sent.
    pub net_bytes_tx: u64,
    /// Connections the server accepted.
    pub connections_accepted: u64,
    /// Protocol violations the server observed (must be 0 here).
    pub protocol_errors: u64,
}

impl NetBenchReport {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialisation cannot fail")
    }
}

/// Run the loopback benchmark: start a service + front-end, fan the
/// workload out over `clients` real TCP connections, and account for
/// every job.
pub fn run_net_bench(cfg: &NetBenchConfig) -> Result<NetBenchReport, String> {
    let framework = synthetic_framework(cfg.workload.seed);
    let service = Arc::new(CompressionService::start(
        framework,
        ServiceConfig {
            workers: cfg.workers.max(1),
            ..ServiceConfig::default()
        },
    ));
    let net = NetConfig {
        max_connections: cfg.clients.max(1) * 2,
        ..NetConfig::default()
    };
    let server = NetServer::start(Arc::clone(&service), cfg.listen.as_str(), net)
        .map_err(|e| format!("binding {}: {e}", cfg.listen))?;
    let addr = server.local_addr();

    let jobs = build_workload(&cfg.workload);
    let total_jobs = jobs.len() as u64;
    let total_bases: u64 = jobs.iter().map(|j| j.sequence.len() as u64).sum();
    let clients = cfg.clients.max(1);
    let shards: Vec<Vec<_>> = (0..clients)
        .map(|c| {
            jobs.iter()
                .skip(c)
                .step_by(clients)
                .cloned()
                .collect::<Vec<_>>()
        })
        .collect();

    let started = Instant::now();
    let threads: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(c, shard)| {
            std::thread::spawn(move || -> Result<(u64, u64), String> {
                let mut client = NetClient::connect(addr, Duration::from_secs(60))
                    .map_err(|e| format!("client {c} connect: {e}"))?;
                let mut completed = 0u64;
                let mut refused = 0u64;
                for job in &shard {
                    match client
                        .compress(&job.file, &job.sequence, job.priority, job.context.clone())
                        .map_err(|e| format!("client {c} compress: {e}"))?
                    {
                        Response::CompressOk { .. } => completed += 1,
                        Response::Error { .. } => refused += 1,
                        other => {
                            return Err(format!("client {c}: unexpected reply {other:?}"))
                        }
                    }
                }
                client.bye().map_err(|e| format!("client {c} bye: {e}"))?;
                Ok((completed, refused))
            })
        })
        .collect();

    let mut completed = 0u64;
    let mut refused = 0u64;
    for t in threads {
        let (c, r) = t.join().map_err(|_| "client thread panicked".to_owned())??;
        completed += c;
        refused += r;
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1_000.0;

    server.shutdown();
    let snapshot = service.metrics().snapshot();
    drop(service);

    let wall_secs = (wall_ms / 1_000.0).max(1e-9);
    Ok(NetBenchReport {
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        threads: clients + cfg.workers.max(1) + 1,
        clients,
        workers: cfg.workers.max(1),
        jobs: total_jobs,
        completed,
        refused,
        wall_ms,
        jobs_per_wall_sec: completed as f64 / wall_secs,
        wire_mb_per_sec: (total_bases as f64 / 4.0) / 1.0e6 / wall_secs,
        frames_rx: snapshot.frames_rx,
        frames_tx: snapshot.frames_tx,
        net_bytes_rx: snapshot.net_bytes_rx,
        net_bytes_tx: snapshot.net_bytes_tx,
        connections_accepted: snapshot.connections_accepted,
        protocol_errors: snapshot.protocol_errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_bench_accounts_for_every_job() {
        let cfg = NetBenchConfig {
            clients: 2,
            workers: 2,
            workload: BenchConfig {
                files: 3,
                contexts: 2,
                repeats: 1,
                max_len: 4_000,
                ..BenchConfig::default()
            },
            ..NetBenchConfig::default()
        };
        let report = run_net_bench(&cfg).unwrap();
        assert_eq!(report.jobs, 6);
        assert_eq!(report.completed + report.refused, report.jobs);
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(report.connections_accepted, 2);
        // Every request frame got exactly one reply frame.
        assert_eq!(report.frames_rx, report.frames_tx);
        let json = report.to_json();
        let back: NetBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.jobs, report.jobs);
    }
}
