//! # dnacomp-server — concurrent context-aware compression service
//!
//! The paper's Figure-7 deployment serves one request at a time; this
//! crate is the production-shaped version: a multi-threaded service
//! that takes [`CompressRequest`] jobs through a bounded, prioritised
//! submission queue, dispatches them to a fixed worker pool, runs the
//! context-aware framework per job (rule lookup → chosen compressor →
//! optional resilient cloud exchange) and resolves each job's
//! [`JobTicket`] with a [`CompressResponse`].
//!
//! What makes per-request selection cheap at scale:
//!
//! * a shared read-only rule-tree snapshot
//!   ([`dnacomp_core::FrameworkHandle`]) — trained once, shared by
//!   every worker behind an `Arc`, no locks on the decide path;
//! * an LRU **decision cache** ([`cache`]) keyed by the quantized
//!   context, so repeated contexts skip tree traversal entirely (and,
//!   by deciding on each key's canonical representative, stay
//!   deterministic under any thread interleaving);
//! * lock-free [`metrics`] — counters, per-algorithm wins, cache hit
//!   rate and simulated-latency p50/p95 — exported as JSON by
//!   `dnacomp serve` / `dnacomp bench-serve`.
//!
//! The pool is **supervised** ([`supervisor`]): job panics are
//! contained per job, crashed worker threads are detected and respawned
//! within a restart budget, repeat-offender jobs are quarantined into a
//! bounded dead-letter queue ([`dlq`]), and admission control sheds
//! low-priority work before overload turns into latency collapse. The
//! contract: **every ticket resolves exactly once with a typed
//! outcome** — `Ok`, typed `Err`, shed, or quarantined.
//!
//! Module map (one concern each): [`queue`] → [`worker`] → [`cache`] →
//! [`metrics`], supervised by [`supervisor`] + [`dlq`], assembled by
//! [`service`], benchmarked by [`bench`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bench;
pub mod bench_algos;
pub mod bench_net;
pub mod bench_route;
pub mod bench_store;
pub mod cache;
pub mod conn;
pub mod dlq;
pub mod dlq_dir;
pub mod hints;
pub mod metrics;
pub mod net;
pub mod proto;
pub mod queue;
pub mod ring;
pub mod router;
pub mod service;
pub(crate) mod supervisor;
pub(crate) mod worker;

pub use bench::{
    build_workload, makespan_ms, run_bench, synthetic_framework, BenchConfig, BenchReport,
    SweepPoint,
};
pub use bench_algos::{
    run_algo_bench, AlgoBenchConfig, AlgoBenchReport, AlgoBenchRow, KernelBench,
};
pub use bench_net::{run_net_bench, NetBenchConfig, NetBenchReport};
pub use bench_route::{run_route_bench, RouteBenchConfig, RouteBenchReport, RouteBenchRow};
pub use bench_store::{run_store_bench, OpenPoint, StoreBenchConfig, StoreBenchReport};
pub use cache::{ContextKey, LruCache};
pub use conn::{read_frame, write_frame, Checkout, CountingStream, FaultyStream, StreamPool, IO_TICK};
pub use dlq::{DeadLetter, DeadLetterInfo, DeadLetterQueue, QuarantineRegistry};
pub use dlq_dir::DlqDir;
pub use hints::HintQueue;
pub use metrics::{
    AlgorithmWins, Metrics, MetricsSnapshot, RouterMetrics, RouterMetricsSnapshot, ShardLabel,
};
pub use net::{ClientError, NetClient, NetConfig, NetServer};
pub use proto::{
    decode_frame, frame_bytes, migrate_batch_checksum, request_frame, response_frame, ErrorCode,
    ProtoError, Request, Response, MAX_WIRE_PAYLOAD, WIRE_MAGIC, WIRE_VERSION,
};
pub use queue::{JobQueue, Priority, PushError};
pub use ring::{Ring, ShardSpec, DEFAULT_RING_SEED, DEFAULT_VNODES};
pub use router::{
    rebalance, rebalance_resumable, repair, RebalanceCursor, RebalanceReport, RepairReport,
    RouterConfig, RouterServer,
};
pub use service::{
    CompressRequest, CompressResponse, CompressionService, JobError, JobResult, JobTicket,
    ServiceConfig, SubmitError,
};
