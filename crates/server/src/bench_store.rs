//! Storage-engine benchmark: the numbers behind `BENCH_store.json`.
//!
//! Three claims the LSM engine makes, each measured directly:
//!
//! 1. **Open time is a function of manifest size, not object count.**
//!    `open` replays the manifest and stats files; run *contents* load
//!    lazily. After compaction most records live in runs, so the
//!    manifest carries a handful of `AddRun` entries instead of one
//!    `Add` per record — bytes-per-object falls as stores grow. The CI
//!    gate checks that deterministic ratio (wall-clock open time is
//!    recorded too, but a loaded CI box makes a poor stopwatch).
//! 2. **The block cache serves hot gets from memory.** The same hot-key
//!    sweep runs against one store with the cache enabled and one
//!    without; the report carries both throughputs and the speedup.
//! 3. **Group commit batches fsyncs.** The same put workload runs with
//!    the commit window on and off (both `sync`), and the WAL counters
//!    show how many fsync batches covered how many appends.

use dnacomp_algos::{Algorithm, CompressedBlob};
use dnacomp_seq::PackedSeq;
use dnacomp_store::{SequenceStore, StoreConfig, StoreError};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for the store benchmark.
#[derive(Clone, Debug)]
pub struct StoreBenchConfig {
    /// Object counts for the open-time sweep (ascending).
    pub open_sweep: Vec<usize>,
    /// Payload bytes per stored record.
    pub payload_bytes: usize,
    /// L0 segment roll size for the open/hot phases. Small segments
    /// force sealing, which is the whole point of the sweep.
    pub segment_bytes: u64,
    /// Records in the hot-get store.
    pub hot_records: usize,
    /// Hot-get passes over the whole key set.
    pub hot_passes: usize,
    /// Records put per writer thread in the group-commit comparison.
    pub commit_puts: usize,
    /// Writer threads in the group-commit comparison.
    pub commit_threads: usize,
    /// Scratch directory; a unique subdirectory is created per phase.
    pub dir: PathBuf,
}

impl Default for StoreBenchConfig {
    fn default() -> Self {
        StoreBenchConfig {
            open_sweep: vec![500, 2000, 8000],
            payload_bytes: 512,
            segment_bytes: 64 << 10,
            hot_records: 512,
            hot_passes: 40,
            commit_puts: 64,
            commit_threads: 4,
            dir: std::env::temp_dir().join("dnacomp-bench-store"),
        }
    }
}

impl StoreBenchConfig {
    /// The CI smoke shape: same phases, small enough for a gate.
    pub fn quick() -> Self {
        StoreBenchConfig {
            open_sweep: vec![150, 1200],
            payload_bytes: 256,
            segment_bytes: 8 << 10,
            hot_records: 128,
            hot_passes: 20,
            commit_puts: 16,
            commit_threads: 4,
            ..StoreBenchConfig::default()
        }
    }
}

/// One point of the open-time sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpenPoint {
    /// Records in the store.
    pub objects: u64,
    /// Manifest bytes replayed by `open` (the deterministic cost).
    pub manifest_bytes: u64,
    /// Wall-clock open time, ms (informational; machine-dependent).
    pub open_ms: f64,
    /// Sorted runs in the store.
    pub runs: u64,
}

/// The `BENCH_store.json` document.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StoreBenchReport {
    /// Logical CPUs on the machine that produced the numbers.
    pub host_cpus: usize,
    /// Open-time sweep, ascending object counts.
    pub open_sweep: Vec<OpenPoint>,
    /// Manifest bytes per object at the largest sweep point divided by
    /// the same at the smallest — < 1.0 means open cost grows
    /// sub-linearly in objects (the CI gate).
    pub open_cost_ratio: f64,
    /// Hot-get throughput with the block cache enabled, MB/s of
    /// compressed payload.
    pub hot_get_cached_mb_s: f64,
    /// The same sweep with the cache disabled (every get hits disk).
    pub hot_get_uncached_mb_s: f64,
    /// `cached / uncached` (≥ 1.0 when the cache helps).
    pub hot_get_speedup: f64,
    /// Block-cache hit rate over the cached sweep.
    pub cache_hit_rate: f64,
    /// Puts per second with group commit (sync, 2 ms window).
    pub put_grouped_per_sec: f64,
    /// Puts per second with one inline fsync per append (sync).
    pub put_inline_per_sec: f64,
    /// Manifest appends in the grouped run.
    pub wal_appends: u64,
    /// Fsync batches covering them — the gap to `wal_appends` is the
    /// group-commit batching win.
    pub wal_batches: u64,
}

impl StoreBenchReport {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serialisation cannot fail")
    }
}

fn payload(i: usize, bytes: usize) -> (PackedSeq, CompressedBlob) {
    // Distinct content per record: content addressing would dedup a
    // repeated sequence into a single object.
    let ascii: Vec<u8> = (0..24)
        .map(|k| b"ACGT"[(i.wrapping_mul(2654435761) >> (k & 13)) & 3])
        .chain((0..8).map(|k| b"ACGT"[(i >> (2 * k)) & 3]))
        .collect();
    let seq = PackedSeq::from_ascii(&ascii).expect("generated ACGT text");
    let body = vec![(i % 251) as u8; bytes];
    (seq.clone(), CompressedBlob::new(Algorithm::Dnax, &seq, body))
}

fn fill_store(
    dir: &Path,
    config: StoreConfig,
    objects: usize,
    payload_bytes: usize,
) -> Result<Arc<SequenceStore>, StoreError> {
    let store = SequenceStore::open(dir, config)?;
    for i in 0..objects {
        let (seq, blob) = payload(i, payload_bytes);
        store.put(&seq, &blob)?;
    }
    Ok(Arc::new(store))
}

fn bench_dir(base: &Path, tag: &str) -> PathBuf {
    let dir = base.join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run every phase and assemble the report.
pub fn run_store_bench(cfg: &StoreBenchConfig) -> Result<StoreBenchReport, String> {
    fn fail(what: &'static str) -> impl Fn(StoreError) -> String {
        move |e| format!("{what}: {e}")
    }
    // No fsync in the open/hot phases: they measure replay and read
    // paths, and CI machines make fsync timings meaningless anyway.
    let fast = StoreConfig {
        segment_target_bytes: cfg.segment_bytes,
        sync: false,
        ..StoreConfig::default()
    };

    // Phase 1: open cost vs object count.
    let mut open_sweep = Vec::new();
    for &objects in &cfg.open_sweep {
        let dir = bench_dir(&cfg.dir, &format!("open-{objects}"));
        let store =
            fill_store(&dir, fast, objects, cfg.payload_bytes).map_err(fail("open sweep fill"))?;
        store.compact().map_err(fail("open sweep compact"))?;
        let runs = store.snapshot().runs;
        drop(store);
        let manifest_bytes = std::fs::metadata(dir.join("manifest.log"))
            .map_err(|e| format!("manifest size: {e}"))?
            .len();
        let started = Instant::now();
        let reopened = SequenceStore::open(&dir, fast).map_err(fail("open sweep reopen"))?;
        let open_ms = started.elapsed().as_secs_f64() * 1e3;
        assert_eq!(reopened.len(), objects, "reopen must recover everything");
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
        open_sweep.push(OpenPoint {
            objects: objects as u64,
            manifest_bytes,
            open_ms,
            runs,
        });
    }
    let open_cost_ratio = match (open_sweep.first(), open_sweep.last()) {
        (Some(a), Some(b)) if a.objects > 0 && b.objects > 0 && a.manifest_bytes > 0 => {
            let per_a = a.manifest_bytes as f64 / a.objects as f64;
            let per_b = b.manifest_bytes as f64 / b.objects as f64;
            per_b / per_a
        }
        _ => 1.0,
    };

    // Phase 2: hot gets, cache on vs off, over run-resident records.
    let mut hot = [0.0f64; 2];
    let mut cache_hit_rate = 0.0;
    for (slot, cache_bytes) in [(0usize, 32u64 << 20), (1usize, 0u64)] {
        let dir = bench_dir(&cfg.dir, &format!("hot-{slot}"));
        let config = StoreConfig {
            cache_bytes,
            ..fast
        };
        let store = fill_store(&dir, config, cfg.hot_records, cfg.payload_bytes)
            .map_err(fail("hot fill"))?;
        store.compact().map_err(fail("hot compact"))?;
        let keys: Vec<_> = store.keys();
        let mut bytes = 0u64;
        // Warm pass fills the cache (or proves there is none).
        for key in &keys {
            bytes += store.get(key).map_err(fail("hot warm get"))?.payload.len() as u64;
        }
        let started = Instant::now();
        for _ in 0..cfg.hot_passes {
            for key in &keys {
                store.get(key).map_err(fail("hot get"))?;
            }
        }
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        let swept = bytes * cfg.hot_passes as u64;
        hot[slot] = swept as f64 / 1e6 / secs;
        if slot == 0 {
            let snap = store.snapshot();
            let lookups = snap.cache_hits + snap.cache_misses;
            cache_hit_rate = if lookups == 0 {
                0.0
            } else {
                snap.cache_hits as f64 / lookups as f64
            };
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let [hot_get_cached_mb_s, hot_get_uncached_mb_s] = hot;

    // Phase 3: put throughput, group commit vs inline fsync. Both runs
    // fsync for real — that is the thing being batched.
    let mut put_rates = [0.0f64; 2];
    let mut wal = (0u64, 0u64);
    for (slot, window) in [
        (0usize, Some(Duration::from_millis(2))),
        (1usize, None),
    ] {
        let dir = bench_dir(&cfg.dir, &format!("commit-{slot}"));
        let config = StoreConfig {
            sync: true,
            group_commit_window: window,
            ..StoreConfig::default()
        };
        let store = Arc::new(SequenceStore::open(&dir, config).map_err(fail("commit open"))?);
        let started = Instant::now();
        let threads: Vec<_> = (0..cfg.commit_threads)
            .map(|t| {
                let store = Arc::clone(&store);
                let puts = cfg.commit_puts;
                let payload_bytes = cfg.payload_bytes;
                std::thread::spawn(move || -> Result<(), StoreError> {
                    for i in 0..puts {
                        let (seq, blob) = payload(1_000_000 + t * puts + i, payload_bytes);
                        store.put(&seq, &blob)?;
                    }
                    Ok(())
                })
            })
            .collect();
        for t in threads {
            t.join()
                .map_err(|_| "commit writer panicked".to_owned())?
                .map_err(fail("commit put"))?;
        }
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        let total = (cfg.commit_threads * cfg.commit_puts) as f64;
        put_rates[slot] = total / secs;
        if slot == 0 {
            let snap = store.snapshot();
            wal = (snap.wal_appends, snap.wal_batches);
        }
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
    let [put_grouped_per_sec, put_inline_per_sec] = put_rates;

    Ok(StoreBenchReport {
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        open_sweep,
        open_cost_ratio,
        hot_get_cached_mb_s,
        hot_get_uncached_mb_s,
        hot_get_speedup: if hot_get_uncached_mb_s > 0.0 {
            hot_get_cached_mb_s / hot_get_uncached_mb_s
        } else {
            0.0
        },
        cache_hit_rate,
        put_grouped_per_sec,
        put_inline_per_sec,
        wal_appends: wal.0,
        wal_batches: wal.1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_consistent_report() {
        let cfg = StoreBenchConfig {
            open_sweep: vec![40, 160],
            payload_bytes: 128,
            segment_bytes: 2 << 10,
            hot_records: 48,
            hot_passes: 4,
            commit_puts: 4,
            commit_threads: 2,
            dir: std::env::temp_dir().join("dnacomp-bench-store-test"),
        };
        let report = run_store_bench(&cfg).unwrap();
        assert_eq!(report.open_sweep.len(), 2);
        // Compaction keeps the manifest per-object cost from scaling
        // with the object count.
        assert!(
            report.open_cost_ratio < 0.9,
            "manifest cost per object must shrink: {report:?}"
        );
        assert!(report.hot_get_cached_mb_s > 0.0);
        assert!(report.hot_get_uncached_mb_s > 0.0);
        assert!(report.cache_hit_rate > 0.5, "{report:?}");
        assert!(report.wal_appends > 0);
        assert!(report.wal_batches > 0);
        assert!(report.wal_batches <= report.wal_appends);
        let json = report.to_json();
        let parsed: StoreBenchReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.wal_appends, report.wal_appends);
    }
}
