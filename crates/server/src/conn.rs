//! Bounded frame I/O over a byte stream, plus the fault-injected
//! stream wrapper the chaos tests drive.
//!
//! Everything here observes one rule: **no read or write outlives its
//! deadline**. Timeouts are built from two layers — the stream's own
//! read/write timeout is set to a short tick ([`IO_TICK`]), and the
//! loops here treat a `WouldBlock`/`TimedOut` tick as a chance to
//! check a [`Deadline`], not as an error. That turns the OS timeout
//! primitive (coarse, per-call) into a precise per-frame budget, and
//! makes slow-loris peers (one byte per tick) cost at most one frame
//! budget before the supervisor kills them.
//!
//! The incremental reader enforces the same affordability discipline
//! as [`crate::proto::decode_frame`]: the declared payload length is
//! validated against the cap *before* the payload buffer exists.

use crate::proto::{frame_checksum_of, ProtoError, FRAME_OVERHEAD, WIRE_MAGIC, WIRE_VERSION};
use dnacomp_cloud::FaultPlan;
use dnacomp_core::Deadline;
use std::io::{ErrorKind, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Stream-level read/write timeout: the polling tick the deadline
/// loops are built from. Short enough that idle/frame budgets are
/// honoured within one tick of slack.
pub const IO_TICK: Duration = Duration::from_millis(20);

/// Longest legal payload-length varint (LEB128 of a u64).
const MAX_LEN_VARINT: usize = 10;

fn tickable(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Fill `buf` completely before `deadline`, treating stream-timeout
/// ticks as deadline probes.
///
/// Unlike `Read::read_exact`, partial progress survives a tick: bytes
/// already read stay in `buf` and the loop resumes where it stopped.
/// EOF mid-buffer is [`ProtoError::Truncated`]; deadline expiry is
/// [`ProtoError::Timeout`].
fn read_full<S: Read>(
    stream: &mut S,
    buf: &mut [u8],
    deadline: Deadline,
) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(ProtoError::Truncated),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if tickable(e.kind()) => {
                if deadline.expired() {
                    return Err(ProtoError::Timeout);
                }
            }
            Err(e) => return Err(ProtoError::Io(e.kind())),
        }
    }
    Ok(())
}

/// Read one byte, distinguishing the three ways a frame can fail to
/// start: clean EOF ([`ProtoError::Closed`]), idle-budget expiry
/// ([`ProtoError::Idle`]), transport error.
fn read_first_byte<S: Read>(stream: &mut S, idle: Deadline) -> Result<u8, ProtoError> {
    let mut b = [0u8; 1];
    loop {
        match stream.read(&mut b) {
            Ok(0) => return Err(ProtoError::Closed),
            Ok(_) => return Ok(b[0]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if tickable(e.kind()) => {
                if idle.expired() {
                    return Err(ProtoError::Idle);
                }
            }
            Err(e) => return Err(ProtoError::Io(e.kind())),
        }
    }
}

/// Read one complete frame: `(frame type, payload, wire bytes)`.
///
/// The wait for the frame's **first byte** is governed by `idle` —
/// expiry there is a clean [`ProtoError::Idle`], EOF a clean
/// [`ProtoError::Closed`]. Once the first byte arrives the rest of
/// the frame must land within `frame_budget` (expiry is
/// [`ProtoError::Timeout`] — a kill offence, because the peer left us
/// desynchronised mid-frame). The declared payload length is checked
/// against `cap` before allocation.
pub fn read_frame<S: Read>(
    stream: &mut S,
    cap: usize,
    idle: Deadline,
    frame_budget: Duration,
) -> Result<(u8, Vec<u8>, u64), ProtoError> {
    let first = read_first_byte(stream, idle)?;
    let deadline = Deadline::after(frame_budget);
    let mut head = [0u8; 3]; // magic[1], version, type
    read_full(stream, &mut head, deadline)?;
    if [first, head[0]] != WIRE_MAGIC {
        return Err(ProtoError::BadMagic);
    }
    if head[1] != WIRE_VERSION {
        return Err(ProtoError::BadVersion(head[1]));
    }
    let ftype = head[2];

    // Length varint, byte by byte: the declared size is known (and
    // checked) before any payload-sized buffer exists.
    let mut declared: u64 = 0;
    let mut shift = 0u32;
    let mut len_bytes = 0usize;
    loop {
        let mut b = [0u8; 1];
        read_full(stream, &mut b, deadline)?;
        len_bytes += 1;
        declared |= u64::from(b[0] & 0x7F) << shift;
        if b[0] & 0x80 == 0 {
            break;
        }
        shift += 7;
        if len_bytes >= MAX_LEN_VARINT {
            return Err(ProtoError::Malformed("length varint too long"));
        }
    }
    if declared > cap as u64 {
        return Err(ProtoError::Oversize {
            declared,
            cap: cap as u64,
        });
    }

    let mut payload = vec![0u8; declared as usize];
    read_full(stream, &mut payload, deadline)?;
    let mut tail = [0u8; 8];
    read_full(stream, &mut tail, deadline)?;
    let expected = u64::from_le_bytes(tail);
    let actual = frame_checksum_of(ftype, &payload);
    if expected != actual {
        return Err(ProtoError::ChecksumMismatch { expected, actual });
    }
    Ok((
        ftype,
        payload,
        (FRAME_OVERHEAD - 8 + len_bytes + declared as usize + 8) as u64,
    ))
}

/// Write a complete frame before `deadline`, treating stream-timeout
/// ticks as deadline probes. Partial progress survives a tick.
pub fn write_frame<S: Write>(
    stream: &mut S,
    frame: &[u8],
    deadline: Deadline,
) -> Result<(), ProtoError> {
    let mut written = 0;
    while written < frame.len() {
        match stream.write(&frame[written..]) {
            Ok(0) => return Err(ProtoError::Io(ErrorKind::WriteZero)),
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if tickable(e.kind()) => {
                if deadline.expired() {
                    return Err(ProtoError::Timeout);
                }
            }
            Err(e) => return Err(ProtoError::Io(e.kind())),
        }
    }
    match stream.flush() {
        Ok(()) => Ok(()),
        Err(e) if tickable(e.kind()) => Ok(()),
        Err(e) => Err(ProtoError::Io(e.kind())),
    }
}

/// A byte stream that injects deterministic network faults from a
/// [`FaultPlan`]'s network rates: connection drops, torn (strict-
/// prefix) writes, per-op delays, and single-bit corruption of
/// outbound bytes.
///
/// Draws are keyed on `(plan seed, stream name, monotone op counter)`
/// — the same re-derivable scheme the exchange faults use — so a
/// chaos run is reproducible from its seed alone. The wrapper lives
/// in the server crate (not behind `cfg(test)`) so integration tests
/// and the CLI's chaos mode can both reach it, but it injects nothing
/// when the plan carries no network rates.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    name: String,
    op: u64,
    dead: bool,
}

impl<S> FaultyStream<S> {
    /// Wrap `inner`, drawing faults for `name` from `plan`.
    pub fn new(inner: S, plan: FaultPlan, name: impl Into<String>) -> Self {
        FaultyStream {
            inner,
            plan,
            name: name.into(),
            op: 0,
            dead: false,
        }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Whether an injected drop or torn write has killed this stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn next_op(&mut self) -> u64 {
        let op = self.op;
        self.op += 1;
        op
    }

    fn maybe_delay(&mut self, op: u64) {
        let ms = self.plan.net_delay(&self.name, op);
        if ms > 0.0 {
            std::thread::sleep(Duration::from_micros((ms * 1_000.0) as u64));
        }
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::from(ErrorKind::ConnectionReset));
        }
        let op = self.next_op();
        if self.plan.net_drops(&self.name, op) {
            self.dead = true;
            return Err(std::io::Error::from(ErrorKind::ConnectionReset));
        }
        self.maybe_delay(op);
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead {
            return Err(std::io::Error::from(ErrorKind::BrokenPipe));
        }
        let op = self.next_op();
        if self.plan.net_drops(&self.name, op) {
            self.dead = true;
            return Err(std::io::Error::from(ErrorKind::BrokenPipe));
        }
        self.maybe_delay(op);
        if let Some(torn) = self.plan.net_partial_write(&self.name, op, buf.len()) {
            // Deliver a strict prefix, then die: the peer sees a torn
            // frame followed by EOF — the classic mid-frame disconnect.
            let n = self.inner.write(&buf[..torn])?;
            let _ = self.inner.flush();
            self.dead = true;
            return Ok(n.max(1));
        }
        if let Some((pos, mask)) = self.plan.net_corrupt(&self.name, op, buf.len()) {
            let mut copy = buf.to_vec();
            copy[pos] ^= mask;
            return self.inner.write(&copy);
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.dead {
            return Err(std::io::Error::from(ErrorKind::BrokenPipe));
        }
        self.inner.flush()
    }
}

/// What a [`StreamPool::checkout`] hands back.
#[derive(Debug)]
pub enum Checkout<T> {
    /// An idle pooled connection, ready to use.
    Reused(T),
    /// A permit to dial a new connection: the pool reserved a slot.
    /// The caller must follow up with [`StreamPool::checkin`] (dial
    /// succeeded) or [`StreamPool::discard`] (dial failed), or the
    /// slot leaks.
    Dial,
}

/// A bounded blocking pool of connections to one back-end.
///
/// The cap is the real resource limit the router grants each shard:
/// at most `cap` connections exist at once (in use + idle), and a
/// checkout beyond the cap **blocks** until a connection is returned
/// or the caller's deadline expires — so per-shard concurrency is a
/// hard budget, not a suggestion. Generic over the pooled type so the
/// chaos tests can pool fault-wrapped clients.
#[derive(Debug)]
pub struct StreamPool<T> {
    state: Mutex<PoolState<T>>,
    available: Condvar,
    cap: usize,
}

#[derive(Debug)]
struct PoolState<T> {
    idle: Vec<T>,
    /// Connections that currently exist: checked out + idle.
    outstanding: usize,
}

impl<T> StreamPool<T> {
    /// A pool allowing at most `cap` live connections (min 1).
    pub fn new(cap: usize) -> Self {
        StreamPool {
            state: Mutex::new(PoolState {
                idle: Vec::new(),
                outstanding: 0,
            }),
            available: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Take an idle connection, or reserve a slot to dial a new one.
    /// Blocks while the pool is at capacity with nothing idle;
    /// returns `None` if `deadline` expires first.
    pub fn checkout(&self, deadline: Deadline) -> Option<Checkout<T>> {
        let mut state = self.state.lock().expect("pool lock poisoned");
        loop {
            if let Some(t) = state.idle.pop() {
                return Some(Checkout::Reused(t));
            }
            if state.outstanding < self.cap {
                state.outstanding += 1;
                return Some(Checkout::Dial);
            }
            let remaining = deadline.remaining();
            if remaining.is_zero() {
                return None;
            }
            let (next, timed_out) = self
                .available
                .wait_timeout(state, remaining)
                .expect("pool lock poisoned");
            state = next;
            if timed_out.timed_out() && state.idle.is_empty() && state.outstanding >= self.cap {
                return None;
            }
        }
    }

    /// Return a live connection to the pool.
    pub fn checkin(&self, t: T) {
        let mut state = self.state.lock().expect("pool lock poisoned");
        state.idle.push(t);
        drop(state);
        self.available.notify_one();
    }

    /// Report a connection gone (dial failed, or it died in use):
    /// frees its slot for a future dial.
    pub fn discard(&self) {
        let mut state = self.state.lock().expect("pool lock poisoned");
        state.outstanding = state.outstanding.saturating_sub(1);
        drop(state);
        self.available.notify_one();
    }

    /// Drain every idle connection (shard ejection closes them); the
    /// drained connections no longer count against the cap.
    pub fn drain_idle(&self) -> Vec<T> {
        let mut state = self.state.lock().expect("pool lock poisoned");
        let drained = std::mem::take(&mut state.idle);
        state.outstanding = state.outstanding.saturating_sub(drained.len());
        drop(state);
        self.available.notify_all();
        drained
    }

    /// Connections currently existing (checked out + idle).
    pub fn outstanding(&self) -> usize {
        self.state.lock().expect("pool lock poisoned").outstanding
    }
}

/// A byte stream that counts wire bytes into shared atomics — the
/// router wraps each back-end connection in one so the per-shard
/// byte counters in the metrics rollup are exact, whatever protocol
/// traffic flows over it.
#[derive(Debug)]
pub struct CountingStream<S> {
    inner: S,
    tx: Arc<AtomicU64>,
    rx: Arc<AtomicU64>,
}

impl<S> CountingStream<S> {
    /// Wrap `inner`; `tx`/`rx` accumulate bytes written/read.
    pub fn new(inner: S, tx: Arc<AtomicU64>, rx: Arc<AtomicU64>) -> Self {
        CountingStream { inner, tx, rx }
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for CountingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.rx.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl<S: Write> Write for CountingStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.tx.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{request_frame, Request, MAX_WIRE_PAYLOAD};
    use std::io::Cursor;

    fn long_idle() -> Deadline {
        Deadline::after(Duration::from_secs(5))
    }

    #[test]
    fn frames_roundtrip_through_the_bounded_reader() {
        let frame = request_frame(&Request::Ping);
        let mut cur = Cursor::new(frame.clone());
        let (t, payload, wire) =
            read_frame(&mut cur, MAX_WIRE_PAYLOAD, long_idle(), Duration::from_secs(1)).unwrap();
        assert_eq!(wire as usize, frame.len());
        assert_eq!(Request::decode(t, &payload).unwrap(), Request::Ping);
    }

    #[test]
    fn eof_at_boundary_is_closed_but_mid_frame_is_truncated() {
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert_eq!(
            read_frame(
                &mut empty,
                MAX_WIRE_PAYLOAD,
                long_idle(),
                Duration::from_secs(1)
            )
            .unwrap_err(),
            ProtoError::Closed
        );
        let frame = request_frame(&Request::Metrics);
        for cut in 1..frame.len() {
            let mut cur = Cursor::new(frame[..cut].to_vec());
            assert_eq!(
                read_frame(
                    &mut cur,
                    MAX_WIRE_PAYLOAD,
                    long_idle(),
                    Duration::from_secs(1)
                )
                .unwrap_err(),
                ProtoError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversize_declaration_is_refused_before_payload_read() {
        // Header declares ~4 TiB; only the header bytes exist. The
        // reader must refuse on the declaration, not try to allocate.
        let mut frame = WIRE_MAGIC.to_vec();
        frame.push(WIRE_VERSION);
        frame.push(0x02);
        dnacomp_codec::varint::write_uvarint(&mut frame, 1u64 << 42);
        let mut cur = Cursor::new(frame);
        assert_eq!(
            read_frame(&mut cur, 1024, long_idle(), Duration::from_secs(1)).unwrap_err(),
            ProtoError::Oversize {
                declared: 1 << 42,
                cap: 1024
            }
        );
    }

    #[test]
    fn forged_overlong_varint_is_malformed() {
        let mut frame = WIRE_MAGIC.to_vec();
        frame.push(WIRE_VERSION);
        frame.push(0x02);
        frame.extend_from_slice(&[0x80; 12]); // continuation forever
        let mut cur = Cursor::new(frame);
        assert_eq!(
            read_frame(&mut cur, 1024, long_idle(), Duration::from_secs(1)).unwrap_err(),
            ProtoError::Malformed("length varint too long")
        );
    }

    #[test]
    fn faulty_stream_is_transparent_at_zero_rates() {
        let frame = request_frame(&Request::Hello { version: 1 });
        let mut s = FaultyStream::new(Cursor::new(Vec::new()), FaultPlan::none(), "c0");
        write_frame(&mut s, &frame, long_idle()).unwrap();
        assert!(!s.is_dead());
        assert_eq!(s.get_ref().get_ref(), &frame);
    }

    #[test]
    fn faulty_stream_faults_are_deterministic() {
        let plan = FaultPlan::network(99, 0.5);
        let run = |()| {
            let mut s = FaultyStream::new(Cursor::new(Vec::new()), plan, "conn-3");
            let mut outcomes = Vec::new();
            for _ in 0..40 {
                outcomes.push(match s.write(&[0xAA; 64]) {
                    Ok(n) => n as i64,
                    Err(e) => -(e.kind() as i64),
                });
            }
            (outcomes, s.get_ref().get_ref().clone())
        };
        let (a, abytes) = run(());
        let (b, bbytes) = run(());
        assert_eq!(a, b);
        assert_eq!(abytes, bbytes);
        // At 50% aggregate fault pressure something must have fired.
        assert!(
            a.iter().any(|&o| o != 64),
            "no fault fired in 40 ops at 50%: {a:?}"
        );
    }

    #[test]
    fn pool_reuses_idle_connections_before_dialling() {
        let pool: StreamPool<u32> = StreamPool::new(2);
        assert!(matches!(
            pool.checkout(Deadline::after(Duration::from_millis(50))),
            Some(Checkout::Dial)
        ));
        pool.checkin(7);
        match pool.checkout(Deadline::after(Duration::from_millis(50))) {
            Some(Checkout::Reused(v)) => assert_eq!(v, 7),
            other => panic!("expected reuse, got {other:?}"),
        }
        assert_eq!(pool.outstanding(), 1);
    }

    #[test]
    fn pool_cap_blocks_until_checkin_and_respects_deadlines() {
        let pool: Arc<StreamPool<u32>> = Arc::new(StreamPool::new(1));
        assert!(matches!(
            pool.checkout(Deadline::after(Duration::from_millis(50))),
            Some(Checkout::Dial)
        ));
        // At cap with nothing idle: a short deadline expires empty.
        assert!(pool
            .checkout(Deadline::after(Duration::from_millis(30)))
            .is_none());
        // A checkin from another thread unblocks a waiting checkout.
        let waiter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.checkout(Deadline::after(Duration::from_secs(5))))
        };
        std::thread::sleep(Duration::from_millis(20));
        pool.checkin(42);
        match waiter.join().unwrap() {
            Some(Checkout::Reused(v)) => assert_eq!(v, 42),
            other => panic!("expected reuse after checkin, got {other:?}"),
        }
        // A discard frees the slot for a fresh dial.
        pool.discard();
        assert!(matches!(
            pool.checkout(Deadline::after(Duration::from_millis(50))),
            Some(Checkout::Dial)
        ));
    }

    #[test]
    fn pool_drain_closes_idle_and_frees_slots() {
        let pool: StreamPool<u32> = StreamPool::new(3);
        // Reserve all three slots first — a checkin would otherwise be
        // reused by the next checkout instead of granting a dial.
        for _ in 0..3 {
            assert!(matches!(
                pool.checkout(Deadline::after(Duration::from_millis(50))),
                Some(Checkout::Dial)
            ));
        }
        for v in 0..3 {
            pool.checkin(v);
        }
        assert_eq!(pool.outstanding(), 3);
        let drained = pool.drain_idle();
        assert_eq!(drained.len(), 3);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn counting_stream_counts_exact_wire_bytes() {
        let tx = Arc::new(AtomicU64::new(0));
        let rx = Arc::new(AtomicU64::new(0));
        let frame = request_frame(&Request::Ping);
        let mut s = CountingStream::new(
            Cursor::new(frame.clone()),
            Arc::clone(&tx),
            Arc::clone(&rx),
        );
        let (t, payload, wire) =
            read_frame(&mut s, MAX_WIRE_PAYLOAD, long_idle(), Duration::from_secs(1)).unwrap();
        assert_eq!(Request::decode(t, &payload).unwrap(), Request::Ping);
        assert_eq!(rx.load(Ordering::Relaxed), wire);
        let mut s = CountingStream::new(Cursor::new(Vec::new()), Arc::clone(&tx), rx);
        write_frame(&mut s, &frame, long_idle()).unwrap();
        assert_eq!(tx.load(Ordering::Relaxed), frame.len() as u64);
    }
}
