//! Seeded synthetic genome generator.
//!
//! The paper (§II-B) identifies three repeat classes that DNA-specific
//! compressors exploit:
//!
//! 1. **exact repeats** within the long sequence itself;
//! 2. **reverse-complement repeats** (A↔T, C↔G pairing);
//! 3. **mutation repeats** — sequences of the same species are 99.9 %
//!    identical, so near-copies with sparse point edits are common.
//!
//! [`GenomeModel`] produces sequences containing all three classes at
//! configurable rates, plus i.i.d. background with configurable GC
//! content. Because DNAX keys on classes 1–2 and GenCompress on class 3,
//! tuning these rates reproduces the compression-ratio ordering the
//! paper's selection framework depends on.

use crate::base::Base;
use crate::packed::PackedSeq;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one repeat class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepeatClass {
    /// Probability, at each emission step, of starting a repeat of this
    /// class instead of emitting a background base.
    pub rate: f64,
    /// Minimum copied length (bases).
    pub min_len: usize,
    /// Maximum copied length (bases).
    pub max_len: usize,
    /// Per-base point-mutation probability applied to the copy
    /// (0.0 for exact and reverse-complement classes; ≈0.001–0.05 for the
    /// mutation class).
    pub mutation_rate: f64,
}

impl RepeatClass {
    /// A class that never fires.
    pub const OFF: RepeatClass = RepeatClass {
        rate: 0.0,
        min_len: 0,
        max_len: 0,
        mutation_rate: 0.0,
    };
}

/// Generative model for synthetic DNA.
///
/// ```
/// use dnacomp_seq::gen::GenomeModel;
/// let model = GenomeModel::default();
/// // Seeded: the same (model, seed, length) always yields the same genome.
/// assert_eq!(model.generate(1_000, 42), model.generate(1_000, 42));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenomeModel {
    /// Probability that a background base is G or C. Real genomes range
    /// roughly 0.3–0.6; the standard corpus averages ≈0.44.
    pub gc_content: f64,
    /// Exact-repeat class (repeat kind 1).
    pub exact: RepeatClass,
    /// Reverse-complement-repeat class (repeat kind 2).
    pub revcomp: RepeatClass,
    /// Mutated-repeat class (repeat kind 3).
    pub mutated: RepeatClass,
    /// Repeats copy from a window of at most this many trailing bases,
    /// mirroring the bounded search windows of real compressors.
    pub back_window: usize,
}

impl Default for GenomeModel {
    /// A "bacterial-like" default: moderately repetitive, GC ≈ 0.44.
    fn default() -> Self {
        GenomeModel {
            gc_content: 0.44,
            exact: RepeatClass {
                rate: 0.004,
                min_len: 20,
                max_len: 400,
                mutation_rate: 0.0,
            },
            revcomp: RepeatClass {
                rate: 0.002,
                min_len: 20,
                max_len: 300,
                mutation_rate: 0.0,
            },
            mutated: RepeatClass {
                rate: 0.003,
                min_len: 30,
                max_len: 500,
                mutation_rate: 0.01,
            },
            back_window: 1 << 16,
        }
    }
}

impl GenomeModel {
    /// A model with no repeat structure at all — i.i.d. bases. The worst
    /// case for every repeat-based compressor (≈2 bits/base entropy when
    /// `gc_content == 0.5`).
    pub fn random_only(gc_content: f64) -> Self {
        GenomeModel {
            gc_content,
            exact: RepeatClass::OFF,
            revcomp: RepeatClass::OFF,
            mutated: RepeatClass::OFF,
            back_window: 1,
        }
    }

    /// A highly repetitive model — the best case for DNAX/GenCompress,
    /// similar to tandem-repeat-rich regions.
    pub fn highly_repetitive() -> Self {
        GenomeModel {
            gc_content: 0.42,
            exact: RepeatClass {
                rate: 0.02,
                min_len: 50,
                max_len: 1_000,
                mutation_rate: 0.0,
            },
            revcomp: RepeatClass {
                rate: 0.008,
                min_len: 40,
                max_len: 600,
                mutation_rate: 0.0,
            },
            mutated: RepeatClass {
                rate: 0.012,
                min_len: 50,
                max_len: 1_200,
                mutation_rate: 0.008,
            },
            back_window: 1 << 18,
        }
    }

    /// Generate `len` bases with the given seed. Deterministic:
    /// `(model, seed, len)` fully determines the output.
    pub fn generate(&self, len: usize, seed: u64) -> PackedSeq {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out: Vec<Base> = Vec::with_capacity(len);
        while out.len() < len {
            let roll: f64 = rng.gen();
            if !out.is_empty() && roll < self.exact.rate {
                self.copy_repeat(&mut out, len, &mut rng, self.exact, CopyKind::Exact);
            } else if !out.is_empty() && roll < self.exact.rate + self.revcomp.rate {
                self.copy_repeat(&mut out, len, &mut rng, self.revcomp, CopyKind::RevComp);
            } else if !out.is_empty()
                && roll < self.exact.rate + self.revcomp.rate + self.mutated.rate
            {
                self.copy_repeat(&mut out, len, &mut rng, self.mutated, CopyKind::Exact);
            } else {
                out.push(self.background(&mut rng));
            }
        }
        out.truncate(len);
        PackedSeq::from(out.as_slice())
    }

    fn background(&self, rng: &mut StdRng) -> Base {
        if rng.gen::<f64>() < self.gc_content {
            if rng.gen::<bool>() {
                Base::G
            } else {
                Base::C
            }
        } else if rng.gen::<bool>() {
            Base::A
        } else {
            Base::T
        }
    }

    fn copy_repeat(
        &self,
        out: &mut Vec<Base>,
        target_len: usize,
        rng: &mut StdRng,
        class: RepeatClass,
        kind: CopyKind,
    ) {
        if class.min_len == 0 || class.max_len < class.min_len {
            return;
        }
        let want = rng.gen_range(class.min_len..=class.max_len);
        let want = want.min(target_len.saturating_sub(out.len()));
        if want == 0 {
            return;
        }
        let window_start = out.len().saturating_sub(self.back_window);
        let copy_len = want.min(out.len() - window_start);
        if copy_len == 0 {
            return;
        }
        let hi = out.len() - copy_len;
        let src = if hi <= window_start {
            window_start
        } else {
            rng.gen_range(window_start..=hi)
        };
        for k in 0..copy_len {
            let mut b = match kind {
                CopyKind::Exact => out[src + k],
                // Copy the source segment reversed and complemented.
                CopyKind::RevComp => out[src + copy_len - 1 - k].complement(),
            };
            if class.mutation_rate > 0.0 && rng.gen::<f64>() < class.mutation_rate {
                // Point mutation: substitute with a different base.
                let shift = rng.gen_range(1u8..=3);
                b = Base::from_code(b.code().wrapping_add(shift));
            }
            out.push(b);
        }
    }
}

#[derive(Clone, Copy)]
enum CopyKind {
    Exact,
    RevComp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn deterministic_for_same_seed() {
        let m = GenomeModel::default();
        assert_eq!(m.generate(5_000, 7), m.generate(5_000, 7));
    }

    #[test]
    fn different_seeds_differ() {
        let m = GenomeModel::default();
        assert_ne!(m.generate(5_000, 1), m.generate(5_000, 2));
    }

    #[test]
    fn exact_length() {
        let m = GenomeModel::default();
        for len in [0, 1, 3, 100, 4_097] {
            assert_eq!(m.generate(len, 3).len(), len);
        }
    }

    #[test]
    fn gc_content_tracks_model() {
        for target in [0.3, 0.5, 0.6] {
            let m = GenomeModel::random_only(target);
            let s = m.generate(60_000, 11);
            let gc = stats::gc_content(&s);
            assert!(
                (gc - target).abs() < 0.02,
                "target {target}, measured {gc}"
            );
        }
    }

    #[test]
    fn repetitive_model_is_more_compressible_by_entropy_proxy() {
        // Order-8 empirical entropy should be clearly lower for the
        // repetitive model than for i.i.d. sequence.
        let rep = GenomeModel::highly_repetitive().generate(80_000, 5);
        let iid = GenomeModel::random_only(0.5).generate(80_000, 5);
        let h_rep = stats::order_k_entropy(&rep, 8);
        let h_iid = stats::order_k_entropy(&iid, 8);
        assert!(
            h_rep < h_iid - 0.05,
            "repetitive {h_rep:.3} vs iid {h_iid:.3} bits/base"
        );
    }

    #[test]
    fn random_only_never_repeats_by_construction() {
        // Smoke check: the OFF classes keep rate zero so generate() takes
        // only the background path; statistically order-0 entropy ≈ 2 bits.
        let s = GenomeModel::random_only(0.5).generate(40_000, 9);
        let h0 = stats::order_k_entropy(&s, 0);
        assert!(h0 > 1.98, "h0 = {h0}");
    }

    #[test]
    fn degenerate_repeat_class_is_harmless() {
        let m = GenomeModel {
            exact: RepeatClass {
                rate: 0.5,
                min_len: 0,
                max_len: 0,
                mutation_rate: 0.0,
            },
            ..GenomeModel::default()
        };
        // Must terminate and produce the right length even though the
        // class can never copy anything.
        assert_eq!(m.generate(1_000, 1).len(), 1_000);
    }
}
