//! Sequence statistics used to characterise workloads.
//!
//! The experiment harness reports these alongside every corpus file so
//! that EXPERIMENTS.md can show the generated workloads really carry the
//! repeat structure the paper's compressors exploit.

use crate::packed::PackedSeq;
use std::collections::HashMap;

/// Fraction of bases that are G or C. Returns 0.0 for the empty sequence.
pub fn gc_content(seq: &PackedSeq) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    let gc = seq.iter().filter(|b| b.is_gc()).count();
    gc as f64 / seq.len() as f64
}

/// Per-base counts in `A, C, G, T` order.
pub fn base_counts(seq: &PackedSeq) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for b in seq.iter() {
        counts[b.code() as usize] += 1;
    }
    counts
}

/// Empirical order-`k` conditional entropy in bits per base.
///
/// `k == 0` is the plain symbol entropy; larger `k` conditions each symbol
/// on its `k` predecessors. Repetitive sequences have sharply lower
/// high-order entropy, which is the signal CTW and the repeat-based
/// compressors turn into compression.
pub fn order_k_entropy(seq: &PackedSeq, k: usize) -> f64 {
    if seq.len() <= k {
        return 0.0;
    }
    // context (k bases, 2 bits each) -> per-symbol counts
    let mut table: HashMap<u64, [u32; 4]> = HashMap::new();
    let mask: u64 = if k == 0 { 0 } else { (1u64 << (2 * k.min(31))) - 1 };
    let mut ctx: u64 = 0;
    for (i, b) in seq.iter().enumerate() {
        if i >= k {
            table.entry(ctx).or_insert([0; 4])[b.code() as usize] += 1;
        }
        ctx = ((ctx << 2) | b.code() as u64) & mask;
    }
    let total = (seq.len() - k) as f64;
    let mut bits = 0.0;
    for counts in table.values() {
        let ctx_total: u32 = counts.iter().sum();
        for &c in counts {
            if c > 0 {
                let p = c as f64 / ctx_total as f64;
                bits -= c as f64 * p.log2();
            }
        }
    }
    // Each symbol contributed -log2 p(sym | ctx) weighted by count… the
    // inner loop already accumulates count * log2(p) so normalise by total.
    bits / total
}

/// Fraction of positions covered by an exact repeat of length ≥ `min_len`
/// occurring earlier in the sequence (greedy left-to-right scan with a
/// hash index on `min_len`-grams).
pub fn exact_repeat_coverage(seq: &PackedSeq, min_len: usize) -> f64 {
    if seq.len() < min_len || min_len == 0 || min_len > 31 {
        return 0.0;
    }
    let bases = seq.unpack();
    let mut index: HashMap<u64, u32> = HashMap::new();
    let mask = (1u64 << (2 * min_len)) - 1;
    let mut hash: u64 = 0;
    let mut covered = 0usize;
    let mut i = 0usize;
    // Maintain rolling hash of the min_len-gram ending at position j.
    let mut filled = 0usize;
    let mut j = 0usize;
    while i < bases.len() {
        // Advance the index up to position i (grams fully before i).
        while j < i {
            hash = ((hash << 2) | bases[j].code() as u64) & mask;
            filled += 1;
            if filled >= min_len {
                let start = j + 1 - min_len;
                index.entry(hash).or_insert(start as u32);
            }
            j += 1;
        }
        if i + min_len <= bases.len() {
            let mut probe: u64 = 0;
            for b in &bases[i..i + min_len] {
                probe = (probe << 2) | b.code() as u64;
            }
            if let Some(&src) = index.get(&probe) {
                // Extend the match greedily.
                let mut len = min_len;
                let src = src as usize;
                while i + len < bases.len()
                    && src + len < i
                    && bases[src + len] == bases[i + len]
                {
                    len += 1;
                }
                covered += len;
                i += len;
                continue;
            }
        }
        i += 1;
    }
    covered as f64 / bases.len() as f64
}

/// Summary statistics for one sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqStats {
    /// Sequence length in bases.
    pub len: usize,
    /// GC fraction.
    pub gc: f64,
    /// Order-0 entropy (bits/base).
    pub h0: f64,
    /// Order-8 entropy (bits/base).
    pub h8: f64,
    /// Fraction covered by ≥16-base exact repeats.
    pub repeat16_coverage: f64,
}

/// Compute [`SeqStats`] for `seq`.
pub fn summarize(seq: &PackedSeq) -> SeqStats {
    SeqStats {
        len: seq.len(),
        gc: gc_content(seq),
        h0: order_k_entropy(seq, 0),
        h8: order_k_entropy(seq, 8),
        repeat16_coverage: exact_repeat_coverage(seq, 16),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenomeModel;

    fn seq_of(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn gc_content_exact() {
        assert_eq!(gc_content(&seq_of("GGCC")), 1.0);
        assert_eq!(gc_content(&seq_of("AATT")), 0.0);
        assert_eq!(gc_content(&seq_of("ACGT")), 0.5);
        assert_eq!(gc_content(&PackedSeq::new()), 0.0);
    }

    #[test]
    fn base_counts_exact() {
        assert_eq!(base_counts(&seq_of("AACGTTTG")), [2, 1, 2, 3]);
    }

    #[test]
    fn order0_entropy_uniform_is_two_bits() {
        let h = order_k_entropy(&seq_of(&"ACGT".repeat(100)), 0);
        assert!((h - 2.0).abs() < 1e-9, "h = {h}");
    }

    #[test]
    fn order0_entropy_constant_is_zero() {
        assert_eq!(order_k_entropy(&seq_of(&"A".repeat(64)), 0), 0.0);
    }

    #[test]
    fn order1_entropy_of_period2_string_is_zero() {
        // In ACACAC…, each symbol is fully determined by its predecessor.
        let h = order_k_entropy(&seq_of(&"AC".repeat(200)), 1);
        assert!(h < 1e-9, "h = {h}");
    }

    #[test]
    fn entropy_short_sequences() {
        assert_eq!(order_k_entropy(&PackedSeq::new(), 0), 0.0);
        assert_eq!(order_k_entropy(&seq_of("ACG"), 5), 0.0);
    }

    #[test]
    fn repeat_coverage_detects_planted_repeat() {
        let unique = GenomeModel::random_only(0.5).generate(2_000, 42);
        let mut text = unique.to_ascii();
        let repeat = &text[100..400].to_owned();
        text.push_str(repeat);
        let cov = exact_repeat_coverage(&seq_of(&text), 16);
        assert!(cov > 0.1, "coverage = {cov}");
        // The i.i.d. part alone should have near-zero 16-mer coverage.
        let base_cov = exact_repeat_coverage(&unique, 16);
        assert!(base_cov < 0.02, "base coverage = {base_cov}");
    }

    #[test]
    fn repeat_coverage_degenerate_inputs() {
        assert_eq!(exact_repeat_coverage(&PackedSeq::new(), 16), 0.0);
        assert_eq!(exact_repeat_coverage(&seq_of("ACGT"), 16), 0.0);
        assert_eq!(exact_repeat_coverage(&seq_of("ACGT"), 0), 0.0);
    }

    #[test]
    fn summarize_is_consistent() {
        let s = GenomeModel::default().generate(10_000, 3);
        let st = summarize(&s);
        assert_eq!(st.len, 10_000);
        assert!(st.h0 <= 2.0 + 1e-9);
        assert!(st.h8 <= st.h0 + 1e-9);
        assert!((0.0..=1.0).contains(&st.repeat16_coverage));
    }
}
