//! Runtime-dispatched SIMD kernels for the 2-bit hot paths.
//!
//! This module is the only place in the workspace allowed to contain
//! `unsafe` code, and every unsafe block is one of exactly two shapes:
//! a `std::arch` intrinsic call guarded by runtime feature detection,
//! or a `&[Base] -> &[u8]` reinterpretation (sound because [`Base`] is
//! `#[repr(u8)]` with values `0..=3`).
//!
//! Three kernels are accelerated:
//!
//! * [`pack_2bit`] — byte-per-base codes → 2-bit packed words
//!   (AVX2: 32 bases/iteration via `maddubs`/`madd` reduction;
//!   SSSE3: 16 bases/iteration; fallback: the u64 SWAR kernel).
//! * [`unpack_2bit`] — packed words → byte-per-base codes
//!   (AVX2: 32 bases/iteration via `shuffle_epi8` replication + masked
//!   per-position shifts; SSSE3: 16; fallback: u64 SWAR).
//! * [`common_prefix_len`] — the repeat-finder's match-extension inner
//!   loop (AVX2/SSE2 `cmpeq` + movemask; fallback: u64 XOR scan).
//!
//! Dispatch happens through a process-wide [`CpuFeatures`] probe cached
//! in a `OnceLock`; setting `DNACOMP_FORCE_SCALAR=1` in the environment
//! forces every kernel onto its portable path (CI runs the differential
//! suites both ways so both arms stay green). The bytewise reference
//! implementations stay exported from [`crate::packed`] and
//! [`common_prefix_len_bytewise`] here, as differential-test oracles.

use crate::base::Base;
use crate::packed::{pack_2bit_u64, unpack_2bit_u64};
use std::sync::OnceLock;

/// The CPU SIMD features the kernels may dispatch on, probed once per
/// process. When `DNACOMP_FORCE_SCALAR` is set the feature flags read
/// false regardless of hardware, so every kernel takes its portable
/// path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuFeatures {
    /// AVX2 available (and not forced off).
    pub avx2: bool,
    /// SSSE3 available (and not forced off) — gates `shuffle_epi8`.
    pub ssse3: bool,
    /// SSE2 available (and not forced off).
    pub sse2: bool,
    /// `DNACOMP_FORCE_SCALAR` was set: portable paths forced.
    pub forced_scalar: bool,
}

impl CpuFeatures {
    /// The cached process-wide probe result.
    pub fn get() -> CpuFeatures {
        static CACHE: OnceLock<CpuFeatures> = OnceLock::new();
        *CACHE.get_or_init(CpuFeatures::probe)
    }

    fn probe() -> CpuFeatures {
        let forced = std::env::var("DNACOMP_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        {
            CpuFeatures {
                avx2: !forced && std::arch::is_x86_feature_detected!("avx2"),
                ssse3: !forced && std::arch::is_x86_feature_detected!("ssse3"),
                sse2: !forced && std::arch::is_x86_feature_detected!("sse2"),
                forced_scalar: forced,
            }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        {
            CpuFeatures {
                avx2: false,
                ssse3: false,
                sse2: false,
                forced_scalar: forced,
            }
        }
    }

    /// Hardware-only probe ignoring `DNACOMP_FORCE_SCALAR`, so tests can
    /// exercise every compiled-in arm even under a forced-scalar run.
    #[cfg(test)]
    fn probe_raw() -> CpuFeatures {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        {
            CpuFeatures {
                avx2: std::arch::is_x86_feature_detected!("avx2"),
                ssse3: std::arch::is_x86_feature_detected!("ssse3"),
                sse2: std::arch::is_x86_feature_detected!("sse2"),
                forced_scalar: false,
            }
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        {
            CpuFeatures {
                avx2: false,
                ssse3: false,
                sse2: false,
                forced_scalar: false,
            }
        }
    }

    /// Human/artifact-readable dispatch summary, e.g. `"avx2+ssse3+sse2"`,
    /// `"scalar"`, or `"scalar(forced)"`.
    pub fn summary(self) -> String {
        if self.forced_scalar {
            return "scalar(forced)".to_string();
        }
        let mut parts = Vec::new();
        if self.avx2 {
            parts.push("avx2");
        }
        if self.ssse3 {
            parts.push("ssse3");
        }
        if self.sse2 {
            parts.push("sse2");
        }
        if parts.is_empty() {
            "scalar".to_string()
        } else {
            parts.join("+")
        }
    }
}

/// Reinterpret a `Base` slice as raw 2-bit codes. Sound: `Base` is
/// `#[repr(u8)]`, so layout, size and alignment match `u8` exactly and
/// the view is read-only.
#[inline]
fn base_bytes(bases: &[Base]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(bases.as_ptr().cast::<u8>(), bases.len()) }
}

/// Pack 2-bit codes (one byte per base, high bits ignored) into the
/// packed-word layout of [`crate::PackedSeq`], dispatched to the widest
/// kernel the CPU supports. Output is byte-identical to
/// [`crate::packed::pack_2bit_bytewise`] on every input.
pub fn pack_2bit(codes: &[u8]) -> Vec<u8> {
    let feats = CpuFeatures::get();
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if feats.avx2 {
            return unsafe { pack_avx2(codes) };
        }
        if feats.ssse3 {
            return unsafe { pack_ssse3(codes) };
        }
    }
    let _ = feats;
    pack_2bit_u64(codes)
}

/// Unpack `len` 2-bit codes from packed `words` (one byte per base on
/// output), dispatched like [`pack_2bit`]. Byte-identical to
/// [`crate::packed::unpack_2bit_bytewise`] on every input.
///
/// # Panics
/// If `words` is shorter than `len.div_ceil(4)` bytes.
pub fn unpack_2bit(words: &[u8], len: usize) -> Vec<u8> {
    assert!(words.len() >= len.div_ceil(4), "word buffer too short");
    let feats = CpuFeatures::get();
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if feats.avx2 {
            return unsafe { unpack_avx2(words, len) };
        }
        if feats.ssse3 {
            return unsafe { unpack_ssse3(words, len) };
        }
    }
    let _ = feats;
    unpack_2bit_u64(words, len)
}

/// Length of the longest common prefix of `a` and `b` — the repeat
/// match-extension inner loop. Dispatched to `cmpeq`+movemask on
/// AVX2/SSE2, a u64 XOR scan otherwise. Always equals
/// [`common_prefix_len_bytewise`].
pub fn common_prefix_len(a: &[Base], b: &[Base]) -> usize {
    let n = a.len().min(b.len());
    let (ab, bb) = (&base_bytes(a)[..n], &base_bytes(b)[..n]);
    let feats = CpuFeatures::get();
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        if feats.avx2 {
            return unsafe { prefix_avx2(ab, bb) };
        }
        if feats.sse2 {
            return unsafe { prefix_sse2(ab, bb) };
        }
    }
    let _ = feats;
    prefix_swar(ab, bb)
}

/// Base-at-a-time reference for [`common_prefix_len`]: the differential
/// oracle for the SIMD and SWAR variants.
pub fn common_prefix_len_bytewise(a: &[Base], b: &[Base]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// Ask the CPU to pull the cache line holding `r` toward L1 ahead of a
/// future read. Non-blocking and purely a performance hint — no
/// architectural effect, so callers stay byte-exact with or without it.
/// No-op on non-x86 targets. (The context-model compressors use this to
/// stream their hashed count tables in ahead of the mixture step.)
#[inline(always)]
pub fn prefetch_read<T>(r: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no memory or register side effects; any
    // address is valid to prefetch, and `r` is a live reference anyway.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
            r as *const T as *const i8,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = r;
}

/// Portable u64 fallback: compare 8 bytes per step, locate the first
/// differing byte with a trailing-zeros count.
fn prefix_swar(a: &[u8], b: &[u8]) -> usize {
    let n = a.len();
    debug_assert_eq!(n, b.len());
    let mut i = 0;
    while i + 8 <= n {
        let x = u64::from_le_bytes(a[i..i + 8].try_into().expect("8 bytes"));
        let y = u64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
        let d = x ^ y;
        if d != 0 {
            return i + (d.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n && a[i] == b[i] {
        i += 1;
    }
    i
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    use super::{pack_2bit_u64, prefix_swar, unpack_2bit_u64};

    /// AVX2 pack: 32 codes → 8 packed bytes per iteration.
    ///
    /// `maddubs(v, [1,4])` folds byte pairs into `c0 + 4·c1` u16 lanes,
    /// `madd([1,16])` folds lane pairs into the final packed byte per
    /// u32 lane, then a per-lane byte gather plus a cross-lane dword
    /// permute compacts the 8 result bytes to the front.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn pack_avx2(codes: &[u8]) -> Vec<u8> {
        let n = codes.len();
        let mut out = Vec::with_capacity(n.div_ceil(4));
        let mut i = 0;
        unsafe {
            let mask3 = _mm256_set1_epi8(0x03);
            let mul14 = _mm256_set1_epi16(0x0401);
            let mul116 = _mm256_set1_epi32(0x0010_0001);
            #[rustfmt::skip]
            let gather = _mm256_setr_epi8(
                0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
                0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
            );
            let compact = _mm256_setr_epi32(0, 4, 0, 0, 0, 0, 0, 0);
            while i + 32 <= n {
                let v = _mm256_loadu_si256(codes.as_ptr().add(i) as *const __m256i);
                let v = _mm256_and_si256(v, mask3);
                let w = _mm256_maddubs_epi16(v, mul14);
                let w = _mm256_madd_epi16(w, mul116);
                let g = _mm256_shuffle_epi8(w, gather);
                let g = _mm256_permutevar8x32_epi32(g, compact);
                let packed = _mm_cvtsi128_si64(_mm256_castsi256_si128(g)) as u64;
                out.extend_from_slice(&packed.to_le_bytes());
                i += 32;
            }
        }
        out.extend_from_slice(&pack_2bit_u64(&codes[i..]));
        out
    }

    /// SSSE3 pack: 16 codes → 4 packed bytes per iteration (same
    /// reduction as [`pack_avx2`] at half width).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn pack_ssse3(codes: &[u8]) -> Vec<u8> {
        let n = codes.len();
        let mut out = Vec::with_capacity(n.div_ceil(4));
        let mut i = 0;
        unsafe {
            let mask3 = _mm_set1_epi8(0x03);
            let mul14 = _mm_set1_epi16(0x0401);
            let mul116 = _mm_set1_epi32(0x0010_0001);
            let gather = _mm_setr_epi8(0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
            while i + 16 <= n {
                let v = _mm_loadu_si128(codes.as_ptr().add(i) as *const __m128i);
                let v = _mm_and_si128(v, mask3);
                let w = _mm_maddubs_epi16(v, mul14);
                let w = _mm_madd_epi16(w, mul116);
                let g = _mm_shuffle_epi8(w, gather);
                let packed = _mm_cvtsi128_si32(g) as u32;
                out.extend_from_slice(&packed.to_le_bytes());
                i += 16;
            }
        }
        out.extend_from_slice(&pack_2bit_u64(&codes[i..]));
        out
    }

    /// AVX2 unpack: 8 packed bytes → 32 codes per iteration.
    ///
    /// Each source byte is replicated to 4 output positions with
    /// `shuffle_epi8`; position `p` (`p % 4 == k`) then extracts its
    /// 2-bit field with a 16-bit right shift by `2k` and a `0x03` mask
    /// at bytes `≡ k (mod 4)` (the shift drags neighbour-byte bits in
    /// above bit 5 only, which the mask discards).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn unpack_avx2(words: &[u8], len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len + 32);
        let mut done = 0usize; // codes produced
        unsafe {
            #[rustfmt::skip]
            let rep = _mm256_setr_epi8(
                0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                4, 4, 4, 4, 5, 5, 5, 5, 6, 6, 6, 6, 7, 7, 7, 7,
            );
            let m = |k: i32| -> __m256i {
                let mut bytes = [0i8; 32];
                let mut p = k as usize;
                while p < 32 {
                    bytes[p] = 0x03;
                    p += 4;
                }
                _mm256_loadu_si256(bytes.as_ptr() as *const __m256i)
            };
            let (m0, m1, m2, m3) = (m(0), m(1), m(2), m(3));
            while done + 32 <= len {
                let src = _mm_loadl_epi64(words.as_ptr().add(done / 4) as *const __m128i);
                let v = _mm256_broadcastsi128_si256(src);
                let x = _mm256_shuffle_epi8(v, rep);
                let r = _mm256_or_si256(
                    _mm256_or_si256(
                        _mm256_and_si256(x, m0),
                        _mm256_and_si256(_mm256_srli_epi16(x, 2), m1),
                    ),
                    _mm256_or_si256(
                        _mm256_and_si256(_mm256_srli_epi16(x, 4), m2),
                        _mm256_and_si256(_mm256_srli_epi16(x, 6), m3),
                    ),
                );
                let mut buf = [0u8; 32];
                _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, r);
                out.extend_from_slice(&buf);
                done += 32;
            }
        }
        out.extend_from_slice(&unpack_2bit_u64(&words[done / 4..], len - done));
        out
    }

    /// SSSE3 unpack: 4 packed bytes → 16 codes per iteration (same
    /// scheme as [`unpack_avx2`] at half width).
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn unpack_ssse3(words: &[u8], len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len + 16);
        let mut done = 0usize;
        unsafe {
            let rep = _mm_setr_epi8(0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3);
            let m = |k: i32| -> __m128i {
                let mut bytes = [0i8; 16];
                let mut p = k as usize;
                while p < 16 {
                    bytes[p] = 0x03;
                    p += 4;
                }
                _mm_loadu_si128(bytes.as_ptr() as *const __m128i)
            };
            let (m0, m1, m2, m3) = (m(0), m(1), m(2), m(3));
            while done + 16 <= len {
                let raw = u32::from_le_bytes(
                    words[done / 4..done / 4 + 4].try_into().expect("4 bytes"),
                );
                let v = _mm_cvtsi32_si128(raw as i32);
                let x = _mm_shuffle_epi8(v, rep);
                let r = _mm_or_si128(
                    _mm_or_si128(
                        _mm_and_si128(x, m0),
                        _mm_and_si128(_mm_srli_epi16(x, 2), m1),
                    ),
                    _mm_or_si128(
                        _mm_and_si128(_mm_srli_epi16(x, 4), m2),
                        _mm_and_si128(_mm_srli_epi16(x, 6), m3),
                    ),
                );
                let mut buf = [0u8; 16];
                _mm_storeu_si128(buf.as_mut_ptr() as *mut __m128i, r);
                out.extend_from_slice(&buf);
                done += 16;
            }
        }
        out.extend_from_slice(&unpack_2bit_u64(&words[done / 4..], len - done));
        out
    }

    /// AVX2 prefix match: 32 bytes per `cmpeq` + movemask step; the
    /// first zero bit of the mask is the mismatch offset.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn prefix_avx2(a: &[u8], b: &[u8]) -> usize {
        let n = a.len();
        let mut i = 0;
        unsafe {
            while i + 32 <= n {
                let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
                let vb = _mm256_loadu_si256(b.as_ptr().add(i) as *const __m256i);
                let eq = _mm256_cmpeq_epi8(va, vb);
                let mask = _mm256_movemask_epi8(eq) as u32;
                if mask != u32::MAX {
                    return i + mask.trailing_ones() as usize;
                }
                i += 32;
            }
        }
        i + prefix_swar(&a[i..], &b[i..])
    }

    /// SSE2 prefix match: 16 bytes per step.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn prefix_sse2(a: &[u8], b: &[u8]) -> usize {
        let n = a.len();
        let mut i = 0;
        unsafe {
            while i + 16 <= n {
                let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
                let vb = _mm_loadu_si128(b.as_ptr().add(i) as *const __m128i);
                let eq = _mm_cmpeq_epi8(va, vb);
                let mask = _mm_movemask_epi8(eq) as u32;
                if mask != 0xFFFF {
                    return i + mask.trailing_ones() as usize;
                }
                i += 16;
            }
        }
        i + prefix_swar(&a[i..], &b[i..])
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
use x86::{pack_avx2, pack_ssse3, prefix_avx2, prefix_sse2, unpack_avx2, unpack_ssse3};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{pack_2bit_bytewise, unpack_2bit_bytewise};
    use proptest::prelude::*;

    fn codes_for(len: usize, salt: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 7 + salt * 13 + i / 9) & 0b11) as u8).collect()
    }

    #[test]
    fn probe_is_cached_and_consistent() {
        let a = CpuFeatures::get();
        let b = CpuFeatures::get();
        assert_eq!(a, b);
        assert!(!a.summary().is_empty());
    }

    #[test]
    fn pack_matches_oracle_across_lengths() {
        for len in (0..=130).chain([255, 256, 257, 1023, 1024, 4096]) {
            let codes = codes_for(len, len);
            assert_eq!(
                pack_2bit(&codes),
                pack_2bit_bytewise(&codes),
                "pack mismatch at len {len}"
            );
        }
    }

    #[test]
    fn unpack_matches_oracle_across_lengths() {
        for len in (0..=130).chain([255, 256, 257, 1023, 1024, 4096]) {
            let codes = codes_for(len, len * 3 + 1);
            let packed = pack_2bit_bytewise(&codes);
            assert_eq!(
                unpack_2bit(&packed, len),
                unpack_2bit_bytewise(&packed, len),
                "unpack mismatch at len {len}"
            );
            assert_eq!(unpack_2bit(&packed, len), codes);
        }
    }

    #[test]
    fn pack_ignores_high_bits() {
        let dirty: Vec<u8> = (0..100).map(|i| (i as u8) | 0b1111_0100).collect();
        let clean: Vec<u8> = dirty.iter().map(|c| c & 0b11).collect();
        assert_eq!(pack_2bit(&dirty), pack_2bit(&clean));
    }

    #[test]
    fn prefix_matches_oracle_at_every_mismatch_position() {
        let n = 200;
        let a: Vec<Base> = (0..n).map(|i| Base::from_code((i % 4) as u8)).collect();
        for flip in 0..n {
            let mut b = a.clone();
            b[flip] = Base::from_code((b[flip].code() + 1) & 0b11);
            assert_eq!(common_prefix_len(&a, &b), flip, "mismatch at {flip}");
            assert_eq!(common_prefix_len_bytewise(&a, &b), flip);
        }
        assert_eq!(common_prefix_len(&a, &a), n);
        assert_eq!(common_prefix_len(&a, &a[..50]), 50);
        assert_eq!(common_prefix_len(&[], &a), 0);
    }

    #[test]
    fn all_dispatch_arms_agree_when_present() {
        // Directly exercise each compiled-in arm against the oracle, so
        // coverage does not depend on which path the host dispatches to.
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        {
            let feats = CpuFeatures::probe_raw();
            for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 1000] {
                let codes = codes_for(len, len + 5);
                let expect_pack = pack_2bit_bytewise(&codes);
                let expect_unpack = codes.clone();
                if feats.avx2 {
                    assert_eq!(unsafe { super::pack_avx2(&codes) }, expect_pack);
                    assert_eq!(unsafe { super::unpack_avx2(&expect_pack, len) }, expect_unpack);
                }
                if feats.ssse3 {
                    assert_eq!(unsafe { super::pack_ssse3(&codes) }, expect_pack);
                    assert_eq!(unsafe { super::unpack_ssse3(&expect_pack, len) }, expect_unpack);
                }
                let bases: Vec<Base> =
                    codes.iter().map(|&c| Base::from_code(c)).collect();
                let mut other = bases.clone();
                if let Some(mid) = other.get_mut(len / 2) {
                    *mid = Base::from_code((mid.code() + 2) & 0b11);
                }
                let expect = common_prefix_len_bytewise(&bases, &other);
                let (ab, bb) = (super::base_bytes(&bases), super::base_bytes(&other));
                if feats.avx2 {
                    assert_eq!(unsafe { super::prefix_avx2(ab, bb) }, expect);
                }
                if feats.sse2 {
                    assert_eq!(unsafe { super::prefix_sse2(ab, bb) }, expect);
                }
                assert_eq!(super::prefix_swar(ab, bb), expect);
            }
        }
    }

    proptest! {
        #[test]
        fn pack_unpack_prefix_match_oracles(
            codes in prop::collection::vec(0u8..4, 0..1200),
            other in prop::collection::vec(0u8..4, 0..1200),
        ) {
            prop_assert_eq!(pack_2bit(&codes), pack_2bit_bytewise(&codes));
            let packed = pack_2bit(&codes);
            prop_assert_eq!(unpack_2bit(&packed, codes.len()), codes.clone());
            let a: Vec<Base> = codes.iter().map(|&c| Base::from_code(c)).collect();
            let b: Vec<Base> = other.iter().map(|&c| Base::from_code(c)).collect();
            prop_assert_eq!(
                common_prefix_len(&a, &b),
                common_prefix_len_bytewise(&a, &b)
            );
        }
    }
}
