//! # dnacomp-seq — DNA sequence substrate
//!
//! Foundation types for the context-aware DNA compression framework:
//!
//! * [`Base`] — the four-letter nucleotide alphabet (A, C, G, T) with
//!   complement arithmetic.
//! * [`PackedSeq`] — a 2-bits-per-base packed sequence, the in-memory
//!   representation every compressor in `dnacomp-algos` consumes.
//! * [`fasta`] — FASTA parsing, writing, and the paper's "Cleanser"
//!   component (strip headers/ambiguity codes so single-sequence
//!   experiments run "smoothly", §IV-A).
//! * [`gen`] — seeded synthetic genome generator producing the three
//!   repeat classes the paper describes (§II-B): exact repeats,
//!   reverse-complement repeats, and 99.9 %-similarity mutated repeats.
//! * [`corpus`] — a reproducible 132-file benchmark corpus standing in for
//!   the NCBI downloads plus the 11-file standard DNA corpus.
//! * [`stats`] — sequence statistics (GC content, order-k entropy, repeat
//!   coverage) used to sanity-check generated workloads.
//!
//! All randomness is seeded; the corpus is byte-reproducible across runs.

// `deny` (not `forbid`) so the SIMD kernel module — the single place
// unsafe is permitted — can opt in with an explicit allow. Every other
// module still fails to compile if it introduces unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod corpus;
pub mod error;
pub mod fasta;
pub mod fastq;
pub mod gen;
pub mod kmer;
pub mod packed;
#[allow(unsafe_code)]
pub mod simd;
pub mod stats;

pub use base::Base;
pub use error::SeqError;
pub use packed::{
    pack_2bit_bytewise, pack_2bit_u64, unpack_2bit_bytewise, unpack_2bit_u64, PackedSeq,
};
pub use simd::{
    common_prefix_len, common_prefix_len_bytewise, pack_2bit, prefetch_read, unpack_2bit,
    CpuFeatures,
};
