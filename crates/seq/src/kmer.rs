//! k-mer counting and spectra.
//!
//! Corpus characterisation beyond `stats`: the k-mer spectrum shows the
//! repeat mass the compressors feed on, and the distance between spectra
//! quantifies how "same-species" two sequences are (the 99.9 % identity
//! claim of §II-B is visible as near-identical spectra).

use crate::base::Base;
use crate::packed::PackedSeq;
use std::collections::HashMap;

/// Count all k-mers (k ≤ 31) of `seq`. Keys are the 2-bit packed k-mers.
pub fn count_kmers(seq: &PackedSeq, k: usize) -> HashMap<u64, u32> {
    assert!((1..=31).contains(&k), "k out of range");
    let mut counts = HashMap::new();
    if seq.len() < k {
        return counts;
    }
    let mask = (1u64 << (2 * k)) - 1;
    let mut kmer = 0u64;
    for (i, b) in seq.iter().enumerate() {
        kmer = ((kmer << 2) | b.code() as u64) & mask;
        if i + 1 >= k {
            *counts.entry(kmer).or_insert(0) += 1;
        }
    }
    counts
}

/// Decode a packed k-mer back to bases.
pub fn unpack_kmer(kmer: u64, k: usize) -> Vec<Base> {
    (0..k)
        .rev()
        .map(|i| Base::from_code((kmer >> (2 * i)) as u8))
        .collect()
}

/// Number of distinct k-mers.
pub fn distinct_kmers(seq: &PackedSeq, k: usize) -> usize {
    count_kmers(seq, k).len()
}

/// Fraction of k-mer positions whose k-mer occurs more than once — a
/// direct measure of the repeat mass available to the compressors.
pub fn repeat_mass(seq: &PackedSeq, k: usize) -> f64 {
    let counts = count_kmers(seq, k);
    let total: u64 = counts.values().map(|&c| c as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let repeated: u64 = counts
        .values()
        .filter(|&&c| c > 1)
        .map(|&c| c as u64)
        .sum();
    repeated as f64 / total as f64
}

/// Cosine similarity of two k-mer spectra in [0, 1]. Near-identical
/// sequences score ≈ 1.
pub fn spectrum_similarity(a: &PackedSeq, b: &PackedSeq, k: usize) -> f64 {
    let ca = count_kmers(a, k);
    let cb = count_kmers(b, k);
    if ca.is_empty() || cb.is_empty() {
        return if ca.is_empty() && cb.is_empty() { 1.0 } else { 0.0 };
    }
    let mut dot = 0f64;
    for (kmer, &x) in &ca {
        if let Some(&y) = cb.get(kmer) {
            dot += x as f64 * y as f64;
        }
    }
    let na: f64 = ca.values().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
    let nb: f64 = cb.values().map(|&x| (x as f64).powi(2)).sum::<f64>().sqrt();
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenomeModel;

    fn seq_of(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn counts_small_example() {
        // "ACGAC": 2-mers AC, CG, GA, AC.
        let counts = count_kmers(&seq_of("ACGAC"), 2);
        assert_eq!(counts.len(), 3);
        let ac = (Base::A.code() as u64) << 2 | Base::C.code() as u64;
        assert_eq!(counts[&ac], 2);
    }

    #[test]
    fn unpack_roundtrips() {
        let s = seq_of("ACGTACGTTG");
        let counts = count_kmers(&s, 5);
        for (&kmer, _) in counts.iter().take(5) {
            let bases = unpack_kmer(kmer, 5);
            // The unpacked 5-mer must occur in the original string.
            let as_str: String = bases.iter().map(|b| b.to_ascii() as char).collect();
            assert!(s.to_ascii().contains(&as_str), "{as_str}");
        }
    }

    #[test]
    fn short_sequences() {
        assert!(count_kmers(&seq_of("AC"), 5).is_empty());
        assert!(count_kmers(&PackedSeq::new(), 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn oversized_k_panics() {
        let _ = count_kmers(&seq_of("ACGT"), 32);
    }

    #[test]
    fn repeat_mass_separates_models() {
        let rep = GenomeModel::highly_repetitive().generate(40_000, 1);
        let iid = GenomeModel::random_only(0.5).generate(40_000, 1);
        let m_rep = repeat_mass(&rep, 16);
        let m_iid = repeat_mass(&iid, 16);
        assert!(m_rep > m_iid + 0.2, "repetitive {m_rep} vs iid {m_iid}");
    }

    #[test]
    fn similarity_of_identical_is_one() {
        let s = GenomeModel::default().generate(10_000, 3);
        assert!((spectrum_similarity(&s, &s, 8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_orders_relatedness() {
        let a = GenomeModel::random_only(0.5).generate(20_000, 7);
        // Mutated copy (same species).
        let close = {
            let mut bases = a.unpack();
            for i in (0..bases.len()).step_by(500) {
                bases[i] = bases[i].complement();
            }
            PackedSeq::from(bases.as_slice())
        };
        let unrelated = GenomeModel::random_only(0.5).generate(20_000, 99);
        let s_close = spectrum_similarity(&a, &close, 12);
        let s_far = spectrum_similarity(&a, &unrelated, 12);
        assert!(s_close > 0.9, "close similarity {s_close}");
        assert!(s_far < 0.1, "unrelated similarity {s_far}");
    }

    #[test]
    fn empty_edge_cases() {
        let e = PackedSeq::new();
        let s = seq_of("ACGTACGT");
        assert_eq!(spectrum_similarity(&e, &e, 4), 1.0);
        assert_eq!(spectrum_similarity(&e, &s, 4), 0.0);
        assert_eq!(repeat_mass(&e, 4), 0.0);
    }
}
