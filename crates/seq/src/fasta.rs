//! FASTA parsing, writing, and the paper's **Cleanser** component.
//!
//! §IV-A: *"After decompression, the file contains multiple sequences along
//! with text. We separated the sequences and removed the extra text so that
//! single sequence experiments can be carried out smoothly."* — that
//! separation/cleaning step is [`Cleanser`]. The framework (Figure 7) also
//! names a Cleanser box: *"Extra information is cleansed by the Cleanser."*

use crate::base::Base;
use crate::error::SeqError;
use crate::packed::PackedSeq;

/// One FASTA record: a header line and its sequence body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Header text (without the leading `>`).
    pub header: String,
    /// The cleaned sequence.
    pub seq: PackedSeq,
    /// How many non-ACGT body characters the cleanser dropped or mapped.
    pub cleaned: usize,
}

/// Policy for characters that are not `ACGT` in a record body.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AmbiguityPolicy {
    /// Drop ambiguity codes and stray text entirely (the paper removes
    /// "extra text"). This is the default.
    #[default]
    Drop,
    /// Map every ambiguity code to adenine. Some published corpora do this
    /// so that file sizes are preserved exactly.
    MapToA,
    /// Fail the parse with [`SeqError::MalformedRecord`].
    Strict,
}

/// The Cleanser: FASTA reader with configurable ambiguity handling.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cleanser {
    /// Ambiguity-code policy applied to record bodies.
    pub policy: AmbiguityPolicy,
}

impl Cleanser {
    /// Cleanser with the given policy.
    pub fn new(policy: AmbiguityPolicy) -> Self {
        Cleanser { policy }
    }

    /// Parse every record in `input`.
    ///
    /// Text before the first `>` header is treated as the body of an
    /// implicit unnamed record when it contains nucleotides (headerless
    /// raw-sequence files are common in the standard corpus); pure
    /// whitespace is ignored.
    pub fn parse(&self, input: &str) -> Result<Vec<Record>, SeqError> {
        let mut records: Vec<Record> = Vec::new();
        let mut current: Option<Record> = None;

        for (lineno, line) in input.lines().enumerate() {
            let line = line.trim_end();
            if let Some(h) = line.strip_prefix('>') {
                if let Some(rec) = current.take() {
                    records.push(rec);
                }
                current = Some(Record {
                    header: h.trim().to_owned(),
                    seq: PackedSeq::new(),
                    cleaned: 0,
                });
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            let rec = current.get_or_insert_with(|| Record {
                header: String::new(),
                seq: PackedSeq::new(),
                cleaned: 0,
            });
            for ch in line.bytes() {
                if ch.is_ascii_whitespace() || ch.is_ascii_digit() {
                    // Line numbers / column counts are "extra text".
                    rec.cleaned += 1;
                    continue;
                }
                match Base::from_ascii(ch) {
                    Some(b) => rec.seq.push(b),
                    None => match self.policy {
                        AmbiguityPolicy::Drop => rec.cleaned += 1,
                        AmbiguityPolicy::MapToA => {
                            rec.cleaned += 1;
                            rec.seq.push(Base::A);
                        }
                        AmbiguityPolicy::Strict => {
                            return Err(SeqError::MalformedRecord {
                                header: rec.header.clone(),
                                line: lineno + 1,
                                ch: ch as char,
                            })
                        }
                    },
                }
            }
        }
        if let Some(rec) = current.take() {
            records.push(rec);
        }
        if records.is_empty() {
            return Err(SeqError::EmptyFasta);
        }
        Ok(records)
    }

    /// Parse and concatenate all records into one sequence — the paper's
    /// "single sequence" preparation for an experiment file.
    pub fn parse_single(&self, input: &str) -> Result<PackedSeq, SeqError> {
        let records = self.parse(input)?;
        let total: usize = records.iter().map(|r| r.seq.len()).sum();
        let mut out = PackedSeq::with_capacity(total);
        for rec in &records {
            for b in rec.seq.iter() {
                out.push(b);
            }
        }
        Ok(out)
    }
}

/// Render records back to FASTA with `width`-column bodies.
pub fn write_fasta(records: &[Record], width: usize) -> String {
    let width = width.max(1);
    let mut out = String::new();
    for rec in records {
        out.push('>');
        out.push_str(&rec.header);
        out.push('\n');
        let ascii = rec.seq.to_ascii();
        let bytes = ascii.as_bytes();
        for chunk in bytes.chunks(width) {
            out.push_str(std::str::from_utf8(chunk).expect("ascii"));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SAMPLE: &str = ">seq one\nACGTAC\nGTNNAC\n>seq two\nTTTT\n";

    #[test]
    fn parses_two_records_dropping_ambiguity() {
        let recs = Cleanser::default().parse(SAMPLE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].header, "seq one");
        assert_eq!(recs[0].seq.to_ascii(), "ACGTACGTAC");
        assert_eq!(recs[0].cleaned, 2);
        assert_eq!(recs[1].seq.to_ascii(), "TTTT");
        assert_eq!(recs[1].cleaned, 0);
    }

    #[test]
    fn map_to_a_policy() {
        let recs = Cleanser::new(AmbiguityPolicy::MapToA).parse(SAMPLE).unwrap();
        assert_eq!(recs[0].seq.to_ascii(), "ACGTACGTAAAC");
        assert_eq!(recs[0].seq.len(), 12);
    }

    #[test]
    fn strict_policy_reports_location() {
        let err = Cleanser::new(AmbiguityPolicy::Strict)
            .parse(SAMPLE)
            .unwrap_err();
        assert_eq!(
            err,
            SeqError::MalformedRecord {
                header: "seq one".into(),
                line: 3,
                ch: 'N'
            }
        );
    }

    #[test]
    fn headerless_body_becomes_unnamed_record() {
        let recs = Cleanser::default().parse("ACGT\nacgt\n").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].header, "");
        assert_eq!(recs[0].seq.to_ascii(), "ACGTACGT");
    }

    #[test]
    fn digits_and_whitespace_are_extra_text() {
        let recs = Cleanser::default()
            .parse(">x\n  1 ACGT 10\n 11 TTAA 20\n")
            .unwrap();
        assert_eq!(recs[0].seq.to_ascii(), "ACGTTTAA");
        assert!(recs[0].cleaned > 0);
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(Cleanser::default().parse(""), Err(SeqError::EmptyFasta));
        assert_eq!(Cleanser::default().parse("\n\n"), Err(SeqError::EmptyFasta));
    }

    #[test]
    fn parse_single_concatenates() {
        let s = Cleanser::default().parse_single(SAMPLE).unwrap();
        assert_eq!(s.to_ascii(), "ACGTACGTACTTTT");
    }

    #[test]
    fn write_then_parse_roundtrips() {
        let recs = Cleanser::default().parse(SAMPLE).unwrap();
        let text = write_fasta(&recs, 5);
        let back = Cleanser::default().parse(&text).unwrap();
        assert_eq!(back.len(), recs.len());
        for (a, b) in back.iter().zip(&recs) {
            assert_eq!(a.header, b.header);
            assert_eq!(a.seq, b.seq);
        }
    }

    #[test]
    fn write_fasta_wraps_columns() {
        let recs = Cleanser::default().parse(">h\nACGTACGTAC\n").unwrap();
        let text = write_fasta(&recs, 4);
        assert_eq!(text, ">h\nACGT\nACGT\nAC\n");
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_sequences(body in "[ACGT]{1,300}", width in 1usize..100) {
            let rec = Record {
                header: "r".into(),
                seq: PackedSeq::from_ascii(body.as_bytes()).unwrap(),
                cleaned: 0,
            };
            let text = write_fasta(std::slice::from_ref(&rec), width);
            let back = Cleanser::default().parse(&text).unwrap();
            prop_assert_eq!(back[0].seq.to_ascii(), body);
        }

        #[test]
        fn cleanser_never_panics_on_junk(junk in "[ -~\n]{0,400}") {
            let _ = Cleanser::default().parse(&junk);
            let _ = Cleanser::new(AmbiguityPolicy::MapToA).parse(&junk);
            let _ = Cleanser::new(AmbiguityPolicy::Strict).parse(&junk);
        }
    }
}
