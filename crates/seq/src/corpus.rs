//! Reproducible benchmark corpus.
//!
//! The paper's evaluation uses **132 DNA files**: sequences downloaded from
//! NCBI (mostly bacteria, gzip-compressed, cleaned to single sequences)
//! plus files from the standard DNA-compression corpus "used by most of
//! the authors in their work" (§IV-A, ref \[18\]). Real NCBI traffic is not
//! available offline, so this module generates a **seeded synthetic
//! corpus** with the same shape:
//!
//! * 11 named stand-ins for the classic standard-corpus files (chmpxx,
//!   humdyst, …) at their published lengths;
//! * 121 "NCBI-style" files with log-uniform sizes across the paper's
//!   range (the paper caps files at 10 MB; most corpus files are far
//!   smaller), drawn from bacterial-like, repetitive, and low-repeat
//!   genome models.
//!
//! The substitution preserves what the experiments measure: per-algorithm
//! compression ratio, time and RAM as functions of file size and repeat
//! structure. Every file is reproducible from `(corpus seed, file index)`.

use crate::gen::GenomeModel;
use crate::packed::PackedSeq;

/// The flavour of genome model behind a corpus file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// Stand-in for a named standard-corpus file.
    Standard,
    /// Bacterial-like NCBI download (default model).
    Bacterial,
    /// Highly repetitive region (best case for repeat compressors).
    Repetitive,
    /// Low-repeat, near-i.i.d. sequence (worst case).
    LowRepeat,
}

/// Description of one corpus file. The sequence itself is produced on
/// demand by [`FileSpec::generate`] so the corpus description stays cheap
/// to pass around.
#[derive(Clone, Debug, PartialEq)]
pub struct FileSpec {
    /// Stable identifier, e.g. `"humdyst"` or `"ncbi_042"`.
    pub name: String,
    /// Sequence length in bases.
    pub len: usize,
    /// Which genome model generates it.
    pub kind: FileKind,
    /// Generation seed (already mixed with the corpus seed).
    pub seed: u64,
}

impl FileSpec {
    /// Generate the sequence for this spec.
    pub fn generate(&self) -> PackedSeq {
        self.model().generate(self.len, self.seed)
    }

    /// The genome model for this file kind.
    pub fn model(&self) -> GenomeModel {
        match self.kind {
            FileKind::Standard | FileKind::Bacterial => GenomeModel::default(),
            FileKind::Repetitive => GenomeModel::highly_repetitive(),
            FileKind::LowRepeat => GenomeModel::random_only(0.47),
        }
    }

    /// On-disk size of the raw ASCII file this stands in for, in bytes
    /// (one byte per base, as NCBI `.seq` bodies are stored).
    pub fn raw_bytes(&self) -> u64 {
        self.len as u64
    }
}

/// The classic standard-corpus names with their published base counts.
/// (Lengths from the DNA-compression literature, e.g. Manzini & Rastero.)
pub const STANDARD_FILES: [(&str, usize); 11] = [
    ("chmpxx", 121_024),
    ("chntxx", 155_844),
    ("hehcmv", 229_354),
    ("humdyst", 38_770),
    ("humghcs", 66_495),
    ("humhbb", 73_308),
    ("humhdab", 58_864),
    ("humprtb", 56_737),
    ("mpomtcg", 186_609),
    ("mtpacg", 100_314),
    ("vaccg", 191_737),
];

/// Number of files in the paper corpus.
pub const PAPER_CORPUS_SIZE: usize = 132;

/// Builder for corpora.
#[derive(Clone, Debug)]
pub struct CorpusBuilder {
    seed: u64,
    min_len: usize,
    max_len: usize,
    ncbi_files: usize,
    include_standard: bool,
}

impl CorpusBuilder {
    /// The paper corpus: 11 standard + 121 NCBI-style files (132 total),
    /// sizes log-uniform between 1 kB and `max_len` (default 2 MB — a
    /// tractability cap below the paper's 10 MB limit; see DESIGN.md).
    pub fn paper(seed: u64) -> Self {
        CorpusBuilder {
            seed,
            min_len: 1_000,
            max_len: 2_000_000,
            ncbi_files: PAPER_CORPUS_SIZE - STANDARD_FILES.len(),
            include_standard: true,
        }
    }

    /// A small corpus for fast tests and examples.
    pub fn small(seed: u64) -> Self {
        CorpusBuilder {
            seed,
            min_len: 500,
            max_len: 20_000,
            ncbi_files: 12,
            include_standard: false,
        }
    }

    /// Override the size range.
    pub fn size_range(mut self, min_len: usize, max_len: usize) -> Self {
        assert!(min_len >= 1 && min_len <= max_len, "bad size range");
        self.min_len = min_len;
        self.max_len = max_len;
        self
    }

    /// Override the number of NCBI-style files.
    pub fn ncbi_files(mut self, n: usize) -> Self {
        self.ncbi_files = n;
        self
    }

    /// Include or exclude the named standard files.
    pub fn include_standard(mut self, yes: bool) -> Self {
        self.include_standard = yes;
        self
    }

    /// Produce the file specs. Deterministic in the builder parameters.
    pub fn build(&self) -> Vec<FileSpec> {
        let mut files = Vec::with_capacity(
            self.ncbi_files + if self.include_standard { STANDARD_FILES.len() } else { 0 },
        );
        if self.include_standard {
            for (i, &(name, len)) in STANDARD_FILES.iter().enumerate() {
                files.push(FileSpec {
                    name: name.to_owned(),
                    len,
                    kind: FileKind::Standard,
                    seed: mix(self.seed, 0xC0FFEE + i as u64),
                });
            }
        }
        for i in 0..self.ncbi_files {
            let u = hash_unit(mix(self.seed, 0xBEEF_0000 + i as u64));
            // Log-uniform size in [min_len, max_len].
            let ln_min = (self.min_len as f64).ln();
            let ln_max = (self.max_len as f64).ln();
            let len = (ln_min + u * (ln_max - ln_min)).exp().round() as usize;
            // Mostly bacterial, as the paper's NCBI downloads were
            // ("most of the sequences are of bacteria", §IV-A), with a
            // sprinkle of extreme repeat structures for coverage.
            let kind = match i % 8 {
                6 => FileKind::Repetitive,
                7 => FileKind::LowRepeat,
                _ => FileKind::Bacterial,
            };
            files.push(FileSpec {
                name: format!("ncbi_{i:03}"),
                len: len.clamp(self.min_len, self.max_len),
                kind,
                seed: mix(self.seed, 0xDEAD_0000 + i as u64),
            });
        }
        files
    }
}

/// SplitMix64 step — cheap, well-distributed seed mixing.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a u64 to the unit interval.
fn hash_unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_corpus_has_132_files() {
        let files = CorpusBuilder::paper(1).build();
        assert_eq!(files.len(), PAPER_CORPUS_SIZE);
    }

    #[test]
    fn names_are_unique() {
        let files = CorpusBuilder::paper(1).build();
        let names: HashSet<_> = files.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names.len(), files.len());
    }

    #[test]
    fn standard_files_have_published_lengths() {
        let files = CorpusBuilder::paper(1).build();
        let humdyst = files.iter().find(|f| f.name == "humdyst").unwrap();
        assert_eq!(humdyst.len, 38_770);
        assert_eq!(humdyst.kind, FileKind::Standard);
    }

    #[test]
    fn sizes_respect_bounds() {
        let b = CorpusBuilder::paper(3).size_range(2_000, 50_000);
        for f in b.build() {
            if f.kind != FileKind::Standard {
                assert!((2_000..=50_000).contains(&f.len), "{} len {}", f.name, f.len);
            }
        }
    }

    #[test]
    fn deterministic_across_builds() {
        let a = CorpusBuilder::paper(9).build();
        let b = CorpusBuilder::paper(9).build();
        assert_eq!(a, b);
        // And the generated sequences are identical too.
        assert_eq!(a[12].generate(), b[12].generate());
    }

    #[test]
    fn different_seeds_give_different_files() {
        let a = CorpusBuilder::small(1).build();
        let b = CorpusBuilder::small(2).build();
        assert_ne!(a[0].generate(), b[0].generate());
    }

    #[test]
    fn generate_matches_spec_len() {
        for f in CorpusBuilder::small(5).build() {
            assert_eq!(f.generate().len(), f.len);
        }
    }

    #[test]
    fn size_distribution_spans_range() {
        // Log-uniform sizes should populate both the small and large ends.
        let files = CorpusBuilder::paper(7).build();
        let small = files.iter().filter(|f| f.len < 50_000).count();
        let large = files.iter().filter(|f| f.len > 500_000).count();
        assert!(small >= 10, "small files: {small}");
        assert!(large >= 10, "large files: {large}");
    }

    #[test]
    fn kinds_are_mixed() {
        let files = CorpusBuilder::paper(11).build();
        for kind in [
            FileKind::Bacterial,
            FileKind::Repetitive,
            FileKind::LowRepeat,
        ] {
            assert!(
                files.iter().any(|f| f.kind == kind),
                "missing kind {kind:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "bad size range")]
    fn invalid_size_range_panics() {
        let _ = CorpusBuilder::small(1).size_range(10, 5);
    }
}
