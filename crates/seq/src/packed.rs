//! 2-bits-per-base packed DNA sequences.
//!
//! [`PackedSeq`] is the working representation handed to every compressor:
//! it stores four bases per byte (the paper's baseline "2 bpc" encoding from
//! Table 1) while exposing random access, slicing, iteration, and
//! reverse-complement views. Compressors that need byte-level scans can
//! borrow the raw words; everything else goes through the typed API.
//!
//! ## Hot-path kernels
//!
//! Packing and unpacking sit on every compressor's critical path (the
//! 2-bit baseline is supposed to run at memory bandwidth), so the
//! conversions between byte-per-base *codes* and packed words are
//! implemented word-at-a-time: [`pack_2bit_u64`] / [`unpack_2bit_u64`]
//! move 8 bases per `u64` SWAR step instead of one base per shift. The
//! byte-at-a-time reference implementations ([`pack_2bit_bytewise`] /
//! [`unpack_2bit_bytewise`]) are kept public so `dnacomp bench-algos`
//! can measure the kernels against their baseline, and so property
//! tests can cross-check the two. [`PackedSeq::slice`] and
//! [`PackedSeq::extend_from_seq`] use whole-byte copies (aligned) or a
//! two-byte funnel shift (misaligned) instead of per-base pushes, which
//! is what makes splitting a sequence into frame blocks cheap.

use crate::base::Base;
use crate::error::SeqError;
use std::fmt;

/// Per-byte ASCII → 2-bit code table; `-1` marks non-nucleotide bytes.
const fn ascii_code_table() -> [i8; 256] {
    let mut t = [-1i8; 256];
    t[b'A' as usize] = 0;
    t[b'a' as usize] = 0;
    t[b'C' as usize] = 1;
    t[b'c' as usize] = 1;
    t[b'G' as usize] = 2;
    t[b'g' as usize] = 2;
    t[b'T' as usize] = 3;
    t[b't' as usize] = 3;
    t
}
const ASCII_CODE: [i8; 256] = ascii_code_table();

/// Mask keeping the low 2 bits of every byte lane of a `u64`.
const CODE_LANES: u64 = 0x0303_0303_0303_0303;

/// Pack 2-bit codes (one byte per base, values `0..=3`; higher bits are
/// ignored) into the little-endian-within-byte word layout of
/// [`PackedSeq`], eight bases per `u64` step.
///
/// Three shift/mask rounds funnel the eight byte lanes into two packed
/// bytes: pairs of lanes merge into nibbles, nibbles into bytes, bytes
/// into the final 16 bits.
pub fn pack_2bit_u64(codes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(codes.len().div_ceil(4));
    let mut chunks = codes.chunks_exact(8);
    for chunk in &mut chunks {
        let x = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")) & CODE_LANES;
        let t = (x | (x >> 6)) & 0x000F_000F_000F_000F;
        let t = (t | (t >> 12)) & 0x0000_00FF_0000_00FF;
        let t = t | (t >> 24);
        out.push((t & 0xFF) as u8);
        out.push(((t >> 8) & 0xFF) as u8);
    }
    let mut tail = 0u8;
    for (k, &code) in chunks.remainder().iter().enumerate() {
        tail |= (code & 0b11) << ((k % 4) * 2);
        if k % 4 == 3 {
            out.push(tail);
            tail = 0;
        }
    }
    if !chunks.remainder().len().is_multiple_of(4) {
        out.push(tail);
    }
    out
}

/// Byte-at-a-time reference for [`pack_2bit_u64`]; the baseline the
/// bench-algos kernel gate measures against.
pub fn pack_2bit_bytewise(codes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(codes.len().div_ceil(4));
    let mut cur = 0u8;
    for (i, &code) in codes.iter().enumerate() {
        cur |= (code & 0b11) << ((i % 4) * 2);
        if i % 4 == 3 {
            out.push(cur);
            cur = 0;
        }
    }
    if !codes.len().is_multiple_of(4) {
        out.push(cur);
    }
    out
}

/// Unpack `len` 2-bit codes from packed `words` (one byte per base on
/// output), eight bases per `u64` step — the inverse spread of
/// [`pack_2bit_u64`].
///
/// # Panics
/// If `words` is shorter than `len.div_ceil(4)` bytes.
pub fn unpack_2bit_u64(words: &[u8], len: usize) -> Vec<u8> {
    assert!(words.len() >= len.div_ceil(4), "word buffer too short");
    let words = &words[..len.div_ceil(4)];
    let mut out = Vec::with_capacity(len + 8);
    let mut chunks = words.chunks_exact(2);
    for pair in &mut chunks {
        let x = u64::from(pair[0]) | (u64::from(pair[1]) << 8);
        let x = (x | (x << 24)) & 0x0000_00FF_0000_00FF;
        let x = (x | (x << 12)) & 0x000F_000F_000F_000F;
        let x = (x | (x << 6)) & CODE_LANES;
        out.extend_from_slice(&x.to_le_bytes());
    }
    for &w in chunks.remainder() {
        for k in 0..4 {
            out.push((w >> (k * 2)) & 0b11);
        }
    }
    out.truncate(len);
    out
}

/// Byte-at-a-time reference for [`unpack_2bit_u64`].
pub fn unpack_2bit_bytewise(words: &[u8], len: usize) -> Vec<u8> {
    assert!(words.len() >= len.div_ceil(4), "word buffer too short");
    let mut out = Vec::with_capacity(len);
    for (chunk, &w) in words.iter().enumerate().take(len.div_ceil(4)) {
        let take = (len - chunk * 4).min(4);
        for k in 0..take {
            out.push((w >> (k * 2)) & 0b11);
        }
    }
    out
}

/// A DNA sequence packed at 2 bits per base (4 bases per byte).
///
/// Bases are stored little-endian within a byte: base `i` occupies bits
/// `2*(i % 4) ..` of byte `i / 4`. The tail byte's unused bits are always
/// zero, which makes equality and hashing structural.
///
/// ```
/// use dnacomp_seq::PackedSeq;
/// let seq = PackedSeq::from_ascii(b"ACGTAC").unwrap();
/// assert_eq!(seq.len(), 6);
/// assert_eq!(seq.as_words().len(), 2);           // 4 bases/byte
/// assert_eq!(seq.reverse_complement().to_ascii(), "GTACGT");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct PackedSeq {
    words: Vec<u8>,
    len: usize,
}

impl PackedSeq {
    /// Empty sequence.
    pub fn new() -> Self {
        PackedSeq::default()
    }

    /// Empty sequence with capacity for `n` bases pre-allocated.
    pub fn with_capacity(n: usize) -> Self {
        PackedSeq {
            words: Vec::with_capacity(n.div_ceil(4)),
            len: 0,
        }
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the sequence holds no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one base.
    #[inline]
    pub fn push(&mut self, base: Base) {
        let bit = (self.len % 4) * 2;
        if bit == 0 {
            self.words.push(base.code());
        } else {
            // Tail byte already exists; or-in the new base.
            *self.words.last_mut().expect("tail byte exists") |= base.code() << bit;
        }
        self.len += 1;
    }

    /// Random access. Panics if `i >= len()`; use [`PackedSeq::try_get`]
    /// for a fallible variant.
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        Base::from_code(self.words[i / 4] >> ((i % 4) * 2))
    }

    /// Fallible random access.
    #[inline]
    pub fn try_get(&self, i: usize) -> Result<Base, SeqError> {
        if i < self.len {
            Ok(self.get(i))
        } else {
            Err(SeqError::OutOfBounds {
                index: i,
                len: self.len,
            })
        }
    }

    /// Overwrite position `i`.
    #[inline]
    pub fn set(&mut self, i: usize, base: Base) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let bit = (i % 4) * 2;
        let w = &mut self.words[i / 4];
        *w = (*w & !(0b11 << bit)) | (base.code() << bit);
    }

    /// Iterate over bases front to back.
    pub fn iter(&self) -> Iter<'_> {
        Iter { seq: self, pos: 0 }
    }

    /// Unpack into a `Vec<Base>`. Compressors that need O(1) random access
    /// with no shift arithmetic work on the unpacked form. Runs through
    /// the runtime-dispatched [`crate::simd::unpack_2bit`] kernel.
    pub fn unpack(&self) -> Vec<Base> {
        crate::simd::unpack_2bit(&self.words, self.len)
            .into_iter()
            .map(Base::from_code)
            .collect()
    }

    /// The 2-bit codes, one byte per base.
    pub fn to_codes(&self) -> Vec<u8> {
        crate::simd::unpack_2bit(&self.words, self.len)
    }

    /// Build from 2-bit codes (one byte per base; only the low two bits
    /// of each code are used), through the runtime-dispatched
    /// [`crate::simd::pack_2bit`] kernel.
    pub fn from_codes(codes: &[u8]) -> PackedSeq {
        PackedSeq {
            words: crate::simd::pack_2bit(codes),
            len: codes.len(),
        }
    }

    /// Copy of the bases in `[start, end)`.
    ///
    /// Word-aligned slices (`start % 4 == 0`) are a straight byte copy;
    /// misaligned slices use a two-byte funnel shift — either way the
    /// cost is O(bases / 4), not O(bases), which is what makes block
    /// splitting for the frame container cheap.
    pub fn slice(&self, start: usize, end: usize) -> PackedSeq {
        assert!(start <= end && end <= self.len, "bad slice {start}..{end}");
        let n = end - start;
        if n == 0 {
            return PackedSeq::new();
        }
        let first = start / 4;
        let out_bytes = n.div_ceil(4);
        let shift = (start % 4) * 2;
        let mut words = Vec::with_capacity(out_bytes);
        if shift == 0 {
            words.extend_from_slice(&self.words[first..first + out_bytes]);
        } else {
            let src = &self.words[first..];
            for j in 0..out_bytes {
                let lo = src[j] >> shift;
                let hi = src.get(j + 1).map_or(0, |w| w << (8 - shift));
                words.push(lo | hi);
            }
        }
        PackedSeq::from_words(words, n).expect("slice words cover the requested length")
    }

    /// Append every base of `other`, in order.
    ///
    /// When `self.len()` is a multiple of four this is a straight byte
    /// append; otherwise each source byte is funnel-shifted across the
    /// split. Used to reassemble frame blocks after parallel decode.
    pub fn extend_from_seq(&mut self, other: &PackedSeq) {
        if other.is_empty() {
            return;
        }
        let offset = self.len % 4;
        let new_len = self.len + other.len;
        if offset == 0 {
            self.words.extend_from_slice(&other.words);
        } else {
            let shift = offset * 2;
            for &b in &other.words {
                *self.words.last_mut().expect("tail byte exists") |= b << shift;
                self.words.push(b >> (8 - shift));
            }
            self.words.truncate(new_len.div_ceil(4));
            if !new_len.is_multiple_of(4) {
                if let Some(tail) = self.words.last_mut() {
                    *tail &= (1u8 << ((new_len % 4) * 2)) - 1;
                }
            }
        }
        self.len = new_len;
    }

    /// The reverse complement of the whole sequence.
    pub fn reverse_complement(&self) -> PackedSeq {
        let mut out = PackedSeq::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.get(i).complement());
        }
        out
    }

    /// The raw packed words. The tail byte's unused high bits are zero.
    pub fn as_words(&self) -> &[u8] {
        &self.words
    }

    /// Reconstruct from raw packed words plus a base count.
    ///
    /// Trailing garbage bits in the final byte are cleared so that the
    /// structural-equality invariant holds.
    pub fn from_words(mut words: Vec<u8>, len: usize) -> Result<PackedSeq, SeqError> {
        let need = len.div_ceil(4);
        if words.len() < need {
            return Err(SeqError::OutOfBounds {
                index: len,
                len: words.len() * 4,
            });
        }
        words.truncate(need);
        if !len.is_multiple_of(4) {
            if let Some(tail) = words.last_mut() {
                let keep = (len % 4) * 2;
                *tail &= (1u8 << keep) - 1;
            }
        }
        Ok(PackedSeq { words, len })
    }

    /// Parse from an ASCII byte string of `ACGTacgt` characters.
    pub fn from_ascii(text: &[u8]) -> Result<PackedSeq, SeqError> {
        let mut codes = Vec::with_capacity(text.len());
        for &ch in text {
            let code = ASCII_CODE[ch as usize];
            if code < 0 {
                return Err(SeqError::InvalidBase(ch as char));
            }
            codes.push(code as u8);
        }
        Ok(PackedSeq::from_codes(&codes))
    }

    /// Render as an upper-case ASCII string.
    pub fn to_ascii(&self) -> String {
        self.iter().map(|b| b.to_ascii() as char).collect()
    }

    /// Heap bytes used by the packed representation (for the resource
    /// meter in `dnacomp-cloud`).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity()
    }
}

impl fmt::Debug for PackedSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 64 {
            write!(f, "PackedSeq({:?})", self.to_ascii())
        } else {
            write!(
                f,
                "PackedSeq(len={}, head={:?}…)",
                self.len,
                self.slice(0, 32).to_ascii()
            )
        }
    }
}

impl FromIterator<Base> for PackedSeq {
    fn from_iter<T: IntoIterator<Item = Base>>(iter: T) -> Self {
        let it = iter.into_iter();
        let mut out = PackedSeq::with_capacity(it.size_hint().0);
        for b in it {
            out.push(b);
        }
        out
    }
}

impl From<&[Base]> for PackedSeq {
    fn from(bases: &[Base]) -> Self {
        bases.iter().copied().collect()
    }
}

impl<'a> IntoIterator for &'a PackedSeq {
    type Item = Base;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the bases of a [`PackedSeq`].
pub struct Iter<'a> {
    seq: &'a PackedSeq,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = Base;

    #[inline]
    fn next(&mut self) -> Option<Base> {
        if self.pos < self.seq.len {
            let b = self.seq.get(self.pos);
            self.pos += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.seq.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seq_of(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn empty() {
        let s = PackedSeq::new();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.to_ascii(), "");
        assert_eq!(s.as_words(), &[] as &[u8]);
    }

    #[test]
    fn push_get_across_byte_boundaries() {
        let mut s = PackedSeq::new();
        let pattern = "ACGTTGCAAC";
        for ch in pattern.chars() {
            s.push(Base::try_from(ch).unwrap());
        }
        assert_eq!(s.len(), pattern.len());
        assert_eq!(s.to_ascii(), pattern);
        // 10 bases -> 3 bytes
        assert_eq!(s.as_words().len(), 3);
    }

    #[test]
    fn set_overwrites_without_disturbing_neighbours() {
        let mut s = seq_of("AAAAAAAA");
        s.set(3, Base::G);
        s.set(4, Base::T);
        assert_eq!(s.to_ascii(), "AAAGTAAA");
    }

    #[test]
    fn slice_and_unpack() {
        let s = seq_of("ACGTACGTACGT");
        assert_eq!(s.slice(2, 7).to_ascii(), "GTACG");
        assert_eq!(s.slice(0, 0).len(), 0);
        assert_eq!(
            s.unpack()[..4],
            [Base::A, Base::C, Base::G, Base::T]
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        seq_of("ACG").get(3);
    }

    #[test]
    fn try_get_out_of_bounds_errors() {
        let s = seq_of("ACG");
        assert_eq!(
            s.try_get(5),
            Err(SeqError::OutOfBounds { index: 5, len: 3 })
        );
        assert_eq!(s.try_get(2), Ok(Base::G));
    }

    #[test]
    fn reverse_complement_matches_unpacked() {
        let s = seq_of("AACGTT");
        assert_eq!(s.reverse_complement().to_ascii(), "AACGTT");
        let s = seq_of("AAACCC");
        assert_eq!(s.reverse_complement().to_ascii(), "GGGTTT");
    }

    #[test]
    fn from_words_clears_tail_garbage() {
        // 3 bases in one byte; set garbage in the top 2 bits.
        let words = vec![0b11_10_01_00 | 0b11_000000];
        let s = PackedSeq::from_words(words, 3).unwrap();
        let direct = seq_of("ACG");
        assert_eq!(s, direct);
    }

    #[test]
    fn from_words_rejects_short_buffers() {
        assert!(PackedSeq::from_words(vec![0], 5).is_err());
    }

    #[test]
    fn from_ascii_rejects_ambiguity() {
        assert_eq!(
            PackedSeq::from_ascii(b"ACGN"),
            Err(SeqError::InvalidBase('N'))
        );
    }

    #[test]
    fn equality_is_structural() {
        let a = seq_of("ACGTAC");
        let mut b = PackedSeq::with_capacity(100);
        for base in a.iter() {
            b.push(base);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn iterator_len() {
        let s = seq_of("ACGTA");
        let it = s.iter();
        assert_eq!(it.len(), 5);
        assert_eq!(it.count(), 5);
    }

    #[test]
    fn kernels_agree_on_all_small_lengths() {
        // Exhaustive length sweep across every chunk-boundary case of the
        // u64 kernels (0..=8 covers the SWAR body and every remainder).
        for len in 0..=35usize {
            let codes: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8 & 0b11).collect();
            let fast = pack_2bit_u64(&codes);
            let slow = pack_2bit_bytewise(&codes);
            assert_eq!(fast, slow, "pack mismatch at len {len}");
            assert_eq!(unpack_2bit_u64(&fast, len), codes, "unpack(fast) at len {len}");
            assert_eq!(unpack_2bit_bytewise(&slow, len), codes, "unpack(slow) at len {len}");
        }
    }

    #[test]
    fn pack_masks_high_bits_of_codes() {
        let codes = [0xFCu8 | 2, 0xF0 | 1, 0xAB & !0b11, 3, 0x42, 1, 2, 3, 0xFF];
        let masked: Vec<u8> = codes.iter().map(|c| c & 0b11).collect();
        assert_eq!(pack_2bit_u64(&codes), pack_2bit_u64(&masked));
        assert_eq!(pack_2bit_bytewise(&codes), pack_2bit_u64(&masked));
    }

    #[test]
    fn codes_roundtrip_through_packed_seq() {
        let s = seq_of("ACGTTGCAACGGT");
        let codes = s.to_codes();
        assert_eq!(codes.len(), s.len());
        assert_eq!(PackedSeq::from_codes(&codes), s);
    }

    #[test]
    fn extend_from_seq_all_alignments() {
        let text = "ACGTTGCAACGGTACCAGT";
        for split in 0..=text.len() {
            let (a, b) = text.split_at(split);
            let mut left = seq_of(a);
            left.extend_from_seq(&seq_of(b));
            assert_eq!(left, seq_of(text), "split at {split}");
        }
    }

    #[test]
    fn slice_misaligned_matches_text() {
        let text = "TTGACCAGTACGTTGCAACGGTA";
        let s = seq_of(text);
        for start in 0..text.len() {
            for end in start..=text.len() {
                assert_eq!(s.slice(start, end).to_ascii(), &text[start..end]);
            }
        }
    }

    proptest! {
        #[test]
        fn pack_kernels_agree(codes in proptest::collection::vec(0u8..4, 0..600)) {
            prop_assert_eq!(pack_2bit_u64(&codes), pack_2bit_bytewise(&codes));
            let packed = pack_2bit_u64(&codes);
            prop_assert_eq!(unpack_2bit_u64(&packed, codes.len()), codes.clone());
            prop_assert_eq!(unpack_2bit_bytewise(&packed, codes.len()), codes);
        }

        #[test]
        fn extend_matches_concat(a in "[ACGT]{0,200}", b in "[ACGT]{0,200}") {
            let mut left = seq_of(&a);
            left.extend_from_seq(&seq_of(&b));
            prop_assert_eq!(left, seq_of(&format!("{a}{b}")));
        }

        #[test]
        fn ascii_roundtrip(s in "[ACGT]{0,512}") {
            let p = seq_of(&s);
            prop_assert_eq!(p.to_ascii(), s);
        }

        #[test]
        fn words_roundtrip(s in "[ACGT]{0,512}") {
            let p = seq_of(&s);
            let back = PackedSeq::from_words(p.as_words().to_vec(), p.len()).unwrap();
            prop_assert_eq!(back, p);
        }

        #[test]
        fn revcomp_involution(s in "[ACGT]{0,256}") {
            let p = seq_of(&s);
            prop_assert_eq!(p.reverse_complement().reverse_complement(), p);
        }

        #[test]
        fn unpack_matches_iter(s in "[ACGT]{0,256}") {
            let p = seq_of(&s);
            prop_assert_eq!(p.unpack(), p.iter().collect::<Vec<_>>());
        }

        #[test]
        fn slice_agrees_with_string(s in "[ACGT]{1,200}", a in 0usize..200, b in 0usize..200) {
            let p = seq_of(&s);
            let (a, b) = (a % (s.len() + 1), b % (s.len() + 1));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert_eq!(p.slice(lo, hi).to_ascii(), &s[lo..hi]);
        }
    }
}
