//! 2-bits-per-base packed DNA sequences.
//!
//! [`PackedSeq`] is the working representation handed to every compressor:
//! it stores four bases per byte (the paper's baseline "2 bpc" encoding from
//! Table 1) while exposing random access, slicing, iteration, and
//! reverse-complement views. Compressors that need byte-level scans can
//! borrow the raw words; everything else goes through the typed API.

use crate::base::Base;
use crate::error::SeqError;
use std::fmt;

/// A DNA sequence packed at 2 bits per base (4 bases per byte).
///
/// Bases are stored little-endian within a byte: base `i` occupies bits
/// `2*(i % 4) ..` of byte `i / 4`. The tail byte's unused bits are always
/// zero, which makes equality and hashing structural.
///
/// ```
/// use dnacomp_seq::PackedSeq;
/// let seq = PackedSeq::from_ascii(b"ACGTAC").unwrap();
/// assert_eq!(seq.len(), 6);
/// assert_eq!(seq.as_words().len(), 2);           // 4 bases/byte
/// assert_eq!(seq.reverse_complement().to_ascii(), "GTACGT");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct PackedSeq {
    words: Vec<u8>,
    len: usize,
}

impl PackedSeq {
    /// Empty sequence.
    pub fn new() -> Self {
        PackedSeq::default()
    }

    /// Empty sequence with capacity for `n` bases pre-allocated.
    pub fn with_capacity(n: usize) -> Self {
        PackedSeq {
            words: Vec::with_capacity(n.div_ceil(4)),
            len: 0,
        }
    }

    /// Number of bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the sequence holds no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one base.
    #[inline]
    pub fn push(&mut self, base: Base) {
        let bit = (self.len % 4) * 2;
        if bit == 0 {
            self.words.push(base.code());
        } else {
            // Tail byte already exists; or-in the new base.
            *self.words.last_mut().expect("tail byte exists") |= base.code() << bit;
        }
        self.len += 1;
    }

    /// Random access. Panics if `i >= len()`; use [`PackedSeq::try_get`]
    /// for a fallible variant.
    #[inline]
    pub fn get(&self, i: usize) -> Base {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        Base::from_code(self.words[i / 4] >> ((i % 4) * 2))
    }

    /// Fallible random access.
    #[inline]
    pub fn try_get(&self, i: usize) -> Result<Base, SeqError> {
        if i < self.len {
            Ok(self.get(i))
        } else {
            Err(SeqError::OutOfBounds {
                index: i,
                len: self.len,
            })
        }
    }

    /// Overwrite position `i`.
    #[inline]
    pub fn set(&mut self, i: usize, base: Base) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let bit = (i % 4) * 2;
        let w = &mut self.words[i / 4];
        *w = (*w & !(0b11 << bit)) | (base.code() << bit);
    }

    /// Iterate over bases front to back.
    pub fn iter(&self) -> Iter<'_> {
        Iter { seq: self, pos: 0 }
    }

    /// Unpack into a `Vec<Base>`. Compressors that need O(1) random access
    /// with no shift arithmetic work on the unpacked form.
    pub fn unpack(&self) -> Vec<Base> {
        let mut out = Vec::with_capacity(self.len);
        for chunk in 0..self.words.len() {
            let w = self.words[chunk];
            let take = (self.len - chunk * 4).min(4);
            for k in 0..take {
                out.push(Base::from_code(w >> (k * 2)));
            }
        }
        out
    }

    /// Copy of the bases in `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> PackedSeq {
        assert!(start <= end && end <= self.len, "bad slice {start}..{end}");
        let mut out = PackedSeq::with_capacity(end - start);
        for i in start..end {
            out.push(self.get(i));
        }
        out
    }

    /// The reverse complement of the whole sequence.
    pub fn reverse_complement(&self) -> PackedSeq {
        let mut out = PackedSeq::with_capacity(self.len);
        for i in (0..self.len).rev() {
            out.push(self.get(i).complement());
        }
        out
    }

    /// The raw packed words. The tail byte's unused high bits are zero.
    pub fn as_words(&self) -> &[u8] {
        &self.words
    }

    /// Reconstruct from raw packed words plus a base count.
    ///
    /// Trailing garbage bits in the final byte are cleared so that the
    /// structural-equality invariant holds.
    pub fn from_words(mut words: Vec<u8>, len: usize) -> Result<PackedSeq, SeqError> {
        let need = len.div_ceil(4);
        if words.len() < need {
            return Err(SeqError::OutOfBounds {
                index: len,
                len: words.len() * 4,
            });
        }
        words.truncate(need);
        if !len.is_multiple_of(4) {
            if let Some(tail) = words.last_mut() {
                let keep = (len % 4) * 2;
                *tail &= (1u8 << keep) - 1;
            }
        }
        Ok(PackedSeq { words, len })
    }

    /// Parse from an ASCII byte string of `ACGTacgt` characters.
    pub fn from_ascii(text: &[u8]) -> Result<PackedSeq, SeqError> {
        let mut out = PackedSeq::with_capacity(text.len());
        for &ch in text {
            out.push(Base::from_ascii(ch).ok_or(SeqError::InvalidBase(ch as char))?);
        }
        Ok(out)
    }

    /// Render as an upper-case ASCII string.
    pub fn to_ascii(&self) -> String {
        self.iter().map(|b| b.to_ascii() as char).collect()
    }

    /// Heap bytes used by the packed representation (for the resource
    /// meter in `dnacomp-cloud`).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity()
    }
}

impl fmt::Debug for PackedSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 64 {
            write!(f, "PackedSeq({:?})", self.to_ascii())
        } else {
            write!(
                f,
                "PackedSeq(len={}, head={:?}…)",
                self.len,
                self.slice(0, 32).to_ascii()
            )
        }
    }
}

impl FromIterator<Base> for PackedSeq {
    fn from_iter<T: IntoIterator<Item = Base>>(iter: T) -> Self {
        let it = iter.into_iter();
        let mut out = PackedSeq::with_capacity(it.size_hint().0);
        for b in it {
            out.push(b);
        }
        out
    }
}

impl From<&[Base]> for PackedSeq {
    fn from(bases: &[Base]) -> Self {
        bases.iter().copied().collect()
    }
}

impl<'a> IntoIterator for &'a PackedSeq {
    type Item = Base;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the bases of a [`PackedSeq`].
pub struct Iter<'a> {
    seq: &'a PackedSeq,
    pos: usize,
}

impl Iterator for Iter<'_> {
    type Item = Base;

    #[inline]
    fn next(&mut self) -> Option<Base> {
        if self.pos < self.seq.len {
            let b = self.seq.get(self.pos);
            self.pos += 1;
            Some(b)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.seq.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seq_of(s: &str) -> PackedSeq {
        PackedSeq::from_ascii(s.as_bytes()).unwrap()
    }

    #[test]
    fn empty() {
        let s = PackedSeq::new();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.to_ascii(), "");
        assert_eq!(s.as_words(), &[] as &[u8]);
    }

    #[test]
    fn push_get_across_byte_boundaries() {
        let mut s = PackedSeq::new();
        let pattern = "ACGTTGCAAC";
        for ch in pattern.chars() {
            s.push(Base::try_from(ch).unwrap());
        }
        assert_eq!(s.len(), pattern.len());
        assert_eq!(s.to_ascii(), pattern);
        // 10 bases -> 3 bytes
        assert_eq!(s.as_words().len(), 3);
    }

    #[test]
    fn set_overwrites_without_disturbing_neighbours() {
        let mut s = seq_of("AAAAAAAA");
        s.set(3, Base::G);
        s.set(4, Base::T);
        assert_eq!(s.to_ascii(), "AAAGTAAA");
    }

    #[test]
    fn slice_and_unpack() {
        let s = seq_of("ACGTACGTACGT");
        assert_eq!(s.slice(2, 7).to_ascii(), "GTACG");
        assert_eq!(s.slice(0, 0).len(), 0);
        assert_eq!(
            s.unpack()[..4],
            [Base::A, Base::C, Base::G, Base::T]
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        seq_of("ACG").get(3);
    }

    #[test]
    fn try_get_out_of_bounds_errors() {
        let s = seq_of("ACG");
        assert_eq!(
            s.try_get(5),
            Err(SeqError::OutOfBounds { index: 5, len: 3 })
        );
        assert_eq!(s.try_get(2), Ok(Base::G));
    }

    #[test]
    fn reverse_complement_matches_unpacked() {
        let s = seq_of("AACGTT");
        assert_eq!(s.reverse_complement().to_ascii(), "AACGTT");
        let s = seq_of("AAACCC");
        assert_eq!(s.reverse_complement().to_ascii(), "GGGTTT");
    }

    #[test]
    fn from_words_clears_tail_garbage() {
        // 3 bases in one byte; set garbage in the top 2 bits.
        let words = vec![0b11_10_01_00 | 0b11_000000];
        let s = PackedSeq::from_words(words, 3).unwrap();
        let direct = seq_of("ACG");
        assert_eq!(s, direct);
    }

    #[test]
    fn from_words_rejects_short_buffers() {
        assert!(PackedSeq::from_words(vec![0], 5).is_err());
    }

    #[test]
    fn from_ascii_rejects_ambiguity() {
        assert_eq!(
            PackedSeq::from_ascii(b"ACGN"),
            Err(SeqError::InvalidBase('N'))
        );
    }

    #[test]
    fn equality_is_structural() {
        let a = seq_of("ACGTAC");
        let mut b = PackedSeq::with_capacity(100);
        for base in a.iter() {
            b.push(base);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn iterator_len() {
        let s = seq_of("ACGTA");
        let it = s.iter();
        assert_eq!(it.len(), 5);
        assert_eq!(it.count(), 5);
    }

    proptest! {
        #[test]
        fn ascii_roundtrip(s in "[ACGT]{0,512}") {
            let p = seq_of(&s);
            prop_assert_eq!(p.to_ascii(), s);
        }

        #[test]
        fn words_roundtrip(s in "[ACGT]{0,512}") {
            let p = seq_of(&s);
            let back = PackedSeq::from_words(p.as_words().to_vec(), p.len()).unwrap();
            prop_assert_eq!(back, p);
        }

        #[test]
        fn revcomp_involution(s in "[ACGT]{0,256}") {
            let p = seq_of(&s);
            prop_assert_eq!(p.reverse_complement().reverse_complement(), p);
        }

        #[test]
        fn unpack_matches_iter(s in "[ACGT]{0,256}") {
            let p = seq_of(&s);
            prop_assert_eq!(p.unpack(), p.iter().collect::<Vec<_>>());
        }

        #[test]
        fn slice_agrees_with_string(s in "[ACGT]{1,200}", a in 0usize..200, b in 0usize..200) {
            let p = seq_of(&s);
            let (a, b) = (a % (s.len() + 1), b % (s.len() + 1));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert_eq!(p.slice(lo, hi).to_ascii(), &s[lo..hi]);
        }
    }
}
