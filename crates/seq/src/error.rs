//! Error type for the sequence substrate.

use std::fmt;

/// Errors produced while parsing or constructing sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeqError {
    /// A character that is not one of `ACGTacgt` where a base was required.
    InvalidBase(char),
    /// FASTA input contained no sequence records.
    EmptyFasta,
    /// A FASTA record body contained a character the strict parser rejects.
    ///
    /// Carries the record header and the 1-based line number.
    MalformedRecord {
        /// Header line of the offending record (without `>`).
        header: String,
        /// 1-based line number of the offending body line.
        line: usize,
        /// The offending character.
        ch: char,
    },
    /// An index was out of bounds for the sequence length.
    OutOfBounds {
        /// Requested index.
        index: usize,
        /// Sequence length.
        len: usize,
    },
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::InvalidBase(c) => write!(f, "invalid nucleotide character {c:?}"),
            SeqError::EmptyFasta => write!(f, "FASTA input contained no records"),
            SeqError::MalformedRecord { header, line, ch } => write!(
                f,
                "record {header:?}: invalid character {ch:?} at line {line}"
            ),
            SeqError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for sequence of length {len}")
            }
        }
    }
}

impl std::error::Error for SeqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SeqError::InvalidBase('N').to_string().contains("'N'"));
        assert!(SeqError::EmptyFasta.to_string().contains("no records"));
        let e = SeqError::MalformedRecord {
            header: "chr1".into(),
            line: 3,
            ch: '!',
        };
        assert!(e.to_string().contains("chr1"));
        assert!(e.to_string().contains("line 3"));
        let e = SeqError::OutOfBounds { index: 9, len: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }
}
