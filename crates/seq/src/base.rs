//! The nucleotide alphabet.
//!
//! DNA sequences consist of four bases — adenine, cytosine, guanine and
//! thymine (§II-B of the paper). [`Base`] encodes them in two bits, the
//! density every DNA-specific compressor's "non-repeat" fallback encoding
//! assumes (Table 1: "naïve 2 bits per symbol").

use std::fmt;

/// One nucleotide. The discriminant is the canonical 2-bit code.
///
/// The code assignment (`A=0, C=1, G=2, T=3`) makes complementation a
/// single XOR with `0b11`: `A(00) ↔ T(11)` and `C(01) ↔ G(10)`, mirroring
/// the Watson–Crick pairing the paper's "reverse complement repeat" class
/// relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in 2-bit-code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Number of distinct bases.
    pub const CARDINALITY: usize = 4;

    /// Decode a 2-bit code. Only the low two bits are inspected.
    #[inline]
    pub fn from_code(code: u8) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }

    /// The 2-bit code of this base.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parse an ASCII character (case-insensitive). Returns `None` for
    /// ambiguity codes (N, R, Y, …) and non-nucleotide characters; the
    /// [`crate::fasta`] cleanser decides how those are handled.
    #[inline]
    pub fn from_ascii(ch: u8) -> Option<Base> {
        match ch {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Upper-case ASCII representation.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }

    /// Watson–Crick complement: `A↔T`, `C↔G`.
    #[inline]
    pub fn complement(self) -> Base {
        Base::from_code(self.code() ^ 0b11)
    }

    /// `true` for G or C — used for GC-content statistics.
    #[inline]
    pub fn is_gc(self) -> bool {
        matches!(self, Base::G | Base::C)
    }
}

impl fmt::Display for Base {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii() as char)
    }
}

impl TryFrom<char> for Base {
    type Error = crate::SeqError;

    fn try_from(value: char) -> Result<Self, Self::Error> {
        u8::try_from(value)
            .ok()
            .and_then(Base::from_ascii)
            .ok_or(crate::SeqError::InvalidBase(value))
    }
}

/// Complement every base of `bases` in place and reverse the slice,
/// producing the reverse complement — the second repeat class of §II-B.
pub fn reverse_complement_in_place(bases: &mut [Base]) {
    for b in bases.iter_mut() {
        *b = b.complement();
    }
    bases.reverse();
}

/// Allocate the reverse complement of `bases`.
pub fn reverse_complement(bases: &[Base]) -> Vec<Base> {
    bases.iter().rev().map(|b| b.complement()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), b);
        }
    }

    #[test]
    fn from_code_masks_high_bits() {
        assert_eq!(Base::from_code(0b100), Base::A);
        assert_eq!(Base::from_code(0xFF), Base::T);
    }

    #[test]
    fn ascii_roundtrip_both_cases() {
        for b in Base::ALL {
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
    }

    #[test]
    fn ambiguity_codes_rejected() {
        for ch in [b'N', b'n', b'R', b'Y', b'-', b' ', b'>', b'0'] {
            assert_eq!(Base::from_ascii(ch), None, "{}", ch as char);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::T.complement(), Base::A);
        assert_eq!(Base::C.complement(), Base::G);
        assert_eq!(Base::G.complement(), Base::C);
    }

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn gc_flags() {
        assert!(Base::G.is_gc());
        assert!(Base::C.is_gc());
        assert!(!Base::A.is_gc());
        assert!(!Base::T.is_gc());
    }

    #[test]
    fn reverse_complement_small() {
        // ACGT -> complement TGCA -> reversed ACGT is its own revcomp.
        let s = [Base::A, Base::C, Base::G, Base::T];
        assert_eq!(reverse_complement(&s), s.to_vec());
        // AACG -> revcomp CGTT
        let s = [Base::A, Base::A, Base::C, Base::G];
        assert_eq!(
            reverse_complement(&s),
            vec![Base::C, Base::G, Base::T, Base::T]
        );
    }

    #[test]
    fn reverse_complement_in_place_matches_alloc() {
        let s = [Base::T, Base::T, Base::G, Base::A, Base::C];
        let mut inplace = s;
        reverse_complement_in_place(&mut inplace);
        assert_eq!(inplace.to_vec(), reverse_complement(&s));
    }

    #[test]
    fn try_from_char() {
        assert_eq!(Base::try_from('g').unwrap(), Base::G);
        assert!(Base::try_from('N').is_err());
        assert!(Base::try_from('日').is_err());
    }
}
