//! Repeat search over DNA sequences.
//!
//! DNA-specific compressors exploit the paper's repeat classes (§II-B):
//! DNAX encodes **exact** repeats and **reverse-complement** repeats
//! ("'A' always having a pair with 'T', and 'C' with 'G'"), while
//! GenCompress extends exact seeds into **approximate** repeats with edit
//! operations. This module provides the shared seed-and-extend machinery:
//! a hash-chain index over 2-bit-packed k-mers that answers "longest
//! forward match" and "longest reverse-complement match" queries as the
//! compressor sweeps left to right.

use dnacomp_seq::{common_prefix_len, Base};
use std::collections::HashMap;

/// Orientation of a repeat.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RepeatKind {
    /// `text[dst..dst+len] == text[src..src+len]` with `src < dst`
    /// (LZ-style overlap allowed: `src + len` may exceed `dst`).
    Forward,
    /// `text[dst+l] == complement(text[src_end-1-l])` for `l < len`, with
    /// `src_end ≤ dst` — the copy reads *backwards* from `src_end`,
    /// complementing each base.
    ReverseComplement,
}

/// A repeat found at some destination position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepeatMatch {
    /// Forward: source start. ReverseComplement: source *end* (exclusive).
    pub src: usize,
    /// Match length in bases.
    pub len: usize,
    /// Orientation.
    pub kind: RepeatKind,
}

impl RepeatMatch {
    /// Materialise the referenced bases given the already-decoded prefix.
    /// Used by decoders; returns `None` if the reference is invalid.
    pub fn resolve(&self, prefix: &[Base], dst: usize) -> Option<Vec<Base>> {
        match self.kind {
            RepeatKind::Forward => {
                if self.src >= dst || self.src >= prefix.len() {
                    return None;
                }
                // Overlapping copy (LZ-style): base `src + l` may land in
                // the part this match itself produced; since `src < dst`,
                // that part is already in `out` when needed.
                let mut out: Vec<Base> = Vec::with_capacity(self.len);
                for l in 0..self.len {
                    let idx = self.src + l;
                    let b = if idx < prefix.len() {
                        prefix[idx]
                    } else {
                        *out.get(idx - prefix.len())?
                    };
                    out.push(b);
                }
                Some(out)
            }
            RepeatKind::ReverseComplement => {
                if self.src > dst || self.src > prefix.len() || self.len > self.src {
                    return None;
                }
                Some(
                    (0..self.len)
                        .map(|l| prefix[self.src - 1 - l].complement())
                        .collect(),
                )
            }
        }
    }
}

/// Configuration for the repeat finder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepeatConfig {
    /// Seed k-mer length (4..=31). Longer seeds are faster but miss short
    /// repeats; DNAX-style compressors use ~12–16.
    pub seed_len: usize,
    /// Maximum chain probes per query (effort knob — the paper's
    /// "threshold is what changes the RAM consumption and time").
    pub max_chain: usize,
    /// Search window: only sources within this many bases are considered
    /// (0 = unbounded).
    pub window: usize,
    /// Also search reverse-complement repeats.
    pub search_revcomp: bool,
}

impl Default for RepeatConfig {
    fn default() -> Self {
        RepeatConfig {
            seed_len: 12,
            max_chain: 64,
            window: 0,
            search_revcomp: true,
        }
    }
}

/// Hash-chain index answering longest-match queries as a left-to-right
/// sweep advances. The caller must call [`RepeatFinder::advance`] to
/// publish positions into the index before querying past them.
pub struct RepeatFinder<'a> {
    text: &'a [Base],
    cfg: RepeatConfig,
    /// kmer -> most recent published start position.
    head: HashMap<u64, u32>,
    /// prev[pos] = previous position with the same kmer.
    prev: Vec<u32>,
    /// Positions `< published` are in the index.
    published: usize,
    /// Mask selecting the low `2*seed_len` bits of a k-mer.
    mask: u64,
    /// Rolling k-mer at position `published`, if that window exists.
    /// Maintained incrementally by [`RepeatFinder::advance`] — one
    /// shift-or per published position instead of an O(seed_len) rebuild
    /// — and served to queries landing exactly at `published`, which is
    /// the sweep pattern every compressor uses (`advance(i)` then
    /// `find(i)`).
    cur_kmer: Option<u64>,
}

const NO_POS: u32 = u32::MAX;

impl<'a> RepeatFinder<'a> {
    /// Build an empty index over `text`.
    pub fn new(text: &'a [Base], cfg: RepeatConfig) -> Self {
        assert!((4..=31).contains(&cfg.seed_len), "seed_len out of range");
        RepeatFinder {
            text,
            cfg,
            head: HashMap::new(),
            prev: vec![NO_POS; text.len()],
            published: 0,
            mask: (1u64 << (2 * cfg.seed_len)) - 1,
            cur_kmer: None,
        }
    }

    /// Approximate heap footprint in bytes (for the RAM meter).
    pub fn heap_bytes(&self) -> usize {
        self.prev.capacity() * 4 + self.head.capacity() * (8 + 4 + 8)
    }

    fn kmer_at(&self, pos: usize) -> u64 {
        let mut v = 0u64;
        for b in &self.text[pos..pos + self.cfg.seed_len] {
            v = (v << 2) | b.code() as u64;
        }
        v
    }

    fn revcomp_kmer(&self, mut v: u64) -> u64 {
        // Reverse the k 2-bit groups and complement each (XOR 0b11).
        let k = self.cfg.seed_len;
        let mut out = 0u64;
        for _ in 0..k {
            out = (out << 2) | ((v & 0b11) ^ 0b11);
            v >>= 2;
        }
        out
    }

    /// The k-mer anchored at `dst`: served from the rolling value when
    /// the query lands exactly on `published` (the sweep fast path),
    /// rebuilt in O(seed_len) otherwise.
    fn query_kmer(&self, dst: usize) -> u64 {
        match self.cur_kmer {
            Some(v) if dst == self.published => v,
            _ => self.kmer_at(dst) & self.mask,
        }
    }

    /// Publish all positions `< upto` into the index.
    ///
    /// The per-position k-mer is maintained as a rolling hash — shift
    /// in the one new base instead of rebuilding the window — so a full
    /// sweep costs O(n), not O(n·seed_len).
    pub fn advance(&mut self, upto: usize) {
        let k = self.cfg.seed_len;
        let limit = upto.min(self.text.len().saturating_sub(k - 1));
        while self.published < limit {
            let pos = self.published;
            let kmer = match self.cur_kmer {
                Some(v) => v,
                None => self.kmer_at(pos) & self.mask,
            };
            let old = self.head.insert(kmer, pos as u32).unwrap_or(NO_POS);
            self.prev[pos] = old;
            self.published += 1;
            self.cur_kmer = if pos + k < self.text.len() {
                Some(((kmer << 2) | self.text[pos + k].code() as u64) & self.mask)
            } else {
                None
            };
        }
        self.published = self.published.max(upto.min(self.text.len()));
    }

    /// Longest repeat (of either configured orientation) whose copy starts
    /// at `dst`. Only returns matches of length ≥ `seed_len`.
    pub fn find(&self, dst: usize) -> Option<RepeatMatch> {
        let fwd = self.find_forward(dst);
        if !self.cfg.search_revcomp {
            return fwd;
        }
        let rc = self.find_revcomp(dst);
        match (fwd, rc) {
            (Some(f), Some(r)) => Some(if r.len > f.len { r } else { f }),
            (f, r) => f.or(r),
        }
    }

    /// Longest forward repeat copying to `dst`.
    pub fn find_forward(&self, dst: usize) -> Option<RepeatMatch> {
        let k = self.cfg.seed_len;
        let n = self.text.len();
        if dst + k > n {
            return None;
        }
        let kmer = self.query_kmer(dst);
        let mut cand = *self.head.get(&kmer)?;
        let mut best: Option<RepeatMatch> = None;
        let mut probes = self.cfg.max_chain;
        while cand != NO_POS && probes > 0 {
            let c = cand as usize;
            if self.cfg.window > 0 && dst.saturating_sub(c) > self.cfg.window {
                break;
            }
            // A candidate at or past `dst` can surface when querying behind
            // the published frontier; it is never a usable source (matches
            // copy strictly from the past), so skip it — same policy as
            // `forward_chain`.
            if c < dst {
                // Extend through the SIMD-dispatched prefix kernel. The
                // source window may overlap the destination (LZ-style
                // runs): both views are read-only, and `c < dst` keeps the
                // source slice in bounds (`c + max_len <= n`).
                let max_len = n - dst;
                let l = common_prefix_len(&self.text[c..c + max_len], &self.text[dst..]);
                if l >= k && best.is_none_or(|b| l > b.len) {
                    best = Some(RepeatMatch {
                        src: c,
                        len: l,
                        kind: RepeatKind::Forward,
                    });
                }
            }
            cand = self.prev[c];
            probes -= 1;
        }
        best
    }

    /// All published chain candidates whose seed k-mer matches the one at
    /// `dst`, most recent first, up to `max_chain` entries. Used by
    /// approximate matchers (GenCompress) that score every candidate
    /// rather than just the longest exact extension.
    pub fn forward_chain(&self, dst: usize, max_chain: usize) -> Vec<usize> {
        let k = self.cfg.seed_len;
        if dst + k > self.text.len() {
            return Vec::new();
        }
        let kmer = self.query_kmer(dst);
        let mut out = Vec::new();
        let Some(&mut_first) = self.head.get(&kmer) else {
            return out;
        };
        let mut cand = mut_first;
        while cand != NO_POS && out.len() < max_chain {
            let c = cand as usize;
            if self.cfg.window > 0 && dst.saturating_sub(c) > self.cfg.window {
                break;
            }
            if c < dst {
                out.push(c);
            }
            cand = self.prev[c];
        }
        out
    }

    /// Longest reverse-complement repeat copying to `dst`.
    pub fn find_revcomp(&self, dst: usize) -> Option<RepeatMatch> {
        let k = self.cfg.seed_len;
        let n = self.text.len();
        if dst + k > n {
            return None;
        }
        // A reverse-complement repeat anchors where an earlier k-mer
        // equals revcomp(text[dst..dst+k]).
        let target = self.revcomp_kmer(self.query_kmer(dst));
        let mut cand = *self.head.get(&target)?;
        let mut best: Option<RepeatMatch> = None;
        let mut probes = self.cfg.max_chain;
        while cand != NO_POS && probes > 0 {
            let c = cand as usize; // source k-mer start; src_end = c + k
            let src_end = c + k;
            if src_end <= dst {
                if self.cfg.window == 0 || dst - c <= self.cfg.window {
                    // Extend: text[dst+l] == complement(text[src_end-1-l]).
                    let max_len = (n - dst).min(src_end);
                    let mut l = 0usize;
                    while l < max_len
                        && self.text[dst + l] == self.text[src_end - 1 - l].complement()
                    {
                        l += 1;
                    }
                    if l >= k && best.is_none_or(|b| l > b.len) {
                        best = Some(RepeatMatch {
                            src: src_end,
                            len: l,
                            kind: RepeatKind::ReverseComplement,
                        });
                    }
                } else {
                    break;
                }
            }
            cand = self.prev[c];
            probes -= 1;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::PackedSeq;
    use proptest::prelude::*;

    fn bases(s: &str) -> Vec<Base> {
        PackedSeq::from_ascii(s.as_bytes()).unwrap().unpack()
    }

    fn small_cfg() -> RepeatConfig {
        RepeatConfig {
            seed_len: 4,
            max_chain: 32,
            window: 0,
            search_revcomp: true,
        }
    }

    #[test]
    fn finds_planted_forward_repeat() {
        // "ACGTTGCA" planted at 0 and again at 14.
        let text = bases("ACGTTGCAGGGTTTACGTTGCA");
        let mut f = RepeatFinder::new(&text, small_cfg());
        f.advance(14);
        let m = f.find_forward(14).expect("repeat found");
        assert_eq!(m.src, 0);
        assert_eq!(m.len, 8);
        assert_eq!(m.kind, RepeatKind::Forward);
        let resolved = m.resolve(&text[..14], 14).unwrap();
        assert_eq!(resolved, bases("ACGTTGCA"));
    }

    #[test]
    fn finds_planted_revcomp_repeat() {
        // source "AACCGG" at 0..6; its revcomp is "CCGGTT".
        let text = bases("AACCGGTTTTTTTTCCGGTT");
        let mut f = RepeatFinder::new(&text, small_cfg());
        f.advance(14);
        let m = f.find_revcomp(14).expect("revcomp repeat");
        assert_eq!(m.kind, RepeatKind::ReverseComplement);
        assert_eq!(m.len, 6);
        assert_eq!(m.src, 6); // src_end = 6 → reads text[5],text[4],… complemented
        // Verify via resolve.
        let resolved = m.resolve(&text[..14], 14).unwrap();
        assert_eq!(resolved, bases("CCGGTT"));
    }

    #[test]
    fn no_match_on_unique_text() {
        let text = bases("ACGTACTGATCGATGCTAGCTAGCATCGT");
        let mut f = RepeatFinder::new(&text, RepeatConfig {
            seed_len: 12,
            ..small_cfg()
        });
        f.advance(20);
        assert!(f.find(20).is_none());
    }

    #[test]
    fn overlap_forward_match_resolves() {
        // "AAAAAAAA…": match at dst=4 with src=0 can have len > 4 (overlap).
        let text = bases("AAAAAAAAAAAAAAAA");
        let mut f = RepeatFinder::new(&text, small_cfg());
        f.advance(4);
        let m = f.find_forward(4).expect("run match");
        assert!(m.src < 4);
        assert!(m.len >= 8, "len = {}", m.len);
        let resolved = m.resolve(&text[..4], 4).unwrap();
        assert!(resolved.iter().all(|&b| b == Base::A));
        assert_eq!(resolved.len(), m.len);
    }

    #[test]
    fn window_limits_sources() {
        let mut text = bases("ACGTTGCAGCA");
        text.extend(bases(&"T".repeat(5000)));
        text.extend(bases("ACGTTGCAGCA"));
        let dst = 11 + 5000;
        let mut f = RepeatFinder::new(
            &text,
            RepeatConfig {
                seed_len: 8,
                max_chain: 64,
                window: 100,
                search_revcomp: false,
            },
        );
        f.advance(dst);
        // The only 8-seed match source is at 0, which is outside window.
        assert!(f.find(dst).is_none());
    }

    #[test]
    fn resolve_rejects_invalid_references() {
        let prefix = bases("ACGT");
        let bad = RepeatMatch {
            src: 9,
            len: 3,
            kind: RepeatKind::Forward,
        };
        assert!(bad.resolve(&prefix, 4).is_none());
        let bad = RepeatMatch {
            src: 2,
            len: 5,
            kind: RepeatKind::ReverseComplement,
        };
        assert!(bad.resolve(&prefix, 4).is_none());
    }

    #[test]
    fn advance_is_idempotent_and_monotone() {
        let text = bases(&"ACGT".repeat(50));
        let mut f = RepeatFinder::new(&text, small_cfg());
        f.advance(10);
        f.advance(10);
        f.advance(5); // going backwards must not corrupt
        f.advance(30);
        let m = f.find_forward(30);
        assert!(m.is_some());
    }

    #[test]
    fn rolling_kmer_matches_rebuild_at_every_position() {
        let text = bases(&"ACGTTGCAACGGTACCAGT".repeat(20));
        let mut f = RepeatFinder::new(&text, small_cfg());
        let k = f.cfg.seed_len;
        for dst in 0..=text.len() {
            f.advance(dst);
            if dst + k <= text.len() {
                assert_eq!(f.query_kmer(dst), f.kmer_at(dst) & f.mask, "at {dst}");
            }
        }
    }

    #[test]
    fn sweep_and_jump_advance_agree() {
        // Publishing one position at a time (rolling path) must build the
        // same index as one big jump (cold rebuild path).
        let text = bases(&"ACGATTACAGGACGTT".repeat(25));
        let mut swept = RepeatFinder::new(&text, small_cfg());
        for i in 0..=300 {
            swept.advance(i);
        }
        let mut jumped = RepeatFinder::new(&text, small_cfg());
        jumped.advance(300);
        for dst in 295..text.len().saturating_sub(4) {
            assert_eq!(swept.find(dst), jumped.find(dst), "at {dst}");
            assert_eq!(swept.forward_chain(dst, 8), jumped.forward_chain(dst, 8));
        }
    }

    #[test]
    #[should_panic(expected = "seed_len out of range")]
    fn tiny_seed_rejected() {
        let text = bases("ACGT");
        let _ = RepeatFinder::new(
            &text,
            RepeatConfig {
                seed_len: 2,
                ..RepeatConfig::default()
            },
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn found_matches_are_always_valid(s in "[ACGT]{30,300}", dst_frac in 0.3f64..0.95) {
            let text = bases(&s);
            let dst = ((text.len() as f64) * dst_frac) as usize;
            let mut f = RepeatFinder::new(&text, small_cfg());
            f.advance(dst);
            if let Some(m) = f.find(dst) {
                let resolved = m.resolve(&text[..dst], dst).expect("resolvable");
                prop_assert_eq!(&resolved[..], &text[dst..dst + m.len]);
                prop_assert!(m.len >= 4);
            }
        }

        #[test]
        fn forward_extension_matches_bytewise_reference(
            s in "[ACGT]{40,400}",
            dst_frac in 0.3f64..0.95,
        ) {
            // The SIMD-dispatched extension in `find_forward` must report
            // exactly the length a scalar bytewise loop would.
            let text = bases(&s);
            let dst = ((text.len() as f64) * dst_frac) as usize;
            let mut f = RepeatFinder::new(&text, small_cfg());
            f.advance(dst);
            if let Some(m) = f.find_forward(dst) {
                let n = text.len();
                let mut l = 0usize;
                while dst + l < n && text[m.src + l] == text[dst + l] {
                    l += 1;
                }
                prop_assert_eq!(m.len, l, "src {} dst {}", m.src, dst);
            }
        }

        #[test]
        fn revcomp_matches_verify(s in "[ACGT]{10,80}") {
            // Construct text = s ++ filler ++ revcomp(s); finder must
            // discover a revcomp match at the start of the third part.
            let mut text = bases(&s);
            text.extend(bases("ACGTACGTACGTACGT"));
            let dst = text.len();
            let rc: Vec<Base> = text[..s.len()].iter().rev().map(|b| b.complement()).collect();
            text.extend(rc);
            let mut f = RepeatFinder::new(&text, small_cfg());
            f.advance(dst);
            if s.len() >= 4 {
                let m = f.find(dst);
                prop_assert!(m.is_some());
                let m = m.unwrap();
                let resolved = m.resolve(&text[..dst], dst).expect("resolvable");
                prop_assert_eq!(&resolved[..], &text[dst..dst + m.len]);
            }
        }
    }
}
