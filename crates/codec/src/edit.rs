//! Edit distance and edit scripts for approximate repeats.
//!
//! GenCompress (paper ref \[14\]) encodes *approximate* repeats: a copy of
//! an earlier substring plus a short list of edit operations — insert,
//! delete and replace, exactly the three the paper names (§III-A). This
//! module provides a banded Levenshtein alignment that produces such a
//! script, plus an applier used during decompression.

use dnacomp_seq::Base;

/// One edit operation transforming the *source* substring toward the
/// *target*, positions indexed in the evolving output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Replace the base at `pos` with `base`.
    Replace {
        /// Position in the output being built.
        pos: u32,
        /// New base.
        base: Base,
    },
    /// Insert `base` at `pos`.
    Insert {
        /// Position in the output being built.
        pos: u32,
        /// Inserted base.
        base: Base,
    },
    /// Delete the base at `pos`.
    Delete {
        /// Position in the output being built.
        pos: u32,
    },
}

/// Plain Levenshtein distance (unit costs), full matrix. O(n·m) — used by
/// tests and as the reference for the banded variant.
pub fn levenshtein(a: &[Base], b: &[Base]) -> usize {
    let (n, m) = (a.len(), b.len());
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Banded alignment of `src` onto `dst` with at most `max_edits` edits.
///
/// Returns the edit script (in source-to-target order, with positions in
/// the evolving string) or `None` if the distance exceeds `max_edits`.
/// The band restricts |i - j| ≤ `max_edits`, so cost is
/// O(max(n,m) · max_edits) — GenCompress's edit-bound "constraint at the
/// edit operation using a threshold value".
pub fn banded_edit_script(src: &[Base], dst: &[Base], max_edits: usize) -> Option<Vec<EditOp>> {
    let (n, m) = (src.len(), dst.len());
    if n.abs_diff(m) > max_edits {
        return None;
    }
    let band = max_edits;
    let width = 2 * band + 1;
    const INF: u32 = u32::MAX / 2;
    // dp[i][d] where d = j - i + band ∈ [0, width).
    let mut dp = vec![INF; (n + 1) * width];
    let idx = |i: usize, j: usize| -> Option<usize> {
        let d = j as isize - i as isize + band as isize;
        if (0..width as isize).contains(&d) {
            Some(i * width + d as usize)
        } else {
            None
        }
    };
    if let Some(k) = idx(0, 0) {
        dp[k] = 0;
    }
    for j in 1..=m.min(band) {
        if let Some(k) = idx(0, j) {
            dp[k] = j as u32;
        }
    }
    for i in 1..=n {
        // j ranges over the band around i.
        let j_lo = i.saturating_sub(band);
        let j_hi = (i + band).min(m);
        for j in j_lo..=j_hi {
            let mut best = INF;
            if j == 0 {
                best = i as u32;
            } else {
                if let Some(k) = idx(i - 1, j - 1) {
                    let cost = u32::from(src[i - 1] != dst[j - 1]);
                    best = best.min(dp[k].saturating_add(cost));
                }
                if let Some(k) = idx(i, j - 1) {
                    best = best.min(dp[k].saturating_add(1)); // insert dst[j-1]
                }
            }
            if let Some(k) = idx(i - 1, j) {
                best = best.min(dp[k].saturating_add(1)); // delete src[i-1]
            }
            if let Some(k) = idx(i, j) {
                dp[k] = best;
            }
        }
    }
    let total = *idx(n, m).map(|k| &dp[k])?;
    if total as usize > max_edits {
        return None;
    }
    // Trace back to build the script. Positions are recorded in terms of
    // the output (dst) coordinates, emitted front-to-back at the end.
    let mut ops_rev: Vec<EditOp> = Vec::with_capacity(total as usize);
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        let here = idx(i, j).map(|k| dp[k]).unwrap_or(INF);
        // Prefer the diagonal (match/replace) to keep scripts short.
        if i > 0 && j > 0 {
            if let Some(k) = idx(i - 1, j - 1) {
                let cost = u32::from(src[i - 1] != dst[j - 1]);
                if dp[k].saturating_add(cost) == here {
                    if cost == 1 {
                        ops_rev.push(EditOp::Replace {
                            pos: (j - 1) as u32,
                            base: dst[j - 1],
                        });
                    }
                    i -= 1;
                    j -= 1;
                    continue;
                }
            }
        }
        if j > 0 {
            if let Some(k) = idx(i, j - 1) {
                if dp[k].saturating_add(1) == here {
                    ops_rev.push(EditOp::Insert {
                        pos: (j - 1) as u32,
                        base: dst[j - 1],
                    });
                    j -= 1;
                    continue;
                }
            }
        }
        if i > 0 {
            if let Some(k) = idx(i - 1, j) {
                if dp[k].saturating_add(1) == here {
                    ops_rev.push(EditOp::Delete { pos: j as u32 });
                    i -= 1;
                    continue;
                }
            }
        }
        // Should be unreachable on a consistent DP table.
        return None;
    }
    ops_rev.reverse();
    Some(ops_rev)
}

/// Apply an edit script to `src`, producing the target. Operations must
/// be ordered as produced by [`banded_edit_script`]. Returns `None` if
/// the script references positions out of range (corrupt stream).
pub fn apply_edit_script(src: &[Base], ops: &[EditOp]) -> Option<Vec<Base>> {
    // Replay against dst coordinates: walk src and ops simultaneously.
    let mut out: Vec<Base> = Vec::with_capacity(src.len() + ops.len());
    let mut si = 0usize; // next unconsumed source base
    for op in ops {
        match *op {
            EditOp::Replace { pos, base } => {
                let pos = pos as usize;
                // Copy source bases until output reaches `pos`.
                while out.len() < pos {
                    out.push(*src.get(si)?);
                    si += 1;
                }
                if out.len() != pos {
                    return None;
                }
                out.push(base);
                si += 1; // consumed (and replaced) one source base
                if si > src.len() {
                    return None;
                }
            }
            EditOp::Insert { pos, base } => {
                let pos = pos as usize;
                while out.len() < pos {
                    out.push(*src.get(si)?);
                    si += 1;
                }
                if out.len() != pos {
                    return None;
                }
                out.push(base);
            }
            EditOp::Delete { pos } => {
                let pos = pos as usize;
                while out.len() < pos {
                    out.push(*src.get(si)?);
                    si += 1;
                }
                if out.len() != pos {
                    return None;
                }
                si += 1; // skip one source base
                if si > src.len() {
                    return None;
                }
            }
        }
    }
    // Copy the tail.
    out.extend_from_slice(src.get(si..)?);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::PackedSeq;
    use proptest::prelude::*;

    fn bases(s: &str) -> Vec<Base> {
        PackedSeq::from_ascii(s.as_bytes()).unwrap().unpack()
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein(&bases("ACGT"), &bases("ACGT")), 0);
        assert_eq!(levenshtein(&bases("ACGT"), &bases("AGGT")), 1);
        assert_eq!(levenshtein(&bases("ACGT"), &bases("ACG")), 1);
        assert_eq!(levenshtein(&bases("ACGT"), &bases("AACGT")), 1);
        assert_eq!(levenshtein(&bases(""), &bases("ACG")), 3);
        assert_eq!(levenshtein(&bases("AAAA"), &bases("TTTT")), 4);
    }

    #[test]
    fn identical_gives_empty_script() {
        let s = bases("ACGTACGTAC");
        let script = banded_edit_script(&s, &s, 3).unwrap();
        assert!(script.is_empty());
        assert_eq!(apply_edit_script(&s, &script).unwrap(), s);
    }

    #[test]
    fn single_replace() {
        let src = bases("ACGTACGT");
        let dst = bases("ACGTTCGT");
        let script = banded_edit_script(&src, &dst, 2).unwrap();
        assert_eq!(script.len(), 1);
        assert!(matches!(script[0], EditOp::Replace { pos: 4, .. }));
        assert_eq!(apply_edit_script(&src, &script).unwrap(), dst);
    }

    #[test]
    fn insert_and_delete() {
        let src = bases("ACGT");
        let dst = bases("AACGT"); // insert A at front
        let script = banded_edit_script(&src, &dst, 2).unwrap();
        assert_eq!(script.len(), 1);
        assert_eq!(apply_edit_script(&src, &script).unwrap(), dst);

        let dst = bases("AGT"); // delete C
        let script = banded_edit_script(&src, &dst, 2).unwrap();
        assert_eq!(script.len(), 1);
        assert_eq!(apply_edit_script(&src, &script).unwrap(), dst);
    }

    #[test]
    fn exceeding_budget_returns_none() {
        let src = bases("AAAAAAAA");
        let dst = bases("TTTTTTTT");
        assert!(banded_edit_script(&src, &dst, 3).is_none());
        assert!(banded_edit_script(&src, &dst, 8).is_some());
    }

    #[test]
    fn length_gap_beyond_band_returns_none() {
        let src = bases("ACGT");
        let dst = bases("ACGTACGTACGT");
        assert!(banded_edit_script(&src, &dst, 3).is_none());
    }

    #[test]
    fn script_length_equals_distance() {
        let src = bases("ACGTACGTACGTACGT");
        let dst = bases("ACGAACGTACTTACG");
        let d = levenshtein(&src, &dst);
        let script = banded_edit_script(&src, &dst, 8).unwrap();
        assert_eq!(script.len(), d);
        assert_eq!(apply_edit_script(&src, &script).unwrap(), dst);
    }

    #[test]
    fn apply_rejects_out_of_range() {
        let src = bases("ACGT");
        let bad = [EditOp::Replace {
            pos: 10,
            base: Base::A,
        }];
        assert!(apply_edit_script(&src, &bad).is_none());
        let bad = [EditOp::Delete { pos: 4 }];
        assert!(apply_edit_script(&src, &bad).is_none());
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(banded_edit_script(&[], &[], 0).unwrap(), vec![]);
        let dst = bases("ACG");
        let script = banded_edit_script(&[], &dst, 3).unwrap();
        assert_eq!(script.len(), 3);
        assert_eq!(apply_edit_script(&[], &script).unwrap(), dst);
        let src = bases("ACG");
        let script = banded_edit_script(&src, &[], 3).unwrap();
        assert_eq!(script.len(), 3);
        assert_eq!(apply_edit_script(&src, &script).unwrap(), vec![]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn banded_matches_levenshtein_within_band(a in "[ACGT]{0,40}", b in "[ACGT]{0,40}") {
            let (a, b) = (bases(&a), bases(&b));
            let d = levenshtein(&a, &b);
            match banded_edit_script(&a, &b, 12) {
                Some(script) => {
                    prop_assert!(d <= 12);
                    prop_assert_eq!(script.len(), d);
                    prop_assert_eq!(apply_edit_script(&a, &script).unwrap(), b);
                }
                None => prop_assert!(d > 12),
            }
        }

        #[test]
        fn mutated_copies_have_short_scripts(s in "[ACGT]{20,120}", flips in prop::collection::vec((any::<u16>(), 0u8..3), 0..5) ) {
            let src = bases(&s);
            let mut dst = src.clone();
            for &(pos, delta) in &flips {
                let p = pos as usize % dst.len();
                dst[p] = Base::from_code(dst[p].code().wrapping_add(delta + 1));
            }
            let script = banded_edit_script(&src, &dst, 8).expect("few replaces fit band");
            prop_assert!(script.len() <= flips.len());
            prop_assert_eq!(apply_edit_script(&src, &script).unwrap(), dst);
        }

        #[test]
        fn distance_metric_axioms(a in "[ACGT]{0,25}", b in "[ACGT]{0,25}", c in "[ACGT]{0,25}") {
            let (a, b, c) = (bases(&a), bases(&b), bases(&c));
            let dab = levenshtein(&a, &b);
            let dba = levenshtein(&b, &a);
            prop_assert_eq!(dab, dba);                       // symmetry
            prop_assert_eq!(levenshtein(&a, &a), 0);          // identity
            let dac = levenshtein(&a, &c);
            let dbc = levenshtein(&b, &c);
            prop_assert!(dac <= dab + dbc);                   // triangle
        }
    }
}
