//! Interleaved range asymmetric numeral system (rANS) entropy coder.
//!
//! This is the table-driven fast path behind the [`crate::arith`]
//! `EntropyBackend` seam: the adaptive context models keep producing the
//! same probability estimates they always did, but the bit-serial
//! arithmetic coder is replaced by a byte-renormalized rANS pair. Two
//! independent u32 states are interleaved (slot *i* uses lane `i & 1`)
//! so the decoder's multiply/shift chains overlap in the pipeline.
//!
//! rANS is a LIFO code: the encoder must see the whole symbol stream
//! before it can emit bytes, so [`RansEncoder::push`] only buffers
//! `(start, freq, bits)` slots and [`RansEncoder::finish`] encodes them
//! in reverse. The decoder then streams forward. Determinism contract:
//! both sides must derive **identical** slots from identical model
//! state, which is why the quantizers in this module are pure integer
//! arithmetic ([`quantize4`], [`quantize_bit`]).
//!
//! Wire layout produced by [`RansEncoder::finish`]:
//!
//! ```text
//! [state0: u32 LE][state1: u32 LE][renormalization bytes ...]
//! ```
//!
//! The header states are the encoder's *final* states, which is exactly
//! where the decoder must start. [`RansDecoder::new`] rejects header
//! states below [`RANS_L`]: combined with `freq >= 1` this guarantees
//! every renormalization loop terminates, even on zero-padded reads
//! past a truncated stream — corruption can mis-decode, but it can
//! never hang or overflow.
//!
//! [`FreqTable`] adds the static-distribution layer used by the BWT
//! entropy stage: quantized frequencies summing to exactly
//! `1 << RANS_TABLE_BITS`, serialized as varint counts followed by an
//! FNV-1a checksum, with every count validated *before* any
//! symbol-proportional allocation.

use crate::checksum::Fnv1a;
use crate::error::CodecError;
use crate::varint::{read_u64_le, read_uvarint, write_u64_le, write_uvarint};

/// Lower bound of the normalized state interval: states live in
/// `[RANS_L, RANS_L << 8)` between symbols.
pub const RANS_L: u32 = 1 << 23;

/// Probability scale (log2) for static frequency tables: quantized
/// frequencies sum to exactly `1 << RANS_TABLE_BITS`.
pub const RANS_TABLE_BITS: u32 = 14;

/// Probability scale (log2) for binary (bit-level) coding. Matches the
/// CTW mixer's own `1 << 16` quantization, so binary rANS coding is an
/// exact pass-through of the model's probabilities.
pub const RANS_BIT_BITS: u32 = 16;

/// One buffered symbol: its cumulative start, frequency, and the
/// probability scale it was quantized to. `freq >= 1` always; with
/// `bits <= 16` every field fits the packed width.
#[derive(Clone, Copy, Debug)]
struct Slot {
    start: u16,
    freq: u16,
    bits: u8,
}

/// Buffering rANS encoder over two interleaved states.
///
/// Call [`RansEncoder::push`] once per symbol in stream order, then
/// [`RansEncoder::finish`] to materialize the byte stream.
#[derive(Debug, Default)]
pub struct RansEncoder {
    slots: Vec<Slot>,
}

impl RansEncoder {
    /// Fresh encoder with no buffered symbols.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of symbols buffered so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no symbols have been pushed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Buffer one symbol occupying `[start, start + freq)` out of
    /// `1 << bits`. Requires `freq >= 1`, `start + freq <= 1 << bits`,
    /// and `bits <= 16`; the quantizers in this module guarantee all
    /// three.
    pub fn push(&mut self, start: u32, freq: u32, bits: u32) {
        debug_assert!((1..=16).contains(&bits), "rANS scale out of range");
        debug_assert!(freq >= 1, "rANS symbol with zero frequency");
        debug_assert!(start + freq <= 1 << bits, "rANS slot overflows scale");
        debug_assert!(start <= u16::MAX as u32 && freq <= u16::MAX as u32);
        self.slots.push(Slot {
            start: start as u16,
            freq: freq as u16,
            bits: bits as u8,
        });
    }

    /// Encode a bit against `P(bit = 0) = q0 / 2^16` where
    /// `q0 = quantize_bit(..)` (so `1 <= q0 <= 0xFFFF`).
    pub fn push_bit(&mut self, bit: u8, q0: u32) {
        debug_assert!((1..1 << RANS_BIT_BITS).contains(&q0));
        if bit == 0 {
            self.push(0, q0, RANS_BIT_BITS);
        } else {
            self.push(q0, (1 << RANS_BIT_BITS) - q0, RANS_BIT_BITS);
        }
    }

    /// Encode all buffered symbols (in reverse, as rANS requires) and
    /// return the wire bytes: an 8-byte final-state header followed by
    /// the renormalization stream in decode order.
    pub fn finish(self) -> Vec<u8> {
        let mut states: [u32; 2] = [RANS_L, RANS_L];
        // Renormalization bytes come out in reverse decode order; they
        // are collected and flipped once at the end.
        let mut renorm: Vec<u8> = Vec::with_capacity(self.slots.len() / 2 + 8);
        for (i, slot) in self.slots.iter().enumerate().rev() {
            let x = &mut states[i & 1];
            let freq = slot.freq as u32;
            let bits = slot.bits as u32;
            // Renormalize down so the post-encode state stays in
            // [RANS_L, RANS_L << 8). Upper bound fits u32:
            // (RANS_L >> 16) << 8 == 2^15, times freq <= 0xFFFF < 2^31.
            let x_max = ((RANS_L >> bits) << 8) * freq;
            while *x >= x_max {
                renorm.push((*x & 0xFF) as u8);
                *x >>= 8;
            }
            *x = ((*x / freq) << bits) + (*x % freq) + slot.start as u32;
        }
        renorm.reverse();
        let mut out = Vec::with_capacity(8 + renorm.len());
        out.extend_from_slice(&states[0].to_le_bytes());
        out.extend_from_slice(&states[1].to_le_bytes());
        out.extend_from_slice(&renorm);
        out
    }
}

/// Streaming rANS decoder over the byte layout produced by
/// [`RansEncoder::finish`].
#[derive(Debug)]
pub struct RansDecoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    states: [u32; 2],
    slot: usize,
}

impl<'a> RansDecoder<'a> {
    /// Parse the 8-byte state header. Rejects short input and header
    /// states below [`RANS_L`] (a state of 0 would otherwise spin the
    /// renormalization loop forever on zero padding).
    pub fn new(bytes: &'a [u8]) -> Result<Self, CodecError> {
        if bytes.len() < 8 {
            return Err(CodecError::UnexpectedEof);
        }
        let s0 = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        let s1 = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if s0 < RANS_L || s1 < RANS_L {
            return Err(CodecError::Corrupt("rANS header state below interval bound"));
        }
        Ok(Self {
            bytes,
            pos: 8,
            states: [s0, s1],
            slot: 0,
        })
    }

    /// Low `bits` of the current lane's state: the cumulative-frequency
    /// target the caller resolves to a symbol before [`Self::advance`].
    pub fn target(&self, bits: u32) -> u32 {
        self.states[self.slot & 1] & ((1u32 << bits) - 1)
    }

    /// Consume the current symbol, whose slot `[start, start + freq)`
    /// must contain `self.target(bits)`. Reads past the physical end of
    /// the stream are zero-padded; termination is still guaranteed
    /// because the state never drops to zero (see module docs).
    pub fn advance(&mut self, start: u32, freq: u32, bits: u32) {
        let lane = self.slot & 1;
        self.slot += 1;
        let x = self.states[lane];
        let mask = (1u32 << bits) - 1;
        debug_assert!(start <= (x & mask) && (x & mask) < start + freq);
        let mut x = freq * (x >> bits) + (x & mask) - start;
        while x < RANS_L {
            let byte = self.bytes.get(self.pos).copied().unwrap_or(0);
            self.pos += 1;
            x = (x << 8) | byte as u32;
        }
        self.states[lane] = x;
    }

    /// Decode one bit given the same `q0` the encoder used.
    pub fn decode_bit(&mut self, q0: u32) -> u8 {
        debug_assert!((1..1 << RANS_BIT_BITS).contains(&q0));
        let t = self.target(RANS_BIT_BITS);
        if t < q0 {
            self.advance(0, q0, RANS_BIT_BITS);
            0
        } else {
            self.advance(q0, (1 << RANS_BIT_BITS) - q0, RANS_BIT_BITS);
            1
        }
    }

    /// True once every well-formed symbol has been decoded: both states
    /// are back at the encoder's initial value and the physical byte
    /// stream is fully consumed. Corrupt streams generally fail this,
    /// making it a cheap end-of-payload integrity check.
    pub fn is_drained(&self) -> bool {
        self.pos >= self.bytes.len() && self.states == [RANS_L, RANS_L]
    }
}

/// Quantize a 4-symbol count row to frequencies summing to exactly
/// `1 << RANS_TABLE_BITS`, each `>= 1`, deterministically (pure integer
/// arithmetic: encode and decode derive identical tables from identical
/// counts).
pub fn quantize4(counts: &[u32; 4]) -> [u32; 4] {
    let t = 1u64 << RANS_TABLE_BITS;
    let total: u64 = counts.iter().map(|&c| c as u64).sum::<u64>().max(1);
    let mut q = [0u32; 4];
    for s in 0..4 {
        q[s] = ((counts[s] as u64 * t / total) as u32).max(1);
    }
    let mut sum: i64 = q.iter().map(|&v| v as i64).sum();
    // Largest-first fix-up: adjust the biggest entry (lowest index on
    // ties) one step at a time until the row sums exactly to the scale,
    // never dropping any entry below 1. |sum - t| <= 4, so this is a
    // handful of iterations at most.
    while sum != t as i64 {
        if sum < t as i64 {
            let i = max_index(&q, |_| true);
            q[i] += 1;
            sum += 1;
        } else {
            let i = max_index(&q, |v| v > 1);
            q[i] -= 1;
            sum -= 1;
        }
    }
    q
}

/// Index of the largest entry passing `keep` (lowest index wins ties).
fn max_index(q: &[u32; 4], keep: impl Fn(u32) -> bool) -> usize {
    let mut best = usize::MAX;
    let mut best_v = 0u32;
    for (i, &v) in q.iter().enumerate() {
        if keep(v) && (best == usize::MAX || v > best_v) {
            best = i;
            best_v = v;
        }
    }
    debug_assert!(best != usize::MAX);
    best
}

/// Quantize `P(bit = 0) = p0_num / p_den` to a 16-bit scale, clamped to
/// `[1, 0xFFFF]` so both symbols keep nonzero frequency. When `p_den`
/// is already `1 << 16` (the CTW mixer's native scale) this is an exact
/// pass-through.
pub fn quantize_bit(p0_num: u32, p_den: u32) -> u32 {
    debug_assert!(p0_num < p_den && p0_num > 0);
    if p_den == 1 << RANS_BIT_BITS {
        return p0_num.clamp(1, (1 << RANS_BIT_BITS) - 1);
    }
    (((p0_num as u64) << RANS_BIT_BITS) / p_den as u64).clamp(1, (1 << RANS_BIT_BITS) - 1) as u32
}

/// A static quantized frequency table for rANS coding, with a
/// checksummed wire form for container headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreqTable {
    /// Quantized frequencies, each `>= 1`, summing to exactly
    /// `1 << RANS_TABLE_BITS`.
    freqs: Vec<u32>,
    /// Exclusive prefix sums of `freqs`.
    starts: Vec<u32>,
}

impl FreqTable {
    /// Build a table from raw symbol counts (zero counts allowed; every
    /// symbol still gets frequency `>= 1`). `counts` must be non-empty
    /// and hold at most `1 << RANS_TABLE_BITS` symbols.
    pub fn build(counts: &[u32]) -> Self {
        assert!(!counts.is_empty() && counts.len() <= 1 << RANS_TABLE_BITS);
        let t = 1u64 << RANS_TABLE_BITS;
        let total: u64 = counts.iter().map(|&c| c as u64).sum::<u64>().max(1);
        let mut freqs: Vec<u32> = counts
            .iter()
            .map(|&c| ((c as u64 * t / total) as u32).max(1))
            .collect();
        let mut sum: i64 = freqs.iter().map(|&v| v as i64).sum();
        while sum != t as i64 {
            let step_up = sum < t as i64;
            let mut best = usize::MAX;
            let mut best_v = 0u32;
            for (i, &v) in freqs.iter().enumerate() {
                if (step_up || v > 1) && (best == usize::MAX || v > best_v) {
                    best = i;
                    best_v = v;
                }
            }
            if step_up {
                freqs[best] += 1;
                sum += 1;
            } else {
                freqs[best] -= 1;
                sum -= 1;
            }
        }
        Self::from_freqs(freqs)
    }

    fn from_freqs(freqs: Vec<u32>) -> Self {
        let mut starts = Vec::with_capacity(freqs.len());
        let mut acc = 0u32;
        for &f in &freqs {
            starts.push(acc);
            acc += f;
        }
        debug_assert_eq!(acc, 1 << RANS_TABLE_BITS);
        Self { freqs, starts }
    }

    /// Number of symbols in the table.
    pub fn n_symbols(&self) -> usize {
        self.freqs.len()
    }

    /// `(start, freq)` slot for `sym`.
    pub fn slot(&self, sym: usize) -> (u32, u32) {
        (self.starts[sym], self.freqs[sym])
    }

    /// Resolve a decoder target (low [`RANS_TABLE_BITS`] state bits) to
    /// the symbol whose cumulative interval contains it.
    pub fn symbol_for(&self, target: u32) -> usize {
        debug_assert!(target < 1 << RANS_TABLE_BITS);
        // partition_point returns the first start > target; the owning
        // symbol is the one before it.
        self.starts.partition_point(|&s| s <= target) - 1
    }

    /// Encode `sym` through `enc`.
    pub fn encode(&self, enc: &mut RansEncoder, sym: usize) {
        let (start, freq) = self.slot(sym);
        enc.push(start, freq, RANS_TABLE_BITS);
    }

    /// Decode one symbol from `dec`.
    pub fn decode(&self, dec: &mut RansDecoder<'_>) -> usize {
        let sym = self.symbol_for(dec.target(RANS_TABLE_BITS));
        let (start, freq) = self.slot(sym);
        dec.advance(start, freq, RANS_TABLE_BITS);
        sym
    }

    /// Serialize: `uvarint n_symbols`, `n` × `uvarint freq`, then a
    /// fixed u64 FNV-1a checksum of the preceding header bytes.
    pub fn write(&self, out: &mut Vec<u8>) {
        let head = out.len();
        write_uvarint(out, self.freqs.len() as u64);
        for &f in &self.freqs {
            write_uvarint(out, f as u64);
        }
        let mut h = Fnv1a::new();
        h.update(&out[head..]);
        write_u64_le(out, h.digest());
    }

    /// Parse and validate a table written by [`Self::write`].
    ///
    /// Every structural check runs *before* the symbol-proportional
    /// allocation: a forged count cannot make the decoder reserve more
    /// than the input could possibly back (each frequency costs at
    /// least one byte on the wire), and frequencies are bounds- and
    /// sum-checked as they stream in. The trailing FNV-1a checksum
    /// catches in-flight damage the structural checks might miss.
    pub fn read(
        bytes: &[u8],
        pos: &mut usize,
        max_symbols: usize,
    ) -> Result<Self, CodecError> {
        let head = *pos;
        let n = read_uvarint(bytes, pos)?;
        if n == 0 {
            return Err(CodecError::Corrupt("rANS table with zero symbols"));
        }
        if n > max_symbols as u64 {
            return Err(CodecError::Corrupt("rANS table symbol count exceeds alphabet"));
        }
        // Affordability: n frequencies need at least n wire bytes (plus
        // the 8-byte checksum); refuse a lying count before allocating.
        let remaining = bytes.len().saturating_sub(*pos);
        if (n as usize).saturating_add(8) > remaining {
            return Err(CodecError::Corrupt("rANS table longer than its container"));
        }
        let n = n as usize;
        let t = 1u64 << RANS_TABLE_BITS;
        let mut freqs = Vec::with_capacity(n);
        let mut sum = 0u64;
        for _ in 0..n {
            let f = read_uvarint(bytes, pos)?;
            if f == 0 {
                return Err(CodecError::Corrupt("rANS table frequency of zero"));
            }
            sum += f;
            if sum > t {
                return Err(CodecError::Corrupt("rANS table frequencies overflow scale"));
            }
            freqs.push(f as u32);
        }
        if sum != t {
            return Err(CodecError::Corrupt("rANS table frequencies do not fill scale"));
        }
        let mut h = Fnv1a::new();
        h.update(&bytes[head..*pos]);
        let expected = read_u64_le(bytes, pos)?;
        let actual = h.digest();
        if expected != actual {
            return Err(CodecError::ChecksumMismatch { expected, actual });
        }
        Ok(Self::from_freqs(freqs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stream_roundtrips() {
        let bytes = RansEncoder::new().finish();
        assert_eq!(bytes.len(), 8);
        let dec = RansDecoder::new(&bytes).unwrap();
        assert!(dec.is_drained());
    }

    #[test]
    fn short_header_is_typed_error() {
        for len in 0..8 {
            assert_eq!(
                RansDecoder::new(&vec![0xAB; len]).unwrap_err(),
                CodecError::UnexpectedEof
            );
        }
    }

    #[test]
    fn zero_state_header_is_rejected() {
        // A zeroed header would spin the renormalization loop forever
        // on zero padding if it were accepted.
        let bytes = [0u8; 8];
        assert!(matches!(
            RansDecoder::new(&bytes).unwrap_err(),
            CodecError::Corrupt(_)
        ));
    }

    #[test]
    fn static_table_roundtrips() {
        let table = FreqTable::build(&[10, 1, 0, 500, 3]);
        let syms = [0usize, 3, 3, 3, 1, 4, 3, 0, 2, 3, 3];
        let mut enc = RansEncoder::new();
        for &s in &syms {
            table.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut dec = RansDecoder::new(&bytes).unwrap();
        for &s in &syms {
            assert_eq!(table.decode(&mut dec), s);
        }
        assert!(dec.is_drained());
    }

    #[test]
    fn bit_stream_roundtrips_at_native_scale() {
        // q0 at the CTW mixer's 2^16 scale: exact pass-through.
        let plan: Vec<(u8, u32)> = (0..2000)
            .map(|i| ((i % 3 == 0) as u8, 1 + (i * 2654435761u64 as usize % 65534) as u32))
            .collect();
        let mut enc = RansEncoder::new();
        for &(bit, q0) in &plan {
            enc.push_bit(bit, q0);
        }
        let bytes = enc.finish();
        let mut dec = RansDecoder::new(&bytes).unwrap();
        for &(bit, q0) in &plan {
            assert_eq!(dec.decode_bit(q0), bit);
        }
        assert!(dec.is_drained());
    }

    #[test]
    fn quantize4_invariants() {
        for counts in [
            [0u32, 0, 0, 0],
            [1, 1, 1, 1],
            [1_000_000, 0, 0, 1],
            [u32::MAX, u32::MAX, u32::MAX, u32::MAX],
            [3, 0, 7, 0],
        ] {
            let q = quantize4(&counts);
            assert_eq!(q.iter().map(|&v| v as u64).sum::<u64>(), 1 << RANS_TABLE_BITS);
            assert!(q.iter().all(|&v| v >= 1), "{q:?}");
            // Determinism.
            assert_eq!(q, quantize4(&counts));
        }
    }

    #[test]
    fn quantize_bit_invariants() {
        assert_eq!(quantize_bit(40_000, 1 << 16), 40_000);
        assert_eq!(quantize_bit(1, 1 << 16), 1);
        assert_eq!(quantize_bit(65_535, 1 << 16), 65_535);
        assert_eq!(quantize_bit(1, 2), 1 << 15);
        for (num, den) in [(1u32, 3u32), (2, 3), (7, 11), (999, 1000)] {
            let q = quantize_bit(num, den);
            assert!((1..1 << 16).contains(&q));
        }
    }

    #[test]
    fn freq_table_header_roundtrips() {
        let table = FreqTable::build(&[5, 0, 9, 2, 1]);
        let mut out = vec![0xEE; 3]; // leading junk the cursor skips
        let mut pos = out.len();
        table.write(&mut out);
        let back = FreqTable::read(&out, &mut pos, 8).unwrap();
        assert_eq!(back, table);
        assert_eq!(pos, out.len());
    }

    #[test]
    fn freq_table_rejects_forged_headers() {
        let table = FreqTable::build(&[5, 0, 9, 2, 1]);
        let mut wire = Vec::new();
        table.write(&mut wire);

        // Truncation at every prefix length.
        for len in 0..wire.len() {
            let mut pos = 0;
            assert!(FreqTable::read(&wire[..len], &mut pos, 8).is_err());
        }
        // Zero symbol count.
        let mut forged = wire.clone();
        forged[0] = 0;
        let mut pos = 0;
        assert!(FreqTable::read(&forged, &mut pos, 8).is_err());
        // Count above the alphabet cap.
        let mut pos = 0;
        assert!(FreqTable::read(&wire, &mut pos, 4).is_err());
        // Lying huge count cannot trigger a huge allocation: it fails
        // the affordability check against the physical input length.
        let mut forged = vec![0xFF, 0xFF, 0xFF, 0x7F]; // uvarint ~2^28
        forged.extend_from_slice(&wire[1..]);
        let mut pos = 0;
        assert!(FreqTable::read(&forged, &mut pos, usize::MAX).is_err());
        // Single-bit damage anywhere is caught (structurally or by the
        // checksum).
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut flipped = wire.clone();
                flipped[byte] ^= 1 << bit;
                let mut pos = 0;
                assert!(
                    FreqTable::read(&flipped, &mut pos, 8).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn interleaved_lanes_share_one_stream() {
        // Alternating wildly different distributions across the two
        // lanes still roundtrips: lane assignment is positional.
        let table_a = FreqTable::build(&[1000, 1, 1, 1]);
        let table_b = FreqTable::build(&[1, 1, 1, 1000]);
        let syms: Vec<usize> = (0..999).map(|i| i % 4).collect();
        let mut enc = RansEncoder::new();
        for (i, &s) in syms.iter().enumerate() {
            let t = if i % 2 == 0 { &table_a } else { &table_b };
            t.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut dec = RansDecoder::new(&bytes).unwrap();
        for (i, &s) in syms.iter().enumerate() {
            let t = if i % 2 == 0 { &table_a } else { &table_b };
            assert_eq!(t.decode(&mut dec), s);
        }
        assert!(dec.is_drained());
    }

    proptest! {
        #[test]
        fn random_symbol_streams_roundtrip(
            counts in prop::collection::vec(0u32..10_000, 1..12),
            picks in prop::collection::vec(any::<u16>(), 0..2000),
        ) {
            let table = FreqTable::build(&counts);
            let syms: Vec<usize> =
                picks.iter().map(|&p| p as usize % table.n_symbols()).collect();
            let mut enc = RansEncoder::new();
            for &s in &syms {
                table.encode(&mut enc, s);
            }
            let bytes = enc.finish();
            let mut dec = RansDecoder::new(&bytes).unwrap();
            for &s in &syms {
                prop_assert_eq!(table.decode(&mut dec), s);
            }
            prop_assert!(dec.is_drained());
        }

        #[test]
        fn random_bit_streams_roundtrip(
            plan in prop::collection::vec((any::<bool>(), 1u32..65_536), 0..2000),
        ) {
            let mut enc = RansEncoder::new();
            for &(bit, q0) in &plan {
                enc.push_bit(bit as u8, q0);
            }
            let bytes = enc.finish();
            let mut dec = RansDecoder::new(&bytes).unwrap();
            for &(bit, q0) in &plan {
                prop_assert_eq!(dec.decode_bit(q0), bit as u8);
            }
            prop_assert!(dec.is_drained());
        }

        #[test]
        fn freq_table_wire_roundtrip(
            counts in prop::collection::vec(0u32..1_000_000, 1..40),
        ) {
            let table = FreqTable::build(&counts);
            let mut wire = Vec::new();
            table.write(&mut wire);
            let mut pos = 0;
            let back = FreqTable::read(&wire, &mut pos, counts.len()).unwrap();
            prop_assert_eq!(back, table);
            prop_assert_eq!(pos, wire.len());
        }
    }
}
