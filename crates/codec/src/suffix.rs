//! Suffix arrays and LCP tables.
//!
//! The paper's survey (§III-A) includes two suffix-structure compressors:
//! Cfact "searches longest exact repeats in two passes. First pass suffix
//! tree, second pass encoding", and DNAC "constructs suffix tree in first
//! phase to find exact repeats". A suffix *array* plus LCP table carries
//! the same information at a fraction of the memory; this module provides
//! both (prefix-doubling construction, Kasai LCP) for the Cfact-style
//! two-pass compressor in `dnacomp-algos`.

use dnacomp_seq::Base;

/// Suffix array over a DNA sequence, with its inverse and LCP table.
///
/// ```
/// use dnacomp_codec::suffix::SuffixArray;
/// use dnacomp_seq::PackedSeq;
/// let text = PackedSeq::from_ascii(b"ACGTACGA").unwrap().unpack();
/// let sa = SuffixArray::build(&text);
/// let (a, b, len) = sa.longest_repeat().unwrap();
/// assert_eq!(len, 3);                             // "ACG" twice
/// assert_eq!((a.min(b), a.max(b)), (0, 4));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuffixArray {
    /// `sa[r]` = start position of the rank-`r` suffix.
    sa: Vec<u32>,
    /// `rank[i]` = rank of the suffix starting at `i`.
    rank: Vec<u32>,
    /// `lcp[r]` = longest common prefix of suffixes `sa[r-1]` and
    /// `sa[r]` (`lcp[0] = 0`).
    lcp: Vec<u32>,
}

impl SuffixArray {
    /// Build by prefix doubling, O(n log² n) with sorting — fine for the
    /// megabase scale this corpus uses.
    pub fn build(text: &[Base]) -> SuffixArray {
        let n = text.len();
        if n == 0 {
            return SuffixArray {
                sa: Vec::new(),
                rank: Vec::new(),
                lcp: Vec::new(),
            };
        }
        let mut sa: Vec<u32> = (0..n as u32).collect();
        let mut rank: Vec<i64> = text.iter().map(|b| b.code() as i64).collect();
        let mut tmp: Vec<i64> = vec![0; n];
        let mut k = 1usize;
        loop {
            let key = |i: usize| -> (i64, i64) {
                let second = if i + k < n { rank[i + k] } else { -1 };
                (rank[i], second)
            };
            sa.sort_unstable_by_key(|&a| key(a as usize));
            tmp[sa[0] as usize] = 0;
            for w in 1..n {
                let prev = sa[w - 1] as usize;
                let cur = sa[w] as usize;
                tmp[cur] = tmp[prev] + i64::from(key(prev) != key(cur));
            }
            rank.copy_from_slice(&tmp);
            if rank[sa[n - 1] as usize] as usize == n - 1 {
                break;
            }
            k *= 2;
        }
        let rank_u: Vec<u32> = {
            let mut r = vec![0u32; n];
            for (pos, &s) in sa.iter().enumerate() {
                r[s as usize] = pos as u32;
            }
            r
        };
        let lcp = kasai(text, &sa, &rank_u);
        SuffixArray {
            sa,
            rank: rank_u,
            lcp,
        }
    }

    /// The suffix array (ranks → positions).
    pub fn positions(&self) -> &[u32] {
        &self.sa
    }

    /// The inverse permutation (positions → ranks).
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }

    /// The LCP table (Kasai).
    pub fn lcp(&self) -> &[u32] {
        &self.lcp
    }

    /// Length of the underlying text.
    pub fn len(&self) -> usize {
        self.sa.len()
    }

    /// `true` when built over the empty text.
    pub fn is_empty(&self) -> bool {
        self.sa.is_empty()
    }

    /// Approximate heap footprint (for the RAM meter).
    pub fn heap_bytes(&self) -> usize {
        (self.sa.capacity() + self.rank.capacity() + self.lcp.capacity()) * 4
    }

    /// Approximate transient heap used while building the
    /// [`prev_occurrence_table`](Self::prev_occurrence_table): the RMQ
    /// segment tree over `lcp` plus the ordered rank set. Callers that
    /// meter RAM should add this to [`heap_bytes`](Self::heap_bytes) for
    /// the table-construction phase.
    pub fn prev_table_heap_bytes(&self) -> usize {
        let n = self.len();
        let tree = 2 * n.next_power_of_two().max(1) * 4;
        // BTreeSet<u32>: ~8 bytes/entry amortised (key + node overhead).
        tree + n * 8
    }

    /// The longest repeated substring: `(position_a, position_b, len)`,
    /// or `None` if nothing repeats.
    pub fn longest_repeat(&self) -> Option<(usize, usize, usize)> {
        let (r, &l) = self
            .lcp
            .iter()
            .enumerate()
            .max_by_key(|&(_, &l)| l)?;
        if l == 0 {
            return None;
        }
        Some((self.sa[r - 1] as usize, self.sa[r] as usize, l as usize))
    }

    /// For every text position `i`, the longest match with any *earlier*
    /// position, as `(src, len)` — the "previous occurrence" table a
    /// Cfact-style encoder consumes.
    ///
    /// For the suffix of rank `r`, the best earlier-position match is
    /// attained at the nearest rank above or below whose suffix starts
    /// earlier in the text; its length is the range-minimum of `lcp`
    /// between them. Positions are inserted in text order into an ordered
    /// set of ranks, with a segment tree answering the LCP range minima —
    /// O(n log n) overall.
    pub fn prev_occurrence_table(&self) -> Vec<(u32, u32)> {
        let n = self.len();
        let mut out = vec![(0u32, 0u32); n];
        if n < 2 {
            return out;
        }
        let rmq = MinSegTree::build(&self.lcp);
        let mut seen: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        seen.insert(self.rank[0]);
        #[allow(clippy::needless_range_loop)] // i is the text position, not just an index
        for i in 1..n {
            let r = self.rank[i];
            let mut best: (u32, u32) = (0, 0);
            // Nearest earlier-position suffix below in rank order.
            if let Some(&pred) = seen.range(..r).next_back() {
                // LCP(pred, r) = min lcp[pred+1 ..= r].
                let l = rmq.min(pred as usize + 1, r as usize);
                if l > best.1 {
                    best = (self.sa[pred as usize], l);
                }
            }
            // Nearest earlier-position suffix above in rank order.
            if let Some(&succ) = seen.range(r + 1..).next() {
                let l = rmq.min(r as usize + 1, succ as usize);
                if l > best.1 {
                    best = (self.sa[succ as usize], l);
                }
            }
            out[i] = best;
            seen.insert(r);
        }
        out
    }
}

/// Minimal iterative segment tree for range-minimum queries over `u32`.
struct MinSegTree {
    size: usize,
    tree: Vec<u32>,
}

impl MinSegTree {
    fn build(values: &[u32]) -> MinSegTree {
        let size = values.len().next_power_of_two().max(1);
        let mut tree = vec![u32::MAX; 2 * size];
        tree[size..size + values.len()].copy_from_slice(values);
        for i in (1..size).rev() {
            tree[i] = tree[2 * i].min(tree[2 * i + 1]);
        }
        MinSegTree { size, tree }
    }

    /// Minimum over the inclusive index range `[lo, hi]`.
    fn min(&self, lo: usize, hi: usize) -> u32 {
        debug_assert!(lo <= hi && hi < self.size);
        let mut lo = lo + self.size;
        let mut hi = hi + self.size + 1;
        let mut m = u32::MAX;
        while lo < hi {
            if lo & 1 == 1 {
                m = m.min(self.tree[lo]);
                lo += 1;
            }
            if hi & 1 == 1 {
                hi -= 1;
                m = m.min(self.tree[hi]);
            }
            lo /= 2;
            hi /= 2;
        }
        m
    }
}

/// Kasai's LCP algorithm, O(n).
fn kasai(text: &[Base], sa: &[u32], rank: &[u32]) -> Vec<u32> {
    let n = text.len();
    let mut lcp = vec![0u32; n];
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r > 0 {
            let j = sa[r - 1] as usize;
            while i + h < n && j + h < n && text[i + h] == text[j + h] {
                h += 1;
            }
            lcp[r] = h as u32;
            h = h.saturating_sub(1);
        } else {
            h = 0;
        }
    }
    lcp
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::PackedSeq;
    use proptest::prelude::*;

    fn bases(s: &str) -> Vec<Base> {
        PackedSeq::from_ascii(s.as_bytes()).unwrap().unpack()
    }

    fn naive_sa(text: &[Base]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..text.len() as u32).collect();
        sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        sa
    }

    #[test]
    fn empty_and_single() {
        let sa = SuffixArray::build(&[]);
        assert!(sa.is_empty());
        assert!(sa.longest_repeat().is_none());
        let sa = SuffixArray::build(&bases("A"));
        assert_eq!(sa.positions(), &[0]);
        assert!(sa.longest_repeat().is_none());
    }

    #[test]
    fn banana_like_example() {
        // "ACGTACG": suffix order determined by hand is checked against
        // the naive construction.
        let text = bases("ACGTACG");
        let sa = SuffixArray::build(&text);
        assert_eq!(sa.positions(), naive_sa(&text).as_slice());
        // Longest repeat is "ACG" (positions 0 and 4).
        let (a, b, l) = sa.longest_repeat().unwrap();
        assert_eq!(l, 3);
        assert_eq!((a.min(b), a.max(b)), (0, 4));
    }

    #[test]
    fn lcp_matches_definition() {
        let text = bases("GATTACAGATTACA");
        let sa = SuffixArray::build(&text);
        let pos = sa.positions();
        for r in 1..pos.len() {
            let (i, j) = (pos[r - 1] as usize, pos[r] as usize);
            let mut l = 0;
            while i + l < text.len() && j + l < text.len() && text[i + l] == text[j + l] {
                l += 1;
            }
            assert_eq!(sa.lcp()[r] as usize, l, "rank {r}");
        }
    }

    #[test]
    fn ranks_are_inverse_of_positions() {
        let text = bases("ACGTACGTTGCA");
        let sa = SuffixArray::build(&text);
        for (r, &p) in sa.positions().iter().enumerate() {
            assert_eq!(sa.ranks()[p as usize] as usize, r);
        }
    }

    #[test]
    fn homopolymer() {
        let text = bases(&"A".repeat(50));
        let sa = SuffixArray::build(&text);
        // Suffixes sort longest-last? For AAAA…, shorter suffixes are
        // prefixes of longer ones → ascending by length: positions
        // descending.
        let expect: Vec<u32> = (0..50u32).rev().collect();
        assert_eq!(sa.positions(), expect.as_slice());
        let (_, _, l) = sa.longest_repeat().unwrap();
        assert_eq!(l, 49);
    }

    #[test]
    fn prev_occurrence_finds_planted_repeat() {
        let text = bases("ACGTTGCAGGGTTTACGTTGCA");
        let sa = SuffixArray::build(&text);
        let table = sa.prev_occurrence_table();
        // Position 14 repeats position 0 for 8 bases.
        let (src, len) = table[14];
        assert_eq!(src, 0);
        assert_eq!(len, 8);
    }

    #[test]
    fn prev_occurrence_sources_are_earlier_and_correct() {
        let text = bases("ACGTACGTTGCAACGGTACGT");
        let sa = SuffixArray::build(&text);
        for (i, &(src, len)) in sa.prev_occurrence_table().iter().enumerate() {
            if len > 0 {
                assert!((src as usize) < i);
                for l in 0..len as usize {
                    assert_eq!(text[src as usize + l], text[i + l], "i={i} l={l}");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn matches_naive_construction(s in "[ACGT]{1,300}") {
            let text = bases(&s);
            let sa = SuffixArray::build(&text);
            let naive = naive_sa(&text);
            prop_assert_eq!(sa.positions(), naive.as_slice());
        }

        #[test]
        fn prev_occurrence_is_maximal(s in "[ACGT]{2,120}") {
            // The reported match must be correct AND no earlier position
            // may match longer.
            let text = bases(&s);
            let sa = SuffixArray::build(&text);
            let table = sa.prev_occurrence_table();
            for (i, &(src, len)) in table.iter().enumerate() {
                // Correctness.
                for l in 0..len as usize {
                    prop_assert_eq!(text[src as usize + l], text[i + l]);
                }
                // Maximality against brute force (overlap allowed, as
                // with suffix comparison).
                let mut best = 0usize;
                for j in 0..i {
                    let mut l = 0usize;
                    while i + l < text.len() && j + l < text.len() && text[j + l] == text[i + l] {
                        l += 1;
                    }
                    best = best.max(l);
                }
                prop_assert_eq!(len as usize, best, "position {}", i);
            }
        }
    }
}
