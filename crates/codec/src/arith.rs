//! Integer arithmetic coder (Witten–Neal–Cleary style, 32-bit registers).
//!
//! This is the entropy-coding backend the paper's DNA compressors share:
//! DNAX encodes non-repeat regions arithmetically, BioCompress-2 and
//! DNAPack use order-2 arithmetic coding, and CTW drives the binary
//! encoder with its weighted probabilities (Table 1).
//!
//! The coder works on cumulative frequency ranges `[lo, hi) / total` and
//! performs the classic E1/E2 renormalisation plus E3 (pending-bit)
//! underflow handling. Precision is 32 bits; `total` must not exceed
//! [`MAX_TOTAL`] so that every symbol keeps a nonzero code range.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;
use crate::rans::{
    quantize4, quantize_bit, RansDecoder, RansEncoder, RANS_BIT_BITS, RANS_TABLE_BITS,
};

const PRECISION: u32 = 32;
const TOP: u64 = (1 << PRECISION) - 1;
const HALF: u64 = 1 << (PRECISION - 1);
const QUARTER: u64 = 1 << (PRECISION - 2);
const THREE_QUARTERS: u64 = 3 * QUARTER;

/// Maximum allowed `total` of a frequency distribution (2^24). Keeping
/// `total ≤ range/4` guarantees `range/total ≥ 1` after renormalisation,
/// so no symbol's interval collapses.
pub const MAX_TOTAL: u64 = 1 << 24;

/// Arithmetic encoder writing to an internal [`BitWriter`].
#[derive(Clone, Debug)]
pub struct ArithEncoder {
    low: u64,
    high: u64,
    pending: u64,
    out: BitWriter,
}

impl Default for ArithEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ArithEncoder {
    /// Fresh encoder.
    pub fn new() -> Self {
        ArithEncoder {
            low: 0,
            high: TOP,
            pending: 0,
            out: BitWriter::new(),
        }
    }

    /// Encode a symbol occupying the cumulative range `[cum_lo, cum_hi)`
    /// out of `total`.
    ///
    /// # Panics
    /// Debug-asserts `cum_lo < cum_hi ≤ total ≤ MAX_TOTAL`.
    pub fn encode(&mut self, cum_lo: u32, cum_hi: u32, total: u32) {
        let (cum_lo, cum_hi, total) = (cum_lo as u64, cum_hi as u64, total as u64);
        debug_assert!(cum_lo < cum_hi && cum_hi <= total);
        debug_assert!(total <= MAX_TOTAL);
        let range = self.high - self.low + 1;
        self.high = self.low + range * cum_hi / total - 1;
        self.low += range * cum_lo / total;
        loop {
            if self.high < HALF {
                self.emit(false);
            } else if self.low >= HALF {
                self.emit(true);
                self.low -= HALF;
                self.high -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTERS {
                self.pending += 1;
                self.low -= QUARTER;
                self.high -= QUARTER;
            } else {
                break;
            }
            self.low <<= 1;
            self.high = (self.high << 1) | 1;
        }
    }

    /// Encode one bit with probability `p0_num/p_den` of being zero.
    /// Convenience wrapper used by the CTW compressor.
    pub fn encode_bit(&mut self, bit: bool, p0_num: u32, p_den: u32) {
        debug_assert!(0 < p0_num && p0_num < p_den);
        if bit {
            self.encode(p0_num, p_den, p_den);
        } else {
            self.encode(0, p0_num, p_den);
        }
    }

    fn emit(&mut self, bit: bool) {
        self.out.push_bit(bit);
        for _ in 0..self.pending {
            self.out.push_bit(!bit);
        }
        self.pending = 0;
    }

    /// Flush the final interval and return the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        // Disambiguate the final interval with one more bit (+pending).
        self.pending += 1;
        if self.low < QUARTER {
            self.emit(false);
        } else {
            self.emit(true);
        }
        self.out.into_bytes()
    }

    /// Bits emitted so far (excludes the final flush).
    pub fn bit_len(&self) -> usize {
        self.out.bit_len()
    }
}

/// Arithmetic decoder reading from a [`BitReader`].
///
/// The decoder deliberately reads *past* the physical end of the stream —
/// the encoder's flush guarantees those phantom bits decode correctly as
/// zeros — so the caller must know (from a container header) how many
/// symbols to decode.
#[derive(Clone, Debug)]
pub struct ArithDecoder<'a> {
    low: u64,
    high: u64,
    value: u64,
    input: BitReader<'a>,
}

impl<'a> ArithDecoder<'a> {
    /// Start decoding from `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        let mut input = BitReader::new(bytes);
        let mut value = 0u64;
        for _ in 0..PRECISION {
            value = (value << 1) | input.read_bit_padded() as u64;
        }
        ArithDecoder {
            low: 0,
            high: TOP,
            value,
            input,
        }
    }

    /// The cumulative-frequency slot the next symbol falls into, given the
    /// current model `total`. The caller maps this to a symbol and then
    /// must call [`ArithDecoder::update`] with that symbol's range.
    pub fn decode_target(&self, total: u32) -> u32 {
        let total = total as u64;
        debug_assert!(total <= MAX_TOTAL && total > 0);
        let range = self.high - self.low + 1;
        let target = ((self.value - self.low + 1) * total - 1) / range;
        debug_assert!(target < total);
        target as u32
    }

    /// Narrow the interval to the decoded symbol's range and renormalise.
    pub fn update(&mut self, cum_lo: u32, cum_hi: u32, total: u32) {
        let (cum_lo, cum_hi, total) = (cum_lo as u64, cum_hi as u64, total as u64);
        debug_assert!(cum_lo < cum_hi && cum_hi <= total);
        let range = self.high - self.low + 1;
        self.high = self.low + range * cum_hi / total - 1;
        self.low += range * cum_lo / total;
        loop {
            if self.high < HALF {
                // nothing to subtract
            } else if self.low >= HALF {
                self.low -= HALF;
                self.high -= HALF;
                self.value -= HALF;
            } else if self.low >= QUARTER && self.high < THREE_QUARTERS {
                self.low -= QUARTER;
                self.high -= QUARTER;
                self.value -= QUARTER;
            } else {
                break;
            }
            self.low <<= 1;
            self.high = (self.high << 1) | 1;
            self.value = (self.value << 1) | self.input.read_bit_padded() as u64;
        }
    }

    /// Decode one bit given probability `p0_num/p_den` of zero — the
    /// mirror of [`ArithEncoder::encode_bit`].
    pub fn decode_bit(&mut self, p0_num: u32, p_den: u32) -> bool {
        debug_assert!(0 < p0_num && p0_num < p_den);
        let target = self.decode_target(p_den);
        let bit = target >= p0_num;
        if bit {
            self.update(p0_num, p_den, p_den);
        } else {
            self.update(0, p0_num, p_den);
        }
        bit
    }

    /// `true` once the decoder has consumed more bits than physically
    /// existed — useful only as a corruption heuristic, not for framing.
    pub fn exhausted(&self) -> bool {
        self.input.position() > self.input.bit_len()
    }
}

/// Which entropy coder sits behind the context models.
///
/// The adaptive models produce identical probability streams either way;
/// only the final coding stage differs. `Rans` is the default (and the
/// fast path); `Arith` is kept both as the decoder for pre-rANS blobs
/// and as the differential-test oracle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EntropyBackend {
    /// Bit-serial arithmetic coder (legacy blobs, differential oracle).
    Arith,
    /// Interleaved table-driven rANS (see [`crate::rans`]).
    #[default]
    Rans,
}

impl EntropyBackend {
    /// Stable lowercase name, used in bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            EntropyBackend::Arith => "arith",
            EntropyBackend::Rans => "rans",
        }
    }
}

/// Backend-polymorphic entropy encoder: one enum instead of a trait so
/// the per-symbol hot path stays a direct match, not a vtable call.
///
/// The `Arith` arm is byte-for-byte the pre-seam encoder behaviour; the
/// `Discard` arm is a no-op sink used by bench stage-timing to measure
/// model cost with the entropy stage subtracted.
#[derive(Debug)]
pub enum EntropyEncoder {
    /// Bit-serial arithmetic coding.
    Arith(ArithEncoder),
    /// Buffering interleaved rANS.
    Rans(RansEncoder),
    /// Counts symbols, emits nothing (stage-timing probe).
    Discard(usize),
}

impl EntropyEncoder {
    /// Fresh encoder for `backend`.
    pub fn new(backend: EntropyBackend) -> Self {
        match backend {
            EntropyBackend::Arith => EntropyEncoder::Arith(ArithEncoder::new()),
            EntropyBackend::Rans => EntropyEncoder::Rans(RansEncoder::new()),
        }
    }

    /// No-op sink: models run at full fidelity, nothing is coded.
    pub fn discard() -> Self {
        EntropyEncoder::Discard(0)
    }

    /// Encode one bit with probability `p0_num / p_den` of being zero.
    /// The rANS arm quantizes to the 2^16 scale ([`quantize_bit`]) —
    /// exact when `p_den` is already `1 << 16`.
    pub fn encode_bit(&mut self, bit: bool, p0_num: u32, p_den: u32) {
        match self {
            EntropyEncoder::Arith(enc) => enc.encode_bit(bit, p0_num, p_den),
            EntropyEncoder::Rans(enc) => {
                enc.push_bit(bit as u8, quantize_bit(p0_num, p_den));
            }
            EntropyEncoder::Discard(n) => *n += 1,
        }
    }

    /// Encode `sym` under a 4-symbol adaptive count row. The arithmetic
    /// arm codes the raw counts exactly as the legacy `ContextModel`
    /// path did; the rANS arm first quantizes the row with
    /// [`quantize4`] (deterministic, so the decoder rebuilds the same
    /// table from its own model state).
    pub fn encode_row4(&mut self, row: &[u32; 4], total: u32, sym: usize) {
        match self {
            EntropyEncoder::Arith(enc) => {
                let lo: u32 = row[..sym].iter().sum();
                enc.encode(lo, lo + row[sym], total);
            }
            EntropyEncoder::Rans(enc) => {
                let q = quantize4(row);
                let start: u32 = q[..sym].iter().sum();
                enc.push(start, q[sym], RANS_TABLE_BITS);
            }
            EntropyEncoder::Discard(n) => *n += 1,
        }
    }

    /// Encode `sym` under an exact cumulative distribution over
    /// `1 << 16` (5 fenceposts for 4 symbols, `cum[0] == 0`,
    /// `cum[4] == 65536`, strictly increasing).
    pub fn encode_cum16(&mut self, cum: &[u32; 5], sym: usize) {
        debug_assert!(cum[0] == 0 && cum[4] == 1 << 16);
        match self {
            EntropyEncoder::Arith(enc) => enc.encode(cum[sym], cum[sym + 1], 1 << 16),
            EntropyEncoder::Rans(enc) => {
                enc.push(cum[sym], cum[sym + 1] - cum[sym], RANS_BIT_BITS);
            }
            EntropyEncoder::Discard(n) => *n += 1,
        }
    }

    /// Symbols encoded so far (exact for `Discard`, which is its whole
    /// purpose; the coding arms report what they have buffered/emitted).
    pub fn symbols(&self) -> usize {
        match self {
            EntropyEncoder::Arith(enc) => enc.bit_len(), // bits, not symbols
            EntropyEncoder::Rans(enc) => enc.len(),
            EntropyEncoder::Discard(n) => *n,
        }
    }

    /// Finalize the stream. `Discard` yields an empty payload.
    pub fn finish(self) -> Vec<u8> {
        match self {
            EntropyEncoder::Arith(enc) => enc.finish(),
            EntropyEncoder::Rans(enc) => enc.finish(),
            EntropyEncoder::Discard(_) => Vec::new(),
        }
    }
}

/// Backend-polymorphic entropy decoder, mirror of [`EntropyEncoder`].
#[derive(Debug)]
pub enum EntropyDecoder<'a> {
    /// Bit-serial arithmetic decoding.
    Arith(ArithDecoder<'a>),
    /// Interleaved rANS decoding.
    Rans(RansDecoder<'a>),
}

impl<'a> EntropyDecoder<'a> {
    /// Start decoding `bytes` under `backend`. The rANS arm validates
    /// its 8-byte state header here (typed error, never a hang).
    pub fn new(backend: EntropyBackend, bytes: &'a [u8]) -> Result<Self, CodecError> {
        Ok(match backend {
            EntropyBackend::Arith => EntropyDecoder::Arith(ArithDecoder::new(bytes)),
            EntropyBackend::Rans => EntropyDecoder::Rans(RansDecoder::new(bytes)?),
        })
    }

    /// Decode one bit — mirror of [`EntropyEncoder::encode_bit`].
    pub fn decode_bit(&mut self, p0_num: u32, p_den: u32) -> bool {
        match self {
            EntropyDecoder::Arith(dec) => dec.decode_bit(p0_num, p_den),
            EntropyDecoder::Rans(dec) => dec.decode_bit(quantize_bit(p0_num, p_den)) != 0,
        }
    }

    /// Decode one symbol under a 4-symbol adaptive count row — mirror
    /// of [`EntropyEncoder::encode_row4`].
    pub fn decode_row4(&mut self, row: &[u32; 4], total: u32) -> usize {
        match self {
            EntropyDecoder::Arith(dec) => {
                let target = dec.decode_target(total);
                let mut lo = 0u32;
                let mut sym = 3usize;
                for (s, &f) in row.iter().enumerate() {
                    if target < lo + f {
                        sym = s;
                        break;
                    }
                    lo += f;
                }
                let lo: u32 = row[..sym].iter().sum();
                dec.update(lo, lo + row[sym], total);
                sym
            }
            EntropyDecoder::Rans(dec) => {
                let q = quantize4(row);
                let target = dec.target(RANS_TABLE_BITS);
                let mut start = 0u32;
                let mut sym = 3usize;
                for (s, &f) in q.iter().enumerate() {
                    if target < start + f {
                        sym = s;
                        break;
                    }
                    start += f;
                }
                let start: u32 = q[..sym].iter().sum();
                dec.advance(start, q[sym], RANS_TABLE_BITS);
                sym
            }
        }
    }

    /// Decode one symbol under an exact cumulative distribution over
    /// `1 << 16` — mirror of [`EntropyEncoder::encode_cum16`].
    pub fn decode_cum16(&mut self, cum: &[u32; 5]) -> usize {
        debug_assert!(cum[0] == 0 && cum[4] == 1 << 16);
        match self {
            EntropyDecoder::Arith(dec) => {
                let target = dec.decode_target(1 << 16);
                let sym = cum[1..].partition_point(|&c| c <= target);
                dec.update(cum[sym], cum[sym + 1], 1 << 16);
                sym
            }
            EntropyDecoder::Rans(dec) => {
                let target = dec.target(RANS_BIT_BITS);
                let sym = cum[1..].partition_point(|&c| c <= target);
                dec.advance(cum[sym], cum[sym + 1] - cum[sym], RANS_BIT_BITS);
                sym
            }
        }
    }
}

/// Decode error helper: validates that a target maps inside `total`.
pub fn target_to_symbol<F>(target: u32, total: u32, mut cum: F) -> Result<usize, CodecError>
where
    F: FnMut(usize) -> u32,
{
    // Linear scan; models with many symbols keep their own lookup.
    let mut sym = 0usize;
    loop {
        let hi = cum(sym + 1);
        if target < hi {
            return Ok(sym);
        }
        if hi >= total {
            return Err(CodecError::Corrupt("arith target beyond total"));
        }
        sym += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Encode/decode a symbol string under a fixed distribution.
    fn roundtrip_fixed(symbols: &[usize], freqs: &[u32]) {
        let total: u32 = freqs.iter().sum();
        let cums: Vec<u32> = std::iter::once(0)
            .chain(freqs.iter().scan(0, |acc, &f| {
                *acc += f;
                Some(*acc)
            }))
            .collect();
        let mut enc = ArithEncoder::new();
        for &s in symbols {
            enc.encode(cums[s], cums[s + 1], total);
        }
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes);
        for &s in symbols {
            let t = dec.decode_target(total);
            let sym = cums.iter().rposition(|&c| c <= t).unwrap();
            assert_eq!(sym, s);
            dec.update(cums[sym], cums[sym + 1], total);
        }
    }

    #[test]
    fn uniform_quaternary_roundtrip() {
        let symbols: Vec<usize> = (0..1000).map(|i| i % 4).collect();
        roundtrip_fixed(&symbols, &[1, 1, 1, 1]);
    }

    #[test]
    fn skewed_distribution_roundtrip_and_compresses() {
        // 97% zeros should code well under 1 bit/symbol.
        let symbols: Vec<usize> = (0..5000).map(|i| usize::from(i % 33 == 0)).collect();
        let freqs = [97u32, 3];
        let total: u32 = 100;
        let mut enc = ArithEncoder::new();
        for &s in &symbols {
            let (lo, hi) = if s == 0 { (0, 97) } else { (97, 100) };
            enc.encode(lo, hi, total);
        }
        let bytes = enc.finish();
        // Entropy of 3% ones ≈ 0.194 bits → 5000 syms ≈ 122 bytes.
        assert!(bytes.len() < 200, "got {} bytes", bytes.len());
        let mut dec = ArithDecoder::new(&bytes);
        for &s in &symbols {
            let t = dec.decode_target(total);
            let sym = usize::from(t >= 97);
            assert_eq!(sym, s);
            let (lo, hi) = if sym == 0 { (0, 97) } else { (97, 100) };
            dec.update(lo, hi, total);
        }
        let _ = symbols;
        roundtrip_fixed(&symbols, &freqs);
    }

    #[test]
    fn single_symbol_stream() {
        roundtrip_fixed(&[0; 100], &[1, 1]);
        roundtrip_fixed(&[1; 100], &[1, 1]);
    }

    #[test]
    fn empty_stream() {
        let enc = ArithEncoder::new();
        let bytes = enc.finish();
        assert!(bytes.len() <= 2);
    }

    #[test]
    fn encode_bit_decode_bit_mirror() {
        let bits = [true, false, false, true, true, true, false];
        let mut enc = ArithEncoder::new();
        for &b in &bits {
            enc.encode_bit(b, 3, 7);
        }
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes);
        for &b in &bits {
            assert_eq!(dec.decode_bit(3, 7), b);
        }
    }

    #[test]
    fn extreme_probabilities() {
        // p0 = 1/MAX, p0 = (MAX-1)/MAX with MAX near MAX_TOTAL.
        let den = MAX_TOTAL as u32;
        let mut enc = ArithEncoder::new();
        enc.encode_bit(true, 1, den);
        enc.encode_bit(false, 1, den);
        enc.encode_bit(false, den - 1, den);
        enc.encode_bit(true, den - 1, den);
        let bytes = enc.finish();
        let mut dec = ArithDecoder::new(&bytes);
        assert!(dec.decode_bit(1, den));
        assert!(!dec.decode_bit(1, den));
        assert!(!dec.decode_bit(den - 1, den));
        assert!(dec.decode_bit(den - 1, den));
    }

    #[test]
    fn target_to_symbol_detects_corruption() {
        let cums = [0u32, 2, 4];
        let r = target_to_symbol(3, 4, |i| cums[i.min(2)]);
        assert_eq!(r, Ok(1));
        let r = target_to_symbol(9, 4, |i| cums[i.min(2)]);
        assert!(r.is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn arbitrary_symbols_roundtrip(
            symbols in prop::collection::vec(0usize..4, 0..800),
            f0 in 1u32..100, f1 in 1u32..100, f2 in 1u32..100, f3 in 1u32..100,
        ) {
            roundtrip_fixed(&symbols, &[f0, f1, f2, f3]);
        }

        #[test]
        fn arbitrary_bit_probs_roundtrip(
            bits in prop::collection::vec(any::<bool>(), 0..400),
            num in 1u32..255,
        ) {
            let mut enc = ArithEncoder::new();
            for &b in &bits {
                enc.encode_bit(b, num, 256);
            }
            let bytes = enc.finish();
            let mut dec = ArithDecoder::new(&bytes);
            for &b in &bits {
                prop_assert_eq!(dec.decode_bit(num, 256), b);
            }
        }
    }
}
