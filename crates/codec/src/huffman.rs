//! Canonical Huffman coding.
//!
//! Gzip's second stage (paper: "gzip which utilizes huffman + LZ") encodes
//! LZ77 token streams with Huffman codes. This module builds
//! length-limited canonical codes from symbol frequencies, serialises just
//! the code lengths (as DEFLATE does), and provides encode/decode.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// Maximum codeword length. 15 matches DEFLATE's limit.
pub const MAX_CODE_LEN: u32 = 15;

/// A canonical Huffman code over `n` symbols.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HuffmanCode {
    /// Code length per symbol; 0 = symbol unused.
    lens: Vec<u32>,
    /// Canonical codeword per symbol (valid where `lens > 0`).
    codes: Vec<u32>,
}

impl HuffmanCode {
    /// Build a length-limited canonical code from frequencies.
    ///
    /// Symbols with zero frequency get no code. If only one symbol occurs
    /// it is assigned a 1-bit code (as DEFLATE does) so the stream is
    /// still decodable.
    pub fn from_freqs(freqs: &[u64]) -> Result<HuffmanCode, CodecError> {
        let n = freqs.len();
        let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
        let mut lens = vec![0u32; n];
        match used.len() {
            0 => return Ok(HuffmanCode { lens, codes: vec![0; n] }),
            1 => lens[used[0]] = 1,
            _ => {
                // Standard two-queue Huffman on (freq, node) pairs, then
                // depth extraction; lengths above MAX_CODE_LEN are fixed
                // up with the simple "flatten" heuristic.
                #[derive(Clone)]
                enum Node {
                    Leaf(usize),
                    Internal(usize, usize),
                }
                let mut nodes: Vec<Node> = used.iter().map(|&s| Node::Leaf(s)).collect();
                // (freq, node_index); use a binary heap via sort-based merge.
                let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, usize)>> =
                    used.iter()
                        .enumerate()
                        .map(|(i, &s)| std::cmp::Reverse((freqs[s], i)))
                        .collect();
                while heap.len() > 1 {
                    let std::cmp::Reverse((fa, a)) = heap.pop().expect("len > 1");
                    let std::cmp::Reverse((fb, b)) = heap.pop().expect("len > 1");
                    nodes.push(Node::Internal(a, b));
                    heap.push(std::cmp::Reverse((fa + fb, nodes.len() - 1)));
                }
                // Depth-first traversal to assign lengths.
                let root = heap.pop().expect("one root").0 .1;
                let mut stack = vec![(root, 0u32)];
                while let Some((idx, depth)) = stack.pop() {
                    match nodes[idx] {
                        Node::Leaf(sym) => lens[sym] = depth.max(1),
                        Node::Internal(a, b) => {
                            stack.push((a, depth + 1));
                            stack.push((b, depth + 1));
                        }
                    }
                }
                limit_lengths(&mut lens, MAX_CODE_LEN)?;
            }
        }
        let codes = canonical_codes(&lens)?;
        Ok(HuffmanCode { lens, codes })
    }

    /// Reconstruct a code from its canonical lengths (as read from a
    /// container header).
    pub fn from_lens(lens: Vec<u32>) -> Result<HuffmanCode, CodecError> {
        if lens.iter().any(|&l| l > MAX_CODE_LEN) {
            return Err(CodecError::Corrupt("huffman length above limit"));
        }
        let codes = canonical_codes(&lens)?;
        Ok(HuffmanCode { lens, codes })
    }

    /// Code length per symbol (0 = unused).
    pub fn lens(&self) -> &[u32] {
        &self.lens
    }

    /// Encode `sym` into `w`.
    pub fn encode(&self, w: &mut BitWriter, sym: usize) -> Result<(), CodecError> {
        let len = *self.lens.get(sym).ok_or(CodecError::Corrupt("symbol out of range"))?;
        if len == 0 {
            return Err(CodecError::Corrupt("encoding symbol with no code"));
        }
        w.push_bits(self.codes[sym] as u64, len);
        Ok(())
    }

    /// Decoder table for this code.
    pub fn decoder(&self) -> HuffmanDecoder {
        HuffmanDecoder::new(self)
    }

    /// Mean code length in bits under the given frequency distribution.
    pub fn mean_len(&self, freqs: &[u64]) -> f64 {
        let total: u64 = freqs.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let bits: u64 = freqs
            .iter()
            .zip(&self.lens)
            .map(|(&f, &l)| f * l as u64)
            .sum();
        bits as f64 / total as f64
    }
}

/// Kraft-sum-preserving length limiting: repeatedly shorten the deepest
/// overlong leaf by deepening a shallower one.
fn limit_lengths(lens: &mut [u32], max: u32) -> Result<(), CodecError> {
    loop {
        let Some(over) = (0..lens.len()).find(|&i| lens[i] > max) else {
            return Ok(());
        };
        // Demote: clamp the overlong code and re-balance by extending the
        // longest code shorter than max-1.
        lens[over] = max;
        // Check Kraft inequality; if violated, deepen the shallowest other.
        while kraft_sum(lens) > 1.0 + 1e-12 {
            let donor = (0..lens.len())
                .filter(|&i| lens[i] > 0 && lens[i] < max)
                .max_by_key(|&i| lens[i])
                .ok_or(CodecError::Corrupt("cannot length-limit code"))?;
            lens[donor] += 1;
        }
    }
}

fn kraft_sum(lens: &[u32]) -> f64 {
    lens.iter()
        .filter(|&&l| l > 0)
        .map(|&l| (0.5f64).powi(l as i32))
        .sum()
}

/// Assign canonical codewords given lengths. Validates the Kraft sum.
fn canonical_codes(lens: &[u32]) -> Result<Vec<u32>, CodecError> {
    let mut codes = vec![0u32; lens.len()];
    let max_len = lens.iter().copied().max().unwrap_or(0);
    if max_len == 0 {
        return Ok(codes);
    }
    let mut bl_count = vec![0u32; (max_len + 1) as usize];
    for &l in lens {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    // DEFLATE's next_code computation.
    let mut code = 0u32;
    let mut next_code = vec![0u32; (max_len + 2) as usize];
    for bits in 1..=max_len {
        code = (code + bl_count[(bits - 1) as usize]) << 1;
        next_code[bits as usize] = code;
    }
    // Overfull check: codes of length L must fit in L bits.
    for bits in 1..=max_len {
        let end = next_code[bits as usize] + bl_count[bits as usize];
        if end > (1u32 << bits) {
            return Err(CodecError::Corrupt("huffman lengths overfull"));
        }
    }
    // Canonical order: by (length, symbol index).
    for (sym, &l) in lens.iter().enumerate() {
        if l > 0 {
            codes[sym] = next_code[l as usize];
            next_code[l as usize] += 1;
        }
    }
    Ok(codes)
}

/// Table-driven decoder for a canonical code.
#[derive(Clone, Debug)]
pub struct HuffmanDecoder {
    /// For each length L: (first_code[L], first_index[L]).
    first_code: Vec<u32>,
    first_index: Vec<u32>,
    /// Symbols sorted canonically (by length then index).
    sorted_syms: Vec<u32>,
    max_len: u32,
}

impl HuffmanDecoder {
    fn new(code: &HuffmanCode) -> Self {
        let max_len = code.lens.iter().copied().max().unwrap_or(0);
        let mut sorted: Vec<(u32, u32)> = code
            .lens
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l > 0)
            .map(|(s, &l)| (l, s as u32))
            .collect();
        sorted.sort_unstable();
        let sorted_syms: Vec<u32> = sorted.iter().map(|&(_, s)| s).collect();
        let mut first_code = vec![u32::MAX; (max_len + 2) as usize];
        let mut first_index = vec![0u32; (max_len + 2) as usize];
        for (idx, &(l, s)) in sorted.iter().enumerate() {
            if first_code[l as usize] == u32::MAX {
                first_code[l as usize] = code.codes[s as usize];
                first_index[l as usize] = idx as u32;
            }
        }
        HuffmanDecoder {
            first_code,
            first_index,
            sorted_syms,
            max_len,
        }
    }

    /// Decode one symbol from `r`.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<usize, CodecError> {
        if self.max_len == 0 {
            return Err(CodecError::Corrupt("decoding with empty huffman code"));
        }
        let mut code = 0u32;
        for len in 1..=self.max_len {
            code = (code << 1) | r.read_bit()? as u32;
            let fc = self.first_code[len as usize];
            if fc == u32::MAX {
                continue;
            }
            // Count of codes at this length:
            let count = self.count_at(len);
            if code >= fc && code < fc + count {
                let idx = self.first_index[len as usize] + (code - fc);
                return Ok(self.sorted_syms[idx as usize] as usize);
            }
        }
        Err(CodecError::Corrupt("invalid huffman codeword"))
    }

    fn count_at(&self, len: u32) -> u32 {
        let start = self.first_index[len as usize];
        // Next populated length's first_index bounds the count.
        let mut end = self.sorted_syms.len() as u32;
        for l in (len + 1)..=self.max_len {
            if self.first_code[l as usize] != u32::MAX {
                end = self.first_index[l as usize];
                break;
            }
        }
        end - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(freqs: &[u64], stream: &[usize]) {
        let code = HuffmanCode::from_freqs(freqs).unwrap();
        let mut w = BitWriter::new();
        for &s in stream {
            code.encode(&mut w, s).unwrap();
        }
        let bytes = w.into_bytes();
        // Simulate header transport: rebuild from lengths alone.
        let rebuilt = HuffmanCode::from_lens(code.lens().to_vec()).unwrap();
        assert_eq!(rebuilt, code);
        let dec = rebuilt.decoder();
        let mut r = BitReader::new(&bytes);
        for &s in stream {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn two_symbol_code() {
        roundtrip(&[3, 1], &[0, 0, 1, 0, 1, 1, 0]);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let code = HuffmanCode::from_freqs(&[0, 7, 0]).unwrap();
        assert_eq!(code.lens(), &[0, 1, 0]);
        roundtrip(&[0, 7, 0], &[1, 1, 1]);
    }

    #[test]
    fn empty_distribution() {
        let code = HuffmanCode::from_freqs(&[0, 0, 0]).unwrap();
        assert_eq!(code.lens(), &[0, 0, 0]);
        let mut w = BitWriter::new();
        assert!(code.encode(&mut w, 0).is_err());
    }

    #[test]
    fn optimality_on_dyadic_distribution() {
        // freqs 8,4,2,1,1 -> lengths 1,2,3,4,4 (entropy-optimal).
        let code = HuffmanCode::from_freqs(&[8, 4, 2, 1, 1]).unwrap();
        let mut lens = code.lens().to_vec();
        lens.sort_unstable();
        assert_eq!(lens, vec![1, 2, 3, 4, 4]);
    }

    #[test]
    fn mean_len_close_to_entropy() {
        let freqs = [50u64, 25, 15, 10];
        let code = HuffmanCode::from_freqs(&freqs).unwrap();
        let entropy: f64 = {
            let total: u64 = freqs.iter().sum();
            freqs
                .iter()
                .map(|&f| {
                    let p = f as f64 / total as f64;
                    -p * p.log2()
                })
                .sum()
        };
        let mean = code.mean_len(&freqs);
        assert!(mean >= entropy - 1e-9);
        assert!(mean <= entropy + 1.0, "mean {mean} vs entropy {entropy}");
    }

    #[test]
    fn skewed_distribution_is_length_limited() {
        // Fibonacci-like frequencies force deep trees; lengths must be
        // clamped to MAX_CODE_LEN yet remain decodable.
        let mut freqs = vec![0u64; 40];
        let mut a = 1u64;
        let mut b = 1u64;
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let code = HuffmanCode::from_freqs(&freqs).unwrap();
        assert!(code.lens().iter().all(|&l| l <= MAX_CODE_LEN));
        let stream: Vec<usize> = (0..40).chain((0..40).rev()).collect();
        roundtrip(&freqs, &stream);
    }

    #[test]
    fn from_lens_rejects_overfull() {
        // Three codes of length 1 cannot exist.
        assert!(HuffmanCode::from_lens(vec![1, 1, 1]).is_err());
        assert!(HuffmanCode::from_lens(vec![16]).is_err());
    }

    #[test]
    fn decoder_rejects_invalid_codeword() {
        // Lengths {1, 2, 3}: codeword space not full (Kraft sum 7/8), so
        // some 3-bit pattern is invalid.
        let code = HuffmanCode::from_lens(vec![1, 2, 3]).unwrap();
        let dec = code.decoder();
        // canonical: sym0="0", sym1="10", sym2="110"; "111" is invalid.
        let bytes = [0b1110_0000u8];
        let mut r = BitReader::new(&bytes);
        assert!(dec.decode(&mut r).is_err());
    }

    #[test]
    fn decoder_eof_mid_codeword() {
        let code = HuffmanCode::from_freqs(&[1, 1, 1, 1]).unwrap();
        let dec = code.decoder();
        let mut r = BitReader::new(&[]);
        assert_eq!(dec.decode(&mut r), Err(CodecError::UnexpectedEof));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn arbitrary_freqs_roundtrip(
            freqs in prop::collection::vec(0u64..10_000, 1..64),
            picks in prop::collection::vec(any::<u16>(), 0..200),
        ) {
            let used: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
            prop_assume!(!used.is_empty());
            let stream: Vec<usize> = picks
                .iter()
                .map(|&p| used[p as usize % used.len()])
                .collect();
            roundtrip(&freqs, &stream);
        }

        #[test]
        fn decode_never_panics_on_noise(
            lens_seed in prop::collection::vec(1u32..=8, 2..20),
            noise in prop::collection::vec(any::<u8>(), 0..64),
        ) {
            // Build *some* valid code from frequencies derived from seed.
            let freqs: Vec<u64> = lens_seed.iter().map(|&l| 1u64 << l).collect();
            let code = HuffmanCode::from_freqs(&freqs).unwrap();
            let dec = code.decoder();
            let mut r = BitReader::new(&noise);
            while dec.decode(&mut r).is_ok() {}
        }
    }
}
