//! Spaced-seed matching (PatternHunter-style).
//!
//! DNACompress (paper §III-A, Table 1) "finds all approximate repeats by
//! using Software Pattern Hunter". PatternHunter's contribution was the
//! **spaced seed**: instead of requiring `k` consecutive matching bases,
//! the seed is a pattern like `111*1**1*1**11*111` whose `1` positions
//! must match while `*` positions are free. For a fixed weight (number of
//! `1`s), spaced seeds hit approximate repeats with point mutations far
//! more often than contiguous k-mers — a mutation only kills the hits
//! whose `1` positions cover it.
//!
//! [`SpacedSeed`] extracts the packed care-positions of a window;
//! [`SpacedIndex`] is the hash-chain index DNACompress sweeps with.

use dnacomp_seq::Base;
use std::collections::HashMap;

/// A spaced seed: a pattern of care (`1`) and don't-care (`*`/`0`)
/// positions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpacedSeed {
    /// Offsets of the care positions within the window.
    care: Vec<u8>,
    /// Window length (span of the pattern).
    span: usize,
}

impl SpacedSeed {
    /// PatternHunter's classic weight-11, span-18 seed.
    pub fn pattern_hunter() -> SpacedSeed {
        SpacedSeed::parse("111010010100110111").expect("valid builtin seed")
    }

    /// A contiguous seed of weight `w` (degenerates to a plain k-mer).
    pub fn contiguous(w: usize) -> SpacedSeed {
        assert!((1..=31).contains(&w));
        SpacedSeed {
            care: (0..w as u8).collect(),
            span: w,
        }
    }

    /// Parse a pattern of `1` (care) and `0`/`*` (don't care). Must start
    /// and end with `1` and have weight 1..=31.
    pub fn parse(pattern: &str) -> Option<SpacedSeed> {
        let bytes = pattern.as_bytes();
        if bytes.is_empty() || bytes[0] != b'1' || bytes[bytes.len() - 1] != b'1' {
            return None;
        }
        let mut care = Vec::new();
        for (i, &b) in bytes.iter().enumerate() {
            match b {
                b'1' => care.push(u8::try_from(i).ok()?),
                b'0' | b'*' => {}
                _ => return None,
            }
        }
        if care.is_empty() || care.len() > 31 {
            return None;
        }
        Some(SpacedSeed {
            span: bytes.len(),
            care,
        })
    }

    /// Window span in bases.
    pub fn span(&self) -> usize {
        self.span
    }

    /// Seed weight (number of care positions).
    pub fn weight(&self) -> usize {
        self.care.len()
    }

    /// Pack the care positions of the window starting at `pos` into a
    /// key. `None` if the window overruns the text.
    pub fn key_at(&self, text: &[Base], pos: usize) -> Option<u64> {
        if pos + self.span > text.len() {
            return None;
        }
        let mut k = 0u64;
        for &off in &self.care {
            k = (k << 2) | text[pos + off as usize].code() as u64;
        }
        Some(k)
    }

    /// Probability that a window with `m` random mutations still hits,
    /// under a uniform mutation position model — the spaced-seed
    /// advantage tests quantify this empirically instead.
    pub fn hit_requires(&self) -> usize {
        self.weight()
    }
}

/// Hash-chain index over spaced-seed keys, built incrementally like
/// [`crate::repeats::RepeatFinder`].
pub struct SpacedIndex<'a> {
    text: &'a [Base],
    seed: &'a SpacedSeed,
    head: HashMap<u64, u32>,
    prev: Vec<u32>,
    published: usize,
}

const NO_POS: u32 = u32::MAX;

impl<'a> SpacedIndex<'a> {
    /// Empty index over `text`.
    pub fn new(text: &'a [Base], seed: &'a SpacedSeed) -> Self {
        SpacedIndex {
            text,
            seed,
            head: HashMap::new(),
            prev: vec![NO_POS; text.len()],
            published: 0,
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.prev.capacity() * 4 + self.head.capacity() * 20
    }

    /// Publish all window positions `< upto`.
    pub fn advance(&mut self, upto: usize) {
        let limit = upto.min(self.text.len().saturating_sub(self.seed.span - 1));
        while self.published < limit {
            let pos = self.published;
            if let Some(key) = self.seed.key_at(self.text, pos) {
                let old = self.head.insert(key, pos as u32).unwrap_or(NO_POS);
                self.prev[pos] = old;
            }
            self.published += 1;
        }
        self.published = self.published.max(upto.min(self.text.len()));
    }

    /// Candidate earlier positions whose spaced key matches the window at
    /// `pos`, most recent first.
    pub fn candidates(&self, pos: usize, max: usize) -> Vec<usize> {
        let Some(key) = self.seed.key_at(self.text, pos) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut cand = self.head.get(&key).copied().unwrap_or(NO_POS);
        while cand != NO_POS && out.len() < max {
            let c = cand as usize;
            if c < pos {
                out.push(c);
            }
            cand = self.prev[c];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;
    use dnacomp_seq::PackedSeq;

    fn bases(s: &str) -> Vec<Base> {
        PackedSeq::from_ascii(s.as_bytes()).unwrap().unpack()
    }

    #[test]
    fn parse_patterns() {
        let s = SpacedSeed::parse("111010010100110111").unwrap();
        assert_eq!(s.weight(), 11);
        assert_eq!(s.span(), 18);
        assert_eq!(SpacedSeed::pattern_hunter(), s);
        assert!(SpacedSeed::parse("").is_none());
        assert!(SpacedSeed::parse("0110").is_none()); // must start with 1
        assert!(SpacedSeed::parse("011").is_none());
        assert!(SpacedSeed::parse("1x1").is_none());
        let c = SpacedSeed::contiguous(11);
        assert_eq!(c.weight(), 11);
        assert_eq!(c.span(), 11);
    }

    #[test]
    fn key_ignores_dont_care_positions() {
        let seed = SpacedSeed::parse("1*1").unwrap();
        let a = bases("AAA");
        let b = bases("ACA"); // middle differs
        let c = bases("CAA"); // care position differs
        assert_eq!(seed.key_at(&a, 0), seed.key_at(&b, 0));
        assert_ne!(seed.key_at(&a, 0), seed.key_at(&c, 0));
        assert_eq!(seed.key_at(&a, 1), None);
    }

    #[test]
    fn index_finds_exact_copies() {
        let text = bases(&("ACGTTGCAGGATTCACGA".to_owned() + "TTTTTTTTTT" + "ACGTTGCAGGATTCACGA"));
        let seed = SpacedSeed::pattern_hunter();
        let mut idx = SpacedIndex::new(&text, &seed);
        let dst = 28;
        idx.advance(dst);
        let cands = idx.candidates(dst, 8);
        assert_eq!(cands, vec![0]);
    }

    #[test]
    fn spaced_seed_survives_mutations_better_than_contiguous() {
        // The PatternHunter property: on pairs of 64-base windows with 3
        // random substitutions, the spaced seed hits (some window offset
        // matches) more often than the contiguous seed of equal weight.
        let spaced = SpacedSeed::pattern_hunter();
        let contiguous = SpacedSeed::contiguous(11);
        let mut spaced_hits = 0;
        let mut contiguous_hits = 0;
        let mut x = 0xFEEDu64;
        let mut rand = move |m: usize| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x >> 33) as usize) % m
        };
        for trial in 0..300 {
            let a = GenomeModel::random_only(0.5)
                .generate(64, trial as u64)
                .unpack();
            let mut b = a.clone();
            for _ in 0..3 {
                let p = rand(64);
                b[p] = Base::from_code(b[p].code().wrapping_add(1 + rand(3) as u8));
            }
            let hit = |seed: &SpacedSeed| -> bool {
                (0..=(64 - seed.span())).any(|off| {
                    seed.key_at(&a, off).is_some()
                        && seed.key_at(&a, off) == seed.key_at(&b, off)
                })
            };
            if hit(&spaced) {
                spaced_hits += 1;
            }
            if hit(&contiguous) {
                contiguous_hits += 1;
            }
        }
        assert!(
            spaced_hits >= contiguous_hits,
            "spaced {spaced_hits} vs contiguous {contiguous_hits}"
        );
        assert!(spaced_hits > 200, "spaced hit rate too low: {spaced_hits}/300");
    }

    #[test]
    fn advance_is_monotone_and_idempotent() {
        let text = GenomeModel::default().generate(2_000, 5).unpack();
        let seed = SpacedSeed::pattern_hunter();
        let mut idx = SpacedIndex::new(&text, &seed);
        idx.advance(500);
        idx.advance(100);
        idx.advance(500);
        idx.advance(1_500);
        // All published candidates must be strictly earlier positions.
        for pos in [600usize, 1_000, 1_400] {
            for c in idx.candidates(pos, 16) {
                assert!(c < pos);
            }
        }
    }
}
