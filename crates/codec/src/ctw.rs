//! Context Tree Weighting (Willems, Shtarkov & Tjalkens 1995 — paper
//! ref \[25\]).
//!
//! CTW maintains a binary context tree of depth `D`. Every node holds a
//! Krichevsky–Trofimov estimator; the weighted probability of a node
//! mixes its own KT estimate with the product of its children's weighted
//! probabilities:
//!
//! ```text
//! Pw(s) = ½·Pe(s) + ½·Pw(0s)·Pw(1s)      (internal nodes)
//! Pw(s) = Pe(s)                          (depth-D leaves)
//! ```
//!
//! This implementation uses the standard *beta* trick: each node stores
//! `β(s) = Pe(s) / (Pw(0s)·Pw(1s))` (in log space), which turns the mix
//! into a one-pass walk along the current context path. Nodes are pooled
//! and created lazily; the pool is capped so the compressor's memory
//! stays bounded (when the cap is hit, deeper context is simply ignored —
//! both encoder and decoder hit the cap identically, so streams stay
//! decodable).
//!
//! The node pool is a chunked, index-linked arena ([`NodeArena`]): nodes
//! are addressed by `u32` index but stored in fixed-size preallocated
//! chunks that never move once created. A flat `Vec` pool doubles and
//! memcpys the entire live tree on every growth step — at the default
//! 4M-node cap that is ~hundreds of MB of copying over an encode — while
//! the arena's growth cost is one bounded chunk allocation, keeping the
//! per-bit tree walk free of reallocation churn.
//!
//! The paper evaluates CTW as one of its four algorithms and observes it
//! achieves a good ratio but high RAM and the worst decompression time —
//! both emerge naturally from this structure (decode performs the same
//! full tree walk per bit as encode, unlike DNAX's table decode).

use crate::models::KtEstimator;

const NO_CHILD: u32 = u32::MAX;

/// Probability denominator used when quantising the weighted probability
/// for the arithmetic coder.
pub const CTW_PROB_DEN: u32 = 1 << 16;

#[derive(Clone, Debug)]
struct Node {
    kt: KtEstimator,
    /// log β(s); 0 at creation (β = 1).
    log_beta: f64,
    children: [u32; 2],
}

impl Node {
    fn new() -> Self {
        Node {
            kt: KtEstimator::new(),
            log_beta: 0.0,
            children: [NO_CHILD, NO_CHILD],
        }
    }
}

/// log2 of the arena chunk size; 2^15 nodes ≈ 1.3 MB per chunk.
const ARENA_CHUNK_BITS: usize = 15;
/// Nodes per arena chunk.
const ARENA_CHUNK: usize = 1 << ARENA_CHUNK_BITS;

/// Chunked node arena: `u32`-indexed like a flat pool, but backed by
/// fixed-size chunks whose storage never moves after allocation, so
/// growing the tree never copies existing nodes. Generic over the node
/// type so [`CtwTree`] (log-β nodes) and [`FastCtwTree`] (linear-β
/// nodes) share the allocator.
#[derive(Clone, Debug)]
struct NodeArena<T> {
    chunks: Vec<Vec<T>>,
    len: usize,
}

impl<T> NodeArena<T> {
    fn new() -> Self {
        NodeArena {
            chunks: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    /// Append a node, returning its stable index.
    fn push(&mut self, node: T) -> u32 {
        if self.len >> ARENA_CHUNK_BITS == self.chunks.len() {
            let mut chunk = Vec::new();
            chunk.reserve_exact(ARENA_CHUNK);
            self.chunks.push(chunk);
        }
        let idx = self.len;
        self.chunks[idx >> ARENA_CHUNK_BITS].push(node);
        self.len += 1;
        idx as u32
    }

    #[inline]
    fn get(&self, idx: u32) -> &T {
        let idx = idx as usize;
        &self.chunks[idx >> ARENA_CHUNK_BITS][idx & (ARENA_CHUNK - 1)]
    }

    #[inline]
    fn get_mut(&mut self, idx: u32) -> &mut T {
        let idx = idx as usize;
        &mut self.chunks[idx >> ARENA_CHUNK_BITS][idx & (ARENA_CHUNK - 1)]
    }

    fn heap_bytes(&self) -> usize {
        self.chunks.capacity() * std::mem::size_of::<Vec<T>>()
            + self
                .chunks
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<T>())
                .sum::<usize>()
    }
}

/// A depth-`D` CTW tree over a binary alphabet.
///
/// Protocol per bit: call [`CtwTree::predict`] with the context, feed the
/// returned probability to the arithmetic coder, then call
/// [`CtwTree::commit`] with the actual bit. `predict` caches the context
/// path, so the two calls must alternate strictly.
#[derive(Clone, Debug)]
pub struct CtwTree {
    depth: usize,
    nodes: NodeArena<Node>,
    max_nodes: usize,
    /// Scratch: the node path of the last `predict`, leaf-ward order,
    /// with each node's KT p0 and weighted p0 at prediction time.
    path: Vec<PathEntry>,
}

#[derive(Clone, Copy, Debug)]
struct PathEntry {
    node: u32,
    p0_kt: f64,
    p0_w: f64,
}

impl CtwTree {
    /// Tree of context depth `depth` (bits) with the default 4M-node cap.
    pub fn new(depth: usize) -> Self {
        Self::with_capacity(depth, 4 << 20)
    }

    /// Tree with an explicit node-pool cap (≥ 1).
    pub fn with_capacity(depth: usize, max_nodes: usize) -> Self {
        assert!(max_nodes >= 1);
        let mut nodes = NodeArena::new();
        nodes.push(Node::new()); // root
        CtwTree {
            depth,
            nodes,
            max_nodes,
            path: Vec::with_capacity(depth + 1),
        }
    }

    /// Context depth in bits.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Nodes currently allocated.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap usage in bytes (for the RAM meter).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes() + self.path.capacity() * std::mem::size_of::<PathEntry>()
    }

    /// Predict `P(next bit = 0)` given `history`, whose bit `i` is the
    /// i-th most recent bit (bit 0 = previous bit). Returns `(num, den)`
    /// with `0 < num < den = CTW_PROB_DEN`.
    pub fn predict(&mut self, history: u64) -> (u32, u32) {
        self.walk_path(history);
        // Mix bottom-up: leaf-ward entry last.
        let mut p0: f64 = {
            let leaf = self.path.last().expect("path non-empty");
            leaf.p0_kt
        };
        // Record weighted p0 at the leaf.
        let last = self.path.len() - 1;
        self.path[last].p0_w = p0;
        if self.path.len() >= 2 {
            for i in (0..self.path.len() - 1).rev() {
                let node = self.nodes.get(self.path[i].node);
                let b = node.log_beta.exp();
                let p0_kt = self.path[i].p0_kt;
                // Conditional weighted probability: the off-path child's
                // block probability cancels out of the conditional.
                p0 = (b * p0_kt + p0) / (b + 1.0);
                self.path[i].p0_w = p0;
            }
        }
        quantise_p0(p0)
    }

    /// Record the actual `bit` for the context passed to the immediately
    /// preceding [`CtwTree::predict`] call.
    pub fn commit(&mut self, bit: bool) {
        assert!(!self.path.is_empty(), "commit without predict");
        // Update β bottom-up using the *pre-update* conditionals cached by
        // predict, then bump the KT counts.
        for i in 0..self.path.len() {
            let entry = self.path[i];
            let node = self.nodes.get_mut(entry.node);
            let is_leaf_of_path = i == self.path.len() - 1;
            if !is_leaf_of_path {
                let p_kt = if bit { 1.0 - entry.p0_kt } else { entry.p0_kt };
                let child = self.path[i + 1];
                let p_child = if bit { 1.0 - child.p0_w } else { child.p0_w };
                node.log_beta += p_kt.ln() - p_child.ln();
                // Keep β bounded to avoid drift to ±inf on long streams.
                node.log_beta = node.log_beta.clamp(-50.0, 50.0);
            }
            node.kt.update(bit);
        }
        self.path.clear();
    }

    /// Walk (and lazily build) the context path, filling `self.path` with
    /// each node's KT p0. Entry 0 is the root; deeper entries follow the
    /// most-recent-bit-first context.
    fn walk_path(&mut self, history: u64) {
        self.path.clear();
        let mut cur = 0u32;
        for d in 0..=self.depth {
            let node = self.nodes.get(cur);
            let (num, den) = node.kt.prob_zero();
            self.path.push(PathEntry {
                node: cur,
                p0_kt: num as f64 / den as f64,
                p0_w: 0.0,
            });
            if d == self.depth {
                break;
            }
            let bit = ((history >> d) & 1) as usize;
            let child = self.nodes.get(cur).children[bit];
            if child != NO_CHILD {
                cur = child;
            } else if self.nodes.len() < self.max_nodes {
                let idx = self.nodes.push(Node::new());
                self.nodes.get_mut(cur).children[bit] = idx;
                cur = idx;
            } else {
                // Pool exhausted: truncate the context here. Encoder and
                // decoder exhaust identically, so this stays symmetric.
                break;
            }
        }
    }
}

/// Predict/commit protocol shared by the CTW tree variants, so the
/// compressors in `dnacomp-algos` can drive either tree from one
/// generic encode/decode loop.
///
/// Per bit: call [`BitModel::predict`] with the context history, feed
/// `(num, den)` to the entropy coder, then [`BitModel::commit`] the
/// actual bit. The calls must alternate strictly.
pub trait BitModel {
    /// `P(next bit = 0)` as `(num, den)` with `0 < num < den`.
    fn predict(&mut self, history: u64) -> (u32, u32);
    /// Record the bit for the immediately preceding `predict`.
    fn commit(&mut self, bit: bool);
    /// Approximate heap usage in bytes (for the RAM meter).
    fn heap_bytes(&self) -> usize;
}

impl BitModel for CtwTree {
    fn predict(&mut self, history: u64) -> (u32, u32) {
        CtwTree::predict(self, history)
    }
    fn commit(&mut self, bit: bool) {
        CtwTree::commit(self, bit)
    }
    fn heap_bytes(&self) -> usize {
        CtwTree::heap_bytes(self)
    }
}

/// Lower clamp on the mixing weight `w = β/(β+1)`; matches the log
/// tree's `β ≥ e^-50 ≈ 2·10^-22` floor (so a node can always recover).
const W_MIN: f32 = 1e-22;
/// Upper clamp on `w`, the largest value safely below 1.0 in f32. The
/// log tree allows β up to e^50, i.e. `w` within 10^-22 of 1 — beyond
/// f32 resolution, but the off-path mass it would add back is ~10^-7,
/// two orders below the coder's quantisation step (2^-16), so the
/// tighter cap is invisible in the output.
const W_MAX: f32 = 0.999_999_9;

/// A 16-byte CTW node — exactly four per cache line, never straddling
/// one. The tree walk is a serially dependent pointer chase, so its
/// speed is set by how much of the node pool the cache holds; the node
/// therefore inlines u16 KT counts (halving at the u16 horizon instead
/// of the log tree's 2^24 — a slightly faster-adapting estimator,
/// well inside the coder's precision either way), keeps the mixing
/// weight in f32, and drops β entirely (recoverable as `w/(1−w)`,
/// never needed). f32 rounding perturbs a prediction by ~10^-7, far
/// below the 2^-16 quantisation the coder applies; the v2 encoder and
/// decoder run this same code, so the stream stays self-consistent
/// regardless.
#[derive(Clone, Debug)]
struct FastNode {
    zeros: u16,
    ones: u16,
    /// Mixing weight `β / (β + 1)`; 0.5 (β = 1) at creation.
    w: f32,
    children: [u32; 2],
}

impl FastNode {
    fn new() -> Self {
        FastNode {
            zeros: 0,
            ones: 0,
            w: 0.5,
            children: [NO_CHILD, NO_CHILD],
        }
    }

    /// KT `P(0)` for the current counts.
    #[inline]
    fn p0_kt(&self) -> f64 {
        let num = 2 * self.zeros as u32 + 1;
        let den = 2 * (self.zeros as u32 + self.ones as u32) + 2;
        num as f64 / den as f64
    }

    /// Record an observation, halving on approach to the u16 horizon
    /// (mirrors [`KtEstimator::update`] with a smaller ceiling).
    #[inline]
    fn update(&mut self, bit: bool) {
        if bit {
            self.ones += 1;
        } else {
            self.zeros += 1;
        }
        if self.zeros as u32 + self.ones as u32 >= 32_767 {
            self.zeros = (self.zeros / 2).max(1);
            self.ones = (self.ones / 2).max(1);
        }
    }
}

/// Transcendental- and division-light CTW tree: identical structure and
/// mixing rule to [`CtwTree`], but the per-node weight is kept directly
/// as `w = β/(β+1)` and updated multiplicatively, eliminating the `exp`
/// per node per predict and the two `ln` per node per commit that
/// dominate the log-domain tree's runtime (~3 transcendentals ×
/// (depth+1) nodes × 2 bits per base). Each node caches its KT `P(0)`
/// alongside `w`, so `predict` — whose bottom-up mix is a serial
/// dependency chain — performs **zero divisions**; the two divisions
/// per node (weight update and KT refresh) happen in `commit`, where
/// they are independent across nodes and pipeline. Nodes are 16 bytes
/// (vs 40 for the log tree) in one flat `Vec` — one bounds check and
/// one address computation per visit, against two of each through the
/// chunked arena — and the walk scratch is a fixed inline array, so the
/// per-level `Vec` grow/len checks disappear too. Predictions differ
/// from [`CtwTree`] only by floating-point rounding, so this tree backs
/// the *new* (v2) blob format while the log tree keeps decoding legacy
/// blobs bit-exactly.
#[derive(Clone, Debug)]
pub struct FastCtwTree {
    depth: usize,
    /// Flat node pool; index 0 is the root. Stable indices (push-only).
    nodes: Vec<FastNode>,
    max_nodes: usize,
    /// Walk scratch: entries `0..path_len` describe the latest
    /// `predict` path, root first.
    path: [PathEntry; MAX_FAST_PATH],
    path_len: usize,
}

/// Longest supported fast-tree context path (root + 63 context bits —
/// the history word itself holds only 64 bits).
const MAX_FAST_PATH: usize = 64;

impl FastCtwTree {
    /// Tree of context depth `depth` (bits) with the default 4M-node cap.
    pub fn new(depth: usize) -> Self {
        Self::with_capacity(depth, 4 << 20)
    }

    /// Tree with an explicit node-pool cap (≥ 1). `depth` must fit the
    /// 64-bit context history, i.e. `depth < 64`.
    pub fn with_capacity(depth: usize, max_nodes: usize) -> Self {
        assert!(max_nodes >= 1);
        assert!(depth < MAX_FAST_PATH, "context depth {depth} exceeds the history word");
        FastCtwTree {
            depth,
            nodes: vec![FastNode::new()], // root
            max_nodes,
            path: [PathEntry {
                node: 0,
                p0_kt: 0.0,
                p0_w: 0.0,
            }; MAX_FAST_PATH],
            path_len: 0,
        }
    }

    /// Context depth in bits.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Nodes currently allocated.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap usage in bytes (for the RAM meter).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<FastNode>()
    }

    /// Predict `P(next bit = 0)` given `history` — same contract as
    /// [`CtwTree::predict`]. Division-free: the bottom-up mix uses each
    /// node's cached weight, `p0 += w · (p0_kt − p0)`, which is algebraic
    /// for `(β·p0_kt + p0) / (β + 1)` with `w = β/(β+1)`.
    pub fn predict(&mut self, history: u64) -> (u32, u32) {
        self.walk_path(history);
        let path = &mut self.path[..self.path_len];
        let (deeper, leaf) = path.split_at_mut(self.path_len - 1);
        let mut p0: f64 = leaf[0].p0_kt;
        leaf[0].p0_w = p0;
        for e in deeper.iter_mut().rev() {
            let w = e.p0_w; // weight stashed by walk_path
            p0 += w * (e.p0_kt - p0);
            e.p0_w = p0;
        }
        quantise_p0(p0)
    }

    /// Record the actual `bit` — same contract as [`CtwTree::commit`].
    /// All of the tree's divisions live here (weight update, KT
    /// refresh); they are independent across path nodes, so the CPU
    /// pipelines them instead of serialising as `predict` would.
    ///
    /// The weight update is the β recursion in `w` form: from
    /// `β' = β · P_kt / P_child` and `w = β/(β+1)` it follows that
    /// `w' = w·P_kt / (w·P_kt + (1−w)·P_child)` — and the denominator
    /// is exactly this node's own weighted probability of the observed
    /// bit, which `predict` already computed and cached in `p0_w`. One
    /// division, no β.
    pub fn commit(&mut self, bit: bool) {
        assert!(self.path_len > 0, "commit without predict");
        let last = self.path_len - 1;
        for (i, entry) in self.path[..self.path_len].iter().enumerate() {
            let node = &mut self.nodes[entry.node as usize];
            if i != last {
                let p_kt = if bit { 1.0 - entry.p0_kt } else { entry.p0_kt };
                let p_self = if bit { 1.0 - entry.p0_w } else { entry.p0_w };
                let w = node.w as f64;
                node.w = ((w * p_kt / p_self) as f32).clamp(W_MIN, W_MAX);
            }
            node.update(bit);
        }
        self.path_len = 0;
    }

    fn walk_path(&mut self, history: u64) {
        let mut len = 0usize;
        let mut cur = 0u32;
        for d in 0..=self.depth {
            let node = &self.nodes[cur as usize];
            // Stash the cached mixing weight in `p0_w`; `predict`
            // consumes it before overwriting the slot with the real
            // weighted probability. The KT division here is off the
            // critical path: the next node's address needs only
            // `children`, so the divider overlaps the pointer chase.
            let (p0_kt, w) = (node.p0_kt(), node.w as f64);
            let child = node.children[(history >> d) as usize & 1];
            self.path[len] = PathEntry {
                node: cur,
                p0_kt,
                p0_w: w,
            };
            len += 1;
            if d == self.depth {
                break;
            }
            if child != NO_CHILD {
                cur = child;
            } else if self.nodes.len() < self.max_nodes {
                let idx = self.nodes.len() as u32;
                self.nodes.push(FastNode::new());
                let bit = (history >> d) as usize & 1;
                self.nodes[cur as usize].children[bit] = idx;
                cur = idx;
            } else {
                break;
            }
        }
        self.path_len = len;
    }
}

impl BitModel for FastCtwTree {
    fn predict(&mut self, history: u64) -> (u32, u32) {
        FastCtwTree::predict(self, history)
    }
    fn commit(&mut self, bit: bool) {
        FastCtwTree::commit(self, bit)
    }
    fn heap_bytes(&self) -> usize {
        FastCtwTree::heap_bytes(self)
    }
}

/// One node of the 4-ary fast tree: 28 bytes — u16 symbol counts
/// (KT-style, halving at the u16 horizon), the f32 mixing weight, and
/// four child indices.
#[derive(Clone, Debug)]
struct FastNode4 {
    counts: [u16; 4],
    /// Mixing weight `β / (β + 1)`; 0.5 (β = 1) at creation.
    w: f32,
    children: [u32; 4],
}

impl FastNode4 {
    fn new() -> Self {
        FastNode4 {
            counts: [0; 4],
            w: 0.5,
            children: [NO_CHILD; 4],
        }
    }

    /// KT probabilities for all four symbols: `(n_s + ½) / (N + 2)`.
    /// One division (the shared reciprocal), four multiplies.
    #[inline]
    fn p_kt(&self) -> [f64; 4] {
        let total: u32 = self.counts.iter().map(|&c| c as u32).sum();
        let inv = 1.0 / (total as f64 + 2.0);
        let mut p = [0.0; 4];
        for (pr, &c) in p.iter_mut().zip(&self.counts) {
            *pr = (c as f64 + 0.5) * inv;
        }
        p
    }

    /// Record an observation of `sym`, halving all counts when the
    /// observed one approaches the u16 ceiling.
    #[inline]
    fn update(&mut self, sym: usize) {
        if self.counts[sym] == u16::MAX {
            for c in &mut self.counts {
                *c /= 2;
            }
        }
        self.counts[sym] += 1;
    }
}

/// Walk scratch for [`FastCtwTree4`]: the node, its KT vector, its
/// mixing weight, and (after the mix pass) the weighted probability
/// vector at this level.
#[derive(Clone, Copy, Debug)]
struct Path4Entry {
    node: u32,
    w: f64,
    p_kt: [f64; 4],
    p_w: [f64; 4],
}

/// Longest supported 4-ary context path (root + 31 context bases — the
/// packed 2-bit history word holds 32 bases).
const MAX_FAST_PATH4: usize = 32;

/// The speed tier's production CTW: a **4-ary** context tree that walks
/// once per DNA base instead of twice (binary decomposition), mixes all
/// four symbol probabilities in independent lanes (so the serial
/// per-level latency chain is no longer four times deeper than the
/// information it produces), and emits exactly one rANS symbol per
/// base. Contexts are whole bases, so depth `d` here spans the same
/// window as a binary tree of depth `2d`. The same KT + β-weighting
/// mathematics as [`FastCtwTree`] applies per node; the estimator is
/// the 4-symbol KT `(n_s + ½)/(N + 2)` and the weight update divides by
/// the node's own mixed probability of the observed symbol, cached by
/// the preceding predict. Like the binary fast tree this backs **v2**
/// blobs only; encoder and decoder run identical code, so f32/f64
/// rounding choices are self-consistent.
#[derive(Clone, Debug)]
pub struct FastCtwTree4 {
    depth: usize,
    /// Flat node pool; index 0 is the root. Stable indices (push-only).
    nodes: Vec<FastNode4>,
    max_nodes: usize,
    path: [Path4Entry; MAX_FAST_PATH4],
    path_len: usize,
}

impl FastCtwTree4 {
    /// Tree of context depth `depth` (in **bases**) with the default
    /// 4M-node cap.
    pub fn new(depth: usize) -> Self {
        Self::with_capacity(depth, 4 << 20)
    }

    /// Tree with an explicit node-pool cap (≥ 1). `depth` is counted in
    /// bases and must fit the packed 2-bit history word (`depth < 32`).
    pub fn with_capacity(depth: usize, max_nodes: usize) -> Self {
        assert!(max_nodes >= 1);
        assert!(depth < MAX_FAST_PATH4, "context depth {depth} exceeds the history word");
        FastCtwTree4 {
            depth,
            nodes: vec![FastNode4::new()], // root
            max_nodes,
            path: [Path4Entry {
                node: 0,
                w: 0.0,
                p_kt: [0.0; 4],
                p_w: [0.0; 4],
            }; MAX_FAST_PATH4],
            path_len: 0,
        }
    }

    /// Context depth in bases.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Nodes currently allocated.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap usage in bytes (for the RAM meter).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<FastNode4>()
    }

    /// Predict the next base's distribution given `history` (packed
    /// 2-bit symbols, most recent base in the low bits). Returns
    /// cumulative bounds `[c0, c1, c2, c3, 2^16]` ready for
    /// `encode_cum16`/`decode_cum16`, every symbol's width ≥ 1.
    pub fn predict4(&mut self, history: u64) -> [u32; 5] {
        self.walk_path(history);
        let path = &mut self.path[..self.path_len];
        let (deeper, leaf) = path.split_at_mut(self.path_len - 1);
        let mut p = leaf[0].p_kt;
        leaf[0].p_w = p;
        for e in deeper.iter_mut().rev() {
            let w = e.w;
            // Four independent lanes: same chain latency as one scalar
            // mix, four probabilities out.
            for (pr, &kt) in p.iter_mut().zip(&e.p_kt) {
                *pr += w * (kt - *pr);
            }
            e.p_w = p;
        }
        // Quantise to a 2^16 cumulative table; the last symbol absorbs
        // the rounding remainder and every width stays ≥ 1 (the first
        // three take at most (2^16 − 4) + 3 between them).
        let mut cum = [0u32; 5];
        let mut acc = 0u32;
        for s in 0..3 {
            let f = ((p[s] * (CTW_PROB_DEN - 4) as f64) as u32) + 1;
            cum[s] = acc;
            acc += f;
        }
        cum[3] = acc;
        cum[4] = CTW_PROB_DEN;
        debug_assert!(acc < CTW_PROB_DEN);
        cum
    }

    /// Record the actual `sym` (0..4) for the immediately preceding
    /// [`FastCtwTree4::predict4`]. Weight update per non-leaf node:
    /// `w' = w·P_kt(sym) / P_w(sym)` — the β recursion in `w` form,
    /// dividing by the node's own mixed probability of the observed
    /// symbol (cached by predict). One division per node.
    pub fn commit4(&mut self, sym: usize) {
        assert!(self.path_len > 0, "commit without predict");
        debug_assert!(sym < 4);
        let last = self.path_len - 1;
        for (i, entry) in self.path[..self.path_len].iter().enumerate() {
            let node = &mut self.nodes[entry.node as usize];
            if i != last {
                let w = node.w as f64;
                node.w = ((w * entry.p_kt[sym] / entry.p_w[sym]) as f32).clamp(W_MIN, W_MAX);
            }
            node.update(sym);
        }
        self.path_len = 0;
    }

    fn walk_path(&mut self, history: u64) {
        let mut len = 0usize;
        let mut cur = 0u32;
        for d in 0..=self.depth {
            let node = &self.nodes[cur as usize];
            let p_kt = node.p_kt();
            let w = node.w as f64;
            let child = node.children[(history >> (2 * d)) as usize & 3];
            self.path[len] = Path4Entry {
                node: cur,
                w,
                p_kt,
                p_w: [0.0; 4],
            };
            len += 1;
            if d == self.depth {
                break;
            }
            if child != NO_CHILD {
                cur = child;
            } else if self.nodes.len() < self.max_nodes {
                let idx = self.nodes.len() as u32;
                self.nodes.push(FastNode4::new());
                let sym = (history >> (2 * d)) as usize & 3;
                self.nodes[cur as usize].children[sym] = idx;
                cur = idx;
            } else {
                break;
            }
        }
        self.path_len = len;
    }
}

/// Quantise a weighted probability into the arithmetic coder's integer
/// domain, clamped so neither symbol gets a zero-width interval.
fn quantise_p0(p0: f64) -> (u32, u32) {
    let den = CTW_PROB_DEN;
    let num = (p0 * den as f64).round() as i64;
    let num = num.clamp(1, (den - 1) as i64) as u32;
    (num, den)
}

/// Rolling bit history for CTW contexts: bit 0 is the most recent bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitHistory(u64);

impl BitHistory {
    /// Empty history (all zeros — CTW's conventional initial context).
    pub fn new() -> Self {
        Self::default()
    }

    /// The packed history word.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Shift in a new most-recent bit.
    pub fn push(&mut self, bit: bool) {
        self.0 = (self.0 << 1) | bit as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{ArithDecoder, ArithEncoder};
    use proptest::prelude::*;

    /// Encode a bit string with CTW + arithmetic coding; return bytes.
    fn ctw_encode(bits: &[bool], depth: usize) -> Vec<u8> {
        let mut tree = CtwTree::new(depth);
        let mut hist = BitHistory::new();
        let mut enc = ArithEncoder::new();
        for &b in bits {
            let (num, den) = tree.predict(hist.value());
            enc.encode_bit(b, num, den);
            tree.commit(b);
            hist.push(b);
        }
        enc.finish()
    }

    fn ctw_decode(bytes: &[u8], n: usize, depth: usize) -> Vec<bool> {
        let mut tree = CtwTree::new(depth);
        let mut hist = BitHistory::new();
        let mut dec = ArithDecoder::new(bytes);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let (num, den) = tree.predict(hist.value());
            let b = dec.decode_bit(num, den);
            tree.commit(b);
            hist.push(b);
            out.push(b);
        }
        out
    }

    #[test]
    fn roundtrip_simple() {
        let bits: Vec<bool> = (0..500).map(|i| i % 3 == 0).collect();
        let bytes = ctw_encode(&bits, 8);
        assert_eq!(ctw_decode(&bytes, bits.len(), 8), bits);
    }

    #[test]
    fn compresses_periodic_sequence_well() {
        // Period-7 pattern: with depth ≥ 7 CTW should approach 0 bits/bit.
        let pattern = [true, false, false, true, true, false, true];
        let bits: Vec<bool> = (0..7000).map(|i| pattern[i % 7]).collect();
        let bytes = ctw_encode(&bits, 10);
        let ratio = bytes.len() as f64 * 8.0 / bits.len() as f64;
        assert!(ratio < 0.15, "bits/bit = {ratio}");
    }

    #[test]
    fn random_bits_cost_about_one_bit() {
        // Pseudo-random bits are incompressible; CTW must not expand them
        // by more than a few percent.
        let mut x = 0x12345678u64;
        let bits: Vec<bool> = (0..8000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            })
            .collect();
        let bytes = ctw_encode(&bits, 8);
        let ratio = bytes.len() as f64 * 8.0 / bits.len() as f64;
        assert!(ratio < 1.1, "bits/bit = {ratio}");
        assert!(ratio > 0.9, "suspiciously good: {ratio}");
    }

    #[test]
    fn depth_zero_is_plain_kt() {
        let bits: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let bytes = ctw_encode(&bits, 0);
        assert_eq!(ctw_decode(&bytes, bits.len(), 0), bits);
    }

    #[test]
    fn node_pool_cap_is_symmetric() {
        let mut x = 1u64;
        let bits: Vec<bool> = (0..3000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) & 1 == 1
            })
            .collect();
        // Tiny cap forces constant pool exhaustion.
        let encode = |bits: &[bool]| {
            let mut tree = CtwTree::with_capacity(12, 64);
            let mut hist = BitHistory::new();
            let mut enc = ArithEncoder::new();
            for &b in bits {
                let (num, den) = tree.predict(hist.value());
                enc.encode_bit(b, num, den);
                tree.commit(b);
                hist.push(b);
            }
            enc.finish()
        };
        let bytes = encode(&bits);
        let mut tree = CtwTree::with_capacity(12, 64);
        let mut hist = BitHistory::new();
        let mut dec = ArithDecoder::new(&bytes);
        for &b in &bits {
            let (num, den) = tree.predict(hist.value());
            assert_eq!(dec.decode_bit(num, den), b);
            tree.commit(b);
            hist.push(b);
        }
        assert_eq!(tree.node_count(), 64);
    }

    #[test]
    fn arena_indices_stable_across_chunk_boundaries() {
        let mut arena = NodeArena::new();
        let n = ARENA_CHUNK + 17;
        for i in 0..n {
            let mut node = Node::new();
            node.log_beta = i as f64;
            let idx = arena.push(node);
            assert_eq!(idx as usize, i);
        }
        assert_eq!(arena.len(), n);
        assert_eq!(arena.get(0).log_beta, 0.0);
        assert_eq!(arena.get(ARENA_CHUNK as u32 - 1).log_beta, (ARENA_CHUNK - 1) as f64);
        assert_eq!(arena.get(ARENA_CHUNK as u32).log_beta, ARENA_CHUNK as f64);
        arena.get_mut(ARENA_CHUNK as u32 + 5).log_beta = -1.0;
        assert_eq!(arena.get(ARENA_CHUNK as u32 + 5).log_beta, -1.0);
        // Growth preallocates whole chunks, never reallocating old ones.
        assert!(arena.heap_bytes() >= 2 * ARENA_CHUNK * std::mem::size_of::<Node>());
    }

    #[test]
    fn tree_grows_across_arena_chunks_and_still_roundtrips() {
        // Enough random context bits to allocate > one chunk of nodes.
        let mut x = 99u64;
        let bits: Vec<bool> = (0..6000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            })
            .collect();
        let depth = 20;
        let bytes = ctw_encode(&bits, depth);
        assert_eq!(ctw_decode(&bytes, bits.len(), depth), bits);
        let mut tree = CtwTree::new(depth);
        let mut hist = BitHistory::new();
        for &b in &bits {
            tree.predict(hist.value());
            tree.commit(b);
            hist.push(b);
        }
        assert!(tree.node_count() > ARENA_CHUNK, "{}", tree.node_count());
    }

    #[test]
    #[should_panic(expected = "commit without predict")]
    fn commit_without_predict_panics() {
        let mut tree = CtwTree::new(4);
        tree.commit(true);
    }

    #[test]
    fn predictions_are_proper_probabilities() {
        let mut tree = CtwTree::new(6);
        let mut hist = BitHistory::new();
        for i in 0..200 {
            let (num, den) = tree.predict(hist.value());
            assert!(num > 0 && num < den);
            let b = i % 5 == 0;
            tree.commit(b);
            hist.push(b);
        }
    }

    #[test]
    fn learns_biased_source() {
        // 90% zeros: after warm-up, P(0) should exceed 0.8.
        let mut tree = CtwTree::new(4);
        let mut hist = BitHistory::new();
        for i in 0..1000 {
            let b = i % 10 == 0;
            tree.predict(hist.value());
            tree.commit(b);
            hist.push(b);
        }
        let (num, den) = tree.predict(hist.value());
        tree.commit(false);
        assert!(num as f64 / den as f64 > 0.8);
    }

    #[test]
    fn heap_usage_grows_with_depth() {
        let make = |depth| {
            let mut tree = CtwTree::new(depth);
            let mut hist = BitHistory::new();
            let mut x = 7u64;
            for _ in 0..2000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
                let b = (x >> 40) & 1 == 1;
                tree.predict(hist.value());
                tree.commit(b);
                hist.push(b);
            }
            tree.node_count()
        };
        assert!(make(16) > make(4));
    }

    fn fast_ctw_encode(bits: &[bool], depth: usize, max_nodes: usize) -> Vec<u8> {
        use crate::rans::RansEncoder;
        let mut tree = FastCtwTree::with_capacity(depth, max_nodes);
        let mut hist = BitHistory::new();
        let mut enc = RansEncoder::new();
        for &b in bits {
            let (num, _den) = tree.predict(hist.value());
            enc.push_bit(b as u8, num);
            tree.commit(b);
            hist.push(b);
        }
        enc.finish()
    }

    #[test]
    fn fast_tree_roundtrips_through_rans() {
        let mut x = 0xABCDu64;
        let bits: Vec<bool> = (0..5000)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                i % 4 == 0 || x & 7 == 0
            })
            .collect();
        for (depth, cap) in [(0usize, 1usize << 20), (8, 1 << 20), (16, 1 << 20), (12, 64)] {
            let bytes = fast_ctw_encode(&bits, depth, cap);
            use crate::rans::RansDecoder;
            let mut tree = FastCtwTree::with_capacity(depth, cap);
            let mut hist = BitHistory::new();
            let mut dec = RansDecoder::new(&bytes).unwrap();
            for &b in &bits {
                let (num, _den) = tree.predict(hist.value());
                assert_eq!(dec.decode_bit(num) != 0, b, "depth {depth} cap {cap}");
                tree.commit(b);
                hist.push(b);
            }
            assert!(dec.is_drained());
        }
    }

    #[test]
    fn fast_tree_matches_log_tree_compression_quality() {
        // Same period-7 source as the log-tree test: the linear-β tree
        // must deliver the same modelling power (this is a refactor of
        // the arithmetic, not the model).
        let pattern = [true, false, false, true, true, false, true];
        let bits: Vec<bool> = (0..7000).map(|i| pattern[i % 7]).collect();
        let fast = fast_ctw_encode(&bits, 10, 4 << 20);
        let ratio = fast.len() as f64 * 8.0 / bits.len() as f64;
        assert!(ratio < 0.15, "bits/bit = {ratio}");
        // And predictions track the log tree closely bit-for-bit.
        let mut log_tree = CtwTree::new(10);
        let mut fast_tree = FastCtwTree::new(10);
        let mut hist = BitHistory::new();
        for &b in &bits[..2000] {
            let (ln, _) = log_tree.predict(hist.value());
            let (fnum, _) = fast_tree.predict(hist.value());
            assert!(
                (ln as i64 - fnum as i64).abs() <= 2,
                "trees diverged: log {ln} vs fast {fnum}"
            );
            log_tree.commit(b);
            fast_tree.commit(b);
            hist.push(b);
        }
    }

    #[test]
    fn bit_model_trait_objects_drive_both_trees() {
        let bits: Vec<bool> = (0..300).map(|i| i % 5 == 0).collect();
        let mut trees: Vec<Box<dyn BitModel>> =
            vec![Box::new(CtwTree::new(6)), Box::new(FastCtwTree::new(6))];
        for tree in &mut trees {
            let mut hist = BitHistory::new();
            for &b in &bits {
                let (num, den) = tree.predict(hist.value());
                assert!(num > 0 && num < den);
                tree.commit(b);
                hist.push(b);
            }
            assert!(tree.heap_bytes() > 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn roundtrip_arbitrary(bits in prop::collection::vec(any::<bool>(), 0..600), depth in 0usize..12) {
            let bytes = ctw_encode(&bits, depth);
            prop_assert_eq!(ctw_decode(&bytes, bits.len(), depth), bits);
        }

        #[test]
        fn fast_tree_roundtrip_arbitrary(
            bits in prop::collection::vec(any::<bool>(), 0..600),
            depth in 0usize..12,
        ) {
            use crate::rans::RansDecoder;
            let bytes = fast_ctw_encode(&bits, depth, 4 << 20);
            let mut tree = FastCtwTree::new(depth);
            let mut hist = BitHistory::new();
            let mut dec = RansDecoder::new(&bytes).unwrap();
            for &b in &bits {
                let (num, _den) = tree.predict(hist.value());
                prop_assert_eq!(dec.decode_bit(num) != 0, b);
                tree.commit(b);
                hist.push(b);
            }
        }
    }
}
