//! Context Tree Weighting (Willems, Shtarkov & Tjalkens 1995 — paper
//! ref \[25\]).
//!
//! CTW maintains a binary context tree of depth `D`. Every node holds a
//! Krichevsky–Trofimov estimator; the weighted probability of a node
//! mixes its own KT estimate with the product of its children's weighted
//! probabilities:
//!
//! ```text
//! Pw(s) = ½·Pe(s) + ½·Pw(0s)·Pw(1s)      (internal nodes)
//! Pw(s) = Pe(s)                          (depth-D leaves)
//! ```
//!
//! This implementation uses the standard *beta* trick: each node stores
//! `β(s) = Pe(s) / (Pw(0s)·Pw(1s))` (in log space), which turns the mix
//! into a one-pass walk along the current context path. Nodes are pooled
//! and created lazily; the pool is capped so the compressor's memory
//! stays bounded (when the cap is hit, deeper context is simply ignored —
//! both encoder and decoder hit the cap identically, so streams stay
//! decodable).
//!
//! The node pool is a chunked, index-linked arena ([`NodeArena`]): nodes
//! are addressed by `u32` index but stored in fixed-size preallocated
//! chunks that never move once created. A flat `Vec` pool doubles and
//! memcpys the entire live tree on every growth step — at the default
//! 4M-node cap that is ~hundreds of MB of copying over an encode — while
//! the arena's growth cost is one bounded chunk allocation, keeping the
//! per-bit tree walk free of reallocation churn.
//!
//! The paper evaluates CTW as one of its four algorithms and observes it
//! achieves a good ratio but high RAM and the worst decompression time —
//! both emerge naturally from this structure (decode performs the same
//! full tree walk per bit as encode, unlike DNAX's table decode).

use crate::models::KtEstimator;

const NO_CHILD: u32 = u32::MAX;

/// Probability denominator used when quantising the weighted probability
/// for the arithmetic coder.
pub const CTW_PROB_DEN: u32 = 1 << 16;

#[derive(Clone, Debug)]
struct Node {
    kt: KtEstimator,
    /// log β(s); 0 at creation (β = 1).
    log_beta: f64,
    children: [u32; 2],
}

impl Node {
    fn new() -> Self {
        Node {
            kt: KtEstimator::new(),
            log_beta: 0.0,
            children: [NO_CHILD, NO_CHILD],
        }
    }
}

/// log2 of the arena chunk size; 2^15 nodes ≈ 1.3 MB per chunk.
const ARENA_CHUNK_BITS: usize = 15;
/// Nodes per arena chunk.
const ARENA_CHUNK: usize = 1 << ARENA_CHUNK_BITS;

/// Chunked node arena: `u32`-indexed like a flat pool, but backed by
/// fixed-size chunks whose storage never moves after allocation, so
/// growing the tree never copies existing nodes.
#[derive(Clone, Debug)]
struct NodeArena {
    chunks: Vec<Vec<Node>>,
    len: usize,
}

impl NodeArena {
    fn new() -> Self {
        NodeArena {
            chunks: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    /// Append a node, returning its stable index.
    fn push(&mut self, node: Node) -> u32 {
        if self.len >> ARENA_CHUNK_BITS == self.chunks.len() {
            let mut chunk = Vec::new();
            chunk.reserve_exact(ARENA_CHUNK);
            self.chunks.push(chunk);
        }
        let idx = self.len;
        self.chunks[idx >> ARENA_CHUNK_BITS].push(node);
        self.len += 1;
        idx as u32
    }

    #[inline]
    fn get(&self, idx: u32) -> &Node {
        let idx = idx as usize;
        &self.chunks[idx >> ARENA_CHUNK_BITS][idx & (ARENA_CHUNK - 1)]
    }

    #[inline]
    fn get_mut(&mut self, idx: u32) -> &mut Node {
        let idx = idx as usize;
        &mut self.chunks[idx >> ARENA_CHUNK_BITS][idx & (ARENA_CHUNK - 1)]
    }

    fn heap_bytes(&self) -> usize {
        self.chunks.capacity() * std::mem::size_of::<Vec<Node>>()
            + self
                .chunks
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<Node>())
                .sum::<usize>()
    }
}

/// A depth-`D` CTW tree over a binary alphabet.
///
/// Protocol per bit: call [`CtwTree::predict`] with the context, feed the
/// returned probability to the arithmetic coder, then call
/// [`CtwTree::commit`] with the actual bit. `predict` caches the context
/// path, so the two calls must alternate strictly.
#[derive(Clone, Debug)]
pub struct CtwTree {
    depth: usize,
    nodes: NodeArena,
    max_nodes: usize,
    /// Scratch: the node path of the last `predict`, leaf-ward order,
    /// with each node's KT p0 and weighted p0 at prediction time.
    path: Vec<PathEntry>,
}

#[derive(Clone, Copy, Debug)]
struct PathEntry {
    node: u32,
    p0_kt: f64,
    p0_w: f64,
}

impl CtwTree {
    /// Tree of context depth `depth` (bits) with the default 4M-node cap.
    pub fn new(depth: usize) -> Self {
        Self::with_capacity(depth, 4 << 20)
    }

    /// Tree with an explicit node-pool cap (≥ 1).
    pub fn with_capacity(depth: usize, max_nodes: usize) -> Self {
        assert!(max_nodes >= 1);
        let mut nodes = NodeArena::new();
        nodes.push(Node::new()); // root
        CtwTree {
            depth,
            nodes,
            max_nodes,
            path: Vec::with_capacity(depth + 1),
        }
    }

    /// Context depth in bits.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Nodes currently allocated.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap usage in bytes (for the RAM meter).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes() + self.path.capacity() * std::mem::size_of::<PathEntry>()
    }

    /// Predict `P(next bit = 0)` given `history`, whose bit `i` is the
    /// i-th most recent bit (bit 0 = previous bit). Returns `(num, den)`
    /// with `0 < num < den = CTW_PROB_DEN`.
    pub fn predict(&mut self, history: u64) -> (u32, u32) {
        self.walk_path(history);
        // Mix bottom-up: leaf-ward entry last.
        let mut p0: f64 = {
            let leaf = self.path.last().expect("path non-empty");
            leaf.p0_kt
        };
        // Record weighted p0 at the leaf.
        let last = self.path.len() - 1;
        self.path[last].p0_w = p0;
        if self.path.len() >= 2 {
            for i in (0..self.path.len() - 1).rev() {
                let node = self.nodes.get(self.path[i].node);
                let b = node.log_beta.exp();
                let p0_kt = self.path[i].p0_kt;
                // Conditional weighted probability: the off-path child's
                // block probability cancels out of the conditional.
                p0 = (b * p0_kt + p0) / (b + 1.0);
                self.path[i].p0_w = p0;
            }
        }
        quantise_p0(p0)
    }

    /// Record the actual `bit` for the context passed to the immediately
    /// preceding [`CtwTree::predict`] call.
    pub fn commit(&mut self, bit: bool) {
        assert!(!self.path.is_empty(), "commit without predict");
        // Update β bottom-up using the *pre-update* conditionals cached by
        // predict, then bump the KT counts.
        for i in 0..self.path.len() {
            let entry = self.path[i];
            let node = self.nodes.get_mut(entry.node);
            let is_leaf_of_path = i == self.path.len() - 1;
            if !is_leaf_of_path {
                let p_kt = if bit { 1.0 - entry.p0_kt } else { entry.p0_kt };
                let child = self.path[i + 1];
                let p_child = if bit { 1.0 - child.p0_w } else { child.p0_w };
                node.log_beta += p_kt.ln() - p_child.ln();
                // Keep β bounded to avoid drift to ±inf on long streams.
                node.log_beta = node.log_beta.clamp(-50.0, 50.0);
            }
            node.kt.update(bit);
        }
        self.path.clear();
    }

    /// Walk (and lazily build) the context path, filling `self.path` with
    /// each node's KT p0. Entry 0 is the root; deeper entries follow the
    /// most-recent-bit-first context.
    fn walk_path(&mut self, history: u64) {
        self.path.clear();
        let mut cur = 0u32;
        for d in 0..=self.depth {
            let node = self.nodes.get(cur);
            let (num, den) = node.kt.prob_zero();
            self.path.push(PathEntry {
                node: cur,
                p0_kt: num as f64 / den as f64,
                p0_w: 0.0,
            });
            if d == self.depth {
                break;
            }
            let bit = ((history >> d) & 1) as usize;
            let child = self.nodes.get(cur).children[bit];
            if child != NO_CHILD {
                cur = child;
            } else if self.nodes.len() < self.max_nodes {
                let idx = self.nodes.push(Node::new());
                self.nodes.get_mut(cur).children[bit] = idx;
                cur = idx;
            } else {
                // Pool exhausted: truncate the context here. Encoder and
                // decoder exhaust identically, so this stays symmetric.
                break;
            }
        }
    }
}

/// Quantise a weighted probability into the arithmetic coder's integer
/// domain, clamped so neither symbol gets a zero-width interval.
fn quantise_p0(p0: f64) -> (u32, u32) {
    let den = CTW_PROB_DEN;
    let num = (p0 * den as f64).round() as i64;
    let num = num.clamp(1, (den - 1) as i64) as u32;
    (num, den)
}

/// Rolling bit history for CTW contexts: bit 0 is the most recent bit.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitHistory(u64);

impl BitHistory {
    /// Empty history (all zeros — CTW's conventional initial context).
    pub fn new() -> Self {
        Self::default()
    }

    /// The packed history word.
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Shift in a new most-recent bit.
    pub fn push(&mut self, bit: bool) {
        self.0 = (self.0 << 1) | bit as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{ArithDecoder, ArithEncoder};
    use proptest::prelude::*;

    /// Encode a bit string with CTW + arithmetic coding; return bytes.
    fn ctw_encode(bits: &[bool], depth: usize) -> Vec<u8> {
        let mut tree = CtwTree::new(depth);
        let mut hist = BitHistory::new();
        let mut enc = ArithEncoder::new();
        for &b in bits {
            let (num, den) = tree.predict(hist.value());
            enc.encode_bit(b, num, den);
            tree.commit(b);
            hist.push(b);
        }
        enc.finish()
    }

    fn ctw_decode(bytes: &[u8], n: usize, depth: usize) -> Vec<bool> {
        let mut tree = CtwTree::new(depth);
        let mut hist = BitHistory::new();
        let mut dec = ArithDecoder::new(bytes);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let (num, den) = tree.predict(hist.value());
            let b = dec.decode_bit(num, den);
            tree.commit(b);
            hist.push(b);
            out.push(b);
        }
        out
    }

    #[test]
    fn roundtrip_simple() {
        let bits: Vec<bool> = (0..500).map(|i| i % 3 == 0).collect();
        let bytes = ctw_encode(&bits, 8);
        assert_eq!(ctw_decode(&bytes, bits.len(), 8), bits);
    }

    #[test]
    fn compresses_periodic_sequence_well() {
        // Period-7 pattern: with depth ≥ 7 CTW should approach 0 bits/bit.
        let pattern = [true, false, false, true, true, false, true];
        let bits: Vec<bool> = (0..7000).map(|i| pattern[i % 7]).collect();
        let bytes = ctw_encode(&bits, 10);
        let ratio = bytes.len() as f64 * 8.0 / bits.len() as f64;
        assert!(ratio < 0.15, "bits/bit = {ratio}");
    }

    #[test]
    fn random_bits_cost_about_one_bit() {
        // Pseudo-random bits are incompressible; CTW must not expand them
        // by more than a few percent.
        let mut x = 0x12345678u64;
        let bits: Vec<bool> = (0..8000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            })
            .collect();
        let bytes = ctw_encode(&bits, 8);
        let ratio = bytes.len() as f64 * 8.0 / bits.len() as f64;
        assert!(ratio < 1.1, "bits/bit = {ratio}");
        assert!(ratio > 0.9, "suspiciously good: {ratio}");
    }

    #[test]
    fn depth_zero_is_plain_kt() {
        let bits: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let bytes = ctw_encode(&bits, 0);
        assert_eq!(ctw_decode(&bytes, bits.len(), 0), bits);
    }

    #[test]
    fn node_pool_cap_is_symmetric() {
        let mut x = 1u64;
        let bits: Vec<bool> = (0..3000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 33) & 1 == 1
            })
            .collect();
        // Tiny cap forces constant pool exhaustion.
        let encode = |bits: &[bool]| {
            let mut tree = CtwTree::with_capacity(12, 64);
            let mut hist = BitHistory::new();
            let mut enc = ArithEncoder::new();
            for &b in bits {
                let (num, den) = tree.predict(hist.value());
                enc.encode_bit(b, num, den);
                tree.commit(b);
                hist.push(b);
            }
            enc.finish()
        };
        let bytes = encode(&bits);
        let mut tree = CtwTree::with_capacity(12, 64);
        let mut hist = BitHistory::new();
        let mut dec = ArithDecoder::new(&bytes);
        for &b in &bits {
            let (num, den) = tree.predict(hist.value());
            assert_eq!(dec.decode_bit(num, den), b);
            tree.commit(b);
            hist.push(b);
        }
        assert_eq!(tree.node_count(), 64);
    }

    #[test]
    fn arena_indices_stable_across_chunk_boundaries() {
        let mut arena = NodeArena::new();
        let n = ARENA_CHUNK + 17;
        for i in 0..n {
            let mut node = Node::new();
            node.log_beta = i as f64;
            let idx = arena.push(node);
            assert_eq!(idx as usize, i);
        }
        assert_eq!(arena.len(), n);
        assert_eq!(arena.get(0).log_beta, 0.0);
        assert_eq!(arena.get(ARENA_CHUNK as u32 - 1).log_beta, (ARENA_CHUNK - 1) as f64);
        assert_eq!(arena.get(ARENA_CHUNK as u32).log_beta, ARENA_CHUNK as f64);
        arena.get_mut(ARENA_CHUNK as u32 + 5).log_beta = -1.0;
        assert_eq!(arena.get(ARENA_CHUNK as u32 + 5).log_beta, -1.0);
        // Growth preallocates whole chunks, never reallocating old ones.
        assert!(arena.heap_bytes() >= 2 * ARENA_CHUNK * std::mem::size_of::<Node>());
    }

    #[test]
    fn tree_grows_across_arena_chunks_and_still_roundtrips() {
        // Enough random context bits to allocate > one chunk of nodes.
        let mut x = 99u64;
        let bits: Vec<bool> = (0..6000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            })
            .collect();
        let depth = 20;
        let bytes = ctw_encode(&bits, depth);
        assert_eq!(ctw_decode(&bytes, bits.len(), depth), bits);
        let mut tree = CtwTree::new(depth);
        let mut hist = BitHistory::new();
        for &b in &bits {
            tree.predict(hist.value());
            tree.commit(b);
            hist.push(b);
        }
        assert!(tree.node_count() > ARENA_CHUNK, "{}", tree.node_count());
    }

    #[test]
    #[should_panic(expected = "commit without predict")]
    fn commit_without_predict_panics() {
        let mut tree = CtwTree::new(4);
        tree.commit(true);
    }

    #[test]
    fn predictions_are_proper_probabilities() {
        let mut tree = CtwTree::new(6);
        let mut hist = BitHistory::new();
        for i in 0..200 {
            let (num, den) = tree.predict(hist.value());
            assert!(num > 0 && num < den);
            let b = i % 5 == 0;
            tree.commit(b);
            hist.push(b);
        }
    }

    #[test]
    fn learns_biased_source() {
        // 90% zeros: after warm-up, P(0) should exceed 0.8.
        let mut tree = CtwTree::new(4);
        let mut hist = BitHistory::new();
        for i in 0..1000 {
            let b = i % 10 == 0;
            tree.predict(hist.value());
            tree.commit(b);
            hist.push(b);
        }
        let (num, den) = tree.predict(hist.value());
        tree.commit(false);
        assert!(num as f64 / den as f64 > 0.8);
    }

    #[test]
    fn heap_usage_grows_with_depth() {
        let make = |depth| {
            let mut tree = CtwTree::new(depth);
            let mut hist = BitHistory::new();
            let mut x = 7u64;
            for _ in 0..2000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
                let b = (x >> 40) & 1 == 1;
                tree.predict(hist.value());
                tree.commit(b);
                hist.push(b);
            }
            tree.node_count()
        };
        assert!(make(16) > make(4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn roundtrip_arbitrary(bits in prop::collection::vec(any::<bool>(), 0..600), depth in 0usize..12) {
            let bytes = ctw_encode(&bits, depth);
            prop_assert_eq!(ctw_decode(&bytes, bits.len(), depth), bits);
        }
    }
}
