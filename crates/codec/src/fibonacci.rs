//! Universal integer codes: Fibonacci and Elias gamma/delta.
//!
//! BioCompress and DNAC encode repeat lengths/positions with **Fibonacci
//! coding** (paper Table 1); Elias codes are the standard alternative and
//! are used by our DNAPack-lite port. All codes here encode integers
//! `≥ 1`; callers shift by one for zero-based values.
//!
//! Fibonacci coding writes the Zeckendorf representation of `n` (a sum of
//! non-consecutive Fibonacci numbers) as a bit set, least-significant
//! Fibonacci term first, terminated by an extra `1` — the only place two
//! consecutive `1`s appear, making the code self-delimiting and robust to
//! bit slips.

use crate::bitio::{BitReader, BitWriter};
use crate::error::CodecError;

/// Fibonacci numbers F(2)=1, F(3)=2, … up to the largest that fits in u64.
/// `FIBS[0] = 1, FIBS[1] = 2, FIBS[2] = 3, FIBS[3] = 5, …`
const fn build_fibs() -> ([u64; 92], usize) {
    let mut fibs = [0u64; 92];
    fibs[0] = 1;
    fibs[1] = 2;
    let mut i = 2;
    loop {
        if i == 92 {
            break;
        }
        let next = fibs[i - 1].wrapping_add(fibs[i - 2]);
        if next < fibs[i - 1] {
            break; // overflowed u64
        }
        fibs[i] = next;
        i += 1;
    }
    (fibs, i)
}

const FIBS_AND_LEN: ([u64; 92], usize) = build_fibs();
const FIBS: [u64; 92] = FIBS_AND_LEN.0;
const NFIBS: usize = FIBS_AND_LEN.1;

/// Encode `n ≥ 1` in Fibonacci code.
pub fn fib_encode(w: &mut BitWriter, n: u64) -> Result<(), CodecError> {
    if n == 0 {
        return Err(CodecError::ValueTooLarge(0));
    }
    // Find the largest Fibonacci number ≤ n, then greedily subtract.
    let mut hi = 0usize;
    for (i, &f) in FIBS[..NFIBS].iter().enumerate() {
        if f <= n {
            hi = i;
        } else {
            break;
        }
    }
    let mut bits = vec![false; hi + 1];
    let mut rem = n;
    let mut i = hi as isize;
    while rem > 0 && i >= 0 {
        if FIBS[i as usize] <= rem {
            rem -= FIBS[i as usize];
            bits[i as usize] = true;
            i -= 2; // Zeckendorf: no two consecutive terms
        } else {
            i -= 1;
        }
    }
    debug_assert_eq!(rem, 0);
    for bit in bits {
        w.push_bit(bit);
    }
    w.push_bit(true); // terminator: creates the unique "11" pair
    Ok(())
}

/// Decode one Fibonacci-coded integer.
pub fn fib_decode(r: &mut BitReader<'_>) -> Result<u64, CodecError> {
    let mut value: u64 = 0;
    let mut prev = false;
    let mut i = 0usize;
    loop {
        let bit = r.read_bit()?;
        if bit && prev {
            return Ok(value);
        }
        if bit {
            if i >= NFIBS {
                return Err(CodecError::Corrupt("fibonacci code too long"));
            }
            value = value
                .checked_add(FIBS[i])
                .ok_or(CodecError::Corrupt("fibonacci overflow"))?;
        }
        prev = bit;
        i += 1;
        if i > NFIBS + 1 {
            return Err(CodecError::Corrupt("unterminated fibonacci code"));
        }
    }
}

/// Encode `n ≥ 1` in Elias gamma: `floor(log2 n)` zeros, then `n` in
/// binary.
pub fn gamma_encode(w: &mut BitWriter, n: u64) -> Result<(), CodecError> {
    if n == 0 {
        return Err(CodecError::ValueTooLarge(0));
    }
    let width = 63 - n.leading_zeros(); // floor(log2 n)
    for _ in 0..width {
        w.push_bit(false);
    }
    w.push_bits(n, width + 1);
    Ok(())
}

/// Decode one Elias-gamma integer.
pub fn gamma_decode(r: &mut BitReader<'_>) -> Result<u64, CodecError> {
    let mut zeros = 0u32;
    while !r.read_bit()? {
        zeros += 1;
        if zeros > 63 {
            return Err(CodecError::Corrupt("gamma prefix too long"));
        }
    }
    let rest = r.read_bits(zeros)?;
    Ok((1u64 << zeros) | rest)
}

/// Encode `n ≥ 1` in Elias delta: gamma-code the bit length, then the
/// mantissa. Shorter than gamma for large n.
pub fn delta_encode(w: &mut BitWriter, n: u64) -> Result<(), CodecError> {
    if n == 0 {
        return Err(CodecError::ValueTooLarge(0));
    }
    let width = 63 - n.leading_zeros();
    gamma_encode(w, (width + 1) as u64)?;
    w.push_bits(n & !(1u64 << width), width); // drop the leading 1 bit
    Ok(())
}

/// Decode one Elias-delta integer.
pub fn delta_decode(r: &mut BitReader<'_>) -> Result<u64, CodecError> {
    let len = gamma_decode(r)?;
    if len == 0 || len > 64 {
        return Err(CodecError::Corrupt("delta length out of range"));
    }
    let width = (len - 1) as u32;
    let rest = r.read_bits(width)?;
    Ok(if width == 64 {
        rest // cannot happen: width ≤ 63 since len ≤ 64 and 1 << 63 is the top bit
    } else {
        (1u64 << width) | rest
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fib_table_starts_correctly() {
        assert_eq!(&FIBS[..8], &[1, 2, 3, 5, 8, 13, 21, 34]);
        const { assert!(NFIBS >= 86) } // F(87) ≈ 6.8e17 < u64::MAX < F(93)
    }

    #[test]
    fn fib_known_codewords() {
        // Classic examples: 1 -> "11", 2 -> "011", 3 -> "0011", 4 -> "1011".
        let cases: [(u64, &str); 5] =
            [(1, "11"), (2, "011"), (3, "0011"), (4, "1011"), (11, "001011")];
        for (n, code) in cases {
            let mut w = BitWriter::new();
            fib_encode(&mut w, n).unwrap();
            let bits: String = {
                let bytes = w.as_bytes().to_vec();
                let mut r = BitReader::new(&bytes);
                (0..w.bit_len())
                    .map(|_| if r.read_bit().unwrap() { '1' } else { '0' })
                    .collect()
            };
            assert_eq!(bits, code, "n = {n}");
        }
    }

    #[test]
    fn fib_zero_rejected() {
        let mut w = BitWriter::new();
        assert!(fib_encode(&mut w, 0).is_err());
    }

    #[test]
    fn gamma_known_codewords() {
        // 1 -> "1", 2 -> "010", 3 -> "011", 4 -> "00100".
        for (n, code) in [(1u64, "1"), (2, "010"), (3, "011"), (4, "00100")] {
            let mut w = BitWriter::new();
            gamma_encode(&mut w, n).unwrap();
            assert_eq!(w.bit_len(), code.len(), "n = {n}");
        }
    }

    #[test]
    fn sequences_of_mixed_codes_roundtrip() {
        let values = [1u64, 2, 3, 7, 100, 12_345, u32::MAX as u64, 1, 1];
        let mut w = BitWriter::new();
        for &v in &values {
            fib_encode(&mut w, v).unwrap();
            gamma_encode(&mut w, v).unwrap();
            delta_encode(&mut w, v).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(fib_decode(&mut r).unwrap(), v);
            assert_eq!(gamma_decode(&mut r).unwrap(), v);
            assert_eq!(delta_decode(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn u64_extremes() {
        for v in [1u64, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
            let mut w = BitWriter::new();
            fib_encode(&mut w, v).unwrap();
            delta_encode(&mut w, v).unwrap();
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(fib_decode(&mut r).unwrap(), v);
            assert_eq!(delta_decode(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn truncated_streams_error() {
        let mut w = BitWriter::new();
        fib_encode(&mut w, 1_000_000).unwrap();
        let bytes = w.into_bytes();
        let trunc = &bytes[..bytes.len() - 1];
        let mut r = BitReader::new(trunc);
        // Either EOF or corrupt — must not panic or loop forever.
        assert!(fib_decode(&mut r).is_err() || fib_decode(&mut r).is_err());
    }

    #[test]
    fn all_zero_stream_is_corrupt_for_fib() {
        let bytes = vec![0u8; 32];
        let mut r = BitReader::new(&bytes);
        assert!(fib_decode(&mut r).is_err());
    }

    #[test]
    fn gamma_all_zeros_is_corrupt() {
        let bytes = vec![0u8; 16];
        let mut r = BitReader::new(&bytes);
        assert!(gamma_decode(&mut r).is_err());
    }

    proptest! {
        #[test]
        fn fib_roundtrip(v in 1u64..=u64::MAX) {
            let mut w = BitWriter::new();
            fib_encode(&mut w, v).unwrap();
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(fib_decode(&mut r).unwrap(), v);
        }

        #[test]
        fn gamma_roundtrip(v in 1u64..=u64::MAX) {
            let mut w = BitWriter::new();
            gamma_encode(&mut w, v).unwrap();
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(gamma_decode(&mut r).unwrap(), v);
        }

        #[test]
        fn delta_roundtrip(v in 1u64..=u64::MAX) {
            let mut w = BitWriter::new();
            delta_encode(&mut w, v).unwrap();
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            prop_assert_eq!(delta_decode(&mut r).unwrap(), v);
        }

        #[test]
        fn fib_never_panics_on_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
            let mut r = BitReader::new(&bytes);
            let _ = fib_decode(&mut r);
            let mut r = BitReader::new(&bytes);
            let _ = gamma_decode(&mut r);
            let mut r = BitReader::new(&bytes);
            let _ = delta_decode(&mut r);
        }
    }
}
