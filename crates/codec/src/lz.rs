//! LZ77 matching over byte streams.
//!
//! The backbone of the Gzip port ("gzip … utilizes huffman + LZ", §III)
//! and of DNACompress-style repeat encoding. A hash-chain match finder
//! produces a stream of [`Token`]s; parameters mirror zlib's knobs
//! (window size, chain depth, lazy matching).

use crate::error::CodecError;

/// Minimum match length worth emitting (as in DEFLATE).
pub const MIN_MATCH: usize = 3;
/// Maximum match length (DEFLATE's 258).
pub const MAX_MATCH: usize = 258;

/// One LZ77 token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind the
    /// current position. `1 ≤ dist ≤ window`, `MIN_MATCH ≤ len ≤ MAX_MATCH`.
    Match {
        /// Backwards distance in bytes.
        dist: u32,
        /// Copy length in bytes.
        len: u32,
    },
}

/// Match-finder configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LzConfig {
    /// Sliding-window size in bytes (power of two ≤ 1 MiB).
    pub window: usize,
    /// Maximum hash-chain probes per position (compression effort).
    pub max_chain: usize,
    /// Enable one-step lazy matching (defer a match if the next position
    /// matches longer), as zlib levels ≥ 4 do.
    pub lazy: bool,
}

impl Default for LzConfig {
    /// zlib-level-6-like effort: 32 KiB window, 128 probes, lazy on.
    fn default() -> Self {
        LzConfig {
            window: 32 << 10,
            max_chain: 128,
            lazy: true,
        }
    }
}

impl LzConfig {
    /// Fast preset (like zlib level 1).
    pub fn fast() -> Self {
        LzConfig {
            window: 32 << 10,
            max_chain: 8,
            lazy: false,
        }
    }

    /// Max-effort preset (like zlib level 9).
    pub fn best() -> Self {
        LzConfig {
            window: 32 << 10,
            max_chain: 1024,
            lazy: true,
        }
    }
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], 0]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Tokenise `data` with hash-chain LZ77.
pub fn tokenize(data: &[u8], cfg: &LzConfig) -> Vec<Token> {
    assert!(cfg.window.is_power_of_two() && cfg.window <= 1 << 20);
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 4 + 16);
    if n < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h; prev[i % window] = chain.
    let mut head = vec![u32::MAX; HASH_SIZE];
    let mut prev = vec![u32::MAX; cfg.window];
    let window = cfg.window;

    let insert = |head: &mut [u32], prev: &mut [u32], data: &[u8], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            prev[i & (window - 1)] = head[h];
            head[h] = i as u32;
        }
    };

    let find_best = |head: &[u32], prev: &[u32], i: usize, min_len: usize| -> Option<(u32, u32)> {
        if i + MIN_MATCH > n {
            return None;
        }
        let h = hash3(data, i);
        let mut cand = head[h];
        let max_len = MAX_MATCH.min(n - i);
        let mut best_len = min_len.max(MIN_MATCH - 1);
        let mut best_dist = 0u32;
        let mut probes = cfg.max_chain;
        while cand != u32::MAX && probes > 0 {
            let c = cand as usize;
            if c >= i {
                // Self or future position (stale chain entry): skip.
                cand = prev[c & (window - 1)];
                probes -= 1;
                continue;
            }
            if i - c > window {
                break;
            }
            // Quick reject on the byte after the current best.
            if c + best_len < n
                && i + best_len < n
                && data[c + best_len] == data[i + best_len]
            {
                let mut l = 0usize;
                while l < max_len && data[c + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = (i - c) as u32;
                    if l >= max_len {
                        break;
                    }
                }
            } else if best_len < MIN_MATCH {
                let mut l = 0usize;
                while l < max_len && data[c + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = (i - c) as u32;
                }
            }
            cand = prev[c & (window - 1)];
            probes -= 1;
        }
        if best_len >= MIN_MATCH && best_dist > 0 {
            Some((best_dist, best_len as u32))
        } else {
            None
        }
    };

    let mut i = 0usize;
    while i < n {
        let here = find_best(&head, &prev, i, 0);
        let use_match = match (here, cfg.lazy) {
            (None, _) => None,
            (Some((d, l)), false) => Some((d, l)),
            (Some((d, l)), true) => {
                // Lazy: peek one ahead; if strictly longer, emit a literal
                // now and take the later match next iteration.
                insert(&mut head, &mut prev, data, i);
                let next = find_best(&head, &prev, i + 1, l as usize);
                if next.is_some() {
                    tokens.push(Token::Literal(data[i]));
                    i += 1;
                    continue;
                }
                Some((d, l))
            }
        };
        match use_match {
            Some((dist, len)) => {
                tokens.push(Token::Match { dist, len });
                // Insert every covered position into the chains. With lazy
                // matching position i was already inserted by the probe;
                // inserting twice would self-loop the chain.
                let start = if cfg.lazy { i + 1 } else { i };
                for p in start..(i + len as usize).min(n) {
                    insert(&mut head, &mut prev, data, p);
                }
                i += len as usize;
            }
            None => {
                tokens.push(Token::Literal(data[i]));
                insert(&mut head, &mut prev, data, i);
                i += 1;
            }
        }
    }
    tokens
}

/// Expand a token stream back into bytes.
pub fn detokenize(tokens: &[Token]) -> Result<Vec<u8>, CodecError> {
    let mut out: Vec<u8> = Vec::with_capacity(tokens.len() * 2);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { dist, len } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CodecError::Corrupt("lz match distance out of range"));
                }
                if len > MAX_MATCH {
                    return Err(CodecError::Corrupt("lz match length out of range"));
                }
                // Overlapping copies are legal (run-length style).
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8], cfg: &LzConfig) {
        let tokens = tokenize(data, cfg);
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for cfg in [LzConfig::default(), LzConfig::fast(), LzConfig::best()] {
            roundtrip(b"", &cfg);
            roundtrip(b"a", &cfg);
            roundtrip(b"ab", &cfg);
            roundtrip(b"abc", &cfg);
        }
    }

    #[test]
    fn repetitive_input_produces_matches() {
        let data = b"abcabcabcabcabcabcabc".to_vec();
        let tokens = tokenize(&data, &LzConfig::default());
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "{tokens:?}"
        );
        assert_eq!(detokenize(&tokens).unwrap(), data);
        // Token count well under input length.
        assert!(tokens.len() < data.len() / 2);
    }

    #[test]
    fn run_length_overlap() {
        let data = vec![b'x'; 1000];
        let tokens = tokenize(&data, &LzConfig::default());
        assert_eq!(detokenize(&tokens).unwrap(), data);
        assert!(tokens.len() <= 1 + 1000_usize.div_ceil(MAX_MATCH));
    }

    #[test]
    fn long_random_roundtrip_all_presets() {
        let mut x = 42u64;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 56) as u8 % 7 // small alphabet to force matches
            })
            .collect();
        for cfg in [LzConfig::default(), LzConfig::fast(), LzConfig::best()] {
            roundtrip(&data, &cfg);
        }
    }

    #[test]
    fn matches_respect_window() {
        let mut data = b"uniqueprefixXYZ".to_vec();
        data.extend(std::iter::repeat_n(b'q', 5000));
        data.extend_from_slice(b"uniqueprefixXYZ");
        let cfg = LzConfig {
            window: 4096,
            max_chain: 64,
            lazy: false,
        };
        let tokens = tokenize(&data, &cfg);
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!(*dist as usize <= 4096);
            }
        }
        assert_eq!(detokenize(&tokens).unwrap(), data);
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        let bad = [Token::Match { dist: 5, len: 4 }];
        assert!(detokenize(&bad).is_err());
        let bad = [Token::Literal(1), Token::Match { dist: 0, len: 3 }];
        assert!(detokenize(&bad).is_err());
    }

    #[test]
    fn detokenize_rejects_bad_length() {
        let bad = [
            Token::Literal(1),
            Token::Match {
                dist: 1,
                len: MAX_MATCH as u32 + 1,
            },
        ];
        assert!(detokenize(&bad).is_err());
    }

    #[test]
    fn lazy_beats_or_ties_greedy_on_classic_case() {
        // "ab" then "bcde" then "abcde": greedy takes "ab" match (len 2 <
        // MIN_MATCH, so actually literal) — use a case with real gains:
        let data = b"xabcy_abcde_xabcde".to_vec();
        let greedy = tokenize(
            &data,
            &LzConfig {
                lazy: false,
                ..LzConfig::default()
            },
        );
        let lazy = tokenize(&data, &LzConfig::default());
        assert_eq!(detokenize(&greedy).unwrap(), data);
        assert_eq!(detokenize(&lazy).unwrap(), data);
        assert!(lazy.len() <= greedy.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn roundtrip_arbitrary(data in prop::collection::vec(any::<u8>(), 0..4000)) {
            roundtrip(&data, &LzConfig::default());
        }

        #[test]
        fn roundtrip_small_alphabet(data in prop::collection::vec(0u8..4, 0..4000)) {
            for cfg in [LzConfig::default(), LzConfig::fast(), LzConfig::best()] {
                roundtrip(&data, &cfg);
            }
        }
    }
}
