//! Adaptive probability models for arithmetic coding.
//!
//! * [`AdaptiveModel`] — order-0 frequency model over an arbitrary
//!   alphabet with periodic rescaling.
//! * [`ContextModel`] — order-`k` model over the 4-letter DNA alphabet
//!   (the "order-2 arithmetic coding" of BioCompress-2 / DNAPack is
//!   `ContextModel::new(2)`).
//! * [`KtEstimator`] — the Krichevsky–Trofimov binary estimator that CTW
//!   mixes over its context tree.

use crate::arith::{ArithDecoder, ArithEncoder, EntropyDecoder, EntropyEncoder, MAX_TOTAL};
use crate::error::CodecError;

/// Adaptive order-0 model with add-one initialisation.
///
/// Frequencies halve (never below 1) when the total hits
/// the rescale threshold, keeping the model responsive to local
/// statistics and the arithmetic coder inside its precision budget.
#[derive(Clone, Debug)]
pub struct AdaptiveModel {
    freqs: Vec<u32>,
    total: u32,
    rescale_at: u32,
}

impl AdaptiveModel {
    /// Model over `n` symbols, all initially equiprobable.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "empty alphabet");
        assert!((n as u64) < MAX_TOTAL / 2, "alphabet too large");
        AdaptiveModel {
            freqs: vec![1; n],
            total: n as u32,
            rescale_at: (MAX_TOTAL / 4) as u32,
        }
    }

    /// Model with a custom rescale threshold (must exceed the alphabet
    /// size and stay within the coder's precision).
    pub fn with_rescale(n: usize, rescale_at: u32) -> Self {
        let mut m = Self::new(n);
        assert!(rescale_at as u64 <= MAX_TOTAL && rescale_at > n as u32);
        m.rescale_at = rescale_at;
        m
    }

    /// Alphabet size.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// `false` — the alphabet is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cumulative range `[lo, hi)` and `total` for `sym`.
    pub fn range(&self, sym: usize) -> (u32, u32, u32) {
        let lo: u32 = self.freqs[..sym].iter().sum();
        (lo, lo + self.freqs[sym], self.total)
    }

    /// Record one occurrence of `sym`.
    pub fn update(&mut self, sym: usize) {
        self.freqs[sym] += 32;
        self.total += 32;
        if self.total >= self.rescale_at {
            self.rescale();
        }
    }

    fn rescale(&mut self) {
        self.total = 0;
        for f in &mut self.freqs {
            *f = (*f / 2).max(1);
            self.total += *f;
        }
    }

    /// Encode `sym` and update the model.
    pub fn encode(&mut self, enc: &mut ArithEncoder, sym: usize) {
        let (lo, hi, total) = self.range(sym);
        enc.encode(lo, hi, total);
        self.update(sym);
    }

    /// Decode one symbol and update the model.
    pub fn decode(&mut self, dec: &mut ArithDecoder<'_>) -> Result<usize, CodecError> {
        let target = dec.decode_target(self.total);
        let mut lo = 0u32;
        for (sym, &f) in self.freqs.iter().enumerate() {
            if target < lo + f {
                dec.update(lo, lo + f, self.total);
                self.update(sym);
                return Ok(sym);
            }
            lo += f;
        }
        Err(CodecError::Corrupt("adaptive model target out of range"))
    }
}

/// Order-`k` adaptive model over the DNA alphabet (4 symbols).
///
/// Contexts are the previous `k` bases packed 2 bits each; each context
/// owns an independent [`AdaptiveModel`]-style frequency row. Memory is
/// `4^k · 4` counters, so `k ≤ 12` is enforced (64 MiB of counters at 12).
#[derive(Clone, Debug)]
pub struct ContextModel {
    k: usize,
    rows: Vec<[u32; 4]>,
    totals: Vec<u32>,
    ctx: usize,
    mask: usize,
}

impl ContextModel {
    /// Order-`k` model, `k ≤ 12`.
    pub fn new(k: usize) -> Self {
        assert!(k <= 12, "context order too large");
        let n_ctx = 1usize << (2 * k);
        ContextModel {
            k,
            rows: vec![[1; 4]; n_ctx],
            totals: vec![4; n_ctx],
            ctx: 0,
            mask: n_ctx - 1,
        }
    }

    /// The model order.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Reset the sliding context (e.g. between independent blocks).
    pub fn reset_context(&mut self) {
        self.ctx = 0;
    }

    fn advance(&mut self, sym: usize) {
        self.ctx = ((self.ctx << 2) | sym) & self.mask;
    }

    fn update_counts(&mut self, sym: usize) {
        let row = &mut self.rows[self.ctx];
        row[sym] += 24;
        self.totals[self.ctx] += 24;
        if self.totals[self.ctx] >= (MAX_TOTAL / 4) as u32 {
            let mut total = 0;
            for f in row.iter_mut() {
                *f = (*f / 2).max(1);
                total += *f;
            }
            self.totals[self.ctx] = total;
        }
    }

    /// Encode one 2-bit DNA symbol (0..4) and update.
    pub fn encode(&mut self, enc: &mut ArithEncoder, sym: usize) {
        debug_assert!(sym < 4);
        let row = &self.rows[self.ctx];
        let total = self.totals[self.ctx];
        let lo: u32 = row[..sym].iter().sum();
        enc.encode(lo, lo + row[sym], total);
        self.update_counts(sym);
        self.advance(sym);
    }

    /// Decode one symbol and update.
    pub fn decode(&mut self, dec: &mut ArithDecoder<'_>) -> Result<usize, CodecError> {
        let row = self.rows[self.ctx];
        let total = self.totals[self.ctx];
        let target = dec.decode_target(total);
        let mut lo = 0u32;
        for (sym, &f) in row.iter().enumerate() {
            if target < lo + f {
                dec.update(lo, lo + f, total);
                self.update_counts(sym);
                self.advance(sym);
                return Ok(sym);
            }
            lo += f;
        }
        Err(CodecError::Corrupt("context model target out of range"))
    }

    /// Encode one symbol through the backend seam and update. The
    /// `Arith` backend produces byte-identical output to
    /// [`ContextModel::encode`]; the `Rans` backend quantizes the same
    /// count row deterministically, so a decoder holding identical
    /// model state rebuilds the identical table.
    pub fn encode_with(&mut self, enc: &mut EntropyEncoder, sym: usize) {
        debug_assert!(sym < 4);
        let row = self.rows[self.ctx];
        let total = self.totals[self.ctx];
        enc.encode_row4(&row, total, sym);
        self.update_counts(sym);
        self.advance(sym);
    }

    /// Decode one symbol through the backend seam and update — mirror
    /// of [`ContextModel::encode_with`]. Infallible: the decoder target
    /// is always inside the model's own count row.
    pub fn decode_with(&mut self, dec: &mut EntropyDecoder<'_>) -> usize {
        let row = self.rows[self.ctx];
        let total = self.totals[self.ctx];
        let sym = dec.decode_row4(&row, total);
        self.update_counts(sym);
        self.advance(sym);
        sym
    }

    /// Approximate heap footprint in bytes (for the RAM meter).
    pub fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<[u32; 4]>()
            + self.totals.capacity() * std::mem::size_of::<u32>()
    }
}

/// Krichevsky–Trofimov estimator: sequential probability for a binary
/// source, `P(next = 1) = (c1 + 1/2) / (c0 + c1 + 1)`.
///
/// Counts are kept in halves so the estimator stays in integer arithmetic:
/// numerator `2·c1 + 1`, denominator `2·(c0 + c1) + 2`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KtEstimator {
    zeros: u32,
    ones: u32,
}

impl KtEstimator {
    /// Fresh estimator with zero counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Probability of the next bit being 0, as `(num, den)` with
    /// `den ≤ MAX_TOTAL`.
    pub fn prob_zero(&self) -> (u32, u32) {
        let num = 2 * self.zeros + 1;
        let den = 2 * (self.zeros + self.ones) + 2;
        (num, den)
    }

    /// Record an observation.
    pub fn update(&mut self, bit: bool) {
        if bit {
            self.ones += 1;
        } else {
            self.zeros += 1;
        }
        // Halve on approach to the coder's precision limit.
        if 2 * (self.zeros + self.ones) + 2 >= MAX_TOTAL as u32 {
            self.zeros = (self.zeros / 2).max(1);
            self.ones = (self.ones / 2).max(1);
        }
    }

    /// Observed totals `(zeros, ones)`.
    pub fn counts(&self) -> (u32, u32) {
        (self.zeros, self.ones)
    }

    /// Natural log of the KT sequential probability of observing `bit`
    /// next — used by CTW's mixing arithmetic.
    pub fn log_prob(&self, bit: bool) -> f64 {
        let (num, den) = self.prob_zero();
        let p0 = num as f64 / den as f64;
        if bit {
            (1.0 - p0).ln()
        } else {
            p0.ln()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::ArithEncoder;
    use proptest::prelude::*;

    #[test]
    fn adaptive_model_roundtrip() {
        let symbols: Vec<usize> = (0..2000).map(|i| (i * i) % 5).collect();
        let mut enc_model = AdaptiveModel::new(5);
        let mut enc = ArithEncoder::new();
        for &s in &symbols {
            enc_model.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut dec_model = AdaptiveModel::new(5);
        let mut dec = ArithDecoder::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec_model.decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn adaptive_model_learns() {
        // A heavily skewed stream should code below 0.7 bits/symbol.
        let symbols: Vec<usize> = (0..8000).map(|i| usize::from(i % 20 == 0)).collect();
        let mut model = AdaptiveModel::new(2);
        let mut enc = ArithEncoder::new();
        for &s in &symbols {
            model.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let bits_per_sym = bytes.len() as f64 * 8.0 / symbols.len() as f64;
        assert!(bits_per_sym < 0.7, "bits/sym = {bits_per_sym}");
    }

    #[test]
    fn adaptive_model_rescale_keeps_roundtrip() {
        let mut model = AdaptiveModel::with_rescale(3, 64);
        let mut enc = ArithEncoder::new();
        let symbols: Vec<usize> = (0..500).map(|i| i % 3).collect();
        for &s in &symbols {
            model.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut dec_model = AdaptiveModel::with_rescale(3, 64);
        let mut dec = ArithDecoder::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec_model.decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    #[should_panic(expected = "empty alphabet")]
    fn zero_alphabet_panics() {
        let _ = AdaptiveModel::new(0);
    }

    #[test]
    fn context_model_roundtrip_order2() {
        // Period-3 pattern: order-2 context fully determines the symbol.
        let symbols: Vec<usize> = (0..3000).map(|i| [0, 2, 1][i % 3]).collect();
        let mut m = ContextModel::new(2);
        let mut enc = ArithEncoder::new();
        for &s in &symbols {
            m.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let bits_per_sym = bytes.len() as f64 * 8.0 / symbols.len() as f64;
        assert!(bits_per_sym < 0.25, "bits/sym = {bits_per_sym}");
        let mut d = ContextModel::new(2);
        let mut dec = ArithDecoder::new(&bytes);
        for &s in &symbols {
            assert_eq!(d.decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn context_model_order0_equals_flat() {
        let mut m = ContextModel::new(0);
        let mut enc = ArithEncoder::new();
        for s in [0usize, 1, 2, 3, 3, 3] {
            m.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut d = ContextModel::new(0);
        let mut dec = ArithDecoder::new(&bytes);
        for s in [0usize, 1, 2, 3, 3, 3] {
            assert_eq!(d.decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn context_model_reset() {
        let mut m = ContextModel::new(4);
        m.advance(3);
        m.advance(1);
        assert_ne!(m.ctx, 0);
        m.reset_context();
        assert_eq!(m.ctx, 0);
    }

    #[test]
    #[should_panic(expected = "context order too large")]
    fn oversized_context_panics() {
        let _ = ContextModel::new(13);
    }

    #[test]
    fn kt_estimator_start_is_half() {
        let kt = KtEstimator::new();
        assert_eq!(kt.prob_zero(), (1, 2));
    }

    #[test]
    fn kt_estimator_sequence() {
        // After seeing one 0: P(0) = (2*1+1)/(2*1+2) = 3/4.
        let mut kt = KtEstimator::new();
        kt.update(false);
        assert_eq!(kt.prob_zero(), (3, 4));
        kt.update(false);
        assert_eq!(kt.prob_zero(), (5, 6));
        kt.update(true);
        assert_eq!(kt.prob_zero(), (5, 8));
        assert_eq!(kt.counts(), (2, 1));
    }

    #[test]
    fn kt_log_prob_sums_match_product_rule() {
        // log P(sequence) accumulated stepwise must equal the closed-form
        // KT block probability for small cases: P(0^3) = 1/2·3/4·5/6.
        let mut kt = KtEstimator::new();
        let mut logp = 0.0;
        for _ in 0..3 {
            logp += kt.log_prob(false);
            kt.update(false);
        }
        let expect = (0.5f64 * 0.75 * (5.0 / 6.0)).ln();
        assert!((logp - expect).abs() < 1e-12);
    }

    #[test]
    fn context_model_seam_arith_is_byte_identical_to_legacy() {
        use crate::arith::{EntropyBackend, EntropyEncoder};
        let symbols: Vec<usize> = (0..4000).map(|i| (i * 7 + i / 5) % 4).collect();
        let mut legacy_model = ContextModel::new(3);
        let mut legacy_enc = ArithEncoder::new();
        let mut seam_model = ContextModel::new(3);
        let mut seam_enc = EntropyEncoder::new(EntropyBackend::Arith);
        for &s in &symbols {
            legacy_model.encode(&mut legacy_enc, s);
            seam_model.encode_with(&mut seam_enc, s);
        }
        assert_eq!(legacy_enc.finish(), seam_enc.finish());
    }

    #[test]
    fn context_model_seam_roundtrips_on_both_backends() {
        use crate::arith::{EntropyBackend, EntropyDecoder, EntropyEncoder};
        let symbols: Vec<usize> = (0..4000).map(|i| (i * i + i / 3) % 4).collect();
        for backend in [EntropyBackend::Arith, EntropyBackend::Rans] {
            let mut em = ContextModel::new(4);
            let mut enc = EntropyEncoder::new(backend);
            for &s in &symbols {
                em.encode_with(&mut enc, s);
            }
            let bytes = enc.finish();
            let mut dm = ContextModel::new(4);
            let mut dec = EntropyDecoder::new(backend, &bytes).unwrap();
            for &s in &symbols {
                assert_eq!(dm.decode_with(&mut dec), s, "backend {backend:?}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn adaptive_roundtrip_random(
            n in 2usize..12,
            stream in prop::collection::vec(any::<u8>(), 0..500),
        ) {
            let symbols: Vec<usize> = stream.iter().map(|&b| b as usize % n).collect();
            let mut em = AdaptiveModel::new(n);
            let mut enc = ArithEncoder::new();
            for &s in &symbols {
                em.encode(&mut enc, s);
            }
            let bytes = enc.finish();
            let mut dm = AdaptiveModel::new(n);
            let mut dec = ArithDecoder::new(&bytes);
            for &s in &symbols {
                prop_assert_eq!(dm.decode(&mut dec).unwrap(), s);
            }
        }

        #[test]
        fn context_roundtrip_random(
            k in 0usize..6,
            stream in prop::collection::vec(0usize..4, 0..500),
        ) {
            let mut em = ContextModel::new(k);
            let mut enc = ArithEncoder::new();
            for &s in &stream {
                em.encode(&mut enc, s);
            }
            let bytes = enc.finish();
            let mut dm = ContextModel::new(k);
            let mut dec = ArithDecoder::new(&bytes);
            for &s in &stream {
                prop_assert_eq!(dm.decode(&mut dec).unwrap(), s);
            }
        }

        #[test]
        fn kt_probabilities_stay_valid(bits in prop::collection::vec(any::<bool>(), 0..2000)) {
            let mut kt = KtEstimator::new();
            for b in bits {
                let (num, den) = kt.prob_zero();
                prop_assert!(num > 0 && num < den);
                prop_assert!((den as u64) <= crate::arith::MAX_TOTAL);
                kt.update(b);
            }
        }
    }
}
