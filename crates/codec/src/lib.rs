//! # dnacomp-codec — shared compression machinery
//!
//! Every compressor in Table 1 of the paper is assembled from a small set
//! of primitives: bit-level I/O, an arithmetic coder, adaptive context
//! models, universal integer codes (Fibonacci, Elias), Huffman coding,
//! LZ77 matching, repeat search (exact and reverse-complement), and edit
//! distance. This crate implements all of them from scratch so that
//! `dnacomp-algos` can port CTW, DNAX, GenCompress and Gzip faithfully.
//!
//! Layering:
//!
//! ```text
//! bitio ── arith ── models ── ctw
//!    │        │
//!    ├── fibonacci / elias / varint
//!    ├── huffman
//!    └── lz  ── repeats ── edit
//! ```
//!
//! All decoders are hardened: corrupt input yields [`CodecError`], never a
//! panic or silently wrong output (containers carry an FNV-1a checksum,
//! see [`checksum`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod bitio;
pub mod checksum;
pub mod ctw;
pub mod edit;
pub mod error;
pub mod fibonacci;
pub mod huffman;
pub mod lz;
pub mod models;
pub mod rans;
pub mod repeats;
pub mod spaced;
pub mod suffix;
pub mod varint;

pub use arith::{EntropyBackend, EntropyDecoder, EntropyEncoder};
pub use bitio::{BitReader, BitWriter};
pub use error::CodecError;
