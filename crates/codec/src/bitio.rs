//! Bit-level I/O.
//!
//! MSB-first bit order: the first bit written becomes the most significant
//! bit of the first byte. Every entropy coder and universal code in this
//! crate is built on these two types.

use crate::error::CodecError;

/// Accumulates bits into a byte vector, MSB-first.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0..8). 0 means byte-aligned.
    used: u32,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Writer with capacity for roughly `bits` bits.
    pub fn with_capacity_bits(bits: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bits.div_ceil(8)),
            used: 0,
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.used as usize
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        if self.used == 0 || self.used == 8 {
            self.bytes.push(0);
            self.used = 0;
        }
        if bit {
            let last = self.bytes.last_mut().expect("byte pushed above");
            *last |= 0x80 >> self.used;
        }
        self.used += 1;
    }

    /// Append the low `width` bits of `value`, most significant first.
    /// `width` may be 0 (writes nothing) up to 64.
    #[inline]
    pub fn push_bits(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64);
        for i in (0..width).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Pad with zero bits to the next byte boundary.
    pub fn align_byte(&mut self) {
        if self.used != 0 && self.used != 8 {
            self.used = 8;
        }
    }

    /// Finish writing and return the backing bytes (zero-padded to a whole
    /// number of bytes).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Bytes written so far (the final byte may be partially filled).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Reads bits from a byte slice, MSB-first.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit position (absolute, in bits).
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Total bits available.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.bit_len() - self.pos
    }

    /// Current position in bits from the start.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        if self.pos >= self.bit_len() {
            return Err(CodecError::UnexpectedEof);
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Read one bit, returning 0 past end-of-stream.
    ///
    /// Arithmetic decoders legitimately read a few bits past the flushed
    /// end of the stream; those virtual bits are zero by construction.
    #[inline]
    pub fn read_bit_padded(&mut self) -> bool {
        if self.pos >= self.bit_len() {
            self.pos += 1;
            false
        } else {
            let byte = self.bytes[self.pos / 8];
            let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
            self.pos += 1;
            bit
        }
    }

    /// Read `width` bits (≤ 64) into the low bits of a `u64`.
    #[inline]
    pub fn read_bits(&mut self, width: u32) -> Result<u64, CodecError> {
        debug_assert!(width <= 64);
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Ok(v)
    }

    /// Skip to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.push_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit().unwrap(), b);
        }
        // Remaining padding bits are zero.
        for _ in 9..16 {
            assert!(!r.read_bit().unwrap());
        }
        assert_eq!(r.read_bit(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.push_bit(true); // 0b1000_0000
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x80]);
    }

    #[test]
    fn push_bits_layout() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011, 4);
        w.push_bits(0b0110, 4);
        assert_eq!(w.into_bytes(), vec![0b1011_0110]);
    }

    #[test]
    fn zero_width_is_noop() {
        let mut w = BitWriter::new();
        w.push_bits(0xFFFF, 0);
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    #[test]
    fn align_byte_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.push_bits(0b11, 2);
        w.align_byte();
        w.push_bits(0xAB, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1100_0000, 0xAB]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0xAB);
    }

    #[test]
    fn read_bit_padded_past_end() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        for _ in 0..8 {
            assert!(r.read_bit_padded());
        }
        for _ in 0..16 {
            assert!(!r.read_bit_padded());
        }
    }

    #[test]
    fn full_u64_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bits(u64::MAX, 64);
        w.push_bits(0x0123_4567_89AB_CDEF, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(64).unwrap(), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn position_tracking() {
        let bytes = [0u8; 4];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 32);
        r.read_bits(5).unwrap();
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining(), 27);
    }

    proptest! {
        #[test]
        fn bits_roundtrip(values in prop::collection::vec((any::<u64>(), 0u32..=64), 0..64)) {
            let mut w = BitWriter::new();
            for &(v, width) in &values {
                let v = if width == 64 { v } else { v & ((1u64 << width) - 1) };
                w.push_bits(v, width);
            }
            let total: usize = values.iter().map(|&(_, w)| w as usize).sum();
            prop_assert_eq!(w.bit_len(), total);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &(v, width) in &values {
                let v = if width == 64 { v } else { v & ((1u64 << width) - 1) };
                prop_assert_eq!(r.read_bits(width).unwrap(), v);
            }
        }

        #[test]
        fn bool_stream_roundtrip(bits in prop::collection::vec(any::<bool>(), 0..512)) {
            let mut w = BitWriter::new();
            for &b in &bits {
                w.push_bit(b);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &b in &bits {
                prop_assert_eq!(r.read_bit().unwrap(), b);
            }
        }
    }
}
