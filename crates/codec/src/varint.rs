//! Byte-oriented variable-length integers (LEB128) for container headers.

use crate::error::CodecError;

/// Append `value` to `out` as unsigned LEB128.
pub fn write_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an unsigned LEB128 from `bytes` starting at `*pos`, advancing it.
pub fn read_uvarint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(CodecError::UnexpectedEof)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(CodecError::Corrupt("uvarint overflows u64"));
        }
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("uvarint too long"));
        }
    }
}

/// Append a fixed little-endian u64 (for checksums).
pub fn write_u64_le(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

/// Read a fixed little-endian u64.
pub fn read_u64_le(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let end = pos.checked_add(8).ok_or(CodecError::UnexpectedEof)?;
    let slice = bytes.get(*pos..end).ok_or(CodecError::UnexpectedEof)?;
    *pos = end;
    Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_one_byte() {
        for v in [0u64, 1, 63, 127] {
            let mut out = Vec::new();
            write_uvarint(&mut out, v);
            assert_eq!(out.len(), 1);
            let mut pos = 0;
            assert_eq!(read_uvarint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, 1);
        }
    }

    #[test]
    fn boundary_values() {
        for v in [128u64, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            write_uvarint(&mut out, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&out, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut out = Vec::new();
        write_uvarint(&mut out, u64::MAX);
        out.pop();
        let mut pos = 0;
        assert_eq!(
            read_uvarint(&out, &mut pos),
            Err(CodecError::UnexpectedEof)
        );
    }

    #[test]
    fn overlong_input_errors() {
        // 11 continuation bytes can't fit in u64.
        let bytes = [0xFFu8; 11];
        let mut pos = 0;
        assert!(read_uvarint(&bytes, &mut pos).is_err());
    }

    #[test]
    fn u64_le_roundtrip() {
        let mut out = Vec::new();
        write_u64_le(&mut out, 0x0102_0304_0506_0708);
        let mut pos = 0;
        assert_eq!(read_u64_le(&out, &mut pos).unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(pos, 8);
        assert_eq!(read_u64_le(&out, &mut pos), Err(CodecError::UnexpectedEof));
    }

    proptest! {
        #[test]
        fn uvarint_roundtrip(values in prop::collection::vec(any::<u64>(), 0..50)) {
            let mut out = Vec::new();
            for &v in &values {
                write_uvarint(&mut out, v);
            }
            let mut pos = 0;
            for &v in &values {
                prop_assert_eq!(read_uvarint(&out, &mut pos).unwrap(), v);
            }
            prop_assert_eq!(pos, out.len());
        }
    }
}
