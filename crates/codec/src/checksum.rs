//! FNV-1a checksums for container integrity.
//!
//! The compressed-blob container stores a 64-bit FNV-1a hash of the
//! original sequence so that transport corruption (the paper's scenario is
//! exchange over a lossy cloud path) is detected at decompression time
//! rather than silently propagating bad genomes downstream.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorb one byte.
    pub fn update_byte(&mut self, byte: u8) {
        self.update(std::slice::from_ref(&byte));
    }

    /// Current digest.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// One-shot convenience.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.digest(), fnv1a(b"foobar"));
        let mut h2 = Fnv1a::new();
        for &b in b"foobar" {
            h2.update_byte(b);
        }
        assert_eq!(h2.digest(), fnv1a(b"foobar"));
    }

    #[test]
    fn sensitive_to_single_bit() {
        assert_ne!(fnv1a(b"ACGT"), fnv1a(b"ACGA"));
        assert_ne!(fnv1a(b"\x00"), fnv1a(b"\x01"));
    }
}
