//! FNV-1a checksums for container integrity.
//!
//! The compressed-blob container stores a 64-bit FNV-1a hash of the
//! original sequence so that transport corruption (the paper's scenario is
//! exchange over a lossy cloud path) is detected at decompression time
//! rather than silently propagating bad genomes downstream.
//!
//! This module is the workspace's **single** FNV-1a implementation: the
//! codec containers, the cloud layer's per-block transfer checksums and
//! deterministic fault/jitter draws, and the on-disk sequence store all
//! hash through it. The seeded constructor plus [`mix64`] /
//! [`unit_interval`] cover the "hash a tuple into a probability" pattern
//! the simulators use.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hasher whose offset basis is perturbed by `seed`, yielding an
    /// independent hash stream per seed (the simulators' trick for
    /// drawing uncorrelated fault/jitter decisions from one input).
    pub fn with_seed(seed: u64) -> Self {
        Fnv1a(FNV_OFFSET ^ seed)
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Absorb one byte.
    pub fn update_byte(&mut self, byte: u8) {
        self.update(std::slice::from_ref(&byte));
    }

    /// Current digest.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// One-shot convenience.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.digest()
}

/// SplitMix64 finaliser. FNV-1a alone leaves the high bits weak for
/// short inputs; callers that consume the top bits of a digest (the
/// unit-interval draws below, content-key derivation) mix first.
pub fn mix64(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Map a digest to a uniform draw in `[0, 1)` (top 53 bits after
/// [`mix64`]) — the deterministic coin every simulator flips.
pub fn unit_interval(digest: u64) -> f64 {
    (mix64(digest) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.digest(), fnv1a(b"foobar"));
        let mut h2 = Fnv1a::new();
        for &b in b"foobar" {
            h2.update_byte(b);
        }
        assert_eq!(h2.digest(), fnv1a(b"foobar"));
    }

    #[test]
    fn sensitive_to_single_bit() {
        assert_ne!(fnv1a(b"ACGT"), fnv1a(b"ACGA"));
        assert_ne!(fnv1a(b"\x00"), fnv1a(b"\x01"));
    }

    #[test]
    fn seeded_streams_are_independent() {
        let mut a = Fnv1a::with_seed(1);
        let mut b = Fnv1a::with_seed(2);
        a.update(b"ACGT");
        b.update(b"ACGT");
        assert_ne!(a.digest(), b.digest());
        // Seed zero is the plain hasher.
        let mut c = Fnv1a::with_seed(0);
        c.update(b"ACGT");
        assert_eq!(c.digest(), fnv1a(b"ACGT"));
    }

    #[test]
    fn unit_interval_is_uniform_enough() {
        let n = 4000;
        let mean = (0..n)
            .map(|i| {
                let mut h = Fnv1a::with_seed(7);
                h.update(&(i as u64).to_le_bytes());
                unit_interval(h.digest())
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        // Draws stay in [0, 1).
        assert!((0..100).all(|i| {
            let v = unit_interval(mix64(i));
            (0.0..1.0).contains(&v)
        }));
    }
}
