//! Error type shared by all codecs.

use std::fmt;

/// Errors produced while encoding or decoding bit streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran past the end of the input bit stream.
    UnexpectedEof,
    /// A decoded value was outside its legal range.
    Corrupt(&'static str),
    /// Container checksum mismatch — the payload was damaged in transit.
    ChecksumMismatch {
        /// Checksum stored in the container header.
        expected: u64,
        /// Checksum of the decoded data.
        actual: u64,
    },
    /// A container declared an unknown format or algorithm tag.
    UnknownFormat(u8),
    /// A value to encode exceeded what the code can represent.
    ValueTooLarge(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of bit stream"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: header says {expected:#018x}, data hashes to {actual:#018x}"
            ),
            CodecError::UnknownFormat(tag) => write!(f, "unknown format tag {tag:#04x}"),
            CodecError::ValueTooLarge(v) => write!(f, "value {v} too large for this code"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CodecError::UnexpectedEof.to_string().contains("end"));
        assert!(CodecError::Corrupt("bad length").to_string().contains("bad length"));
        let e = CodecError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum"));
        assert!(CodecError::UnknownFormat(0xAB).to_string().contains("0xab"));
        assert!(CodecError::ValueTooLarge(99).to_string().contains("99"));
    }
}
