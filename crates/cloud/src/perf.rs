//! The performance model: deterministic work/RAM statistics → time.
//!
//! Compressors report abstract work units and peak heap
//! (`dnacomp_algos::ResourceStats`). This model converts them into
//! milliseconds under a [`ClientContext`], calibrated so the *shape* of
//! the paper's measurements is reproduced:
//!
//! * **Per-algorithm fixed startup cost.** The paper observes "the file
//!   with a small size can take more time than a larger file. This
//!   anomaly varies with algorithm to algorithm" (§I) — the constant
//!   table/index initialisation of the 2015-era binaries. This fixed
//!   cost is what makes CTW/GenCompress beat DNAX below ≈50 kB and
//!   produces the crossovers CART learns (Figures 9–12).
//! * **CPU & RAM affect upload.** "Uploading data at cloud was not only
//!   dependent on bandwidth but the processor speed and RAM also
//!   mattered" (§IV-A): the file must be "converted into a continuous
//!   stream and then uploaded as BLOB" (§VI). Upload = request latency +
//!   wire time + CPU-bound stream conversion, the latter scaled by RAM
//!   pressure.
//! * **Observed RAM is noisy.** "When CPU usage is greater than 30 % the
//!   RAM usage got double" (§V-E) and background processes are "not
//!   deterministic" (§VI). Observed RAM multiplies the true peak heap by
//!   a seeded background-load factor — precisely why the paper's
//!   RAM-trained rules only reach ≈33–36 % accuracy (Table 2).
//!
//! All randomness is a pure hash of (seed, context, algorithm, file,
//! metric): the same experiment always yields the same numbers.

use crate::machine::{ClientContext, MachineSpec};
use dnacomp_algos::{Algorithm, ResourceStats};
use dnacomp_codec::checksum::{unit_interval, Fnv1a};

/// Reference CPU the calibration constants are expressed against (the
/// i5 host's 2.4 GHz).
pub const REF_CPU_MHZ: f64 = 2400.0;

/// Per-algorithm calibration: fixed startup plus a scale factor applied
/// to the measured work units.
#[derive(Clone, Copy, Debug)]
struct Calibration {
    /// Fixed compress-side startup in ms at the reference CPU.
    comp_init_ms: f64,
    /// Work-unit scale for compression.
    comp_scale: f64,
    /// Fixed decompress-side startup in ms at the reference CPU.
    dec_init_ms: f64,
    /// Work-unit scale for decompression.
    dec_scale: f64,
}

/// Calibration table. Scales map each algorithm's observed work/base to
/// the per-base timings that reproduce the paper's orderings (DNAX
/// fastest compress & decompress; GenCompress slowest compress; CTW
/// slowest decompress; Gzip worst overall).
fn calibration(alg: Algorithm) -> Calibration {
    match alg {
        Algorithm::Dnax => Calibration {
            comp_init_ms: 1400.0,
            comp_scale: 0.48,
            dec_init_ms: 50.0,
            dec_scale: 0.48,
        },
        Algorithm::Ctw => Calibration {
            comp_init_ms: 150.0,
            comp_scale: 1.0,
            dec_init_ms: 150.0,
            dec_scale: 1.0,
        },
        Algorithm::GenCompress => Calibration {
            // High scale: the 1999 GenCompress binary re-searches the
            // whole processed prefix per position; our hash-chain port
            // amortises that away, so the scale restores the observed
            // "compression time for Gencompress is bad" behaviour.
            comp_init_ms: 40.0,
            comp_scale: 6.7,
            dec_init_ms: 40.0,
            dec_scale: 1.6,
        },
        Algorithm::Gzip => Calibration {
            // Slowest per-base overall (abstract: "worst compression
            // ratio and time") — the paper's gzip timings include the
            // full process + file I/O on the Windows guests.
            comp_init_ms: 130.0,
            comp_scale: 11.3,
            dec_init_ms: 30.0,
            dec_scale: 2.0,
        },
        Algorithm::BioCompress2 => Calibration {
            comp_init_ms: 500.0,
            comp_scale: 0.9,
            dec_init_ms: 60.0,
            dec_scale: 0.9,
        },
        Algorithm::DnaPackLite => Calibration {
            comp_init_ms: 100.0,
            comp_scale: 3.4,
            dec_init_ms: 40.0,
            dec_scale: 1.0,
        },
        Algorithm::Cfact => Calibration {
            comp_init_ms: 200.0,
            comp_scale: 1.2,
            dec_init_ms: 40.0,
            dec_scale: 0.6,
        },
        Algorithm::XmLite => Calibration {
            // "Require more computation … usable for small sequences
            // only" (§III-A).
            comp_init_ms: 80.0,
            comp_scale: 2.2,
            dec_init_ms: 80.0,
            dec_scale: 2.2,
        },
        Algorithm::Reference => Calibration {
            // Index lookups only; decompression is pure copying.
            comp_init_ms: 120.0,
            comp_scale: 1.0,
            dec_init_ms: 30.0,
            dec_scale: 0.4,
        },
        Algorithm::Dnac => Calibration {
            comp_init_ms: 250.0,
            comp_scale: 1.4,
            dec_init_ms: 40.0,
            dec_scale: 0.6,
        },
        Algorithm::DnaCompress => Calibration {
            // "Faster than other algorithms" (§III-A).
            comp_init_ms: 80.0,
            comp_scale: 0.9,
            dec_init_ms: 40.0,
            dec_scale: 0.7,
        },
        Algorithm::DnaSequitur => Calibration {
            comp_init_ms: 120.0,
            comp_scale: 1.8,
            dec_init_ms: 40.0,
            dec_scale: 0.8,
        },
        Algorithm::CtwLz => Calibration {
            // The slowest generation of DNA compressors: CTW literals on
            // top of the repeat search.
            comp_init_ms: 200.0,
            comp_scale: 1.1,
            dec_init_ms: 200.0,
            dec_scale: 1.1,
        },
        Algorithm::Raw => Calibration {
            // Pure 2-bit packing: a memory copy each way. The degraded
            // path must be near-free in CPU so its cost is dominated by
            // the larger blob on the wire.
            comp_init_ms: 5.0,
            comp_scale: 0.1,
            dec_init_ms: 5.0,
            dec_scale: 0.1,
        },
        Algorithm::Bwt => Calibration {
            // Suffix-array build dominates compression; inversion is a
            // linear LF walk, so decompression is bzip2-style cheap.
            comp_init_ms: 150.0,
            comp_scale: 1.3,
            dec_init_ms: 40.0,
            dec_scale: 0.5,
        },
    }
}

/// Knobs of the exchange environment shared by all contexts.
#[derive(Clone, Debug)]
pub struct PerfModel {
    /// Seed for all jitter.
    pub seed: u64,
    /// Per-request latency to the storage account, ms.
    pub request_latency_ms: f64,
    /// Stream/BLOB conversion throughput, bytes per ms per MHz.
    pub stream_bytes_per_ms_per_mhz: f64,
    /// RAM reserved by the guest OS, MB (working memory below this
    /// starts incurring pressure).
    pub os_reserved_mb: f64,
    /// Multiplicative jitter half-width for timing (e.g. 0.04 = ±4 %).
    pub time_jitter: f64,
    /// Probability that background CPU load doubles observed RAM.
    pub ram_double_prob: f64,
    /// Cloud-side download bandwidth, bytes per ms.
    pub cloud_bw_bytes_per_ms: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            seed: 0x00D7_A57E,
            request_latency_ms: 120.0,
            stream_bytes_per_ms_per_mhz: 0.15,
            os_reserved_mb: 700.0,
            time_jitter: 0.04,
            ram_double_prob: 0.45,
            cloud_bw_bytes_per_ms: 500.0,
        }
    }
}

impl PerfModel {
    /// Deterministic unit-interval hash for (context, algorithm, file,
    /// metric tag).
    fn unit(&self, ctx_key: &str, alg: Algorithm, file: &str, tag: u8) -> f64 {
        let mut h = Fnv1a::with_seed(self.seed);
        h.update(ctx_key.as_bytes());
        h.update(&[alg.tag(), tag]);
        h.update(file.as_bytes());
        unit_interval(h.digest())
    }

    fn jitter(&self, ctx_key: &str, alg: Algorithm, file: &str, tag: u8) -> f64 {
        1.0 + self.time_jitter * (2.0 * self.unit(ctx_key, alg, file, tag) - 1.0)
    }

    /// RAM-pressure multiplier for CPU-bound phases on the client.
    pub fn ram_penalty(&self, ctx: &ClientContext, peak_heap_bytes: u64) -> f64 {
        let available_mb = (ctx.ram_mb as f64 - self.os_reserved_mb).max(128.0);
        let heap_mb = peak_heap_bytes as f64 / (1024.0 * 1024.0);
        (1.0 + 2.0 * heap_mb / available_mb).min(4.0)
    }

    /// Client-side compression time in ms.
    pub fn compress_ms(
        &self,
        ctx: &ClientContext,
        alg: Algorithm,
        file: &str,
        stats: &ResourceStats,
    ) -> f64 {
        let cal = calibration(alg);
        let cpu = ctx.cpu_mhz as f64;
        let base = cal.comp_init_ms * REF_CPU_MHZ / cpu
            + stats.work_units as f64 * cal.comp_scale / cpu;
        base * self.ram_penalty(ctx, stats.peak_heap_bytes)
            * self.jitter(&ctx.key(), alg, file, 0)
    }

    /// Client-side compression time for a *resident* streaming process
    /// (no per-invocation startup): the marginal cost ACE-style on-the-fly
    /// compression pays per chunk.
    pub fn compress_resident_ms(
        &self,
        ctx: &ClientContext,
        alg: Algorithm,
        file: &str,
        stats: &ResourceStats,
    ) -> f64 {
        let cal = calibration(alg);
        let cpu = ctx.cpu_mhz as f64;
        let base = stats.work_units as f64 * cal.comp_scale / cpu;
        base * self.ram_penalty(ctx, stats.peak_heap_bytes)
            * self.jitter(&ctx.key(), alg, file, 0)
    }

    /// Cloud-side decompression time in ms (fixed cloud VM).
    pub fn decompress_ms(
        &self,
        cloud: &MachineSpec,
        alg: Algorithm,
        file: &str,
        stats: &ResourceStats,
    ) -> f64 {
        let cal = calibration(alg);
        let cpu = cloud.cpu_mhz as f64;
        let base = cal.dec_init_ms * REF_CPU_MHZ / cpu
            + stats.work_units as f64 * cal.dec_scale / cpu;
        // Cloud VM RAM is fixed; pressure computed against its spec.
        let available_mb = (cloud.ram_mb as f64 - self.os_reserved_mb).max(128.0);
        let heap_mb = stats.peak_heap_bytes as f64 / (1024.0 * 1024.0);
        let penalty = (1.0 + 2.0 * heap_mb / available_mb).min(4.0);
        base * penalty * self.jitter(&cloud.name, alg, file, 1)
    }

    /// Client → storage upload time in ms for a blob of `bytes`.
    pub fn upload_ms(
        &self,
        ctx: &ClientContext,
        alg: Algorithm,
        file: &str,
        bytes: usize,
        peak_heap_bytes: u64,
    ) -> f64 {
        let wire = bytes as f64 / ctx.bandwidth.bytes_per_ms();
        // Stream/BLOB conversion: CPU-bound, RAM-pressure-scaled — the
        // paper's "upload depends on CPU and RAM too".
        let stream = bytes as f64
            / (self.stream_bytes_per_ms_per_mhz * ctx.cpu_mhz as f64)
            * self.ram_penalty(ctx, peak_heap_bytes);
        (self.request_latency_ms + wire + stream) * self.jitter(&ctx.key(), alg, file, 2)
    }

    /// Storage → cloud-VM download time in ms.
    pub fn download_ms(
        &self,
        cloud: &MachineSpec,
        alg: Algorithm,
        file: &str,
        bytes: usize,
    ) -> f64 {
        let wire = bytes as f64 / self.cloud_bw_bytes_per_ms;
        let cpu = bytes as f64 / (self.stream_bytes_per_ms_per_mhz * cloud.cpu_mhz as f64 * 4.0);
        (self.request_latency_ms / 4.0 + wire + cpu) * self.jitter(&cloud.name, alg, file, 3)
    }

    /// Fixed process baseline RSS per algorithm, bytes. The 2015-era
    /// binaries carry megabytes of runtime/buffer overhead regardless of
    /// input, which is why the paper finds "the RAM usage … is nearly
    /// same for all algorithms" (§V-E) on typical files — the
    /// input-proportional part only dominates for large inputs.
    pub fn baseline_rss_bytes(alg: Algorithm) -> u64 {
        // Values chosen so that on typical corpus files the *total*
        // (baseline + heap) overlaps across algorithms — zlib's small
        // window sits inside a heavyweight process, while CTW's growing
        // node pool starts from a lean runtime.
        let mb = match alg {
            Algorithm::Gzip => 3.4,
            Algorithm::Dnax => 2.9,
            Algorithm::Ctw => 1.6,
            Algorithm::GenCompress => 2.8,
            Algorithm::BioCompress2 => 2.7,
            Algorithm::DnaPackLite => 2.5,
            Algorithm::Cfact => 2.0,
            Algorithm::XmLite => 2.4,
            Algorithm::Reference => 2.6,
            Algorithm::Dnac => 2.1,
            Algorithm::DnaCompress => 2.7,
            Algorithm::DnaSequitur => 2.3,
            Algorithm::CtwLz => 2.2,
            // Bare packer: no model tables, leanest process of all.
            Algorithm::Raw => 1.1,
            Algorithm::Bwt => 2.2,
        };
        (mb * 1024.0 * 1024.0) as u64
    }

    /// Observed RAM in bytes: baseline RSS + true peak heap, perturbed
    /// by background CPU load. Above the load threshold the observation
    /// doubles (§V-E: "when CPU usage is greater than 30 % the RAM usage
    /// got double").
    pub fn observed_ram_bytes(
        &self,
        ctx: &ClientContext,
        alg: Algorithm,
        file: &str,
        peak_heap_bytes: u64,
    ) -> u64 {
        let u = self.unit(&ctx.key(), alg, file, 4);
        let doubled = u < self.ram_double_prob;
        // Background processes make single-shot RSS readings very noisy
        // (§VI: "not deterministic because of sudden background
        // processes") — ±35 % wobble on top of the doubling.
        let wobble = 1.0 + 0.35 * (2.0 * self.unit(&ctx.key(), alg, file, 5) - 1.0);
        let base = (Self::baseline_rss_bytes(alg) + peak_heap_bytes).max(1) as f64;
        (base * if doubled { 2.0 } else { 1.0 } * wobble) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(ram: u32, cpu: u32, bw: f64) -> ClientContext {
        ClientContext::new(ram, cpu, bw)
    }

    fn stats(work: u64, heap: u64) -> ResourceStats {
        ResourceStats {
            work_units: work,
            peak_heap_bytes: heap,
        }
    }

    #[test]
    fn deterministic() {
        let m = PerfModel::default();
        let c = ctx(2048, 2393, 2.0);
        let s = stats(1_000_000, 10 << 20);
        let a = m.compress_ms(&c, Algorithm::Dnax, "f1", &s);
        let b = m.compress_ms(&c, Algorithm::Dnax, "f1", &s);
        assert_eq!(a, b);
    }

    #[test]
    fn faster_cpu_reduces_compress_time() {
        let m = PerfModel {
            time_jitter: 0.0,
            ..PerfModel::default()
        };
        let s = stats(5_000_000, 10 << 20);
        let slow = m.compress_ms(&ctx(2048, 1600, 2.0), Algorithm::Ctw, "f", &s);
        let fast = m.compress_ms(&ctx(2048, 2800, 2.0), Algorithm::Ctw, "f", &s);
        assert!(fast < slow);
    }

    #[test]
    fn more_ram_reduces_compress_time() {
        let m = PerfModel {
            time_jitter: 0.0,
            ..PerfModel::default()
        };
        let s = stats(5_000_000, 200 << 20);
        let low = m.compress_ms(&ctx(1024, 2000, 2.0), Algorithm::GenCompress, "f", &s);
        let high = m.compress_ms(&ctx(4096, 2000, 2.0), Algorithm::GenCompress, "f", &s);
        assert!(high < low);
    }

    #[test]
    fn upload_depends_on_bandwidth_cpu_and_ram() {
        let m = PerfModel {
            time_jitter: 0.0,
            ..PerfModel::default()
        };
        let heap = 100 << 20;
        let base = m.upload_ms(&ctx(2048, 2000, 2.0), Algorithm::Dnax, "f", 500_000, heap);
        let more_bw = m.upload_ms(&ctx(2048, 2000, 10.0), Algorithm::Dnax, "f", 500_000, heap);
        let more_cpu = m.upload_ms(&ctx(2048, 2800, 2.0), Algorithm::Dnax, "f", 500_000, heap);
        let more_ram = m.upload_ms(&ctx(4096, 2000, 2.0), Algorithm::Dnax, "f", 500_000, heap);
        assert!(more_bw < base, "{more_bw} vs {base}");
        assert!(more_cpu < base, "{more_cpu} vs {base}");
        assert!(more_ram < base, "{more_ram} vs {base}");
    }

    #[test]
    fn ram_penalty_bounds() {
        let m = PerfModel::default();
        assert!(m.ram_penalty(&ctx(4096, 2000, 2.0), 0) >= 1.0);
        let p = m.ram_penalty(&ctx(1024, 2000, 2.0), 10 << 30);
        assert!(p <= 4.0);
    }

    #[test]
    fn small_file_crossover_exists() {
        // With calibrated startup costs, DNAX must *lose* the compress
        // race on a small file and win it on a large one (the paper's
        // <50 kB observation). Work/base approximations mirror the real
        // meters: DNAX ≈ 10/base, GenCompress ≈ 14/base.
        let m = PerfModel {
            time_jitter: 0.0,
            ..PerfModel::default()
        };
        let c = ctx(3072, 2393, 2.0);
        let small = 10_000u64;
        let large = 1_000_000u64;
        let dnax_small = m.compress_ms(&c, Algorithm::Dnax, "f", &stats(small * 10, 1 << 20));
        let gc_small =
            m.compress_ms(&c, Algorithm::GenCompress, "f", &stats(small * 14, 1 << 20));
        assert!(gc_small < dnax_small, "{gc_small} vs {dnax_small}");
        let dnax_large = m.compress_ms(&c, Algorithm::Dnax, "f", &stats(large * 10, 40 << 20));
        let gc_large =
            m.compress_ms(&c, Algorithm::GenCompress, "f", &stats(large * 14, 60 << 20));
        assert!(dnax_large < gc_large, "{dnax_large} vs {gc_large}");
    }

    #[test]
    fn observed_ram_is_noisy_but_bounded() {
        let m = PerfModel::default();
        let heap = 50u64 << 20;
        let base = heap + PerfModel::baseline_rss_bytes(Algorithm::Ctw);
        let mut doubled = 0;
        let mut total = 0;
        for f in 0..200 {
            let obs = m.observed_ram_bytes(
                &ctx(2048, 2000, 2.0),
                Algorithm::Ctw,
                &format!("file{f}"),
                heap,
            );
            assert!(obs as f64 >= base as f64 * 0.6);
            assert!(obs as f64 <= base as f64 * 2.8);
            if obs as f64 > base as f64 * 1.4 {
                doubled += 1;
            }
            total += 1;
        }
        // Doubling must occur for a substantial minority of observations.
        assert!(doubled > total / 5, "doubled {doubled}/{total}");
        assert!(doubled < total * 4 / 5, "doubled {doubled}/{total}");
    }

    #[test]
    fn download_differences_are_modest() {
        // Paper Fig. 6: per-algorithm download gaps are tens of ms.
        let m = PerfModel {
            time_jitter: 0.0,
            ..PerfModel::default()
        };
        let cloud = MachineSpec::azure_vm();
        let a = m.download_ms(&cloud, Algorithm::Dnax, "f", 24_000);
        let b = m.download_ms(&cloud, Algorithm::Gzip, "f", 29_000);
        let gap = (b - a).abs();
        assert!(gap > 1.0 && gap < 100.0, "gap = {gap}");
    }
}
