//! Machine and context specifications.

use serde::{Deserialize, Serialize};

/// Network bandwidth in megabits per second.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct BandwidthMbps(pub f64);

impl BandwidthMbps {
    /// Bytes per millisecond at this bandwidth.
    pub fn bytes_per_ms(self) -> f64 {
        // Mbit/s → bytes/ms: ×1e6 / 8 / 1e3.
        self.0 * 125.0
    }
}

/// A physical or virtual machine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Human-readable name.
    pub name: String,
    /// Installed RAM in megabytes.
    pub ram_mb: u32,
    /// CPU clock in MHz.
    pub cpu_mhz: u32,
    /// Core count (the paper's single-threaded binaries use one).
    pub cores: u32,
}

impl MachineSpec {
    /// Convenience constructor.
    pub fn new(name: &str, ram_mb: u32, cpu_mhz: u32, cores: u32) -> Self {
        MachineSpec {
            name: name.to_owned(),
            ram_mb,
            cpu_mhz,
            cores,
        }
    }

    /// The paper's i5 host: 6 GB RAM, 2.4 GHz.
    pub fn i5() -> Self {
        MachineSpec::new("i5-6GB-2.4GHz", 6 * 1024, 2400, 4)
    }

    /// The paper's Core 2 Duo host: 3 GB RAM, 2.0 GHz.
    pub fn core2duo() -> Self {
        MachineSpec::new("core2duo-3GB-2.0GHz", 3 * 1024, 2000, 2)
    }

    /// The paper's Azure VM: 3.5 GB RAM, 2.1 GHz AMD.
    pub fn azure_vm() -> Self {
        MachineSpec::new("azure-3.5GB-2.1GHz-AMD", 3584, 2100, 1)
    }
}

/// A client-side context: the independent variables of the experiments
/// (§IV-A: "The parameters for context such as RAM and Bandwidth were
/// simulated on these machines").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClientContext {
    /// RAM available to the VM, megabytes.
    pub ram_mb: u32,
    /// CPU clock of the VM, MHz.
    pub cpu_mhz: u32,
    /// Uplink bandwidth to the storage account.
    pub bandwidth: BandwidthMbps,
}

impl ClientContext {
    /// Convenience constructor.
    pub fn new(ram_mb: u32, cpu_mhz: u32, bandwidth_mbps: f64) -> Self {
        ClientContext {
            ram_mb,
            cpu_mhz,
            bandwidth: BandwidthMbps(bandwidth_mbps),
        }
    }

    /// Stable identifier used for seeding jitter and labelling rows.
    pub fn key(&self) -> String {
        format!(
            "ram{}-cpu{}-bw{}",
            self.ram_mb, self.cpu_mhz, self.bandwidth.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversion() {
        // 8 Mbit/s = 1 MB/s = 1000 bytes/ms.
        assert!((BandwidthMbps(8.0).bytes_per_ms() - 1000.0).abs() < 1e-9);
        assert!((BandwidthMbps(2.0).bytes_per_ms() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn paper_machines_match_the_text() {
        let i5 = MachineSpec::i5();
        assert_eq!(i5.ram_mb, 6144);
        assert_eq!(i5.cpu_mhz, 2400);
        let c2d = MachineSpec::core2duo();
        assert_eq!(c2d.ram_mb, 3072);
        assert_eq!(c2d.cpu_mhz, 2000);
        let az = MachineSpec::azure_vm();
        assert_eq!(az.ram_mb, 3584);
        assert_eq!(az.cpu_mhz, 2100);
    }

    #[test]
    fn context_key_is_stable_and_distinct() {
        let a = ClientContext::new(2048, 2393, 2.0);
        let b = ClientContext::new(2048, 2393, 10.0);
        assert_eq!(a.key(), ClientContext::new(2048, 2393, 2.0).key());
        assert_ne!(a.key(), b.key());
    }
}
