//! The simulated storage account.
//!
//! §IV-A: *"a storage account (SAAS) was used to store the uploaded files
//! in the form of Blobs (Binary large object). A container is created and
//! these files are uploaded as BLOBs."* Uploading requires "the file to
//! be converted into a continuous stream and then uploaded as BLOB"
//! (§VI) — the CPU-bound step the perf model charges for.

use bytes::Bytes;
use std::collections::HashMap;

/// Azure block blobs are staged in chunks; 4 MiB is the classic block
/// size for the 2014-era SDKs.
pub const BLOCK_BYTES: usize = 4 << 20;

/// Handle to a stored blob.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BlobHandle {
    /// Container name.
    pub container: String,
    /// Blob name within the container.
    pub name: String,
}

/// An in-memory storage account: containers of named blobs.
#[derive(Clone, Debug, Default)]
pub struct BlobStore {
    containers: HashMap<String, HashMap<String, Bytes>>,
}

impl BlobStore {
    /// Fresh empty account.
    pub fn new() -> Self {
        BlobStore::default()
    }

    /// Create a container (idempotent).
    pub fn create_container(&mut self, name: &str) {
        self.containers.entry(name.to_owned()).or_default();
    }

    /// `true` if the container exists.
    pub fn has_container(&self, name: &str) -> bool {
        self.containers.contains_key(name)
    }

    /// Upload `data` as a block blob. The container is created on demand
    /// (as the Azure SDK's `CreateIfNotExists` pattern does). Returns the
    /// handle and the number of blocks staged.
    pub fn upload(&mut self, container: &str, name: &str, data: &[u8]) -> (BlobHandle, usize) {
        let blocks = data.len().div_ceil(BLOCK_BYTES).max(1);
        self.containers
            .entry(container.to_owned())
            .or_default()
            .insert(name.to_owned(), Bytes::copy_from_slice(data));
        (
            BlobHandle {
                container: container.to_owned(),
                name: name.to_owned(),
            },
            blocks,
        )
    }

    /// Download a blob (zero-copy clone of the stored bytes).
    pub fn download(&self, handle: &BlobHandle) -> Option<Bytes> {
        self.containers
            .get(&handle.container)?
            .get(&handle.name)
            .cloned()
    }

    /// Delete a blob; returns whether it existed.
    pub fn delete(&mut self, handle: &BlobHandle) -> bool {
        self.containers
            .get_mut(&handle.container)
            .map(|c| c.remove(&handle.name).is_some())
            .unwrap_or(false)
    }

    /// Blobs stored in `container`.
    pub fn list(&self, container: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .containers
            .get(container)
            .map(|c| c.keys().cloned().collect())
            .unwrap_or_default();
        names.sort_unstable();
        names
    }

    /// Total bytes held by the account (the storage-cost metric).
    pub fn stored_bytes(&self) -> u64 {
        self.containers
            .values()
            .flat_map(|c| c.values())
            .map(|b| b.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_download_roundtrip() {
        let mut store = BlobStore::new();
        let (h, blocks) = store.upload("genomes", "chmpxx.dx", b"payload");
        assert_eq!(blocks, 1);
        assert_eq!(store.download(&h).unwrap().as_ref(), b"payload");
        assert!(store.has_container("genomes"));
    }

    #[test]
    fn block_counting() {
        let mut store = BlobStore::new();
        let big = vec![0u8; BLOCK_BYTES * 2 + 1];
        let (_, blocks) = store.upload("c", "big", &big);
        assert_eq!(blocks, 3);
        let (_, blocks) = store.upload("c", "empty", b"");
        assert_eq!(blocks, 1);
    }

    #[test]
    fn overwrite_replaces() {
        let mut store = BlobStore::new();
        let (h, _) = store.upload("c", "x", b"one");
        store.upload("c", "x", b"two");
        assert_eq!(store.download(&h).unwrap().as_ref(), b"two");
        assert_eq!(store.stored_bytes(), 3);
    }

    #[test]
    fn delete_and_list() {
        let mut store = BlobStore::new();
        let (h1, _) = store.upload("c", "b", b"1");
        store.upload("c", "a", b"22");
        assert_eq!(store.list("c"), vec!["a".to_owned(), "b".to_owned()]);
        assert!(store.delete(&h1));
        assert!(!store.delete(&h1));
        assert_eq!(store.list("c"), vec!["a".to_owned()]);
        assert_eq!(store.stored_bytes(), 2);
        assert!(store.list("missing").is_empty());
    }

    #[test]
    fn missing_blob_is_none() {
        let store = BlobStore::new();
        let h = BlobHandle {
            container: "c".into(),
            name: "x".into(),
        };
        assert!(store.download(&h).is_none());
    }
}
