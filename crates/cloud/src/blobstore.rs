//! The simulated storage account.
//!
//! §IV-A: *"a storage account (SAAS) was used to store the uploaded files
//! in the form of Blobs (Binary large object). A container is created and
//! these files are uploaded as BLOBs."* Uploading requires "the file to
//! be converted into a continuous stream and then uploaded as BLOB"
//! (§VI) — the CPU-bound step the perf model charges for.
//!
//! Blobs are stored **block-granular**, mirroring the Put Block / Put
//! Block List protocol of Azure block blobs: blocks are staged
//! individually (with a checksum recorded per block at staging time) and
//! the blob only materialises on [`BlobStore::commit`]. This is what
//! makes uploads *resumable* — after a transient failure only the missing
//! blocks need re-staging — and lets downloads verify and re-fetch
//! individual blocks.
//!
//! **Block-count invariant:** a blob of `len` bytes always occupies
//! exactly `len.div_ceil(block_bytes)` blocks. In particular a zero-byte
//! blob occupies **zero** blocks — an empty upload is a bare Put Blob
//! request that stages nothing, and every accounting surface
//! ([`BlobStore::upload`]'s block count, [`BlobStore::block_count`],
//! [`BlobStore::stored_bytes`]) agrees on that.

use bytes::Bytes;
use dnacomp_codec::checksum::fnv1a;
use dnacomp_codec::CodecError;
use std::collections::{BTreeMap, HashMap};

/// Azure block blobs are staged in chunks; 4 MiB is the classic block
/// size for the 2014-era SDKs.
pub const BLOCK_BYTES: usize = 4 << 20;

/// Handle to a stored blob.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BlobHandle {
    /// Container name.
    pub container: String,
    /// Blob name within the container.
    pub name: String,
}

/// A committed blob: its staged blocks plus the checksum recorded for
/// each at staging time.
#[derive(Clone, Debug, Default)]
struct StoredBlob {
    blocks: Vec<Bytes>,
    checksums: Vec<u64>,
}

impl StoredBlob {
    fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    fn concat(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.len());
        for b in &self.blocks {
            out.extend_from_slice(b);
        }
        Bytes::from(out)
    }
}

/// An in-memory storage account: containers of named blobs, plus the
/// staging area for in-flight block uploads.
#[derive(Clone, Debug)]
pub struct BlobStore {
    containers: HashMap<String, HashMap<String, StoredBlob>>,
    /// Staged-but-uncommitted blocks per (container, blob):
    /// index → (data, checksum).
    pending: HashMap<(String, String), BTreeMap<usize, (Bytes, u64)>>,
    block_bytes: usize,
}

impl Default for BlobStore {
    fn default() -> Self {
        BlobStore::new()
    }
}

impl BlobStore {
    /// Fresh empty account with the standard [`BLOCK_BYTES`] block size.
    pub fn new() -> Self {
        BlobStore::with_block_bytes(BLOCK_BYTES)
    }

    /// Fresh empty account with a custom block size (chaos tests shrink
    /// it to exercise multi-block uploads on small payloads).
    pub fn with_block_bytes(block_bytes: usize) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        BlobStore {
            containers: HashMap::new(),
            pending: HashMap::new(),
            block_bytes,
        }
    }

    /// The staging block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes
    }

    /// Number of blocks a `len`-byte blob occupies (zero for empty).
    pub fn blocks_for(&self, len: usize) -> usize {
        len.div_ceil(self.block_bytes)
    }

    /// Create a container (idempotent).
    pub fn create_container(&mut self, name: &str) {
        self.containers.entry(name.to_owned()).or_default();
    }

    /// `true` if the container exists.
    pub fn has_container(&self, name: &str) -> bool {
        self.containers.contains_key(name)
    }

    /// Stage one block of an in-flight upload (Azure Put Block). Its
    /// checksum is recorded now, so corruption on a later download is
    /// attributable to the wire, not the store. Re-staging an index
    /// replaces the previous attempt's block.
    pub fn stage_block(&mut self, container: &str, name: &str, index: usize, data: &[u8]) {
        assert!(
            data.len() <= self.block_bytes,
            "staged block exceeds block size"
        );
        self.pending
            .entry((container.to_owned(), name.to_owned()))
            .or_default()
            .insert(index, (Bytes::copy_from_slice(data), fnv1a(data)));
    }

    /// How many blocks are currently staged for an in-flight upload.
    pub fn staged_blocks(&self, container: &str, name: &str) -> usize {
        self.pending
            .get(&(container.to_owned(), name.to_owned()))
            .map(|m| m.len())
            .unwrap_or(0)
    }

    /// Commit a staged upload (Azure Put Block List): blocks `0 ..
    /// n_blocks` must all be staged. The container is created on demand
    /// (the SDK's `CreateIfNotExists` pattern). On success the staging
    /// area is cleared and the blob becomes visible; on failure staged
    /// blocks are kept so the uploader can resume.
    pub fn commit(
        &mut self,
        container: &str,
        name: &str,
        n_blocks: usize,
    ) -> Result<BlobHandle, CodecError> {
        let key = (container.to_owned(), name.to_owned());
        let staged = self.pending.get(&key);
        let have = staged.map(|m| m.len()).unwrap_or(0);
        if have < n_blocks
            || (0..n_blocks).any(|i| !staged.map(|m| m.contains_key(&i)).unwrap_or(false))
        {
            return Err(CodecError::Corrupt("commit with missing staged blocks"));
        }
        let staged = self.pending.remove(&key).unwrap_or_default();
        let mut blob = StoredBlob::default();
        for (_, (data, sum)) in staged.into_iter().take(n_blocks) {
            blob.blocks.push(data);
            blob.checksums.push(sum);
        }
        self.containers
            .entry(container.to_owned())
            .or_default()
            .insert(name.to_owned(), blob);
        Ok(BlobHandle {
            container: container.to_owned(),
            name: name.to_owned(),
        })
    }

    /// Upload `data` as a block blob in one call: stage every block and
    /// commit. Returns the handle and the number of blocks staged —
    /// `data.len().div_ceil(block_bytes)`, so **zero for empty data**
    /// (see the module-level invariant).
    pub fn upload(&mut self, container: &str, name: &str, data: &[u8]) -> (BlobHandle, usize) {
        let blocks = self.blocks_for(data.len());
        for (i, chunk) in data.chunks(self.block_bytes).enumerate() {
            self.stage_block(container, name, i, chunk);
        }
        let handle = self
            .commit(container, name, blocks)
            .expect("all blocks just staged");
        (handle, blocks)
    }

    /// Download a whole blob (concatenation of its blocks).
    pub fn download(&self, handle: &BlobHandle) -> Option<Bytes> {
        self.stored(handle).map(StoredBlob::concat)
    }

    /// Download a single block of a blob.
    pub fn download_block(&self, handle: &BlobHandle, index: usize) -> Option<Bytes> {
        self.stored(handle)?.blocks.get(index).cloned()
    }

    /// The checksum recorded for a block at staging time.
    pub fn block_checksum(&self, handle: &BlobHandle, index: usize) -> Option<u64> {
        self.stored(handle)?.checksums.get(index).copied()
    }

    /// Number of blocks a committed blob occupies.
    pub fn block_count(&self, handle: &BlobHandle) -> Option<usize> {
        self.stored(handle).map(|b| b.blocks.len())
    }

    fn stored(&self, handle: &BlobHandle) -> Option<&StoredBlob> {
        self.containers.get(&handle.container)?.get(&handle.name)
    }

    /// Delete a blob; returns whether it existed.
    pub fn delete(&mut self, handle: &BlobHandle) -> bool {
        self.containers
            .get_mut(&handle.container)
            .map(|c| c.remove(&handle.name).is_some())
            .unwrap_or(false)
    }

    /// Blobs stored in `container`.
    pub fn list(&self, container: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .containers
            .get(container)
            .map(|c| c.keys().cloned().collect())
            .unwrap_or_default();
        names.sort_unstable();
        names
    }

    /// Total bytes held by the account (the storage-cost metric).
    /// Staged-but-uncommitted blocks are not stored bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.containers
            .values()
            .flat_map(|c| c.values())
            .map(|b| b.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_download_roundtrip() {
        let mut store = BlobStore::new();
        let (h, blocks) = store.upload("genomes", "chmpxx.dx", b"payload");
        assert_eq!(blocks, 1);
        assert_eq!(store.download(&h).unwrap().as_ref(), b"payload");
        assert!(store.has_container("genomes"));
    }

    #[test]
    fn block_counting() {
        let mut store = BlobStore::with_block_bytes(8);
        let big = vec![0u8; 8 * 2 + 1];
        let (h, blocks) = store.upload("c", "big", &big);
        assert_eq!(blocks, 3);
        assert_eq!(store.block_count(&h), Some(3));
        // Zero-byte blobs occupy zero blocks — every accounting surface
        // agrees (the module-level invariant).
        let (h, blocks) = store.upload("c", "empty", b"");
        assert_eq!(blocks, 0);
        assert_eq!(store.block_count(&h), Some(0));
        assert_eq!(store.download(&h).unwrap().len(), 0);
        assert_eq!(store.blocks_for(0), 0);
    }

    #[test]
    fn staged_upload_resumes_and_commits() {
        let mut store = BlobStore::with_block_bytes(4);
        store.stage_block("c", "x", 0, b"aaaa");
        store.stage_block("c", "x", 2, b"cc");
        assert_eq!(store.staged_blocks("c", "x"), 2);
        // Commit with a hole must fail and keep the staged blocks.
        assert!(store.commit("c", "x", 3).is_err());
        assert_eq!(store.staged_blocks("c", "x"), 2);
        // Resume: stage only the missing block, then commit.
        store.stage_block("c", "x", 1, b"bbbb");
        let h = store.commit("c", "x", 3).unwrap();
        assert_eq!(store.download(&h).unwrap().as_ref(), b"aaaabbbbcc");
        assert_eq!(store.staged_blocks("c", "x"), 0);
    }

    #[test]
    fn restaging_replaces_a_block() {
        let mut store = BlobStore::with_block_bytes(4);
        store.stage_block("c", "x", 0, b"old!");
        store.stage_block("c", "x", 0, b"new!");
        let h = store.commit("c", "x", 1).unwrap();
        assert_eq!(store.download(&h).unwrap().as_ref(), b"new!");
    }

    #[test]
    fn block_checksums_detect_tampering() {
        let mut store = BlobStore::with_block_bytes(4);
        let (h, _) = store.upload("c", "x", b"aaaabbbb");
        for i in 0..2 {
            let block = store.download_block(&h, i).unwrap();
            assert_eq!(store.block_checksum(&h, i), Some(fnv1a(&block)));
            let mut wire = block.to_vec();
            wire[0] ^= 0x40; // corruption in flight
            assert_ne!(store.block_checksum(&h, i), Some(fnv1a(&wire)));
        }
        assert!(store.download_block(&h, 2).is_none());
        assert!(store.block_checksum(&h, 2).is_none());
    }

    #[test]
    fn overwrite_replaces() {
        let mut store = BlobStore::new();
        let (h, _) = store.upload("c", "x", b"one");
        store.upload("c", "x", b"two");
        assert_eq!(store.download(&h).unwrap().as_ref(), b"two");
        assert_eq!(store.stored_bytes(), 3);
    }

    #[test]
    fn delete_and_list() {
        let mut store = BlobStore::new();
        let (h1, _) = store.upload("c", "b", b"1");
        store.upload("c", "a", b"22");
        assert_eq!(store.list("c"), vec!["a".to_owned(), "b".to_owned()]);
        assert!(store.delete(&h1));
        assert!(!store.delete(&h1));
        assert_eq!(store.list("c"), vec!["a".to_owned()]);
        assert_eq!(store.stored_bytes(), 2);
        assert!(store.list("missing").is_empty());
    }

    #[test]
    fn missing_blob_is_none() {
        let store = BlobStore::new();
        let h = BlobHandle {
            container: "c".into(),
            name: "x".into(),
        };
        assert!(store.download(&h).is_none());
        assert!(store.block_count(&h).is_none());
    }
}
