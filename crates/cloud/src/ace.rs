//! ACE-style adaptive on-the-fly compression (extension; paper §III).
//!
//! The paper's related work describes Krintz & Sucu's **Adaptive
//! Compression Environment**: it "automatically and transparently applies
//! compression on stream … to improve transfer performance", using
//! light-weight **network sensors** (the Network Weather Service) to
//! forecast whether compressing the next block will pay off, and falling
//! back to CPU-load/bandwidth heuristics when no recent compression
//! samples exist. This module implements that control loop on top of our
//! simulator:
//!
//! * [`Forecaster`] — an NWS-like exponentially-weighted moving average
//!   over recent observations;
//! * [`Ace`] — per-chunk decide → act → observe: it forecasts the raw
//!   path (wire time only) against the compressed path (compression
//!   time plus smaller wire time) and picks the cheaper, updating its
//!   forecasts with what actually happened.
//!
//! The paper's framework makes one decision per file from trained rules;
//! ACE is the streaming alternative that learns *online* — a useful
//! comparison point the `ace` integration tests exercise.

use crate::machine::ClientContext;
use crate::perf::PerfModel;
use dnacomp_algos::Compressor;
use dnacomp_codec::CodecError;
use dnacomp_seq::PackedSeq;

/// NWS-style EWMA forecaster.
#[derive(Clone, Copy, Debug)]
pub struct Forecaster {
    value: Option<f64>,
    alpha: f64,
}

impl Forecaster {
    /// Forecaster with smoothing factor `alpha` ∈ (0, 1]; higher = more
    /// reactive.
    pub fn new(alpha: f64) -> Forecaster {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Forecaster { value: None, alpha }
    }

    /// Current forecast, if any observation has been made.
    pub fn forecast(&self) -> Option<f64> {
        self.value
    }

    /// Absorb an observation. Observations are durations/costs, so
    /// non-finite or negative samples (a failed or mis-clocked
    /// measurement) are ignored rather than poisoning the EWMA — a NaN
    /// absorbed once would otherwise stick forever, because every
    /// subsequent blend `v + α·(x − v)` of a NaN forecast is NaN again.
    ///
    /// ```
    /// use dnacomp_cloud::Forecaster;
    /// let mut f = Forecaster::new(0.5);
    /// f.observe(10.0);
    /// // Garbage samples bounce off the guard: the forecast is
    /// // unchanged, not poisoned.
    /// f.observe(f64::NAN);
    /// f.observe(f64::INFINITY);
    /// f.observe(-3.0);
    /// assert_eq!(f.forecast(), Some(10.0));
    /// // Valid samples keep blending as usual.
    /// f.observe(20.0);
    /// assert_eq!(f.forecast(), Some(15.0));
    /// ```
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() || x < 0.0 {
            return;
        }
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }
}

/// Per-chunk decision record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkDecision {
    /// Chunk shipped raw.
    Raw,
    /// Chunk compressed before shipping.
    Compressed,
}

/// Outcome of streaming one sequence through ACE.
#[derive(Clone, Debug)]
pub struct AceReport {
    /// Decision per chunk, in order.
    pub decisions: Vec<ChunkDecision>,
    /// Total simulated transfer time (ms) with ACE's choices.
    pub total_ms: f64,
    /// What shipping everything raw would have cost (ms).
    pub all_raw_ms: f64,
    /// What compressing everything would have cost (ms).
    pub all_compressed_ms: f64,
    /// Bytes on the wire under ACE's choices.
    pub wire_bytes: usize,
}

impl AceReport {
    /// Fraction of chunks ACE chose to compress.
    pub fn compressed_fraction(&self) -> f64 {
        if self.decisions.is_empty() {
            return 0.0;
        }
        self.decisions
            .iter()
            .filter(|&&d| d == ChunkDecision::Compressed)
            .count() as f64
            / self.decisions.len() as f64
    }
}

/// The adaptive compression environment.
pub struct Ace {
    /// Chunk size in bases.
    pub chunk: usize,
    /// Bandwidth forecaster (bytes/ms actually achieved on the wire).
    pub bw: Forecaster,
    /// Compression throughput forecaster (bases/ms).
    pub comp_rate: Forecaster,
    /// Compression ratio forecaster (compressed bytes / base).
    pub ratio: Forecaster,
}

impl Default for Ace {
    fn default() -> Self {
        Ace::new(16 * 1024)
    }
}

impl Ace {
    /// ACE with the given chunk size (bases) and NWS-default smoothing.
    pub fn new(chunk: usize) -> Ace {
        assert!(chunk > 0);
        Ace {
            chunk,
            bw: Forecaster::new(0.4),
            comp_rate: Forecaster::new(0.4),
            ratio: Forecaster::new(0.4),
        }
    }

    /// Should the next chunk of `n` bases be compressed, under current
    /// forecasts? With no compression samples yet, ACE probes by
    /// compressing (the paper's ACE falls back to CPU-load/bandwidth
    /// estimates; probing gathers the sample immediately).
    pub fn decide(&self, n: usize) -> ChunkDecision {
        let (Some(bw), Some(rate), Some(ratio)) = (
            self.bw.forecast(),
            self.comp_rate.forecast(),
            self.ratio.forecast(),
        ) else {
            return ChunkDecision::Compressed;
        };
        let raw_ms = n as f64 / bw;
        let comp_ms = n as f64 / rate + (n as f64 * ratio) / bw;
        if comp_ms < raw_ms {
            ChunkDecision::Compressed
        } else {
            ChunkDecision::Raw
        }
    }

    /// Stream `seq` under `ctx`, deciding per chunk. `compressor` is the
    /// codec ACE wraps (the original used bzip/LZO/zlib; any
    /// [`Compressor`] works here).
    pub fn ship_stream(
        &mut self,
        perf: &PerfModel,
        ctx: &ClientContext,
        compressor: &dyn Compressor,
        file: &str,
        seq: &PackedSeq,
    ) -> Result<AceReport, CodecError> {
        let mut decisions = Vec::new();
        let mut total_ms = 0.0;
        let mut all_raw_ms = 0.0;
        let mut all_compressed_ms = 0.0;
        let mut wire_bytes = 0usize;
        let alg = compressor.algorithm();
        let mut start = 0usize;
        let mut chunk_id = 0usize;
        while start < seq.len() {
            let end = (start + self.chunk).min(seq.len());
            let chunk = seq.slice(start, end);
            let n = chunk.len();
            let tag = format!("{file}#{chunk_id}");
            // Price both paths with the simulator (ACE's sensors observe
            // the real outcomes; we observe the simulated ones).
            let raw_wire = n as f64 / ctx.bandwidth.bytes_per_ms();
            let (blob, stats) = compressor.compress_with_stats(&chunk)?;
            // Resident pricing: the streaming process pays its startup
            // once, not per chunk.
            let comp_ms = perf.compress_resident_ms(ctx, alg, &tag, &stats);
            let comp_wire = blob.total_bytes() as f64 / ctx.bandwidth.bytes_per_ms();
            let comp_total = comp_ms + comp_wire;
            all_raw_ms += raw_wire;
            all_compressed_ms += comp_total;
            let decision = self.decide(n);
            match decision {
                ChunkDecision::Raw => {
                    total_ms += raw_wire;
                    wire_bytes += n;
                }
                ChunkDecision::Compressed => {
                    total_ms += comp_total;
                    wire_bytes += blob.total_bytes();
                    // Sensors only see compression outcomes when it runs.
                    self.comp_rate
                        .observe(n as f64 / (comp_ms / 1.0).max(1e-9));
                    self.ratio.observe(blob.total_bytes() as f64 / n as f64);
                }
            }
            // Bandwidth is observed either way.
            self.bw.observe(ctx.bandwidth.bytes_per_ms());
            decisions.push(decision);
            start = end;
            chunk_id += 1;
        }
        Ok(AceReport {
            decisions,
            total_ms,
            all_raw_ms,
            all_compressed_ms,
            wire_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ClientContext;
    use dnacomp_algos::Dnax;
    use dnacomp_seq::gen::GenomeModel;

    fn quiet_perf() -> PerfModel {
        PerfModel {
            time_jitter: 0.0,
            ..PerfModel::default()
        }
    }

    #[test]
    fn forecaster_ignores_poisonous_observations() {
        let mut f = Forecaster::new(0.5);
        // Bad samples before any good one leave the forecaster empty.
        f.observe(f64::NAN);
        f.observe(f64::INFINITY);
        f.observe(-1.0);
        assert_eq!(f.forecast(), None);
        // And bad samples after a good one leave the EWMA untouched.
        f.observe(10.0);
        assert_eq!(f.forecast(), Some(10.0));
        f.observe(f64::NAN);
        f.observe(f64::NEG_INFINITY);
        f.observe(-0.001);
        assert_eq!(f.forecast(), Some(10.0));
        f.observe(20.0);
        assert_eq!(f.forecast(), Some(15.0));
    }

    #[test]
    fn forecaster_converges() {
        let mut f = Forecaster::new(0.5);
        assert!(f.forecast().is_none());
        for _ in 0..20 {
            f.observe(10.0);
        }
        assert!((f.forecast().unwrap() - 10.0).abs() < 1e-9);
        // Step change: converges toward the new level.
        for _ in 0..20 {
            f.observe(2.0);
        }
        assert!((f.forecast().unwrap() - 2.0).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn zero_alpha_rejected() {
        let _ = Forecaster::new(0.0);
    }

    #[test]
    fn slow_link_converges_to_compressing() {
        // DNAX achieves ~1 bit/base; on a 0.5 Mbit/s uplink the wire
        // saving dwarfs the compression cost.
        let mut ace = Ace::new(8_192);
        let ctx = ClientContext::new(4096, 2800, 0.5);
        let seq = GenomeModel::default().generate(160_000, 3);
        let report = ace
            .ship_stream(&quiet_perf(), &ctx, &Dnax::default(), "f", &seq)
            .unwrap();
        assert!(
            report.compressed_fraction() > 0.8,
            "compressed fraction {}",
            report.compressed_fraction()
        );
        assert!(report.total_ms <= report.all_raw_ms * 1.05);
    }

    #[test]
    fn fast_link_converges_to_raw() {
        // A (hypothetical) 500 Mbit/s uplink: compression cost cannot be
        // recovered; ACE probes once, then ships raw.
        let mut ace = Ace::new(8_192);
        let ctx = ClientContext::new(4096, 2000, 500.0);
        let seq = GenomeModel::default().generate(160_000, 3);
        let report = ace
            .ship_stream(&quiet_perf(), &ctx, &Dnax::default(), "f", &seq)
            .unwrap();
        assert!(
            report.compressed_fraction() < 0.2,
            "compressed fraction {}",
            report.compressed_fraction()
        );
        // ACE is never much worse than the best static policy — up to
        // the cost of its initial probe chunks.
        let best = report.all_raw_ms.min(report.all_compressed_ms);
        assert!(
            report.total_ms <= best + 50.0,
            "{} vs {}",
            report.total_ms,
            best
        );
    }

    #[test]
    fn adapts_to_bandwidth_change_mid_stream() {
        // First phase on a fast link (raw wins), second phase slow
        // (compression wins): the decision mix must flip once the EWMA
        // sensors catch up with the new bandwidth.
        let perf = quiet_perf();
        let seq = GenomeModel::default().generate(300_000, 5);
        let mut ace = Ace::new(4_096);
        let fast = ClientContext::new(4096, 2800, 500.0);
        let first = ace
            .ship_stream(&perf, &fast, &Dnax::default(), "a", &seq.slice(0, 100_000))
            .unwrap();
        let slow = ClientContext::new(4096, 2800, 0.5);
        let second = ace
            .ship_stream(&perf, &slow, &Dnax::default(), "b", &seq.slice(100_000, 300_000))
            .unwrap();
        assert!(first.compressed_fraction() < 0.3, "{}", first.compressed_fraction());
        assert!(second.compressed_fraction() > 0.5, "{}", second.compressed_fraction());
    }

    #[test]
    fn empty_stream() {
        let mut ace = Ace::default();
        let ctx = ClientContext::new(2048, 2000, 2.0);
        let report = ace
            .ship_stream(&quiet_perf(), &ctx, &Dnax::default(), "f", &PackedSeq::new())
            .unwrap();
        assert!(report.decisions.is_empty());
        assert_eq!(report.total_ms, 0.0);
        assert_eq!(report.compressed_fraction(), 0.0);
    }

    #[test]
    fn wire_bytes_reflect_decisions() {
        let mut ace = Ace::new(4_096);
        let ctx = ClientContext::new(4096, 2800, 0.5);
        let seq = GenomeModel::highly_repetitive().generate(60_000, 9);
        let report = ace
            .ship_stream(&quiet_perf(), &ctx, &Dnax::default(), "f", &seq)
            .unwrap();
        // Mostly compressed → wire bytes far below raw size.
        assert!(report.wire_bytes < seq.len() / 2, "{}", report.wire_bytes);
    }
}
