//! The experimental context grid.
//!
//! §V: the test set is "33 files so 33·32 (with different context) = 1056
//! rows" — every file is exchanged under **32 client contexts**. We build
//! the grid as 4 RAM levels × 4 CPU speeds × 2 bandwidths = 32. The CPU
//! level 2393 MHz reproduces the split point CHAID found ("CPU speed less
//! than or equal to 2393", §V-A), and the RAM levels straddle the paper's
//! "RAM is less than 2 GB" rule.

use crate::machine::{ClientContext, MachineSpec};

/// RAM levels (MB) simulated in the VMware guests.
pub const RAM_LEVELS_MB: [u32; 4] = [1024, 2048, 3072, 4096];
/// CPU levels (MHz) simulated in the VMware guests.
pub const CPU_LEVELS_MHZ: [u32; 4] = [1600, 2000, 2393, 2800];
/// Uplink bandwidths (Mbit/s) — 2014-era asymmetric uplinks, slow enough
/// that upload time is a first-class cost (the paper reports multi-second
/// upload gaps between algorithms).
pub const BANDWIDTH_LEVELS_MBPS: [f64; 2] = [0.5, 2.0];

/// The full 32-context grid, in deterministic order.
pub fn context_grid() -> Vec<ClientContext> {
    let mut out = Vec::with_capacity(32);
    for &ram in &RAM_LEVELS_MB {
        for &cpu in &CPU_LEVELS_MHZ {
            for &bw in &BANDWIDTH_LEVELS_MBPS {
                out.push(ClientContext::new(ram, cpu, bw));
            }
        }
    }
    out
}

/// The three machines of §IV-A (two client hosts + the cloud VM).
pub fn paper_machines() -> (MachineSpec, MachineSpec, MachineSpec) {
    (
        MachineSpec::i5(),
        MachineSpec::core2duo(),
        MachineSpec::azure_vm(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn grid_has_32_distinct_contexts() {
        let grid = context_grid();
        assert_eq!(grid.len(), 32);
        let keys: HashSet<String> = grid.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), 32);
    }

    #[test]
    fn grid_covers_the_paper_split_points() {
        let grid = context_grid();
        assert!(grid.iter().any(|c| c.cpu_mhz == 2393));
        assert!(grid.iter().any(|c| c.ram_mb < 2048));
        assert!(grid.iter().any(|c| c.ram_mb >= 2048));
    }

    #[test]
    fn grid_order_is_deterministic() {
        assert_eq!(context_grid(), context_grid());
    }
}
