//! # dnacomp-cloud — deterministic cloud-exchange simulator
//!
//! The paper's testbed (§IV-A) is physical: an i5/6 GB and a Core 2
//! Duo/3 GB running VMware-simulated contexts, exchanging blobs with a
//! Windows Azure storage account, plus an Azure VM doing the download and
//! decompression. That hardware is not available offline, so this crate
//! models it:
//!
//! * [`MachineSpec`] / [`ClientContext`] — the machines and the VMware
//!   context grid (RAM × CPU × bandwidth);
//! * [`BlobStore`] — the storage account (container of BLOBs, chunked
//!   stream upload);
//! * [`PerfModel`] — converts the compressors' deterministic work/RAM
//!   statistics into milliseconds under a context, including the paper's
//!   two key couplings: upload cost depends on CPU and RAM (stream/BLOB
//!   conversion), and observed RAM usage is perturbed by background CPU
//!   load ("when CPU usage is greater than 30 % the RAM usage got
//!   double", §V-E) — the very noise that makes RAM-based rules learn
//!   poorly in Table 2;
//! * [`CloudSim`] — the end-to-end exchange: compress → upload → download
//!   → decompress, producing an [`ExchangeReport`];
//! * [`FaultPlan`] / [`RetryPolicy`] / [`ExchangeError`] — the resilience
//!   layer: seeded fault injection on block transfers, exponential
//!   backoff with deterministic jitter, per-phase timeouts and a retry
//!   budget, with every unrecoverable fault surfaced as a typed error.
//!
//! Everything is seeded; the same (context, algorithm, file) always
//! yields the same report — including the faults it suffers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ace;
pub mod blobstore;
pub mod error;
pub mod fault;
pub mod grid;
pub mod machine;
pub mod perf;
pub mod retry;
pub mod sim;

pub use ace::{Ace, AceReport, ChunkDecision, Forecaster};
pub use blobstore::{BlobHandle, BlobStore};
pub use error::{ExchangeError, ExchangePhase};
pub use fault::FaultPlan;
pub use grid::{context_grid, paper_machines};
pub use machine::{BandwidthMbps, ClientContext, MachineSpec};
pub use perf::PerfModel;
pub use retry::RetryPolicy;
pub use sim::{CloudSim, ExchangeReport};
