//! Retry policy: exponential backoff with deterministic jitter,
//! per-phase timeouts and a per-exchange backoff budget.
//!
//! The simulator charges backoff delays through the same millisecond
//! accounting as real transfer work, so a retried exchange is visibly
//! slower in its [`crate::ExchangeReport`] — retries are never free.
//!
//! Three invariants the property tests pin down:
//!
//! 1. **Monotonicity** — successive delays for one operation never
//!    decrease (jitter wobbles the exponential curve but a running max
//!    keeps the sequence non-decreasing);
//! 2. **Determinism** — the same `(seed, key)` always yields the same
//!    schedule;
//! 3. **Budget** — the sum of scheduled delays never exceeds
//!    [`RetryPolicy::budget_ms`].

/// Backoff and timeout knobs for the resilient exchange.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per block, including the first (so `max_attempts -
    /// 1` retries).
    pub max_attempts: u32,
    /// First retry delay, ms.
    pub base_delay_ms: f64,
    /// Exponential growth factor between retries.
    pub multiplier: f64,
    /// Upper bound on a single delay before jitter, ms.
    pub max_delay_ms: f64,
    /// Jitter half-width as a fraction of the delay (0.2 = ±20 %).
    pub jitter: f64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
    /// Total backoff budget per exchange, ms. Once spent, further
    /// failures abort with a typed error rather than waiting more.
    pub budget_ms: f64,
    /// Wall-clock cap per phase (upload or download), ms.
    pub phase_timeout_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 50.0,
            multiplier: 2.0,
            max_delay_ms: 2_000.0,
            jitter: 0.2,
            seed: 0x0BAC_0FF5,
            budget_ms: 10_000.0,
            phase_timeout_ms: 600_000.0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, no backoff.
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            budget_ms: 0.0,
            ..RetryPolicy::default()
        }
    }

    /// Deterministic jitter factor in `[1 - jitter, 1 + jitter]` for one
    /// (key, retry) pair.
    fn jitter_factor(&self, key: u64, retry: u32) -> f64 {
        let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ self.seed;
        h ^= key;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= retry as u64;
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.jitter * (2.0 * unit - 1.0)
    }

    /// Delay in ms before retry number `retry` (1-based) of the
    /// operation identified by `key`. Not budget- or
    /// monotonicity-adjusted; [`schedule`](Self::schedule) applies both.
    pub fn raw_delay_ms(&self, key: u64, retry: u32) -> f64 {
        let exp = self.base_delay_ms * self.multiplier.powi(retry.saturating_sub(1) as i32);
        exp.min(self.max_delay_ms) * self.jitter_factor(key, retry)
    }

    /// The full backoff schedule for one operation: at most
    /// `max_attempts - 1` delays, monotonically non-decreasing, with a
    /// cumulative sum that never exceeds `budget_ms` (the schedule is
    /// truncated at the first delay that would overrun it).
    pub fn schedule(&self, key: u64) -> Vec<f64> {
        let mut delays = Vec::new();
        let mut prev = 0.0f64;
        let mut total = 0.0f64;
        for retry in 1..self.max_attempts {
            // Running max: jitter may dip below the previous delay, but
            // the emitted sequence must never back off *less* over time.
            let d = self.raw_delay_ms(key, retry).max(prev);
            if total + d > self.budget_ms {
                break;
            }
            total += d;
            prev = d;
            delays.push(d);
        }
        delays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_monotone_and_budgeted() {
        let p = RetryPolicy::default();
        for key in 0..200u64 {
            let s = p.schedule(key);
            assert!(s.len() <= (p.max_attempts - 1) as usize);
            for w in s.windows(2) {
                assert!(w[1] >= w[0], "key {key}: {s:?}");
            }
            let total: f64 = s.iter().sum();
            assert!(total <= p.budget_ms, "key {key}: {total}");
        }
    }

    #[test]
    fn deterministic() {
        let p = RetryPolicy::default();
        assert_eq!(p.schedule(99), p.schedule(99));
        let other_seed = RetryPolicy {
            seed: 1,
            ..RetryPolicy::default()
        };
        assert_ne!(p.schedule(99), other_seed.schedule(99));
    }

    #[test]
    fn tight_budget_truncates() {
        let p = RetryPolicy {
            budget_ms: 60.0,
            ..RetryPolicy::default()
        };
        // base 50 ms ± 20 % → first delay fits, second (≈100 ms) cannot.
        for key in 0..50u64 {
            let s = p.schedule(key);
            assert!(s.len() <= 1, "key {key}: {s:?}");
        }
    }

    #[test]
    fn no_retries_policy_is_empty() {
        assert!(RetryPolicy::no_retries().schedule(7).is_empty());
    }

    #[test]
    fn delays_grow_exponentially_under_cap() {
        let p = RetryPolicy {
            jitter: 0.0,
            max_attempts: 8,
            budget_ms: f64::INFINITY,
            ..RetryPolicy::default()
        };
        let s = p.schedule(0);
        assert_eq!(s.len(), 7);
        assert_eq!(s[0], 50.0);
        assert_eq!(s[1], 100.0);
        assert_eq!(s[2], 200.0);
        assert_eq!(*s.last().unwrap(), 2_000.0); // capped
    }
}
