//! Typed failures of the resilient exchange.
//!
//! The chaos suite's core guarantee is *no silent corruption*: every
//! exchange either returns a byte-identical roundtrip or one of these
//! errors. Each variant carries enough context (phase, block, attempts)
//! for a caller — or the framework's circuit breaker — to decide whether
//! to degrade, retry later, or surface the failure.

use dnacomp_codec::CodecError;

/// Pipeline phase an error occurred in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangePhase {
    /// Client-side compression.
    Compress,
    /// Block upload to the storage account.
    Upload,
    /// Block download at the cloud VM.
    Download,
    /// Cloud-side decompression and verification.
    Decompress,
}

impl std::fmt::Display for ExchangePhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ExchangePhase::Compress => "compress",
            ExchangePhase::Upload => "upload",
            ExchangePhase::Download => "download",
            ExchangePhase::Decompress => "decompress",
        })
    }
}

/// Why a resilient exchange gave up.
#[derive(Clone, Debug, PartialEq)]
pub enum ExchangeError {
    /// A codec-level failure (compression, parsing, checksum, roundtrip).
    Codec(CodecError),
    /// An upload block kept failing after exhausting its attempts.
    UploadFailed {
        /// Zero-based block index.
        block: usize,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A download block kept failing after exhausting its attempts.
    DownloadFailed {
        /// Zero-based block index.
        block: usize,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// A block kept arriving corrupt (per-block checksum mismatch) after
    /// exhausting its re-fetch attempts.
    Integrity {
        /// Zero-based block index.
        block: usize,
        /// Fetch attempts made before giving up.
        attempts: u32,
    },
    /// A phase ran past its wall-clock cap.
    Timeout {
        /// Which phase timed out.
        phase: ExchangePhase,
        /// Simulated ms the phase had consumed.
        elapsed_ms: f64,
        /// The configured cap.
        limit_ms: f64,
    },
    /// The exchange's total backoff budget was spent before the transfer
    /// completed.
    RetryBudgetExhausted {
        /// Phase that wanted one more retry.
        phase: ExchangePhase,
        /// Backoff ms already spent.
        spent_ms: f64,
        /// The configured budget.
        budget_ms: f64,
    },
}

impl From<CodecError> for ExchangeError {
    fn from(e: CodecError) -> Self {
        ExchangeError::Codec(e)
    }
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::Codec(e) => write!(f, "codec error: {e}"),
            ExchangeError::UploadFailed { block, attempts } => {
                write!(f, "upload of block {block} failed after {attempts} attempts")
            }
            ExchangeError::DownloadFailed { block, attempts } => {
                write!(f, "download of block {block} failed after {attempts} attempts")
            }
            ExchangeError::Integrity { block, attempts } => write!(
                f,
                "block {block} failed checksum verification after {attempts} fetches"
            ),
            ExchangeError::Timeout {
                phase,
                elapsed_ms,
                limit_ms,
            } => write!(
                f,
                "{phase} phase timed out: {elapsed_ms:.0} ms > {limit_ms:.0} ms"
            ),
            ExchangeError::RetryBudgetExhausted {
                phase,
                spent_ms,
                budget_ms,
            } => write!(
                f,
                "{phase} phase exhausted the retry budget: {spent_ms:.0} of {budget_ms:.0} ms spent"
            ),
        }
    }
}

impl std::error::Error for ExchangeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExchangeError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = ExchangeError::UploadFailed {
            block: 3,
            attempts: 4,
        };
        assert!(e.to_string().contains("block 3"));
        let e = ExchangeError::Timeout {
            phase: ExchangePhase::Download,
            elapsed_ms: 1200.0,
            limit_ms: 1000.0,
        };
        assert!(e.to_string().contains("download"));
        let e: ExchangeError = CodecError::UnexpectedEof.into();
        assert!(matches!(e, ExchangeError::Codec(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
