//! End-to-end exchange simulation.
//!
//! Figure 1's pipeline: compress on the client VM → upload to the storage
//! account as a BLOB → download at the cloud VM → decompress. [`CloudSim`]
//! runs the *real* compressor (so sizes, work and heap are genuine) and
//! prices each phase with the [`PerfModel`].

use crate::blobstore::BlobStore;
use crate::machine::{ClientContext, MachineSpec};
use crate::perf::PerfModel;
use dnacomp_algos::{Algorithm, Compressor};
use dnacomp_codec::CodecError;
use dnacomp_seq::PackedSeq;
use serde::{Deserialize, Serialize};

/// Measured outcome of one exchange — one row of the paper's dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExchangeReport {
    /// File identifier.
    pub file: String,
    /// Original size in bases (= raw file bytes, 1 byte/base).
    pub original_len: usize,
    /// Algorithm used.
    pub algorithm: Algorithm,
    /// Serialised blob size in bytes (Figure 4's variable).
    pub compressed_bytes: usize,
    /// Client-side compression time, ms (Figure 5).
    pub compress_ms: f64,
    /// Upload time, ms (Figure 2).
    pub upload_ms: f64,
    /// Download time at the cloud VM, ms (Figure 6).
    pub download_ms: f64,
    /// Decompression time at the cloud VM, ms.
    pub decompress_ms: f64,
    /// Observed RAM on the client, bytes (Figure 3).
    pub ram_used_bytes: u64,
}

impl ExchangeReport {
    /// Total exchange time in ms.
    pub fn total_ms(&self) -> f64 {
        self.compress_ms + self.upload_ms + self.download_ms + self.decompress_ms
    }

    /// Compression ratio in bits per base.
    pub fn bits_per_base(&self) -> f64 {
        if self.original_len == 0 {
            0.0
        } else {
            self.compressed_bytes as f64 * 8.0 / self.original_len as f64
        }
    }
}

/// The simulated exchange environment.
///
/// ```
/// use dnacomp_cloud::{ClientContext, CloudSim};
/// use dnacomp_algos::Dnax;
/// use dnacomp_seq::gen::GenomeModel;
/// let mut sim = CloudSim::default();
/// let seq = GenomeModel::default().generate(10_000, 1);
/// let ctx = ClientContext::new(2048, 2393, 2.0);
/// let report = sim.exchange(&ctx, &Dnax::default(), "demo", &seq).unwrap();
/// assert!(report.total_ms() > 0.0);
/// assert_eq!(report.original_len, 10_000);
/// ```
pub struct CloudSim {
    /// Performance model (seeds, latencies, calibration).
    pub perf: PerfModel,
    /// The cloud VM doing download + decompression.
    pub cloud_vm: MachineSpec,
    /// The storage account.
    pub store: BlobStore,
    /// Container name used for uploads.
    pub container: String,
}

impl Default for CloudSim {
    fn default() -> Self {
        CloudSim::new(PerfModel::default(), MachineSpec::azure_vm())
    }
}

impl CloudSim {
    /// New simulator with the given model and cloud VM.
    pub fn new(perf: PerfModel, cloud_vm: MachineSpec) -> Self {
        let mut store = BlobStore::new();
        store.create_container("sequences");
        CloudSim {
            perf,
            cloud_vm,
            store,
            container: "sequences".to_owned(),
        }
    }

    /// Run the full exchange of `seq` under `ctx` with `compressor`,
    /// verifying the roundtrip.
    pub fn exchange(
        &mut self,
        ctx: &ClientContext,
        compressor: &dyn Compressor,
        file: &str,
        seq: &PackedSeq,
    ) -> Result<ExchangeReport, CodecError> {
        let alg = compressor.algorithm();
        // 1. Compress on the client.
        let (blob, cstats) = compressor.compress_with_stats(seq)?;
        let bytes = blob.to_bytes();
        let compress_ms = self.perf.compress_ms(ctx, alg, file, &cstats);
        // 2. Upload: stream conversion + wire.
        let upload_ms = self
            .perf
            .upload_ms(ctx, alg, file, bytes.len(), cstats.peak_heap_bytes);
        let blob_name = format!("{file}.{}.dx", alg.name().to_ascii_lowercase());
        let (handle, _blocks) = self.store.upload(&self.container, &blob_name, &bytes);
        // 3. Download at the cloud VM.
        let fetched = self
            .store
            .download(&handle)
            .ok_or(CodecError::Corrupt("blob vanished from store"))?;
        let download_ms = self
            .perf
            .download_ms(&self.cloud_vm, alg, file, fetched.len());
        // 4. Decompress at the cloud VM and verify.
        let parsed = dnacomp_algos::CompressedBlob::from_bytes(&fetched)?;
        let (decoded, dstats) = compressor.decompress_with_stats(&parsed)?;
        if &decoded != seq {
            return Err(CodecError::Corrupt("roundtrip mismatch"));
        }
        let decompress_ms = self
            .perf
            .decompress_ms(&self.cloud_vm, alg, file, &dstats);
        let ram_used_bytes =
            self.perf
                .observed_ram_bytes(ctx, alg, file, cstats.peak_heap_bytes);
        Ok(ExchangeReport {
            file: file.to_owned(),
            original_len: seq.len(),
            algorithm: alg,
            compressed_bytes: bytes.len(),
            compress_ms,
            upload_ms,
            download_ms,
            decompress_ms,
            ram_used_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_algos::{Ctw, Dnax, GenCompress, GzipRs};
    use dnacomp_seq::gen::GenomeModel;

    fn ctx() -> ClientContext {
        ClientContext::new(3072, 2393, 2.0)
    }

    #[test]
    fn exchange_produces_consistent_report() {
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(20_000, 3);
        let r = sim
            .exchange(&ctx(), &Dnax::default(), "f1", &seq)
            .unwrap();
        assert_eq!(r.original_len, 20_000);
        assert!(r.compressed_bytes > 0);
        assert!(r.compress_ms > 0.0);
        assert!(r.upload_ms > 0.0);
        assert!(r.download_ms > 0.0);
        assert!(r.decompress_ms > 0.0);
        assert!(r.ram_used_bytes > 0);
        assert!(r.total_ms() >= r.compress_ms);
        // Blob actually stored.
        assert_eq!(sim.store.list("sequences").len(), 1);
    }

    #[test]
    fn exchange_is_deterministic() {
        let seq = GenomeModel::default().generate(10_000, 5);
        let run = || {
            let mut sim = CloudSim::default();
            sim.exchange(&ctx(), &Ctw::default(), "f", &seq).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dnax_wins_total_time_on_large_files() {
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(400_000, 7);
        let dnax = sim.exchange(&ctx(), &Dnax::default(), "big", &seq).unwrap();
        let gc = sim
            .exchange(&ctx(), &GenCompress::default(), "big", &seq)
            .unwrap();
        let ctw = sim.exchange(&ctx(), &Ctw::default(), "big", &seq).unwrap();
        let gz = sim.exchange(&ctx(), &GzipRs::default(), "big", &seq).unwrap();
        assert!(dnax.total_ms() < gc.total_ms(), "DNAX {} GC {}", dnax.total_ms(), gc.total_ms());
        assert!(dnax.total_ms() < ctw.total_ms());
        assert!(dnax.total_ms() < gz.total_ms());
    }

    #[test]
    fn dnax_loses_on_small_files() {
        // The paper's <50 kB observation: the selection framework exists
        // because small files favour GenCompress/CTW.
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(8_000, 7);
        let dnax = sim.exchange(&ctx(), &Dnax::default(), "small", &seq).unwrap();
        let gc = sim
            .exchange(&ctx(), &GenCompress::default(), "small", &seq)
            .unwrap();
        assert!(
            gc.total_ms() < dnax.total_ms(),
            "GC {} vs DNAX {}",
            gc.total_ms(),
            dnax.total_ms()
        );
    }

    #[test]
    fn gzip_never_wins_total_time() {
        let mut sim = CloudSim::default();
        for (i, len) in [3_000usize, 30_000, 150_000].into_iter().enumerate() {
            let seq = GenomeModel::default().generate(len, 11 + i as u64);
            let file = format!("f{len}");
            let gz = sim
                .exchange(&ctx(), &GzipRs::default(), &file, &seq)
                .unwrap();
            // Gzip may beat individual algorithms at some sizes, but it
            // must never be the overall winner (§V: "no records where
            // Gzip was used as label").
            let best_other = [
                sim.exchange(&ctx(), &Dnax::default(), &file, &seq).unwrap(),
                sim.exchange(&ctx(), &GenCompress::default(), &file, &seq)
                    .unwrap(),
                sim.exchange(&ctx(), &Ctw::default(), &file, &seq).unwrap(),
            ]
            .into_iter()
            .map(|r| r.total_ms())
            .fold(f64::INFINITY, f64::min);
            assert!(
                best_other < gz.total_ms(),
                "gzip wins at len {len}: {} vs best {}",
                gz.total_ms(),
                best_other
            );
        }
    }

    #[test]
    fn ctw_has_worst_decompression() {
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(100_000, 13);
        let reports: Vec<ExchangeReport> = [
            Box::new(Ctw::default()) as Box<dyn Compressor>,
            Box::new(Dnax::default()),
            Box::new(GenCompress::default()),
            Box::new(GzipRs::default()),
        ]
        .iter()
        .map(|c| sim.exchange(&ctx(), c.as_ref(), "f", &seq).unwrap())
        .collect();
        let ctw = &reports[0];
        for other in &reports[1..] {
            assert!(
                ctw.decompress_ms > other.decompress_ms,
                "CTW {} vs {} {}",
                ctw.decompress_ms,
                other.algorithm,
                other.decompress_ms
            );
        }
        // And DNAX has the least decompression time (§IV-B).
        let dnax = &reports[1];
        for other in [&reports[0], &reports[2], &reports[3]] {
            assert!(dnax.decompress_ms < other.decompress_ms);
        }
    }

    #[test]
    fn gzip_has_worst_ratio_on_dna() {
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(80_000, 17);
        let gz = sim.exchange(&ctx(), &GzipRs::default(), "f", &seq).unwrap();
        for c in [
            Box::new(Ctw::default()) as Box<dyn Compressor>,
            Box::new(Dnax::default()),
            Box::new(GenCompress::default()),
        ] {
            let r = sim.exchange(&ctx(), c.as_ref(), "f", &seq).unwrap();
            assert!(
                r.compressed_bytes < gz.compressed_bytes,
                "{} not smaller than gzip",
                r.algorithm
            );
        }
    }
}
