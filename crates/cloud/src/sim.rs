//! End-to-end exchange simulation.
//!
//! Figure 1's pipeline: compress on the client VM → upload to the storage
//! account as a BLOB → download at the cloud VM → decompress. [`CloudSim`]
//! runs the *real* compressor (so sizes, work and heap are genuine) and
//! prices each phase with the [`PerfModel`].
//!
//! Transfers are **block-granular and resilient**: each block is staged
//! (upload) or fetched (download) under the simulator's [`FaultPlan`],
//! retrying per its [`RetryPolicy`]. Failed attempts, backoff delays,
//! stalls and degraded-link slowdowns are charged through the same
//! millisecond accounting as useful work, so a flaky exchange is visibly
//! slower in its report ([`ExchangeReport::wasted_ms`] isolates the
//! overhead). Downloads verify each block against the checksum recorded
//! at staging time and re-fetch corrupt blocks; a blob that cannot be
//! moved intact within the retry budget yields a typed
//! [`ExchangeError`] — never silent corruption.
//!
//! With [`FaultPlan::none`] (the default) the pipeline is byte- and
//! millisecond-identical to the fault-free model: per-block costs are the
//! whole-phase nominal cost split by byte share, so they sum back to the
//! legacy totals, and `retries`, `wasted_ms` and `integrity_failures`
//! stay zero.

use crate::blobstore::BlobStore;
use crate::error::{ExchangeError, ExchangePhase};
use crate::fault::FaultPlan;
use crate::machine::{ClientContext, MachineSpec};
use crate::perf::PerfModel;
use crate::retry::RetryPolicy;
use dnacomp_algos::{Algorithm, Compressor};
use dnacomp_codec::checksum::fnv1a;
use dnacomp_codec::CodecError;
use dnacomp_seq::PackedSeq;
use serde::{Deserialize, Serialize};

/// Measured outcome of one exchange — one row of the paper's dataset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExchangeReport {
    /// File identifier.
    pub file: String,
    /// Original size in bases (= raw file bytes, 1 byte/base).
    pub original_len: usize,
    /// Algorithm used.
    pub algorithm: Algorithm,
    /// Serialised blob size in bytes (Figure 4's variable).
    pub compressed_bytes: usize,
    /// Client-side compression time, ms (Figure 5).
    pub compress_ms: f64,
    /// Upload time, ms (Figure 2), including any retry overhead.
    pub upload_ms: f64,
    /// Download time at the cloud VM, ms (Figure 6), including any retry
    /// overhead.
    pub download_ms: f64,
    /// Decompression time at the cloud VM, ms.
    pub decompress_ms: f64,
    /// Observed RAM on the client, bytes (Figure 3).
    pub ram_used_bytes: u64,
    /// Block attempts that had to be repeated (upload + download).
    pub retries: u32,
    /// Milliseconds lost to failed attempts and backoff delays. Zero on
    /// a fault-free exchange; included in the phase times above.
    pub wasted_ms: f64,
    /// Downloaded blocks that failed checksum verification and were
    /// re-fetched.
    pub integrity_failures: u32,
    /// Algorithms abandoned by the degradation ladder before this
    /// exchange succeeded (empty when the first choice went through).
    pub degraded_from: Vec<Algorithm>,
}

impl ExchangeReport {
    /// Total exchange time in ms.
    pub fn total_ms(&self) -> f64 {
        self.compress_ms + self.upload_ms + self.download_ms + self.decompress_ms
    }

    /// Compression ratio in bits per base.
    pub fn bits_per_base(&self) -> f64 {
        if self.original_len == 0 {
            0.0
        } else {
            self.compressed_bytes as f64 * 8.0 / self.original_len as f64
        }
    }
}

/// Mutable resilience bookkeeping for one exchange: the shared backoff
/// budget and the waste/retry counters that end up in the report.
struct Resilience {
    faults: FaultPlan,
    retry: RetryPolicy,
    backoff_spent_ms: f64,
    retries: u32,
    wasted_ms: f64,
    integrity_failures: u32,
}

impl Resilience {
    fn new(faults: FaultPlan, retry: RetryPolicy) -> Self {
        Resilience {
            faults,
            retry,
            backoff_spent_ms: 0.0,
            retries: 0,
            wasted_ms: 0.0,
            integrity_failures: 0,
        }
    }

    /// Charge the backoff before retrying `attempt + 1`. Draws from the
    /// per-exchange budget; the delay is monotone per operation (running
    /// max over `prev`) and counts as both phase time and waste.
    fn backoff(
        &mut self,
        phase: ExchangePhase,
        key: u64,
        attempt: u32,
        prev: &mut f64,
        phase_ms: &mut f64,
    ) -> Result<(), ExchangeError> {
        let d = self.retry.raw_delay_ms(key, attempt + 1).max(*prev);
        if self.backoff_spent_ms + d > self.retry.budget_ms {
            return Err(ExchangeError::RetryBudgetExhausted {
                phase,
                spent_ms: self.backoff_spent_ms,
                budget_ms: self.retry.budget_ms,
            });
        }
        self.backoff_spent_ms += d;
        *prev = d;
        *phase_ms += d;
        self.wasted_ms += d;
        self.retries += 1;
        Ok(())
    }

    fn check_timeout(&self, phase: ExchangePhase, elapsed_ms: f64) -> Result<(), ExchangeError> {
        if elapsed_ms > self.retry.phase_timeout_ms {
            Err(ExchangeError::Timeout {
                phase,
                elapsed_ms,
                limit_ms: self.retry.phase_timeout_ms,
            })
        } else {
            Ok(())
        }
    }
}

/// Stable per-operation key for jitter: hashes phase, algorithm, file
/// and block index.
fn op_key(phase: ExchangePhase, alg: Algorithm, file: &str, block: usize) -> u64 {
    let mut buf = Vec::with_capacity(file.len() + 10);
    buf.push(phase as u8);
    buf.push(alg.tag());
    buf.extend_from_slice(file.as_bytes());
    buf.extend_from_slice(&(block as u64).to_le_bytes());
    fnv1a(&buf)
}

/// The simulated exchange environment.
///
/// ```
/// use dnacomp_cloud::{ClientContext, CloudSim};
/// use dnacomp_algos::Dnax;
/// use dnacomp_seq::gen::GenomeModel;
/// let mut sim = CloudSim::default();
/// let seq = GenomeModel::default().generate(10_000, 1);
/// let ctx = ClientContext::new(2048, 2393, 2.0);
/// let report = sim.exchange(&ctx, &Dnax::default(), "demo", &seq).unwrap();
/// assert!(report.total_ms() > 0.0);
/// assert_eq!(report.original_len, 10_000);
/// assert_eq!(report.retries, 0); // fault-free by default
/// ```
pub struct CloudSim {
    /// Performance model (seeds, latencies, calibration).
    pub perf: PerfModel,
    /// The cloud VM doing download + decompression.
    pub cloud_vm: MachineSpec,
    /// The storage account.
    pub store: BlobStore,
    /// Container name used for uploads.
    pub container: String,
    /// Fault schedule applied to block transfers (default: none).
    pub faults: FaultPlan,
    /// Retry/backoff/timeout policy for block transfers.
    pub retry: RetryPolicy,
}

impl Default for CloudSim {
    fn default() -> Self {
        CloudSim::new(PerfModel::default(), MachineSpec::azure_vm())
    }
}

impl CloudSim {
    /// New simulator with the given model and cloud VM, fault-free.
    pub fn new(perf: PerfModel, cloud_vm: MachineSpec) -> Self {
        let mut store = BlobStore::new();
        store.create_container("sequences");
        CloudSim {
            perf,
            cloud_vm,
            store,
            container: "sequences".to_owned(),
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
        }
    }

    /// Run the full exchange of `seq` under `ctx` with `compressor`,
    /// verifying block checksums on download and the roundtrip at the
    /// end. Returns a typed [`ExchangeError`] on any unrecoverable
    /// fault — never a silently corrupted result.
    pub fn exchange(
        &mut self,
        ctx: &ClientContext,
        compressor: &dyn Compressor,
        file: &str,
        seq: &PackedSeq,
    ) -> Result<ExchangeReport, ExchangeError> {
        let alg = compressor.algorithm();
        let mut res = Resilience::new(self.faults, self.retry);
        // 1. Compress on the client.
        let (blob, cstats) = compressor.compress_with_stats(seq)?;
        let bytes = blob.to_bytes();
        let compress_ms = self.perf.compress_ms(ctx, alg, file, &cstats);
        // 2. Upload: stream conversion + wire, block by block. The
        //    nominal whole-blob cost is split across blocks by byte
        //    share, so fault-free per-block costs sum to the legacy
        //    total.
        let nominal_up = self
            .perf
            .upload_ms(ctx, alg, file, bytes.len(), cstats.peak_heap_bytes);
        let blob_name = format!("{file}.{}.dx", alg.name().to_ascii_lowercase());
        let total_bytes = bytes.len().max(1) as f64;
        let n_blocks = self.store.blocks_for(bytes.len());
        let mut upload_ms = 0.0;
        if n_blocks == 0 {
            // Zero-byte blob: a bare Put Blob request, nothing to stage.
            upload_ms = nominal_up;
        }
        for (i, chunk) in bytes.chunks(self.store.block_bytes()).enumerate() {
            let share = nominal_up * chunk.len() as f64 / total_bytes;
            let key = op_key(ExchangePhase::Upload, alg, file, i);
            let mut prev_delay = 0.0;
            let mut attempt = 0u32;
            loop {
                let cost = share * res.faults.degrade(alg, file, i, attempt)
                    + res.faults.stall(alg, file, i, attempt);
                upload_ms += cost;
                res.check_timeout(ExchangePhase::Upload, upload_ms)?;
                if !res.faults.upload_fails(alg, file, i, attempt) {
                    self.store.stage_block(&self.container, &blob_name, i, chunk);
                    break;
                }
                res.wasted_ms += cost;
                if attempt + 1 >= res.retry.max_attempts {
                    return Err(ExchangeError::UploadFailed {
                        block: i,
                        attempts: attempt + 1,
                    });
                }
                res.backoff(
                    ExchangePhase::Upload,
                    key,
                    attempt,
                    &mut prev_delay,
                    &mut upload_ms,
                )?;
                attempt += 1;
            }
        }
        let handle = self.store.commit(&self.container, &blob_name, n_blocks)?;
        // 3. Download at the cloud VM, verifying each block against the
        //    checksum recorded at staging time; corrupt blocks are
        //    re-fetched.
        let nominal_down = self.perf.download_ms(&self.cloud_vm, alg, file, bytes.len());
        let mut download_ms = 0.0;
        let mut fetched = Vec::with_capacity(bytes.len());
        if n_blocks == 0 {
            download_ms = nominal_down;
        }
        for i in 0..n_blocks {
            let block = self
                .store
                .download_block(&handle, i)
                .ok_or(CodecError::Corrupt("block vanished from store"))?;
            let expected = self
                .store
                .block_checksum(&handle, i)
                .ok_or(CodecError::Corrupt("block checksum vanished from store"))?;
            let share = nominal_down * block.len() as f64 / total_bytes;
            let key = op_key(ExchangePhase::Download, alg, file, i);
            let mut prev_delay = 0.0;
            let mut attempt = 0u32;
            loop {
                let cost = share * res.faults.degrade(alg, file, i, attempt)
                    + res.faults.stall(alg, file, i, attempt);
                download_ms += cost;
                res.check_timeout(ExchangePhase::Download, download_ms)?;
                let failed = res.faults.download_fails(alg, file, i, attempt);
                let mut corrupt = false;
                if !failed {
                    // Simulate the wire: this attempt's copy may arrive
                    // with a flipped byte, caught by the checksum.
                    let mut wire = block.to_vec();
                    if res.faults.corrupts(alg, file, i, attempt) {
                        wire[0] ^= 0x80;
                    }
                    if fnv1a(&wire) == expected {
                        fetched.extend_from_slice(&wire);
                        break;
                    }
                    corrupt = true;
                    res.integrity_failures += 1;
                }
                res.wasted_ms += cost;
                if attempt + 1 >= res.retry.max_attempts {
                    return Err(if corrupt {
                        ExchangeError::Integrity {
                            block: i,
                            attempts: attempt + 1,
                        }
                    } else {
                        ExchangeError::DownloadFailed {
                            block: i,
                            attempts: attempt + 1,
                        }
                    });
                }
                res.backoff(
                    ExchangePhase::Download,
                    key,
                    attempt,
                    &mut prev_delay,
                    &mut download_ms,
                )?;
                attempt += 1;
            }
        }
        // 4. Decompress at the cloud VM and verify the roundtrip.
        let parsed = dnacomp_algos::CompressedBlob::from_bytes(&fetched)?;
        let (decoded, dstats) = compressor.decompress_with_stats(&parsed)?;
        if &decoded != seq {
            return Err(CodecError::Corrupt("roundtrip mismatch").into());
        }
        let decompress_ms = self.perf.decompress_ms(&self.cloud_vm, alg, file, &dstats);
        let ram_used_bytes = self
            .perf
            .observed_ram_bytes(ctx, alg, file, cstats.peak_heap_bytes);
        Ok(ExchangeReport {
            file: file.to_owned(),
            original_len: seq.len(),
            algorithm: alg,
            compressed_bytes: bytes.len(),
            compress_ms,
            upload_ms,
            download_ms,
            decompress_ms,
            ram_used_bytes,
            retries: res.retries,
            wasted_ms: res.wasted_ms,
            integrity_failures: res.integrity_failures,
            degraded_from: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_algos::{Ctw, Dnax, GenCompress, GzipRs};
    use dnacomp_seq::gen::GenomeModel;

    fn ctx() -> ClientContext {
        ClientContext::new(3072, 2393, 2.0)
    }

    #[test]
    fn exchange_produces_consistent_report() {
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(20_000, 3);
        let r = sim
            .exchange(&ctx(), &Dnax::default(), "f1", &seq)
            .unwrap();
        assert_eq!(r.original_len, 20_000);
        assert!(r.compressed_bytes > 0);
        assert!(r.compress_ms > 0.0);
        assert!(r.upload_ms > 0.0);
        assert!(r.download_ms > 0.0);
        assert!(r.decompress_ms > 0.0);
        assert!(r.ram_used_bytes > 0);
        assert!(r.total_ms() >= r.compress_ms);
        // Fault-free: no retries, no waste, no integrity failures.
        assert_eq!(r.retries, 0);
        assert_eq!(r.wasted_ms, 0.0);
        assert_eq!(r.integrity_failures, 0);
        assert!(r.degraded_from.is_empty());
        // Blob actually stored.
        assert_eq!(sim.store.list("sequences").len(), 1);
    }

    #[test]
    fn exchange_is_deterministic() {
        let seq = GenomeModel::default().generate(10_000, 5);
        let run = || {
            let mut sim = CloudSim::default();
            sim.exchange(&ctx(), &Ctw::default(), "f", &seq).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn faulty_exchange_is_deterministic_too() {
        let seq = GenomeModel::default().generate(12_000, 5);
        let run = || {
            let mut sim = CloudSim {
                store: BlobStore::with_block_bytes(256),
                faults: FaultPlan::uniform(21, 0.2),
                ..CloudSim::default()
            };
            sim.exchange(&ctx(), &Dnax::default(), "f", &seq)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn faults_cost_time_but_not_correctness() {
        let seq = GenomeModel::default().generate(30_000, 9);
        let mut clean = CloudSim {
            store: BlobStore::with_block_bytes(256),
            ..CloudSim::default()
        };
        let baseline = clean
            .exchange(&ctx(), &Dnax::default(), "f", &seq)
            .unwrap();
        let mut chaotic = CloudSim {
            store: BlobStore::with_block_bytes(256),
            faults: FaultPlan::uniform(4242, 0.2),
            ..CloudSim::default()
        };
        let noisy = chaotic
            .exchange(&ctx(), &Dnax::default(), "f", &seq)
            .unwrap();
        // Same payload moved, but the faulty run paid for it.
        assert_eq!(noisy.compressed_bytes, baseline.compressed_bytes);
        assert!(noisy.retries > 0, "retries {}", noisy.retries);
        assert!(noisy.wasted_ms > 0.0);
        assert!(
            noisy.upload_ms + noisy.download_ms
                > baseline.upload_ms + baseline.download_ms
        );
        // Waste never exceeds what the phases actually recorded.
        assert!(noisy.wasted_ms < noisy.upload_ms + noisy.download_ms);
    }

    #[test]
    fn hopeless_faults_yield_typed_errors() {
        let seq = GenomeModel::default().generate(10_000, 3);
        let mut sim = CloudSim {
            store: BlobStore::with_block_bytes(128),
            faults: FaultPlan {
                upload_fail_rate: 1.0,
                ..FaultPlan::uniform(7, 0.0)
            },
            ..CloudSim::default()
        };
        match sim.exchange(&ctx(), &Dnax::default(), "f", &seq) {
            Err(ExchangeError::UploadFailed { attempts, .. }) => {
                assert_eq!(attempts, sim.retry.max_attempts)
            }
            other => panic!("expected UploadFailed, got {other:?}"),
        }
        // Permanent corruption is detected, not returned.
        let mut sim = CloudSim {
            store: BlobStore::with_block_bytes(128),
            faults: FaultPlan {
                corrupt_rate: 1.0,
                ..FaultPlan::uniform(7, 0.0)
            },
            ..CloudSim::default()
        };
        match sim.exchange(&ctx(), &Dnax::default(), "f", &seq) {
            Err(ExchangeError::Integrity { .. }) => {}
            other => panic!("expected Integrity, got {other:?}"),
        }
    }

    #[test]
    fn drained_budget_aborts_with_typed_error() {
        let seq = GenomeModel::default().generate(10_000, 3);
        let mut sim = CloudSim {
            store: BlobStore::with_block_bytes(128),
            faults: FaultPlan::uniform(77, 0.6),
            ..CloudSim::default()
        };
        sim.retry.max_attempts = 32;
        sim.retry.budget_ms = 200.0; // a handful of 50 ms backoffs
        match sim.exchange(&ctx(), &Dnax::default(), "f", &seq) {
            Err(ExchangeError::RetryBudgetExhausted {
                spent_ms,
                budget_ms,
                ..
            }) => {
                assert!(spent_ms <= budget_ms);
            }
            other => panic!("expected RetryBudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn phase_timeout_fires() {
        let seq = GenomeModel::default().generate(10_000, 3);
        let mut sim = CloudSim::default();
        sim.retry.phase_timeout_ms = 0.001;
        match sim.exchange(&ctx(), &Dnax::default(), "f", &seq) {
            Err(ExchangeError::Timeout { phase, .. }) => {
                assert_eq!(phase, ExchangePhase::Upload)
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn dnax_wins_total_time_on_large_files() {
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(400_000, 7);
        let dnax = sim.exchange(&ctx(), &Dnax::default(), "big", &seq).unwrap();
        let gc = sim
            .exchange(&ctx(), &GenCompress::default(), "big", &seq)
            .unwrap();
        let ctw = sim.exchange(&ctx(), &Ctw::default(), "big", &seq).unwrap();
        let gz = sim.exchange(&ctx(), &GzipRs::default(), "big", &seq).unwrap();
        assert!(dnax.total_ms() < gc.total_ms(), "DNAX {} GC {}", dnax.total_ms(), gc.total_ms());
        assert!(dnax.total_ms() < ctw.total_ms());
        assert!(dnax.total_ms() < gz.total_ms());
    }

    #[test]
    fn dnax_loses_on_small_files() {
        // The paper's <50 kB observation: the selection framework exists
        // because small files favour GenCompress/CTW.
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(8_000, 7);
        let dnax = sim.exchange(&ctx(), &Dnax::default(), "small", &seq).unwrap();
        let gc = sim
            .exchange(&ctx(), &GenCompress::default(), "small", &seq)
            .unwrap();
        assert!(
            gc.total_ms() < dnax.total_ms(),
            "GC {} vs DNAX {}",
            gc.total_ms(),
            dnax.total_ms()
        );
    }

    #[test]
    fn gzip_never_wins_total_time() {
        let mut sim = CloudSim::default();
        for (i, len) in [3_000usize, 30_000, 150_000].into_iter().enumerate() {
            let seq = GenomeModel::default().generate(len, 11 + i as u64);
            let file = format!("f{len}");
            let gz = sim
                .exchange(&ctx(), &GzipRs::default(), &file, &seq)
                .unwrap();
            // Gzip may beat individual algorithms at some sizes, but it
            // must never be the overall winner (§V: "no records where
            // Gzip was used as label").
            let best_other = [
                sim.exchange(&ctx(), &Dnax::default(), &file, &seq).unwrap(),
                sim.exchange(&ctx(), &GenCompress::default(), &file, &seq)
                    .unwrap(),
                sim.exchange(&ctx(), &Ctw::default(), &file, &seq).unwrap(),
            ]
            .into_iter()
            .map(|r| r.total_ms())
            .fold(f64::INFINITY, f64::min);
            assert!(
                best_other < gz.total_ms(),
                "gzip wins at len {len}: {} vs best {}",
                gz.total_ms(),
                best_other
            );
        }
    }

    #[test]
    fn ctw_has_worst_decompression() {
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(100_000, 13);
        let reports: Vec<ExchangeReport> = [
            Box::new(Ctw::default()) as Box<dyn Compressor>,
            Box::new(Dnax::default()),
            Box::new(GenCompress::default()),
            Box::new(GzipRs::default()),
        ]
        .iter()
        .map(|c| sim.exchange(&ctx(), c.as_ref(), "f", &seq).unwrap())
        .collect();
        let ctw = &reports[0];
        for other in &reports[1..] {
            assert!(
                ctw.decompress_ms > other.decompress_ms,
                "CTW {} vs {} {}",
                ctw.decompress_ms,
                other.algorithm,
                other.decompress_ms
            );
        }
        // And DNAX has the least decompression time (§IV-B).
        let dnax = &reports[1];
        for other in [&reports[0], &reports[2], &reports[3]] {
            assert!(dnax.decompress_ms < other.decompress_ms);
        }
    }

    #[test]
    fn gzip_has_worst_ratio_on_dna() {
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(80_000, 17);
        let gz = sim.exchange(&ctx(), &GzipRs::default(), "f", &seq).unwrap();
        for c in [
            Box::new(Ctw::default()) as Box<dyn Compressor>,
            Box::new(Dnax::default()),
            Box::new(GenCompress::default()),
        ] {
            let r = sim.exchange(&ctx(), c.as_ref(), "f", &seq).unwrap();
            assert!(
                r.compressed_bytes < gz.compressed_bytes,
                "{} not smaller than gzip",
                r.algorithm
            );
        }
    }
}
